//! Fidelity guards: small-scale versions of the paper's headline claims,
//! run as ordinary tests so a regression in any component that would change
//! the *shape* of a figure fails CI, not just a rerun of the figures.

use umon_repro::umon_baselines::budget::SweepLayout;
use umon_repro::umon_baselines::CurveSketch;
use umon_repro::umon_metrics::{all_metrics, WorkloadAccuracy};
use umon_repro::umon_netsim::{SimConfig, Simulator, Topology};
use umon_repro::umon_workloads::{WorkloadKind, WorkloadParams};
use umon_repro::wavesketch::{FlowKey, SelectorKind};

const WINDOW_SHIFT: u32 = 13;

fn small_run(kind: WorkloadKind) -> umon_repro::umon_netsim::SimResult {
    let params = WorkloadParams {
        duration_ns: 4_000_000,
        ..WorkloadParams::paper(kind, 0.2, 7)
    };
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: 7_000_000,
        seed: 7,
        collect_queue_dist: false,
        ..SimConfig::default()
    };
    Simulator::new(topo, flows, config).run()
}

/// Feeds all hosts into per-host instances and averages flow metrics.
fn score(
    result: &umon_repro::umon_netsim::SimResult,
    mut make: impl FnMut() -> Box<dyn CurveSketch>,
) -> umon_repro::umon_metrics::MetricSummary {
    let records = &result.telemetry.tx_records;
    let mut truth: std::collections::HashMap<(usize, u64), std::collections::HashMap<u64, f64>> =
        Default::default();
    for r in records {
        *truth
            .entry((r.host, r.flow.0))
            .or_default()
            .entry(r.ts_ns >> WINDOW_SHIFT)
            .or_insert(0.0) += r.bytes as f64;
    }
    let mut acc = WorkloadAccuracy::new();
    for host in 0..16usize {
        let mut sketch = make();
        for r in records.iter().filter(|r| r.host == host) {
            sketch.update(
                &FlowKey::from_id(r.flow.0),
                r.ts_ns >> WINDOW_SHIFT,
                r.bytes as i64,
            );
        }
        for ((h, flow), windows) in &truth {
            if *h != host {
                continue;
            }
            let start = windows.keys().min().unwrap().saturating_sub(4);
            let end = windows.keys().max().unwrap() + 5;
            let t: Vec<f64> = (start..end)
                .map(|w| windows.get(&w).copied().unwrap_or(0.0))
                .collect();
            let est: Vec<f64> = match sketch.query(&FlowKey::from_id(*flow)) {
                Some(c) => (start..end).map(|w| c.at(w)).collect(),
                None => vec![0.0; t.len()],
            };
            acc.add(all_metrics(&t, &est));
        }
    }
    acc.mean()
}

#[test]
fn wavesketch_beats_every_baseline_at_200kb() {
    // The Figure 11/12 ordering, on both workloads at one memory point.
    let windows = (7_000_000u64 >> WINDOW_SHIFT) as usize + 1;
    for kind in [WorkloadKind::Hadoop, WorkloadKind::WebSearch] {
        let result = small_run(kind);
        let layout = SweepLayout::paper(0, windows);
        let budget = 200 * 1024;
        let ws = score(&result, || {
            Box::new(SweepLayout::paper(0, windows).wavesketch(budget, SelectorKind::Ideal))
        });
        type SketchFactory = Box<dyn Fn() -> Box<dyn CurveSketch>>;
        let schemes: Vec<(&str, SketchFactory)> = vec![
            (
                "omniwindow",
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, windows).omniwindow(budget))
                        as Box<dyn CurveSketch>
                }),
            ),
            (
                "fourier",
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, windows).fourier(budget)) as Box<dyn CurveSketch>
                }),
            ),
            (
                "persist",
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, windows).persist_cms(budget))
                        as Box<dyn CurveSketch>
                }),
            ),
        ];
        for (name, make) in schemes {
            let baseline = score(&result, || make());
            assert!(
                ws.euclidean < baseline.euclidean,
                "{kind:?}/{name}: WaveSketch euclidean {} must beat {}",
                ws.euclidean,
                baseline.euclidean
            );
            assert!(
                ws.are <= baseline.are + 1e-9,
                "{kind:?}/{name}: WaveSketch ARE {} must beat {}",
                ws.are,
                baseline.are
            );
        }
        let _ = layout;
        // And the paper's absolute headline: <10% ARE, >90% energy.
        assert!(ws.are < 0.10, "{kind:?}: ARE {}", ws.are);
        assert!(ws.energy > 0.90, "{kind:?}: energy {}", ws.energy);
    }
}

#[test]
fn hw_version_tracks_ideal_closely() {
    // §7.1: "the accuracy of the hardware approximate implementation is
    // close to the accuracy of an ideal WaveSketch".
    let result = small_run(WorkloadKind::Hadoop);
    let windows = (7_000_000u64 >> WINDOW_SHIFT) as usize + 1;
    let budget = 200 * 1024;
    let ideal = score(&result, || {
        Box::new(SweepLayout::paper(0, windows).wavesketch(budget, SelectorKind::Ideal))
    });
    // A mid-scale threshold stands in for trace calibration here; the bench
    // harness calibrates properly (accuracy::calibrate_hw).
    let hw = score(&result, || {
        Box::new(SweepLayout::paper(0, windows).wavesketch(
            budget,
            SelectorKind::HwThreshold {
                even: 600,
                odd: 600,
            },
        ))
    });
    assert!(
        hw.cosine > ideal.cosine - 0.05,
        "hw cosine {} vs ideal {}",
        hw.cosine,
        ideal.cosine
    );
    assert!(
        hw.are < ideal.are * 20.0 + 0.05,
        "hw ARE {} vs ideal {}",
        hw.are,
        ideal.are
    );
}
