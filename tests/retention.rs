//! Workspace-level retention gate: the bounded-memory analyzer honors its
//! budget over a long run, stays bit-identical to unbounded references, and
//! recovers from an archive after a mid-ingest kill (DESIGN.md §12).
//!
//! The fast fixed-seed profile of the same contract runs in CI through
//! `retention_soak` (see ci.sh); these tests pin a couple of seeds into the
//! tier-1 suite so `cargo test` alone catches a retention regression.

use umon::RetentionPolicy;
use umon_testkit::{
    cold_soak_run, retention_diff_run, retention_soak_run, RetentionDiffConfig, StreamKind,
};

fn scratch(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// The full differential contract — compaction invisible, eviction exact,
/// crash recovery reconvergent, torn tails contained, evicted periods
/// queryable from the cold tier bit-identically, torn history healed by
/// backfill over the collection plane — on one seed per workload kind.
#[test]
fn retention_contract_holds_across_workload_kinds() {
    let dir = scratch("retention_contract");
    for kind in StreamKind::ALL {
        let cfg = RetentionDiffConfig::quick(kind);
        let stats = retention_diff_run(7, &cfg, &dir)
            .unwrap_or_else(|e| panic!("retention contract failed: {e}"));
        assert!(stats.reports > 0);
        assert!(stats.compacted > 0, "compaction never fired");
        assert!(stats.evicted > 0, "eviction never fired");
        assert!(stats.recovered > 0, "recovery never replayed");
        assert!(stats.cold_reads > 0, "cold tier never read back");
        assert!(stats.backfilled > 0, "backfill never re-uploaded");
        assert!(stats.curves_compared > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A thousand-period soak through a small budget: resident state stays
/// bounded, checkpoint queries stay bit-identical to an unbounded reference
/// over the surviving periods.
#[test]
fn long_run_soak_stays_bounded_and_bit_identical() {
    let policy = RetentionPolicy::bounded(8, 32).with_cached_bytes(256 * 1024);
    let stats = retention_soak_run(11, 1000, policy, 50)
        .unwrap_or_else(|e| panic!("retention soak failed: {e}"));
    assert_eq!(stats.periods, 1000);
    assert!(
        stats.max_resident_periods <= 32,
        "resident periods peaked at {}",
        stats.max_resident_periods
    );
    assert!(
        stats.max_cached_bytes <= 256 * 1024,
        "cached bytes peaked at {}",
        stats.max_cached_bytes
    );
    assert!(stats.evicted > 0, "soak never evicted (vacuous)");
    assert!(stats.curves_compared > 0);
}

/// The cold twin of the soak: an archive-backed bounded analyzer whose
/// checkpoints compare the full history — hot, compacted and archived-cold
/// read back from disk — bit-identically against an unbounded reference.
#[test]
fn cold_soak_full_history_stays_bit_identical() {
    let dir = scratch("cold_soak_pin");
    let policy = RetentionPolicy::bounded(8, 32).with_cold_cache_bytes(256 * 1024);
    let stats = cold_soak_run(13, 200, policy, 50, &dir)
        .unwrap_or_else(|e| panic!("cold soak failed: {e}"));
    assert_eq!(stats.periods, 200);
    assert!(
        stats.max_resident_periods <= 32,
        "resident periods peaked at {}",
        stats.max_resident_periods
    );
    assert!(stats.evicted > 0, "cold soak never evicted (vacuous)");
    assert!(stats.curves_compared > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
