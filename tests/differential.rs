//! Tier-1 differential suite: every WaveSketch variant (Basic, Full, HW,
//! Streaming, Sharded) driven over the same generated streams and held to
//! the exact oracle, for 32 fixed seeds across all three workload kinds.
//!
//! A failure prints the seed; reproduce it in isolation with
//! `cargo run -p umon-testkit --bin diff_fuzz -- --seeds 1 --start <seed>`.

use umon_testkit::{
    collection_diff_run, diff_run, gen_stream, replay_host_records, CheckParams,
    CollectionDiffConfig, DiffConfig, Oracle, StreamKind,
};
use wavesketch::{BasicWaveSketch, SketchConfig};

const SEEDS: u64 = 32;

#[test]
fn thirty_two_seeds_across_all_workloads_and_variants() {
    let mut failures = Vec::new();
    let mut light_epochs = 0;
    let mut flow_epochs = 0;
    for seed in 0..SEEDS {
        for kind in StreamKind::ALL {
            match diff_run(seed, &DiffConfig::quick(kind)) {
                Ok(stats) => {
                    light_epochs += stats.light_epochs;
                    flow_epochs += stats.flow_epochs;
                }
                Err(e) => failures.push(e.to_string()),
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(
        light_epochs > 1000,
        "suspiciously low coverage: {light_epochs}"
    );
    assert!(
        flow_epochs > 1000,
        "suspiciously low coverage: {flow_epochs}"
    );
}

/// Harness self-test: the oracle comparison must actually have teeth.
/// Corrupting one light-part counter by one unit must fail the check.
#[test]
fn corrupting_one_light_counter_fails_the_oracle_comparison() {
    let cfg = DiffConfig::quick(StreamKind::Skewed);
    let stream = gen_stream(7, &cfg.stream);
    let mut oracle = Oracle::new(cfg.sketch.clone());
    let mut basic = BasicWaveSketch::new(cfg.sketch.clone());
    for (f, w, v) in &stream {
        oracle.record(f, *w, *v);
        basic.update(f, *w, *v);
    }
    let mut drain = basic.drain();
    let params = CheckParams::from_config(&cfg.sketch);
    oracle
        .check_light_drain(&drain, &params)
        .expect("uncorrupted drain must pass");

    drain[0].2[0].approx[0] += 1;
    let err = oracle
        .check_light_drain(&drain, &params)
        .expect_err("corrupted counter must be detected");
    assert!(err.contains("approx"), "unexpected failure message: {err}");
}

/// Dropping a whole cell from the drain must be detected too.
#[test]
fn dropping_a_drained_cell_fails_the_oracle_comparison() {
    let cfg = DiffConfig::quick(StreamKind::Uniform);
    let stream = gen_stream(9, &cfg.stream);
    let mut oracle = Oracle::new(cfg.sketch.clone());
    let mut basic = BasicWaveSketch::new(cfg.sketch.clone());
    for (f, w, v) in &stream {
        oracle.record(f, *w, *v);
        basic.update(f, *w, *v);
    }
    let mut drain = basic.drain();
    drain.remove(0);
    let params = CheckParams::from_config(&cfg.sketch);
    let err = oracle.check_light_drain(&drain, &params).unwrap_err();
    assert!(err.contains("missing"), "unexpected failure message: {err}");
}

/// Trace replay: synthesize TX records, round-trip them through the netsim
/// trace CSV format, then re-drive a real host agent and validate every
/// uploaded period report against per-period oracles.
#[test]
fn trace_roundtrip_replays_into_validated_period_reports() {
    use umon_netsim::trace::{read_trace, write_tx_records};
    use umon_netsim::{FlowId, TxRecord};

    let records: Vec<TxRecord> = (0..1200u64)
        .map(|i| TxRecord {
            host: 4,
            flow: FlowId(i % 17),
            ts_ns: i * 9_000 + (i % 5) * 111,
            bytes: 100 + (i % 29) as u32 * 50,
        })
        .collect();
    let mut csv = Vec::new();
    write_tx_records(&mut csv, &records).unwrap();
    let (parsed, mirrors) = read_trace(&csv[..]).unwrap();
    assert_eq!(parsed, records);
    assert!(mirrors.is_empty());

    let cfg = umon::HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(3)
            .width(32)
            .levels(4)
            .topk(16)
            .max_windows(128)
            .heavy_rows(16)
            .build(),
        period_ns: 2_000_000,
        window_shift: 13,
    };
    let stats = replay_host_records(&parsed, 4, &cfg).unwrap();
    assert!(
        stats.periods >= 5,
        "expected several periods, got {}",
        stats.periods
    );
    assert_eq!(stats.records, 1200);
    assert!(stats.light_epochs > 0);
}

/// The whole pipeline is deterministic: identical seeds produce identical
/// coverage counters.
#[test]
fn differential_runs_are_reproducible() {
    let cfg = DiffConfig::quick(StreamKind::Bursty);
    let a = diff_run(11, &cfg).unwrap();
    let b = diff_run(11, &cfg).unwrap();
    assert_eq!(a, b);
}

/// The collection-plane differential (umon::collector degradation
/// contract): for 32 fixed seeds across all three workloads, (1) zero-loss
/// duplication + reordering leaves analyzer output bit-identical to the
/// lossless run, (2) unrecovered loss leaves curves equal to a reference fed
/// exactly the surviving reports with the gaps flagged precisely, and
/// (3) a hostile fault mix is fully healed by bounded retransmission.
///
/// Reproduce a failure in isolation with
/// `cargo run -p umon-testkit --bin collector_smoke -- --seeds 1 --start <seed>`.
#[test]
fn collection_plane_degrades_soundly_across_fault_schedules() {
    let mut failures = Vec::new();
    let mut reports = 0;
    let mut curves = 0;
    let mut duplicates = 0;
    let mut gaps = 0;
    for seed in 0..SEEDS {
        for kind in StreamKind::ALL {
            match collection_diff_run(seed, &CollectionDiffConfig::quick(kind)) {
                Ok(stats) => {
                    reports += stats.reports;
                    curves += stats.curves_compared;
                    duplicates += stats.duplicates;
                    gaps += stats.gaps;
                }
                Err(e) => failures.push(e.to_string()),
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(
        reports > 1000,
        "suspiciously low coverage: {reports} reports"
    );
    assert!(curves > 1000, "suspiciously low coverage: {curves} curves");
    assert!(duplicates > 0, "fault schedules never injected a duplicate");
    assert!(gaps > 0, "fault schedules never produced a detectable gap");
}

/// The adversarial-stream differential: the scenario-matrix shapes (incast
/// storm rounds, lockstep allreduce steps) through every sketch variant and
/// the exact oracle, for 8 fixed seeds. These shapes stress exactly what the
/// friendly trio does not — long idle runs inside an epoch, many flows
/// slamming one window, equal-total flows fighting for heavy slots.
#[test]
fn eight_seeds_across_adversarial_workloads_and_variants() {
    let mut failures = Vec::new();
    let mut light_epochs = 0;
    let mut flow_epochs = 0;
    for seed in 0..8 {
        for kind in StreamKind::ADVERSARIAL {
            match diff_run(seed, &DiffConfig::quick(kind)) {
                Ok(stats) => {
                    light_epochs += stats.light_epochs;
                    flow_epochs += stats.flow_epochs;
                }
                Err(e) => failures.push(e.to_string()),
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(
        light_epochs > 100,
        "suspiciously low coverage: {light_epochs}"
    );
    assert!(
        flow_epochs > 100,
        "suspiciously low coverage: {flow_epochs}"
    );
}

/// The collection plane under adversarial traffic *and* a hostile fault mix:
/// every fault class at once (drop, duplicate, reorder, truncate, ACK loss)
/// at rates above the tier-1 sweep, healed by bounded retransmission, for 8
/// fixed seeds per adversarial kind.
#[test]
fn collection_plane_survives_hostile_faults_on_adversarial_streams() {
    use umon::FaultSpec;

    let mut failures = Vec::new();
    let mut reports = 0;
    let mut retransmissions = 0;
    for seed in 0..8 {
        for kind in StreamKind::ADVERSARIAL {
            let mut cfg = CollectionDiffConfig::quick(kind);
            // Every envelope fault class at once, summing to 1.0 — the
            // hardest mix FaultSpec::validate admits — plus heavy ACK loss.
            cfg.recovery_faults = FaultSpec {
                drop: 0.3,
                duplicate: 0.25,
                reorder: 0.25,
                truncate: 0.2,
                ack_drop: 0.3,
            };
            cfg.recovery_ticks = 10_000;
            match collection_diff_run(seed, &cfg) {
                Ok(stats) => {
                    reports += stats.reports;
                    retransmissions += stats.retransmissions;
                }
                Err(e) => failures.push(e.to_string()),
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(
        reports > 100,
        "suspiciously low coverage: {reports} reports"
    );
    assert!(
        retransmissions > 0,
        "hostile mix never forced a retransmission"
    );
}

/// End-to-end scenario replay: simulate a matrix scenario (failure schedule
/// included), then re-drive each host's egress records through a real host
/// agent and hold every uploaded period report to per-period oracles.
#[test]
fn scenario_matrix_records_replay_into_validated_period_reports() {
    use umon_workloads::scenario_matrix;

    let scenarios = scenario_matrix(0xD1FF, true);
    let storm = scenarios
        .iter()
        .find(|s| s.name == "pfc_storm")
        .expect("matrix has pfc_storm");
    let topo = umon_netsim::Topology::fat_tree(4, 100.0, 1000);
    let config = umon_netsim::SimConfig {
        end_ns: storm.end_ns,
        seed: 0xD1FF,
        clock_error_ns: 0,
        pfc: Some(umon_netsim::PfcConfig {
            xoff_bytes: 300 * 1024,
            xon_bytes: 200 * 1024,
        }),
        failures: storm.failures.clone(),
        ..umon_netsim::SimConfig::default()
    };
    let result = umon_netsim::Simulator::new(topo, storm.flows.clone(), config).run();
    let records = &result.telemetry.tx_records;
    assert!(!records.is_empty(), "scenario produced no egress records");

    let agent_cfg = umon::HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(3)
            .width(32)
            .levels(4)
            .topk(16)
            .max_windows(128)
            .heavy_rows(16)
            .build(),
        period_ns: 2_000_000,
        window_shift: 13,
    };
    let hosts: std::collections::BTreeSet<usize> = records.iter().map(|r| r.host).collect();
    let mut replayed = 0;
    for host in hosts {
        let stats = replay_host_records(records, host, &agent_cfg)
            .unwrap_or_else(|e| panic!("host {host} replay failed: {e}"));
        replayed += stats.records;
        assert!(stats.periods > 0, "host {host} uploaded nothing");
    }
    assert_eq!(
        replayed,
        records.len(),
        "every record must be replayed once"
    );
}

/// Layout-equivalence gate for the flat-arena refactor: the drain of every
/// golden scenario must remain bit-identical to fixtures that were recorded
/// *before* `WaveBucket`/`StreamingTransform` were flattened into
/// `BucketArena`.  The fixtures under `tests/golden/` are committed and must
/// never be regenerated to paper over a diff — regenerate only for an
/// intentional, documented format change (see `umon-testkit`'s `golden_gen
/// --check`, which CI also runs).
#[test]
fn drains_match_pre_arena_golden_fixtures_bit_for_bit() {
    use umon_testkit::golden::{golden_drain, golden_fixture_name, GOLDEN_SEEDS};
    use wavesketch::SketchReport;

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for seed in GOLDEN_SEEDS {
        let path = dir.join(golden_fixture_name(seed));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        let fixture: SketchReport = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("unreadable fixture {}: {e}", path.display()));
        let fresh = golden_drain(seed);
        assert_eq!(
            fresh.heavy, fixture.heavy,
            "seed {seed}: heavy-part drain diverged from the pre-refactor fixture"
        );
        assert_eq!(
            fresh.light, fixture.light,
            "seed {seed}: light-part drain diverged from the pre-refactor fixture"
        );
        assert_eq!(
            fresh, fixture,
            "seed {seed}: drain diverged from the pre-refactor fixture"
        );
    }
}
