//! Zero-allocation gate for the steady-state hot paths.
//!
//! The perf tentpole's contract is that after warm-up neither the sketch
//! packet path (`FullWaveSketch::update`, including heavy-part evictions),
//! nor the calendar queue's push/pop cycle, nor the analyzer's indexed
//! query path (`flow_curve_with` / `host_rate_curve_with` through a warm
//! `QueryScratch`) touches the heap.  A counting
//! `#[global_allocator]` wraps the system allocator; this file contains a
//! single `#[test]` so no sibling test thread can contribute spurious
//! counts (each integration-test file is its own binary).
//!
//! Out of scope by design: epoch rollover (a completed epoch materialises
//! `BucketReport`s) and `drain()` — those are control-plane operations, not
//! the per-packet path.  The workload therefore keeps every window index
//! below `max_windows`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocating entry point; frees are not counted (returning
/// memory is harmless, acquiring it on the hot path is the bug).
struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_ops() -> u64 {
    HEAP_OPS.load(Ordering::Relaxed)
}

/// Dependency-free xorshift64 so the workload generator itself cannot
/// allocate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    sketch_packet_path_is_allocation_free();
    batch_ingest_path_is_allocation_free();
    calendar_queue_cycle_is_allocation_free();
    analyzer_query_path_is_allocation_free();
}

fn batch_ingest_path_is_allocation_free() {
    use wavesketch::sharded::ShardedWaveSketch;
    use wavesketch::{FlowKey, FullWaveSketch, SketchConfig};

    const BURST: usize = 256;
    const BURSTS: usize = 400;
    const SEED: u64 = 0xBA7C_F00D;

    let mut sketch = FullWaveSketch::new(SketchConfig::builder().build());
    let mut sharded = ShardedWaveSketch::new(SketchConfig::builder().build(), 4);
    let mut burst: Vec<(FlowKey, u64, i64)> = Vec::with_capacity(BURST);

    // Same flow/value sequence for warm-up and measurement (the rng is
    // reseeded) so the sharded path's per-shard route buffers see identical
    // per-burst shard occupancies both times — their capacities are grown
    // once during warm-up and can never need more afterwards. Only the
    // window keeps advancing, and 2 * BURSTS * BURST / 100 advances stay
    // below max_windows (4096), so no epoch rollover allocates a report.
    let mut window = 0u64;
    let mut step = 0u64;
    let run = |sketch: &mut FullWaveSketch,
               sharded: &mut ShardedWaveSketch,
               burst: &mut Vec<(FlowKey, u64, i64)>,
               window: &mut u64,
               step: &mut u64| {
        let mut rng = Rng(SEED);
        for _ in 0..BURSTS {
            burst.clear();
            for _ in 0..BURST {
                *step += 1;
                if step.is_multiple_of(100) {
                    *window += 1;
                }
                let flow = FlowKey::from_id(rng.next() % 512);
                let bytes = (64 + rng.next() % 1400) as i64;
                burst.push((flow, *window, bytes));
            }
            sketch.update_batch(burst);
            sharded.update_batch(burst);
        }
    };

    // Warm-up: allocates the staging scratch (hash/pack/index SoA buffers),
    // the sharded route buffers, first-epoch bucket state and the initial
    // heavy-slot elections.
    run(
        &mut sketch,
        &mut sharded,
        &mut burst,
        &mut window,
        &mut step,
    );

    let evictions_before = sketch.evictions();
    let before = heap_ops();
    run(
        &mut sketch,
        &mut sharded,
        &mut burst,
        &mut window,
        &mut step,
    );
    let measured = heap_ops() - before;

    assert!(
        sketch.evictions() > evictions_before,
        "measured phase must exercise the eviction path"
    );
    assert_eq!(
        measured, 0,
        "batch ingest steady state performed {measured} heap operations"
    );
}

fn sketch_packet_path_is_allocation_free() {
    use wavesketch::{FlowKey, FullWaveSketch, SketchConfig};

    let mut sketch = FullWaveSketch::new(SketchConfig::builder().build());
    let mut rng = Rng(0x5EED_CAFE);
    let mut window = 0u64;
    let mut step = 0u64;
    // 512 flows over 256 heavy slots keeps the vote-out eviction path live
    // throughout; advancing the window every 100th update keeps the total
    // advance count (4000 over both halves) below max_windows (4096) so no
    // epoch ever rolls over into a completed-report allocation.
    let mut update = |sketch: &mut FullWaveSketch, rng: &mut Rng, window: &mut u64| {
        step += 1;
        if step.is_multiple_of(100) {
            *window += 1;
        }
        let flow = FlowKey::from_id(rng.next() % 512);
        let bytes = (64 + rng.next() % 1400) as i64;
        sketch.update(&flow, *window, bytes);
    };

    // Warm-up: first-epoch bucket initialisation and initial heavy-slot
    // elections happen here.
    for _ in 0..200_000 {
        update(&mut sketch, &mut rng, &mut window);
    }

    let evictions_before = sketch.evictions();
    let before = heap_ops();
    for _ in 0..200_000 {
        update(&mut sketch, &mut rng, &mut window);
    }
    let measured = heap_ops() - before;

    assert!(
        sketch.evictions() > evictions_before,
        "measured phase must exercise the eviction path"
    );
    assert_eq!(
        measured, 0,
        "sketch steady-state packet path performed {measured} heap operations"
    );
}

fn analyzer_query_path_is_allocation_free() {
    use umon::{Analyzer, HostAgent, HostAgentConfig, QueryScratch};
    use wavesketch::SketchConfig;

    const HOSTS: usize = 3;
    const FLOWS: u64 = 48;

    // Narrow light array over 48 flows keeps bucket collisions (and thus the
    // heavy-subtraction query path) live; reversed report delivery exercises
    // the out-of-order ingest ordering the index must preserve.
    let cfg = HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(3)
            .width(16)
            .levels(5)
            .topk(12)
            .max_windows(256)
            .heavy_rows(8)
            .build(),
        period_ns: 128 << 13,
        window_shift: 13,
    };
    let mut analyzer = Analyzer::new(cfg.sketch.clone());
    for host in 0..HOSTS {
        let mut rng = Rng(0xBEEF ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut agent = HostAgent::new(host, cfg.clone());
        for w in 0..1024u64 {
            for _ in 0..(rng.next() % 4) {
                let flow = rng.next() % FLOWS;
                agent.observe(flow, w << 13, (64 + rng.next() % 1400) as u32);
            }
        }
        let mut reports = agent.finish();
        reports.reverse();
        analyzer.add_reports(reports);
    }

    let sweep = |analyzer: &Analyzer, scratch: &mut QueryScratch| -> u64 {
        let mut checksum = 0u64;
        for host in 0..HOSTS {
            for flow in 0..FLOWS {
                if let Some(s) = analyzer.flow_curve_with(host, flow, scratch) {
                    checksum = checksum.wrapping_add(s.values.len() as u64);
                }
            }
            if let Some(s) = analyzer.host_rate_curve_with(host, scratch) {
                checksum = checksum.wrapping_add(s.values.len() as u64);
            }
        }
        checksum
    };

    // Two warm-up sweeps, not one: min-row selection swaps the candidate and
    // best buffers data-dependently, so after one sweep the larger allocation
    // may sit in whichever field the second sweep uses less.  A second sweep
    // runs the same reset-size sequence against the flipped arrangement,
    // growing both allocations to every size either role needs; the third
    // (measured) sweep then repeats one of the two warmed parities exactly.
    let mut scratch = QueryScratch::new();
    let warm = sweep(&analyzer, &mut scratch);
    assert_eq!(warm, sweep(&analyzer, &mut scratch), "sweeps must repeat");

    let before = heap_ops();
    let measured_sum = sweep(&analyzer, &mut scratch);
    let measured = heap_ops() - before;

    assert_eq!(warm, measured_sum, "measured sweep must do identical work");
    assert_ne!(warm, 0, "workload must produce non-empty curves");
    assert_eq!(
        measured, 0,
        "analyzer query path performed {measured} heap operations after warm-up"
    );
}

fn calendar_queue_cycle_is_allocation_free() {
    use umon_netsim::sched::{CalendarQueue, WHEEL_SLOTS};

    let mut q: CalendarQueue<u64> = CalendarQueue::new();
    let mut seq = 0u64;

    // One revolution of a fixed schedule.  The wheel's per-slot buffers and
    // the overflow heap start at zero capacity and grow on first use, so the
    // warm-up run must visit the exact slot residues (and reach the same
    // peak occupancy) the measured run will: replaying the identical delay
    // sequence from a base time that is congruent modulo WHEEL_SLOTS
    // guarantees both.
    let run = |q: &mut CalendarQueue<u64>, seq: &mut u64, base: u64| -> u64 {
        let mut rng = Rng(0xABCD_1234);
        let mut now = base;
        let mut in_flight = 0usize;
        for step in 0..50_000u64 {
            let delay = match rng.next() % 10 {
                0 => 0,
                1..=6 => rng.next() % 2_000,
                7 | 8 => 2_000 + rng.next() % 60_000,
                // Past the 65,536 ns horizon: lands in the overflow heap.
                _ => 70_000 + rng.next() % 200_000,
            };
            *seq += 1;
            q.push(now + delay, *seq, step);
            in_flight += 1;
            if in_flight > 4 {
                let (t, _, _) = q.pop().expect("event in flight");
                now = t;
                in_flight -= 1;
            }
        }
        while let Some((t, _, _)) = q.pop() {
            now = t;
        }
        now
    };

    let end = run(&mut q, &mut seq, 0);

    // Next multiple of WHEEL_SLOTS past the warm-up's end: same residue
    // class as base 0, and the cursor never has to move backwards.
    let base = (end / WHEEL_SLOTS as u64 + 1) * WHEEL_SLOTS as u64;
    let before = heap_ops();
    run(&mut q, &mut seq, base);
    let measured = heap_ops() - before;

    assert_eq!(
        measured, 0,
        "calendar queue steady-state cycle performed {measured} heap operations"
    );
}
