//! Multi-period operation: the paper drains WaveSketch every 20 ms and
//! handles longer flows "in multiple reporting periods" (§7.1). These tests
//! run the pipeline across several periods and verify the analyzer stitches
//! per-period reports back into continuous curves.

use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig};
use umon_repro::umon_netsim::{
    CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology,
};
use umon_repro::wavesketch::SketchConfig;

fn agent_config(period_ns: u64) -> HostAgentConfig {
    HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(2)
            .width(64)
            .levels(6)
            .topk(128)
            .max_windows(2048)
            .heavy_rows(32)
            .build(),
        period_ns,
        window_shift: 13,
    }
}

#[test]
fn long_flow_spans_periods_and_reconstructs_continuously() {
    // A 10 Gbps fixed-rate flow for 9 ms, measured with 2 ms periods: the
    // flow crosses four period boundaries.
    let topo = Topology::dumbbell(1, 100.0, 1000);
    let flows = vec![FlowSpec {
        id: FlowId(0),
        src: 0,
        dst: 1,
        size_bytes: (10.0 / 8.0 * 9_000_000.0) as u64, // 10 Gbps × 9 ms
        start_ns: 0,
        cc: CongestionControl::FixedRate(10.0),
    }];
    let config = SimConfig {
        end_ns: 12_000_000,
        clock_error_ns: 0,
        seed: 3,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    let cfg = agent_config(2_000_000);
    let mut agent = HostAgent::new(0, cfg.clone());
    agent.ingest(&result.telemetry.tx_records);
    let reports = agent.finish();
    assert!(
        reports.len() >= 4,
        "a 9 ms flow must span several 2 ms periods (got {})",
        reports.len()
    );

    let mut analyzer = Analyzer::new(cfg.sketch.clone());
    analyzer.add_reports(reports);
    let curve = analyzer.flow_curve(0, 0).expect("flow measured");

    // The reconstructed curve must hold ~10 Gbps across the whole 9 ms
    // without dips at period boundaries.
    let window_ns = 8192.0;
    let active_windows = (9_000_000.0 / window_ns) as u64;
    let mut low_windows = 0;
    for w in 5..active_windows - 5 {
        let gbps = curve.at(w) * 8.0 / window_ns;
        if gbps < 5.0 {
            low_windows += 1;
        }
    }
    assert!(
        low_windows < active_windows / 50,
        "{low_windows} of {active_windows} windows dipped below half rate"
    );
    // Total volume is conserved across all periods.
    let total: f64 = (0..active_windows + 20).map(|w| curve.at(w)).sum();
    let sent = result.flows[0].sent_bytes as f64;
    assert!(
        (total - sent).abs() / sent < 0.02,
        "stitched total {total} vs sent {sent}"
    );
}

#[test]
fn reports_arrive_once_per_active_period() {
    // Two bursts separated by a quiet period: the quiet period produces no
    // report at all (upload cost tracks activity).
    let topo = Topology::dumbbell(1, 100.0, 1000);
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: 0,
            dst: 1,
            size_bytes: 100_000,
            start_ns: 0,
            cc: CongestionControl::Dcqcn,
        },
        FlowSpec {
            id: FlowId(1),
            src: 0,
            dst: 1,
            size_bytes: 100_000,
            start_ns: 5_000_000, // lands in period 2 (2 ms periods)
            cc: CongestionControl::Dcqcn,
        },
    ];
    let config = SimConfig {
        end_ns: 8_000_000,
        clock_error_ns: 0,
        seed: 4,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();
    let cfg = agent_config(2_000_000);
    let mut agent = HostAgent::new(0, cfg);
    agent.ingest(&result.telemetry.tx_records);
    let reports = agent.finish();
    let periods: Vec<u64> = reports.iter().map(|r| r.period).collect();
    assert_eq!(periods, vec![0, 2], "bursts land in periods 0 and 2 only");
}
