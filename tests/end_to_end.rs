//! End-to-end integration tests spanning the whole μMon pipeline:
//! simulator → host agents → switch agents → analyzer.

use std::collections::HashMap;
use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_repro::umon_metrics::{all_metrics, WorkloadAccuracy};
use umon_repro::umon_netsim::{
    CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology,
};
use umon_repro::umon_workloads::{incast_burst, WorkloadKind, WorkloadParams};

fn small_workload() -> (Vec<FlowSpec>, umon_repro::umon_netsim::SimResult) {
    let params = WorkloadParams {
        duration_ns: 5_000_000,
        ..WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 99)
    };
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: 8_000_000,
        seed: 99,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows.clone(), config).run();
    (flows, result)
}

#[test]
fn measured_curves_track_ground_truth() {
    let (_flows, result) = small_workload();
    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        analyzer.add_reports(agent.finish());
    }
    // Ground truth per (host, flow).
    let mut truth: HashMap<(usize, u64), HashMap<u64, f64>> = HashMap::new();
    for r in &result.telemetry.tx_records {
        *truth
            .entry((r.host, r.flow.0))
            .or_default()
            .entry(r.ts_ns >> 13)
            .or_insert(0.0) += r.bytes as f64;
    }
    let mut acc = WorkloadAccuracy::new();
    for ((host, flow), windows) in &truth {
        let start = *windows.keys().min().unwrap();
        let end = *windows.keys().max().unwrap() + 1;
        let t: Vec<f64> = (start..end)
            .map(|w| windows.get(&w).copied().unwrap_or(0.0))
            .collect();
        let curve = analyzer
            .flow_curve(*host, *flow)
            .expect("every flow must be queryable");
        let est: Vec<f64> = (start..end).map(|w| curve.at(w)).collect();
        acc.add(all_metrics(&t, &est));
    }
    let mean = acc.mean();
    // The paper's headline: <10% ARE and >90% energy similarity (§7.1).
    assert!(mean.are < 0.10, "mean ARE {} must be below 10%", mean.are);
    assert!(
        mean.energy > 0.90,
        "mean energy similarity {} must exceed 90%",
        mean.energy
    );
    assert!(mean.cosine > 0.90, "mean cosine {}", mean.cosine);
}

#[test]
fn incast_event_is_detected_and_replayed() {
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let flows = incast_burst(
        0,
        &[4, 5, 6, 7],
        0,
        512_000,
        1_000_000,
        0,
        0,
        CongestionControl::Dcqcn,
    );
    let host_of_flow: HashMap<u64, usize> = flows.iter().map(|f| (f.id.0, f.src)).collect();
    let config = SimConfig {
        end_ns: 5_000_000,
        seed: 5,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        analyzer.add_reports(agent.finish());
    }
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(
            switch,
            SwitchAgentConfig {
                sampling_shift: 2,
                ..Default::default()
            },
        );
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }

    // The 4:1 incast must produce a detected event covering several senders.
    let events = analyzer.cluster_events(50_000);
    assert!(!events.is_empty(), "the incast must be mirrored");
    let best = events.iter().max_by_key(|e| e.flows.len()).unwrap();
    assert!(
        best.flows.len() >= 3,
        "most incast flows must appear in the event (got {})",
        best.flows.len()
    );
    // Replay recovers curves for the involved flows.
    let (_windows, curves) =
        analyzer.replay_event(best, 100_000, 13, |f| host_of_flow.get(&f).copied());
    assert!(curves.len() >= 3);
    for (_, values) in &curves {
        assert!(
            values.iter().sum::<f64>() > 0.0,
            "replayed curves carry volume"
        );
    }
}

#[test]
fn recall_above_kmax_is_high_even_when_sampled() {
    let (_flows, result) = small_workload();
    let mut analyzer = Analyzer::new(HostAgentConfig::default().sketch);
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(
            switch,
            SwitchAgentConfig {
                sampling_shift: 6, // 1/64
                ..Default::default()
            },
        );
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }
    let stats = analyzer.match_episodes(&result.telemetry.episodes, 200 * 1024, u32::MAX, 10_000);
    if stats.episodes > 0 {
        assert!(
            stats.recall() >= 0.8,
            "recall above KMax must stay high at 1/64 sampling: {} of {}",
            stats.detected,
            stats.episodes
        );
    }
}

#[test]
fn byte_conservation_across_the_fabric() {
    let (_flows, result) = small_workload();
    let sent: u64 = result.flows.iter().map(|f| f.sent_bytes).sum();
    let delivered: u64 = result.flows.iter().map(|f| f.delivered_bytes).sum();
    assert_eq!(result.telemetry.injected_bytes, sent);
    assert_eq!(result.telemetry.delivered_bytes, delivered);
    // No retransmissions: sent − delivered = bytes dropped or still queued
    // at the hard stop; both are bounded by a tiny fraction of the traffic.
    let missing = sent - delivered;
    assert!(
        (missing as f64) < 0.05 * sent as f64,
        "{missing} of {sent} bytes unaccounted"
    );
}

#[test]
fn report_bandwidth_is_orders_below_mirroring() {
    let (_flows, result) = small_workload();
    let mut total_bps = 0.0;
    let mut total_packets = 0u64;
    for host in 0..16 {
        let mut agent = HostAgent::new(host, HostAgentConfig::default());
        agent.ingest(&result.telemetry.tx_records);
        total_packets += agent.packets;
        total_bps += HostAgent::report_bandwidth_bps(&agent.finish(), 5_000_000);
    }
    let mirror_bps = (total_packets * 64 * 8) as f64 / 0.005;
    assert!(
        total_bps < mirror_bps / 5.0,
        "WaveSketch ({:.1} Mbps) must be far cheaper than 64 B/pkt mirroring ({:.1} Mbps)",
        total_bps / 1e6,
        mirror_bps / 1e6
    );
}

#[test]
fn clock_offsets_stay_within_one_window() {
    let topo = Topology::dumbbell(1, 100.0, 1000);
    let flows = vec![FlowSpec {
        id: FlowId(0),
        src: 0,
        dst: 1,
        size_bytes: 100_000,
        start_ns: 0,
        cc: CongestionControl::Dcqcn,
    }];
    let config = SimConfig {
        clock_error_ns: 200,
        end_ns: 2_000_000,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();
    // §6.1: sync errors must not exceed two microsecond-level windows.
    for node in 0..4 {
        assert!(result.clocks.offset(node).abs() < 2 * 8192);
    }
}
