//! Reproducibility: every layer of the stack must be bit-deterministic in
//! its seed — the property that makes every figure regenerable.

use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_repro::umon_netsim::{SimConfig, Simulator, Topology};
use umon_repro::umon_workloads::{WorkloadKind, WorkloadParams};

fn pipeline(seed: u64) -> (usize, usize, Vec<(usize, u16, u64)>) {
    let params = WorkloadParams {
        duration_ns: 3_000_000,
        ..WorkloadParams::paper(WorkloadKind::Hadoop, 0.25, seed)
    };
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: 5_000_000,
        seed,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    let mut report_bytes = 0usize;
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        let reports = agent.finish();
        report_bytes += reports.iter().map(|r| r.wire_bytes()).sum::<usize>();
        analyzer.add_reports(reports);
    }
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, SwitchAgentConfig::default());
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }
    let events: Vec<(usize, u16, u64)> = analyzer
        .cluster_events(50_000)
        .into_iter()
        .map(|e| (e.switch, e.vlan, e.start_ns))
        .collect();
    (report_bytes, result.telemetry.tx_records.len(), events)
}

#[test]
fn same_seed_reproduces_everything() {
    let a = pipeline(77);
    let b = pipeline(77);
    assert_eq!(a.0, b.0, "report bytes must match");
    assert_eq!(a.1, b.1, "packet counts must match");
    assert_eq!(a.2, b.2, "detected events must match");
}

#[test]
fn different_seeds_differ() {
    let a = pipeline(77);
    let b = pipeline(78);
    // Different seed → different workload → different packet count with
    // overwhelming probability.
    assert_ne!(a.1, b.1);
}

mod scenario_generators {
    //! Property tests for the adversarial scenario layer: conservation,
    //! permutation validity, failure non-overlap and bit-identical reruns,
    //! swept over many seeds.

    use umon_repro::umon_netsim::{CongestionControl, Topology};
    use umon_repro::umon_workloads::{
        allreduce, failure_plan, incast_storm, scenario_matrix, AllreduceConfig, AllreducePattern,
        FailurePlanConfig, IncastStormConfig,
    };

    #[test]
    fn incast_storms_conserve_bytes_across_seeds() {
        for seed in 0..16 {
            let cfg = IncastStormConfig::paper(seed, CongestionControl::Dcqcn);
            let flows = incast_storm(0, &cfg);
            let total: u64 = flows.iter().map(|f| f.size_bytes).sum();
            assert_eq!(
                total,
                cfg.total_bytes(),
                "seed {seed}: storm bytes not conserved"
            );
            assert_eq!(flows.len(), cfg.rounds * cfg.fan_in);
            assert!(flows
                .iter()
                .all(|f| f.src != f.dst && f.src < 16 && f.dst < 16));
            // Dense, collision-free flow ids.
            for (i, f) in flows.iter().enumerate() {
                assert_eq!(f.id.0, i as u64, "seed {seed}: ids must be dense");
            }
        }
    }

    #[test]
    fn allreduce_steps_are_fixed_point_free_permutations_across_seeds() {
        for seed in 0..16 {
            for pattern in [AllreducePattern::Ring, AllreducePattern::ShiftPermutation] {
                let cfg = AllreduceConfig {
                    pattern,
                    ..AllreduceConfig::paper(seed, CongestionControl::Dctcp)
                };
                let flows = allreduce(0, &cfg);
                for step in 0..cfg.steps {
                    let sf = &flows[step * cfg.num_hosts..(step + 1) * cfg.num_hosts];
                    let mut dst_of = vec![None; cfg.num_hosts];
                    for f in sf {
                        assert_ne!(f.src, f.dst, "seed {seed} step {step}: fixed point");
                        assert!(
                            dst_of[f.src].replace(f.dst).is_none(),
                            "seed {seed} step {step}: host {} sends twice",
                            f.src
                        );
                    }
                    let hit: std::collections::BTreeSet<usize> =
                        dst_of.iter().map(|d| d.unwrap()).collect();
                    assert_eq!(
                        hit.len(),
                        cfg.num_hosts,
                        "seed {seed} step {step}: not a permutation"
                    );
                }
            }
        }
    }

    #[test]
    fn failure_plans_never_overlap_on_a_physical_link_across_seeds() {
        let topo = Topology::fat_tree(4, 100.0, 1000);
        for seed in 0..32 {
            let plan = failure_plan(&topo, &FailurePlanConfig::paper(seed));
            plan.validate(&topo)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Host access links are never failed.
            for ev in &plan.events {
                let (node, _) = ev.endpoint();
                assert!(!topo.is_host(node), "seed {seed}: failed a host link");
            }
        }
    }

    #[test]
    fn the_whole_matrix_reruns_bit_identically() {
        for smoke in [false, true] {
            let a = scenario_matrix(0xBEEF, smoke);
            let b = scenario_matrix(0xBEEF, smoke);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.flows, y.flows, "{}: flows differ across reruns", x.name);
                assert_eq!(
                    x.failures, y.failures,
                    "{}: failure schedule differs across reruns",
                    x.name
                );
                assert_eq!(x.end_ns, y.end_ns);
            }
        }
    }
}
