//! Reproducibility: every layer of the stack must be bit-deterministic in
//! its seed — the property that makes every figure regenerable.

use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_repro::umon_netsim::{SimConfig, Simulator, Topology};
use umon_repro::umon_workloads::{WorkloadKind, WorkloadParams};

fn pipeline(seed: u64) -> (usize, usize, Vec<(usize, u16, u64)>) {
    let params = WorkloadParams {
        duration_ns: 3_000_000,
        ..WorkloadParams::paper(WorkloadKind::Hadoop, 0.25, seed)
    };
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: 5_000_000,
        seed,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    let mut report_bytes = 0usize;
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        let reports = agent.finish();
        report_bytes += reports.iter().map(|r| r.wire_bytes()).sum::<usize>();
        analyzer.add_reports(reports);
    }
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, SwitchAgentConfig::default());
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }
    let events: Vec<(usize, u16, u64)> = analyzer
        .cluster_events(50_000)
        .into_iter()
        .map(|e| (e.switch, e.vlan, e.start_ns))
        .collect();
    (report_bytes, result.telemetry.tx_records.len(), events)
}

#[test]
fn same_seed_reproduces_everything() {
    let a = pipeline(77);
    let b = pipeline(77);
    assert_eq!(a.0, b.0, "report bytes must match");
    assert_eq!(a.1, b.1, "packet counts must match");
    assert_eq!(a.2, b.2, "detected events must match");
}

#[test]
fn different_seeds_differ() {
    let a = pipeline(77);
    let b = pipeline(78);
    // Different seed → different workload → different packet count with
    // overwhelming probability.
    assert_ne!(a.1, b.1);
}
