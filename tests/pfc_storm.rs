//! PFC-storm telemetry regression: a hand-built pause storm injected through
//! the failure layer must come back out of `umon::events::pause_storms`
//! with *exact* start/end boundaries, and loss-event victim sets must match
//! an independent recomputation from the raw trace (the trace oracle).
//!
//! Also pins the failure-injection trace format with a byte-identical golden
//! fixture (`tests/golden/failure_trace_dumbbell.csv`). Regenerate only for
//! an intentional format change: `UPDATE_FAILURE_GOLDEN=1 cargo test --test
//! pfc_storm`.

use std::collections::BTreeSet;

use umon::events::{loss_events, pause_storms};
use umon_netsim::telemetry::PauseRecord;
use umon_netsim::trace::{write_link_records, write_pause_records, write_tx_records};
use umon_netsim::{
    CongestionControl, FailureEvent, FailureSchedule, FlowId, FlowSpec, SimConfig, SimResult,
    Simulator, Topology,
};

const STORM_START: u64 = 100_000;
const STORM_CYCLES: u32 = 4;
const STORM_PAUSE: u64 = 20_000;
const STORM_GAP: u64 = 10_000;
/// Last XON: start + (cycles−1)·(pause+gap) + pause.
const STORM_END: u64 = STORM_START + 3 * (STORM_PAUSE + STORM_GAP) + STORM_PAUSE;

fn dumbbell_flows(n: u64, bytes: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: 0,
            dst: 1,
            size_bytes: bytes,
            start_ns: 10_000 + i * 5_000,
            cc: CongestionControl::FixedRate(20.0),
        })
        .collect()
}

fn run_with(failures: FailureSchedule, flows: Vec<FlowSpec>, deflect: bool) -> SimResult {
    let topo = Topology::dumbbell(1, 100.0, 1000);
    let config = SimConfig {
        end_ns: 20_000_000,
        clock_error_ns: 0,
        deflect_on_drop: deflect,
        failures,
        ..SimConfig::default()
    };
    Simulator::new(topo, flows, config).run()
}

fn storm_schedule() -> FailureSchedule {
    let mut failures = FailureSchedule::none();
    failures.events.push(FailureEvent::PauseStorm {
        node: 2,
        port: 1,
        start_ns: STORM_START,
        cycles: STORM_CYCLES,
        pause_ns: STORM_PAUSE,
        gap_ns: STORM_GAP,
    });
    failures
}

/// The injected records (self-triggered is the injection marker — organic
/// PFC is always triggered by a neighbor).
fn injected(records: &[PauseRecord]) -> Vec<PauseRecord> {
    records
        .iter()
        .filter(|p| p.triggered_by == p.node)
        .copied()
        .collect()
}

#[test]
fn injected_storm_extraction_matches_the_schedule_exactly() {
    let r = run_with(storm_schedule(), dumbbell_flows(2, 500_000), false);
    let inj = injected(&r.telemetry.pause_records);
    assert_eq!(inj.len(), 2 * STORM_CYCLES as usize, "XOFF+XON per cycle");

    // Clustering at a gap threshold ≥ the inter-cycle gap merges the storm
    // into one episode whose boundaries are the schedule's, exactly.
    let storms = pause_storms(&inj, STORM_GAP, 2);
    assert_eq!(storms.len(), 1);
    let s = &storms[0];
    assert_eq!((s.node, s.port), (2, 1));
    assert_eq!(
        s.start_ns, STORM_START,
        "first XOFF must be the scheduled start"
    );
    assert_eq!(s.end_ns, STORM_END, "last XON must be the scheduled end");
    assert_eq!(s.xoffs, STORM_CYCLES as usize);
    assert_eq!(s.paused_ns, STORM_CYCLES as u64 * STORM_PAUSE);

    // One nanosecond below the inter-cycle gap, every cycle is its own
    // episode with exact per-cycle boundaries.
    let cycles = pause_storms(&inj, STORM_GAP - 1, 1);
    assert_eq!(cycles.len(), STORM_CYCLES as usize);
    for (i, c) in cycles.iter().enumerate() {
        let start = STORM_START + i as u64 * (STORM_PAUSE + STORM_GAP);
        assert_eq!((c.start_ns, c.end_ns), (start, start + STORM_PAUSE));
        assert_eq!(c.xoffs, 1);
    }
}

/// Trace oracle: boundaries recomputed from the serialized pause trace —
/// no shared code with `pause_storms` — must agree with the extraction.
#[test]
fn storm_boundaries_agree_with_the_serialized_trace() {
    let r = run_with(storm_schedule(), dumbbell_flows(2, 500_000), false);
    let inj = injected(&r.telemetry.pause_records);
    let mut csv = Vec::new();
    write_pause_records(&mut csv, &inj).unwrap();
    let text = String::from_utf8(csv).unwrap();

    // Independent recomputation: scan `pause,node,port,trigger,ts,on` lines.
    let mut first_xoff = u64::MAX;
    let mut last_xon = 0u64;
    let mut xoffs = 0usize;
    for line in text.lines() {
        let f: Vec<&str> = line.split(',').collect();
        assert_eq!(f[0], "pause");
        assert_eq!((f[1], f[2]), ("2", "1"));
        let ts: u64 = f[4].parse().unwrap();
        match f[5] {
            "1" => {
                first_xoff = first_xoff.min(ts);
                xoffs += 1;
            }
            "0" => last_xon = last_xon.max(ts),
            other => panic!("bad on/off field {other}"),
        }
    }
    let storms = pause_storms(&inj, STORM_GAP, 2);
    assert_eq!(storms.len(), 1);
    assert_eq!(storms[0].start_ns, first_xoff);
    assert_eq!(storms[0].end_ns, last_xon);
    assert_eq!(storms[0].xoffs, xoffs);
}

/// Victim accounting: a link flap under deflect-on-drop produces loss events
/// whose distinct-flow sets equal an independent recomputation from the raw
/// drop records, and every active flow is a victim.
#[test]
fn flap_loss_events_count_distinct_victims_exactly() {
    let mut failures = FailureSchedule::none();
    failures.events.push(FailureEvent::LinkFlap {
        node: 2,
        port: 1,
        down_ns: 100_000,
        up_ns: 600_000,
    });
    let r = run_with(failures, dumbbell_flows(4, 800_000), true);
    assert!(r.telemetry.link_losses > 0, "flap must lose packets");

    let events = loss_events(&r.telemetry.drop_records, 10_000);
    assert!(!events.is_empty(), "drops must cluster into events");
    for e in &events {
        assert!(
            e.start_ns >= 100_000 && e.end_ns < 600_000,
            "losses confined to the outage"
        );
        // Trace oracle: distinct flows dropped at this port inside the
        // event's span, recomputed from the raw records.
        let truth: BTreeSet<u64> = r
            .telemetry
            .drop_records
            .iter()
            .filter(|d| {
                (d.switch, d.port) == (e.switch, e.port)
                    && (e.start_ns..=e.end_ns).contains(&d.ts_ns)
            })
            .map(|d| d.flow.0)
            .collect();
        let got: BTreeSet<u64> = e.victims.iter().copied().collect();
        assert_eq!(got, truth, "victim set must match the trace oracle");
        assert_eq!(e.victims.len(), got.len(), "victims must be distinct");
    }
    // With four 20 Gbps flows crowding a 500 μs outage, all four lose.
    let all_victims: BTreeSet<u64> = events.iter().flat_map(|e| e.victims.clone()).collect();
    assert_eq!(all_victims, (0..4).collect());
}

/// The failure-injection trace is frozen byte-for-byte: a seeded dumbbell
/// run with one flap and one storm must serialize (tx + pause + link
/// records) to exactly the committed fixture. This is the determinism proof
/// for the failure layer — any change to event ordering, loss accounting or
/// trace formatting shows up as a byte diff here.
#[test]
fn failure_trace_fixture_is_byte_identical() {
    let mut failures = FailureSchedule::none();
    failures.events.push(FailureEvent::LinkFlap {
        node: 2,
        port: 1,
        down_ns: 100_000,
        up_ns: 250_000,
    });
    failures.events.push(FailureEvent::PauseStorm {
        node: 2,
        port: 1,
        start_ns: 400_000,
        cycles: 3,
        pause_ns: 20_000,
        gap_ns: 10_000,
    });
    let r = run_with(failures, dumbbell_flows(2, 100_000), true);

    let mut fresh = Vec::new();
    write_tx_records(&mut fresh, &r.telemetry.tx_records).unwrap();
    write_pause_records(&mut fresh, &r.telemetry.pause_records).unwrap();
    write_link_records(&mut fresh, &r.telemetry.link_records).unwrap();
    assert!(!fresh.is_empty());

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/failure_trace_dumbbell.csv");
    if std::env::var_os("UPDATE_FAILURE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).unwrap();
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert!(
        fresh == committed,
        "failure trace diverged from the golden fixture ({} vs {} bytes); \
         if intentional, regenerate with UPDATE_FAILURE_GOLDEN=1",
        fresh.len(),
        committed.len()
    );
}
