//! OmniWindow-Avg: sub-window averaging (§7.1 Baseline).
//!
//! Each Count-Min bucket divides the measurement period into `m` coarse
//! sub-windows; because memory is limited, each sub-window is much wider
//! than a microsecond window. A queried microsecond window reports its
//! sub-window's average — the per-sub-window byte count spread uniformly
//! over the microsecond windows it covers.

use crate::traits::CurveSketch;
use wavesketch::basic::WindowSeries;
use wavesketch::FlowKey;

/// OmniWindow-Avg configuration and state.
pub struct OmniWindowAvg {
    rows: usize,
    width: usize,
    /// Sub-windows per bucket.
    pub sub_windows: usize,
    /// First absolute window of the measurement period.
    period_start: u64,
    /// Period length in microsecond windows.
    period_windows: usize,
    seed: u64,
    /// `cells[row*width + col][sub]` = bytes.
    cells: Vec<Vec<i64>>,
}

impl OmniWindowAvg {
    /// Creates a sketch with `rows × width` buckets of `sub_windows`
    /// counters covering `[period_start, period_start + period_windows)`.
    pub fn new(
        rows: usize,
        width: usize,
        sub_windows: usize,
        period_start: u64,
        period_windows: usize,
        seed: u64,
    ) -> Self {
        assert!(sub_windows > 0 && period_windows >= sub_windows);
        Self {
            rows,
            width,
            sub_windows,
            period_start,
            period_windows,
            seed,
            cells: vec![vec![0; sub_windows]; rows * width],
        }
    }

    /// Microsecond windows per sub-window (ceiling).
    pub fn windows_per_sub(&self) -> usize {
        self.period_windows.div_ceil(self.sub_windows)
    }

    fn sub_of(&self, window: u64) -> Option<usize> {
        if window < self.period_start {
            return None;
        }
        let off = (window - self.period_start) as usize;
        if off >= self.period_windows {
            return None;
        }
        Some((off / self.windows_per_sub()).min(self.sub_windows - 1))
    }

    fn bucket_series(&self, idx: usize) -> WindowSeries {
        let per = self.windows_per_sub();
        let mut values = Vec::with_capacity(self.period_windows);
        for off in 0..self.period_windows {
            let sub = (off / per).min(self.sub_windows - 1);
            // Actual windows this sub-window covers (the last may be short).
            let covered = per.min(self.period_windows - (off / per) * per);
            values.push(self.cells[idx][sub] as f64 / covered.max(1) as f64);
        }
        WindowSeries {
            start_window: self.period_start,
            values,
        }
    }
}

impl CurveSketch for OmniWindowAvg {
    fn name(&self) -> &'static str {
        "OmniWindow-Avg"
    }

    fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        let Some(sub) = self.sub_of(window) else {
            return; // outside the measurement period
        };
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            self.cells[row * self.width + col][sub] += value;
        }
    }

    fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let mut best: Option<WindowSeries> = None;
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            let idx = row * self.width + col;
            if self.cells[idx].iter().all(|&c| c == 0) {
                continue;
            }
            let series = self.bucket_series(idx);
            let replace = match &best {
                None => true,
                Some(b) => series.total() < b.total(),
            };
            if replace {
                best = Some(series);
            }
        }
        best
    }

    fn memory_bytes(&self) -> usize {
        // 4 bytes per sub-window counter.
        self.rows * self.width * self.sub_windows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(subs: usize) -> OmniWindowAvg {
        OmniWindowAvg::new(2, 16, subs, 0, 64, 7)
    }

    #[test]
    fn averages_within_sub_windows() {
        let mut s = sketch(8); // 64 windows / 8 subs = 8 windows per sub
        let f = FlowKey::from_id(1);
        s.update(&f, 0, 800);
        let curve = s.query(&f).unwrap();
        // 800 bytes spread over windows 0..8.
        for w in 0..8 {
            assert!((curve.at(w) - 100.0).abs() < 1e-9);
        }
        assert_eq!(curve.at(8), 0.0);
    }

    #[test]
    fn preserves_totals() {
        let mut s = sketch(4);
        let f = FlowKey::from_id(2);
        s.update(&f, 5, 300);
        s.update(&f, 40, 700);
        assert!((s.query(&f).unwrap().total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn loses_subwindow_scale_bursts() {
        // The failure mode Figure 13 shows: a 1-window spike is flattened.
        let mut s = sketch(4); // 16 windows per sub
        let f = FlowKey::from_id(3);
        s.update(&f, 20, 16_000);
        let curve = s.query(&f).unwrap();
        assert!(
            (curve.at(20) - 1000.0).abs() < 1e-9,
            "spike flattened to the average"
        );
    }

    #[test]
    fn ignores_out_of_period_updates() {
        let mut s = OmniWindowAvg::new(1, 4, 4, 100, 64, 1);
        let f = FlowKey::from_id(4);
        s.update(&f, 99, 500); // before period
        s.update(&f, 200, 500); // after period
        assert!(s.query(&f).is_none());
    }

    #[test]
    fn memory_scales_with_sub_windows() {
        assert_eq!(sketch(8).memory_bytes(), 2 * 16 * 8 * 4);
        assert!(sketch(16).memory_bytes() > sketch(8).memory_bytes());
    }

    #[test]
    fn unseen_flow_is_none() {
        let s = sketch(8);
        assert!(s.query(&FlowKey::from_id(9)).is_none());
    }
}
