//! A self-contained radix-2 iterative FFT over `f64` complex numbers —
//! enough for the Fourier top-k baseline; no external crate needed
//! (DESIGN.md §5 dependency policy).

/// A complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Builds `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative Cooley–Tukey FFT. `inverse` applies the conjugate
/// transform and the `1/n` scaling.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= scale;
            x.im *= scale;
        }
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len().max(1).next_power_of_two();
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    data.resize(n, Complex::default());
    fft(&mut data, false);
    data
}

/// Keeps the `k` largest-magnitude coefficients (zeroing the rest) and
/// returns the inverse transform's real part. Hermitian pairs are counted
/// individually, matching a storage budget of `k` complex values.
pub fn topk_reconstruct(signal: &[f64], k: usize) -> Vec<f64> {
    let mut spec = fft_real(signal);
    let mut order: Vec<usize> = (0..spec.len()).collect();
    order.sort_by(|&a, &b| {
        spec[b]
            .norm_sq()
            .partial_cmp(&spec[a].norm_sq())
            .expect("no NaNs in spectrum")
    });
    let keep: std::collections::HashSet<usize> = order.into_iter().take(k).collect();
    for (i, c) in spec.iter_mut().enumerate() {
        if !keep.contains(&i) {
            *c = Complex::default();
        }
    }
    fft(&mut spec, true);
    spec.truncate(signal.len().max(1).next_power_of_two());
    spec.into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let signal = [3.0, 1.0, -2.0, 7.5, 0.0, 0.0, 4.0, 4.0];
        let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&mut data, false);
        fft(&mut data, true);
        let back: Vec<f64> = data.iter().map(|c| c.re).collect();
        assert_close(&back, &signal, 1e-9);
    }

    #[test]
    fn dc_component_is_the_sum() {
        let spec = fft_real(&[1.0, 2.0, 3.0, 4.0]);
        assert!((spec[0].re - 10.0).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-12);
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin_pair() {
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        let energy: f64 = spec.iter().map(Complex::norm_sq).sum();
        let bin = spec[4].norm_sq() + spec[n - 4].norm_sq();
        assert!(bin / energy > 0.99, "tone energy must sit in bins ±4");
    }

    #[test]
    fn full_k_reconstruction_is_lossless() {
        let signal = [5.0, 0.0, 2.0, 9.0, 1.0, 1.0, 0.0, 3.0];
        let rec = topk_reconstruct(&signal, 8);
        assert_close(&rec, &signal, 1e-9);
    }

    #[test]
    fn small_k_keeps_the_dominant_structure() {
        // DC + one strong tone; k=3 (DC + pair) reconstructs it nearly
        // exactly, discarding weak noise bins.
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                10.0 + 5.0 * (2.0 * std::f64::consts::PI * 8.0 * i as f64 / n as f64).cos()
                    + 0.01 * ((i * 37 % 11) as f64)
            })
            .collect();
        let rec = topk_reconstruct(&signal, 3);
        for (i, (&x, &y)) in signal.iter().zip(&rec).enumerate() {
            assert!((x - y).abs() < 0.2, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn non_pow2_signals_are_padded() {
        let rec = topk_reconstruct(&[1.0, 2.0, 3.0], 4);
        assert_eq!(rec.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::default(); 3];
        fft(&mut data, false);
    }
}
