//! Fourier top-k baseline (§7.1): per bucket, transform the window-counter
//! series with a DFT and keep only the `k` largest-magnitude frequency
//! coefficients. The spectrum is global, so localized microsecond bursts
//! smear — the weakness WaveSketch's multi-resolution analysis avoids.

use crate::fft::topk_reconstruct;
use crate::traits::CurveSketch;
use wavesketch::basic::WindowSeries;
use wavesketch::FlowKey;

/// The Fourier top-k sketch. Buckets buffer their window series densely (a
/// CPU-side baseline — the paper notes only WaveSketch and OmniWindow-Avg
/// suit the data plane); its *accounted* memory is the `k` complex
/// coefficients plus indices a deployment would keep and upload.
pub struct FourierSketch {
    rows: usize,
    width: usize,
    /// Retained coefficients per bucket.
    pub topk: usize,
    period_start: u64,
    period_windows: usize,
    seed: u64,
    /// Dense per-bucket counters (internal buffering only).
    cells: Vec<Vec<i64>>,
}

impl FourierSketch {
    /// Creates a sketch of `rows × width` buckets keeping `topk`
    /// coefficients each, covering the given measurement period.
    pub fn new(
        rows: usize,
        width: usize,
        topk: usize,
        period_start: u64,
        period_windows: usize,
        seed: u64,
    ) -> Self {
        assert!(topk > 0);
        Self {
            rows,
            width,
            topk,
            period_start,
            period_windows,
            seed,
            cells: vec![Vec::new(); rows * width],
        }
    }
}

impl CurveSketch for FourierSketch {
    fn name(&self) -> &'static str {
        "Fourier"
    }

    fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        if window < self.period_start {
            return;
        }
        let off = (window - self.period_start) as usize;
        if off >= self.period_windows {
            return;
        }
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            let cell = &mut self.cells[row * self.width + col];
            if cell.len() <= off {
                cell.resize(off + 1, 0);
            }
            cell[off] += value;
        }
    }

    fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let mut best: Option<WindowSeries> = None;
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            let cell = &self.cells[row * self.width + col];
            if cell.is_empty() {
                continue;
            }
            let signal: Vec<f64> = cell.iter().map(|&c| c as f64).collect();
            let mut rec = topk_reconstruct(&signal, self.topk);
            for v in &mut rec {
                if *v < 0.0 {
                    *v = 0.0; // counts cannot be negative
                }
            }
            let series = WindowSeries {
                start_window: self.period_start,
                values: rec,
            };
            let replace = match &best {
                None => true,
                Some(b) => series.total() < b.total(),
            };
            if replace {
                best = Some(series);
            }
        }
        best
    }

    fn memory_bytes(&self) -> usize {
        // 8 B complex value + 2 B frequency index per retained coefficient.
        self.rows * self.width * self.topk * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spectrum_reconstructs_exactly() {
        let mut s = FourierSketch::new(2, 16, 64, 0, 64, 3);
        let f = FlowKey::from_id(1);
        for (w, v) in [(0u64, 500i64), (3, 700), (10, 100)] {
            s.update(&f, w, v);
        }
        let curve = s.query(&f).unwrap();
        assert!((curve.at(0) - 500.0).abs() < 1e-6);
        assert!((curve.at(3) - 700.0).abs() < 1e-6);
        assert!((curve.at(10) - 100.0).abs() < 1e-6);
        assert!(curve.at(5) < 1e-6);
    }

    #[test]
    fn tiny_k_smears_local_bursts() {
        // A single-window spike needs many frequency bins; k=2 must smear it.
        let mut s = FourierSketch::new(1, 4, 2, 0, 64, 3);
        let f = FlowKey::from_id(1);
        s.update(&f, 20, 64_000);
        let curve = s.query(&f).unwrap();
        assert!(
            curve.at(20) < 64_000.0 * 0.5,
            "spike must lose energy: {}",
            curve.at(20)
        );
    }

    #[test]
    fn dc_energy_is_preserved_with_k1() {
        // k=1 keeps the DC bin → totals survive (before clamping effects).
        let mut s = FourierSketch::new(1, 4, 1, 0, 64, 3);
        let f = FlowKey::from_id(1);
        s.update(&f, 0, 1000);
        s.update(&f, 32, 1000);
        let curve = s.query(&f).unwrap();
        // The DC reconstruction spreads 2000 over the padded length.
        assert!((curve.total() - 2000.0).abs() < 1.0);
    }

    #[test]
    fn out_of_period_updates_ignored() {
        let mut s = FourierSketch::new(1, 4, 4, 100, 32, 3);
        let f = FlowKey::from_id(1);
        s.update(&f, 99, 100);
        s.update(&f, 200, 100);
        assert!(s.query(&f).is_none());
    }

    #[test]
    fn memory_accounting_uses_k_not_buffer() {
        let s = FourierSketch::new(2, 8, 16, 0, 4096, 3);
        assert_eq!(s.memory_bytes(), 2 * 8 * 16 * 10);
    }
}
