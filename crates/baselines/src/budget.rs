//! Memory budgeting: converts a total sketch memory budget into the
//! per-scheme knob so the accuracy figures sweep all schemes at equal
//! memory (the x-axis of Figures 11, 12).

use crate::{CurveSketch, FourierSketch, OmniWindowAvg, PersistCms};
use wavesketch::{BasicWaveSketch, SelectorKind, SketchConfig};

/// Common layout parameters shared by every scheme in a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepLayout {
    /// Hash rows `d`.
    pub rows: usize,
    /// Buckets per row `w`.
    pub width: usize,
    /// First absolute window of the measurement period.
    pub period_start: u64,
    /// Period length in microsecond windows.
    pub period_windows: usize,
    /// Wavelet depth for WaveSketch.
    pub levels: u32,
    /// Hash seed.
    pub seed: u64,
}

impl SweepLayout {
    /// The paper's layout: d=3, w=256, L=8 over a 20 ms period of 8.192 μs
    /// windows (§7.1 Parameter Setting).
    pub fn paper(period_start: u64, period_windows: usize) -> Self {
        Self {
            rows: 3,
            width: 256,
            period_start,
            period_windows,
            levels: 8,
            seed: 0xABCD,
        }
    }

    fn buckets(&self) -> usize {
        self.rows * self.width
    }

    /// Per-bucket byte budget for `total_bytes` of sketch memory.
    pub fn per_bucket_bytes(&self, total_bytes: usize) -> usize {
        total_bytes / self.buckets()
    }

    /// Builds a WaveSketch whose `K` fits the byte budget
    /// (`fixed + 4·approx_len + 6·K ≤ per-bucket bytes`).
    pub fn wavesketch(&self, total_bytes: usize, selector: SelectorKind) -> BasicWaveSketch {
        let per = self.per_bucket_bytes(total_bytes);
        let max_windows = self.period_windows.next_power_of_two();
        let approx_len = max_windows.div_ceil(1 << self.levels);
        let fixed = 10 + 6 * self.levels as usize;
        let k = per.saturating_sub(fixed + 4 * approx_len) / 6;
        let config = SketchConfig::builder()
            .rows(self.rows)
            .width(self.width)
            .levels(self.levels)
            // Floor of 2: the hardware selector needs one slot per parity.
            .topk(k.max(2))
            .max_windows(max_windows)
            .selector(selector)
            .seed(self.seed)
            .build();
        BasicWaveSketch::new(config)
    }

    /// Builds an OmniWindow-Avg with `m = per-bucket bytes / 4` sub-windows.
    pub fn omniwindow(&self, total_bytes: usize) -> OmniWindowAvg {
        let m = (self.per_bucket_bytes(total_bytes) / 4).clamp(1, self.period_windows);
        OmniWindowAvg::new(
            self.rows,
            self.width,
            m,
            self.period_start,
            self.period_windows,
            self.seed,
        )
    }

    /// Builds a Fourier sketch with `k = per-bucket bytes / 10` coefficients.
    pub fn fourier(&self, total_bytes: usize) -> FourierSketch {
        let k = (self.per_bucket_bytes(total_bytes) / 10).max(1);
        FourierSketch::new(
            self.rows,
            self.width,
            k,
            self.period_start,
            self.period_windows,
            self.seed,
        )
    }

    /// Builds a Persist-CMS with `knots = per-bucket bytes / 8`.
    pub fn persist_cms(&self, total_bytes: usize) -> PersistCms {
        let knots = (self.per_bucket_bytes(total_bytes) / 8).max(3);
        PersistCms::new(
            self.rows,
            self.width,
            knots,
            self.period_start,
            self.period_windows,
            self.seed,
        )
    }

    /// All four schemes at the same budget, boxed for uniform sweeping.
    pub fn all_schemes(&self, total_bytes: usize) -> Vec<Box<dyn CurveSketch>> {
        vec![
            Box::new(self.wavesketch(total_bytes, SelectorKind::Ideal)),
            Box::new(self.omniwindow(total_bytes)),
            Box::new(self.fourier(total_bytes)),
            Box::new(self.persist_cms(total_bytes)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SweepLayout {
        SweepLayout::paper(0, 2442)
    }

    #[test]
    fn all_schemes_land_close_to_the_budget() {
        let budget = 500 * 1024;
        for scheme in layout().all_schemes(budget) {
            let used = scheme.memory_bytes();
            assert!(
                used <= budget + budget / 5,
                "{} uses {used} of {budget}",
                scheme.name()
            );
            assert!(
                used >= budget / 4,
                "{} wastes the budget: {used} of {budget}",
                scheme.name()
            );
        }
    }

    #[test]
    fn bigger_budget_means_bigger_knobs() {
        let l = layout();
        assert!(l.omniwindow(1 << 20).sub_windows > l.omniwindow(1 << 18).sub_windows);
        assert!(l.fourier(1 << 20).topk > l.fourier(1 << 18).topk);
        assert!(l.persist_cms(1 << 20).knots > l.persist_cms(1 << 18).knots);
    }

    #[test]
    fn omniwindow_never_exceeds_native_resolution() {
        // A huge budget caps m at one sub-window per microsecond window.
        let l = layout();
        assert_eq!(l.omniwindow(1 << 30).sub_windows, 2442);
    }

    #[test]
    fn wavesketch_k_grows_with_budget() {
        let l = layout();
        let small = l.wavesketch(200 * 1024, SelectorKind::Ideal);
        let big = l.wavesketch(1600 * 1024, SelectorKind::Ideal);
        assert!(big.config().topk > small.config().topk);
    }
}
