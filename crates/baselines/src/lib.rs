#![warn(missing_docs)]

//! # umon-baselines — counter-series compressors μMon compares against
//!
//! The three baselines of §7.1, all exposed behind one [`CurveSketch`] trait
//! so the accuracy harness (Figures 11, 12, 17, 18) treats every scheme —
//! including WaveSketch itself — uniformly:
//!
//! * [`OmniWindowAvg`] — sub-window averaging: each bucket splits the
//!   measurement period into `m` coarse sub-windows and reports each
//!   microsecond window as its sub-window average. Data-plane friendly.
//! * [`FourierSketch`] — per-bucket DFT keeping the `k` largest-magnitude
//!   frequency coefficients (our own radix-2 FFT in [`fft`]).
//! * [`PersistCms`] — a persistent Count-Min: each cell tracks the
//!   cumulative count over time compressed as a bounded piecewise-linear
//!   curve; window rates are slope differences.
//!
//! [`budget`] converts a total memory budget into the per-scheme knob
//! (sub-window count, coefficient count, knot count, or WaveSketch `K`).
//!
//! ```
//! use umon_baselines::budget::SweepLayout;
//! use umon_baselines::CurveSketch;
//! use wavesketch::FlowKey;
//!
//! // Every scheme at a 400 kB budget over a 2442-window period.
//! let layout = SweepLayout::paper(0, 2442);
//! for mut scheme in layout.all_schemes(400 * 1024) {
//!     let flow = FlowKey::from_id(1);
//!     scheme.update(&flow, 100, 1500);
//!     let curve = scheme.query(&flow).expect("recorded");
//!     assert!(curve.total() >= 1500.0 - 1e-6, "{}", scheme.name());
//! }
//! ```

pub mod budget;
pub mod fft;
mod fourier;
mod omniwindow;
mod persist;
mod traits;

pub use fourier::FourierSketch;
pub use omniwindow::OmniWindowAvg;
pub use persist::PersistCms;
pub use traits::CurveSketch;
