//! The common interface of all curve-measurement schemes.

use wavesketch::basic::WindowSeries;
use wavesketch::{BasicWaveSketch, FlowKey, FullWaveSketch};

/// A scheme that measures per-flow rate curves at microsecond windows.
///
/// Implemented by the three baselines and by both WaveSketch versions so the
/// accuracy harness can sweep them uniformly.
pub trait CurveSketch {
    /// Scheme name for reports and figure legends.
    fn name(&self) -> &'static str;

    /// Records `value` bytes for `flow` at absolute window `window`.
    fn update(&mut self, flow: &FlowKey, window: u64, value: i64);

    /// The reconstructed rate curve of `flow` (`None` if never seen).
    fn query(&self, flow: &FlowKey) -> Option<WindowSeries>;

    /// In-dataplane / upload memory of the scheme in bytes.
    fn memory_bytes(&self) -> usize;
}

impl CurveSketch for BasicWaveSketch {
    fn name(&self) -> &'static str {
        "WaveSketch"
    }

    fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        BasicWaveSketch::update(self, flow, window, value);
    }

    fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        BasicWaveSketch::query(self, flow)
    }

    fn memory_bytes(&self) -> usize {
        BasicWaveSketch::memory_bytes(self)
    }
}

impl CurveSketch for FullWaveSketch {
    fn name(&self) -> &'static str {
        "WaveSketch-Full"
    }

    fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        FullWaveSketch::update(self, flow, window, value);
    }

    fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        FullWaveSketch::query(self, flow)
    }

    fn memory_bytes(&self) -> usize {
        FullWaveSketch::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesketch::SketchConfig;

    #[test]
    fn wavesketch_implements_the_trait() {
        let config = SketchConfig::builder()
            .rows(2)
            .width(16)
            .levels(4)
            .topk(32)
            .max_windows(64)
            .build();
        let mut s: Box<dyn CurveSketch> = Box::new(BasicWaveSketch::new(config));
        let f = FlowKey::from_id(1);
        s.update(&f, 3, 700);
        let curve = s.query(&f).unwrap();
        assert_eq!(curve.at(3), 700.0);
        assert_eq!(s.name(), "WaveSketch");
        assert!(s.memory_bytes() > 0);
    }
}
