//! Persist-CMS baseline (§7.1): a persistent Count-Min sketch in the style
//! of persistent data sketches — each cell keeps the *cumulative* count as a
//! function of time, compressed to a bounded piecewise-linear curve, and a
//! window's rate is the difference of the interpolated cumulative values at
//! its edges.
//!
//! The original uses a *one-pass* online piecewise-linear approximation; we
//! implement the bounded-knot one-pass variant: each cell stores at most
//! `knots` turning points `(window, cumulative)` appended greedily (with
//! collinear extension). Once the budget is exhausted the cell can no longer
//! record turning points — the final segment simply extends to the current
//! cumulative total, exactly the degradation a single-pass bounded-memory
//! PLA suffers on bursty data (no retrospective knot optimization is
//! possible in a stream).

use crate::traits::CurveSketch;
use wavesketch::basic::WindowSeries;
use wavesketch::FlowKey;

/// One cell: a monotone piecewise-linear cumulative curve.
#[derive(Debug, Clone, Default)]
struct PlaCell {
    /// Turning points `(window_offset, cumulative_bytes_after_window)`.
    knots: Vec<(u32, f64)>,
    /// Offset of the window currently accumulating.
    cur_window: Option<u32>,
    /// Cumulative total including the current window.
    cum: f64,
}

impl PlaCell {
    /// Adds `value` at window offset `off` (offsets non-decreasing).
    fn update(&mut self, off: u32, value: i64, budget: usize) {
        match self.cur_window {
            None => {
                // Anchor the curve just before the first active window.
                self.knots.push((off, 0.0));
                self.cur_window = Some(off);
            }
            Some(cur) if off > cur => {
                // Close the finished window with a knot at its right edge.
                self.push_knot(cur + 1, self.cum, budget);
                self.cur_window = Some(off);
                // If there was a gap, pin the curve flat across it.
                if off > cur + 1 {
                    self.push_knot(off, self.cum, budget);
                }
            }
            _ => {}
        }
        self.cum += value as f64;
    }

    fn push_knot(&mut self, w: u32, cum: f64, budget: usize) {
        // Collinear with the previous segment? Extend instead of adding.
        if self.knots.len() >= 2 {
            let (x1, y1) = self.knots[self.knots.len() - 2];
            let (x2, y2) = self.knots[self.knots.len() - 1];
            let slope_prev = (y2 - y1) / f64::max((x2 - x1) as f64, 1e-12);
            let slope_new = (cum - y2) / f64::max((w - x2) as f64, 1e-12);
            if (slope_prev - slope_new).abs() < 1e-9 {
                *self.knots.last_mut().expect("non-empty") = (w, cum);
                return;
            }
        }
        if self.knots.len() >= budget {
            // One-pass PLA out of budget: no further turning points can be
            // recorded; the final segment will extend to the running total.
            return;
        }
        self.knots.push((w, cum));
    }

    fn is_empty(&self) -> bool {
        self.cur_window.is_none()
    }

    /// Reconstructed per-window byte counts over `[0, len)`.
    ///
    /// Single pass over the segments: the rate inside a segment is its
    /// slope, so each window's count is the cumulative difference across
    /// its edges — computed by walking the knot list once, O(len + knots).
    fn series(&self, len: usize) -> Vec<f64> {
        let mut pts = self.knots.clone();
        if let Some(cur) = self.cur_window {
            pts.push((cur + 1, self.cum));
        }
        let mut out = Vec::with_capacity(len);
        if pts.is_empty() {
            out.resize(len, 0.0);
            return out;
        }
        let cum_at = |pts: &[(u32, f64)], seg: &mut usize, w: f64| -> f64 {
            while *seg + 1 < pts.len() && (pts[*seg + 1].0 as f64) < w {
                *seg += 1;
            }
            if w <= pts[0].0 as f64 {
                return pts[0].1;
            }
            if *seg + 1 >= pts.len() {
                return pts[pts.len() - 1].1;
            }
            let (x0, y0) = pts[*seg];
            let (x1, y1) = pts[*seg + 1];
            if w >= x1 as f64 {
                return y1;
            }
            let frac = (w - x0 as f64) / f64::max((x1 - x0) as f64, 1e-12);
            y0 + frac * (y1 - y0)
        };
        let mut seg = 0usize;
        let mut prev = cum_at(&pts, &mut seg, 0.0);
        for w in 0..len {
            let next = cum_at(&pts, &mut seg, w as f64 + 1.0);
            out.push((next - prev).max(0.0));
            prev = next;
        }
        out
    }
}

/// The persistent Count-Min sketch.
pub struct PersistCms {
    rows: usize,
    width: usize,
    /// Knot budget per cell.
    pub knots: usize,
    period_start: u64,
    period_windows: usize,
    seed: u64,
    cells: Vec<PlaCell>,
}

impl PersistCms {
    /// Creates a sketch of `rows × width` cells with `knots` turning points
    /// each over the given measurement period.
    pub fn new(
        rows: usize,
        width: usize,
        knots: usize,
        period_start: u64,
        period_windows: usize,
        seed: u64,
    ) -> Self {
        assert!(knots >= 3, "need at least 3 knots for a useful PLA");
        Self {
            rows,
            width,
            knots,
            period_start,
            period_windows,
            seed,
            cells: vec![PlaCell::default(); rows * width],
        }
    }
}

impl CurveSketch for PersistCms {
    fn name(&self) -> &'static str {
        "Persist-CMS"
    }

    fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        if window < self.period_start {
            return;
        }
        let off = (window - self.period_start) as usize;
        if off >= self.period_windows {
            return;
        }
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            self.cells[row * self.width + col].update(off as u32, value, self.knots);
        }
    }

    fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let mut best: Option<WindowSeries> = None;
        for row in 0..self.rows {
            let col = (flow.hash(row as u64, self.seed) % self.width as u64) as usize;
            let cell = &self.cells[row * self.width + col];
            if cell.is_empty() {
                continue;
            }
            let series = WindowSeries {
                start_window: self.period_start,
                values: cell.series(self.period_windows),
            };
            let replace = match &best {
                None => true,
                Some(b) => series.total() < b.total(),
            };
            if replace {
                best = Some(series);
            }
        }
        best
    }

    fn memory_bytes(&self) -> usize {
        // 4 B window + 4 B cumulative value per knot.
        self.rows * self.width * self.knots * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_flow_is_exact_with_few_knots() {
        // A perfectly linear cumulative curve needs only two knots.
        let mut s = PersistCms::new(1, 4, 4, 0, 64, 3);
        let f = FlowKey::from_id(1);
        for w in 0..64 {
            s.update(&f, w, 1000);
        }
        let curve = s.query(&f).unwrap();
        for w in 0..64u64 {
            assert!(
                (curve.at(w) - 1000.0).abs() < 1.0,
                "window {w}: {}",
                curve.at(w)
            );
        }
    }

    #[test]
    fn totals_are_preserved() {
        let mut s = PersistCms::new(2, 8, 6, 0, 128, 3);
        let f = FlowKey::from_id(2);
        let mut total = 0i64;
        for w in (0..128).step_by(3) {
            let v = 100 + (w as i64 % 17) * 10;
            s.update(&f, w, v);
            total += v;
        }
        let est = s.query(&f).unwrap().total();
        assert!(
            (est - total as f64).abs() / (total as f64) < 0.02,
            "est {est} vs {total}"
        );
    }

    #[test]
    fn small_budget_smooths_rate_changes() {
        // Square-wave rate alternating every 8 windows: 8 edges need ~9
        // knots to track exactly; with a 4-knot budget the off-periods must
        // leak volume somewhere.
        let mut s = PersistCms::new(1, 4, 4, 0, 64, 3);
        let f = FlowKey::from_id(3);
        for w in 0..64u64 {
            if (w / 8) % 2 == 0 {
                s.update(&f, w, 2000);
            }
        }
        let curve = s.query(&f).unwrap();
        let leak: f64 = (0..64u64)
            .filter(|w| (w / 8) % 2 == 1)
            .map(|w| curve.at(w))
            .sum();
        assert!(leak > 100.0, "4-knot PLA cannot be edge-exact, leak {leak}");
    }

    #[test]
    fn gaps_are_pinned_flat() {
        let mut s = PersistCms::new(1, 4, 16, 0, 64, 3);
        let f = FlowKey::from_id(4);
        s.update(&f, 0, 1000);
        s.update(&f, 50, 500);
        let curve = s.query(&f).unwrap();
        // Windows 10..40 sit in the pinned-flat gap: near-zero rate.
        for w in 10..40u64 {
            assert!(curve.at(w) < 50.0, "window {w}: {}", curve.at(w));
        }
    }

    #[test]
    fn memory_scales_with_knots() {
        let a = PersistCms::new(1, 4, 8, 0, 64, 3);
        let b = PersistCms::new(1, 4, 16, 0, 64, 3);
        assert_eq!(a.memory_bytes() * 2, b.memory_bytes());
    }

    #[test]
    fn unseen_flow_is_none() {
        let s = PersistCms::new(1, 4, 4, 0, 64, 3);
        assert!(s.query(&FlowKey::from_id(9)).is_none());
    }

    #[test]
    fn knot_budget_is_respected() {
        let mut cell = PlaCell::default();
        for w in 0..1000u32 {
            cell.update(w, ((w * 7919) % 503) as i64, 10);
        }
        assert!(cell.knots.len() <= 10);
    }
}
