//! Property-based tests for the baseline compressors' invariants.

use proptest::prelude::*;
use umon_baselines::{CurveSketch, FourierSketch, OmniWindowAvg, PersistCms};
use wavesketch::FlowKey;

const PERIOD: usize = 256;

/// Random packet streams: (flow, window, bytes) with windows in-period.
fn stream() -> impl Strategy<Value = Vec<(u64, u64, i64)>> {
    proptest::collection::vec((0u64..12, 0u64..PERIOD as u64, 1i64..5_000), 1..200)
}

/// Sorts by window (schemes assume a timeline).
fn sorted(mut s: Vec<(u64, u64, i64)>) -> Vec<(u64, u64, i64)> {
    s.sort_by_key(|&(_, w, _)| w);
    s
}

proptest! {
    /// OmniWindow-Avg preserves per-bucket totals exactly: averaging moves
    /// volume within sub-windows, never across the period boundary.
    #[test]
    fn omniwindow_preserves_totals(s in stream(), subs in 1usize..64) {
        let s = sorted(s);
        let mut sketch = OmniWindowAvg::new(1, 8, subs.min(PERIOD), 0, PERIOD, 7);
        let mut totals: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for &(f, w, v) in &s {
            sketch.update(&FlowKey::from_id(f), w, v);
            *totals.entry(FlowKey::from_id(f).hash(0, 7) % 8).or_default() += v;
        }
        for (bucket, total) in totals {
            // Find some flow hashing to this bucket and query it: the curve
            // total equals the bucket total (single row → no min-selection).
            let f = s.iter().map(|&(f, _, _)| f)
                .find(|&f| FlowKey::from_id(f).hash(0, 7) % 8 == bucket)
                .expect("bucket has a flow");
            let est = sketch.query(&FlowKey::from_id(f)).expect("recorded").total();
            prop_assert!((est - total as f64).abs() < 1e-6,
                         "bucket {}: {} vs {}", bucket, est, total);
        }
    }

    /// Persist-CMS never loses total volume either: the cumulative curve is
    /// pinned to the running total at the open end.
    #[test]
    fn persist_preserves_totals(s in stream(), knots in 3usize..40) {
        let s = sorted(s);
        let mut sketch = PersistCms::new(1, 4, knots, 0, PERIOD, 7);
        let mut total_by_flow: std::collections::HashMap<u64, i64> = Default::default();
        for &(f, w, v) in &s {
            sketch.update(&FlowKey::from_id(f), w, v);
            *total_by_flow.entry(f).or_default() += v;
        }
        // A flow alone in its bucket reconstructs at least its own volume
        // (collisions only add). Check the Count-Min inequality for all.
        for (&f, &truth) in &total_by_flow {
            let est = sketch.query(&FlowKey::from_id(f)).expect("recorded").total();
            prop_assert!(est >= truth as f64 - 1.0, "flow {f}: est {est} < {truth}");
        }
    }

    /// Fourier with a full coefficient budget is lossless up to clamping.
    #[test]
    fn fourier_full_k_is_lossless(s in stream()) {
        let s = sorted(s);
        let mut sketch = FourierSketch::new(1, 4, PERIOD.next_power_of_two(), 0, PERIOD, 7);
        let mut dense: std::collections::HashMap<(u64, u64), i64> = Default::default();
        for &(f, w, v) in &s {
            sketch.update(&FlowKey::from_id(f), w, v);
            let bucket = FlowKey::from_id(f).hash(0, 7) % 4;
            *dense.entry((bucket, w)).or_default() += v;
        }
        for &(f, _, _) in &s {
            let key = FlowKey::from_id(f);
            let bucket = key.hash(0, 7) % 4;
            let curve = sketch.query(&key).expect("recorded");
            for w in 0..PERIOD as u64 {
                let truth = dense.get(&(bucket, w)).copied().unwrap_or(0) as f64;
                prop_assert!((curve.at(w) - truth).abs() < 1e-3,
                             "flow {f} window {w}: {} vs {truth}", curve.at(w));
            }
        }
    }

    /// All schemes agree on which flows exist: a queried flow that was
    /// recorded returns Some, an unrecorded flow in an empty sketch None.
    #[test]
    fn presence_semantics(s in stream()) {
        let s = sorted(s);
        let schemes: Vec<Box<dyn CurveSketch>> = vec![
            Box::new(OmniWindowAvg::new(2, 8, 16, 0, PERIOD, 7)),
            Box::new(FourierSketch::new(2, 8, 8, 0, PERIOD, 7)),
            Box::new(PersistCms::new(2, 8, 8, 0, PERIOD, 7)),
        ];
        for mut sketch in schemes {
            for &(f, w, v) in &s {
                sketch.update(&FlowKey::from_id(f), w, v);
            }
            for &(f, _, _) in &s {
                prop_assert!(sketch.query(&FlowKey::from_id(f)).is_some(),
                             "{}: recorded flow must be queryable", sketch.name());
            }
        }
    }
}
