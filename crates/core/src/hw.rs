//! Hardware (PISA) implementation model of WaveSketch (§4.3).
//!
//! Two things live here:
//!
//! 1. **Threshold calibration** — the hardware version replaces the weighted
//!    top-k with per-parity thresholds. Per the paper, thresholds are chosen
//!    offline by running the *ideal* WaveSketch over sample traces and taking
//!    the median of the minimum retained (weighted) values across buckets,
//!    mapped into the shifted comparison domain.
//! 2. **Pipeline resource model** — a substitute for the paper's Tofino2
//!    compiler report (Table 1). We model the Figure 7 pipeline stage by
//!    stage and account registers, stateful ALUs, hash bits, VLIW slots,
//!    gateways and SRAM against a Tofino2-like per-pipeline budget. The
//!    structural claims of the paper hold by construction: SALUs dominate
//!    because every bucket variable needs one, and SALU count is independent
//!    of the bucket count `W` and coefficient budget `K`.

use crate::config::SketchConfig;
use crate::select::CoeffSelector;
use crate::select::{Candidate, HwThresholdSelector, IdealTopK};
use crate::streaming::StreamingTransform;

/// Calibrated thresholds for [`crate::select::SelectorKind::HwThreshold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwSelectorConfig {
    /// Shifted-domain threshold for even loop levels.
    pub even: u64,
    /// Shifted-domain threshold for odd loop levels.
    pub odd: u64,
}

impl HwSelectorConfig {
    /// Converts into the [`crate::select::SelectorKind`] variant.
    pub fn kind(&self) -> crate::select::SelectorKind {
        crate::select::SelectorKind::HwThreshold {
            even: self.even,
            odd: self.odd,
        }
    }
}

/// Calibrates hardware thresholds from sample flow traces (§4.3: "we treat
/// the median value of minimum values in priority queues as a threshold
/// reference").
///
/// Each trace is a window series `(offset, count)` of one sample flow. For
/// every trace we run the ideal top-k selection with the target `K` and
/// record the weakest retained coefficient's *shifted* magnitude per parity
/// class; the calibrated threshold is the per-class median. Traces that
/// retain fewer than `K` coefficients contribute a zero (no filtering
/// needed for flows that sparse).
pub fn calibrate_thresholds(
    traces: &[Vec<(u32, i64)>],
    levels: u32,
    max_windows: usize,
    k: usize,
) -> HwSelectorConfig {
    let mut mins_even: Vec<u64> = Vec::new();
    let mut mins_odd: Vec<u64> = Vec::new();
    for trace in traces {
        if trace.is_empty() {
            continue;
        }
        let mut t = StreamingTransform::new(levels, max_windows, IdealTopK::new(k));
        for &(offset, count) in trace {
            t.push(offset, count);
        }
        let retained = t.finish().details;
        let full = retained.len() >= k;
        let (mut weak_even, mut weak_odd) = (u64::MAX, u64::MAX);
        for c in &retained {
            let mag = HwThresholdSelector::shifted_magnitude(&c.clone());
            if c.level % 2 == 0 {
                weak_even = weak_even.min(mag);
            } else {
                weak_odd = weak_odd.min(mag);
            }
        }
        // A trace that never filled its budget needs no threshold.
        let floor = |weak: u64| if full && weak != u64::MAX { weak } else { 0 };
        mins_even.push(floor(weak_even));
        mins_odd.push(floor(weak_odd));
    }
    HwSelectorConfig {
        even: median(&mut mins_even),
        odd: median(&mut mins_odd),
    }
}

fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// Offers every candidate of an already-collected set through a hardware
/// selector and reports how many of the ideal top-k survive — a quick
/// fidelity probe for a calibration.
pub fn selection_overlap(candidates: &[Candidate], k: usize, hw: HwSelectorConfig) -> f64 {
    if candidates.is_empty() {
        return 1.0;
    }
    let mut ideal = IdealTopK::new(k);
    let mut hw_sel = HwThresholdSelector::new(k, hw.even, hw.odd);
    for c in candidates {
        ideal.offer(*c);
        hw_sel.offer(*c);
    }
    let ideal_set: std::collections::HashSet<(u32, u32)> =
        ideal.retained().iter().map(|c| (c.level, c.idx)).collect();
    if ideal_set.is_empty() {
        return 1.0;
    }
    let hit = hw_sel
        .retained()
        .iter()
        .filter(|c| ideal_set.contains(&(c.level, c.idx)))
        .count();
    hit as f64 / ideal_set.len() as f64
}

// ---------------------------------------------------------------------------
// PISA pipeline resource model (Table 1 substitute)
// ---------------------------------------------------------------------------

/// Per-pipeline resource budget of a Tofino2-class switching ASIC.
///
/// These are the public ballpark figures used across the SketchLib /
/// FlyMon literature: 20 MAU stages; per stage 16 exact-match crossbar
/// groups, ~830 hash bits (we budget at chip level below), 16 gateways,
/// 80 SRAM blocks, 48 map-RAM blocks, 64 VLIW instruction slots and 4
/// stateful ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineBudget {
    /// Number of match-action stages.
    pub stages: u32,
    /// Exact-match input crossbar bytes, chip total.
    pub xbar_bytes: u32,
    /// Hash bits, chip total.
    pub hash_bits: u32,
    /// Gateways, chip total.
    pub gateways: u32,
    /// SRAM blocks, chip total.
    pub sram_blocks: u32,
    /// Map RAM blocks, chip total.
    pub map_ram_blocks: u32,
    /// VLIW instruction slots, chip total.
    pub vliw_slots: u32,
    /// Stateful ALUs, chip total.
    pub salus: u32,
}

impl Default for PipelineBudget {
    fn default() -> Self {
        // Tofino2-class totals (20 stages × per-stage capacity).
        Self {
            stages: 20,
            xbar_bytes: 20 * 128,
            hash_bits: 20 * 332,
            gateways: 20 * 16,
            sram_blocks: 20 * 65,
            map_ram_blocks: 20 * 39,
            vliw_slots: 20 * 25,
            salus: 20 * 4 - 16, // 64 usable for user logic
        }
    }
}

/// Absolute resource consumption of a WaveSketch program and its percentage
/// of the budget — the rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// Exact-match input crossbar bytes.
    pub xbar_bytes: u32,
    /// Hash bits consumed.
    pub hash_bits: u32,
    /// Gateways consumed.
    pub gateways: u32,
    /// SRAM blocks consumed.
    pub sram_blocks: u32,
    /// Map RAM blocks consumed.
    pub map_ram_blocks: u32,
    /// VLIW instruction slots consumed.
    pub vliw_slots: u32,
    /// Stateful ALUs consumed.
    pub salus: u32,
}

impl ResourceUsage {
    /// Models the full-version WaveSketch pipeline of Figure 7.
    ///
    /// Stage accounting:
    /// * Stage 1 — window id & epoch init: `w0` register (1 SALU), offset
    ///   compute, one hash call for the heavy index plus `d` for the light
    ///   rows.
    /// * Stage 2 — counter update/reset: `i` and `c` registers.
    /// * Stages 3–4 — `L` parallel partial-detail registers (1 SALU each).
    /// * Stage 5 — parity shift (VLIW only).
    /// * Stages 6–7 — two threshold filters + two retained-coefficient
    ///   stores (`D_even`, `D_odd`), plus the approximation array.
    /// * Heavy part adds key match/vote registers; the vote and key each
    ///   need a SALU.
    pub fn model(config: &SketchConfig) -> Self {
        let l = config.levels;
        let d = config.rows as u32;

        // Stateful ALUs: one per register variable per part.
        // Light part: w0, i, c, approx, L partials, D_even, D_odd  = 5 + L.
        // Heavy part: key, vote, w0, i, c, approx, L partials, 2 stores = 7 + L.
        // Per-row replication of the light part registers (d rows).
        let light_salus = d * (5 + l);
        let heavy_salus = 7 + l + 2;
        let salus = light_salus + heavy_salus;

        // Hash bits: each light row hashes the 104-bit 5-tuple; the heavy
        // index adds one more hash; window/bucket index extraction reuses
        // hash outputs (16 bits each).
        let hash_bits = (d + 1) * 104 + (d + 1) * 16 + 152;

        // Crossbar bytes: 13-byte key per hash consumer + metadata moves.
        let xbar_bytes = (d + 1) * 13 * 4 + 20;

        // Gateways: window-finished check, epoch-overflow check, per-level
        // position comparisons (one per level), two threshold compares,
        // heavy-part vote compare and key compare.
        let gateways = 2 + l + 2 + 2;

        // SRAM: register arrays sized by bytes / 16 KB blocks, minimum one
        // block per logical array.
        let bucket_arrays = config.width as u32; // light buckets per row
        let bytes_light = d * bucket_arrays * config.bucket_bytes() as u32;
        let bytes_heavy = config.heavy_rows as u32 * (config.bucket_bytes() as u32 + 17);
        let sram_blocks = ((bytes_light + bytes_heavy) / (16 * 1024)).max(1)
            + (5 + l) // one block minimum per logical register array
            + 9;

        // Map RAM accompanies stateful tables (~60% of SRAM rule of thumb).
        let map_ram_blocks = (sram_blocks * 3) / 4;

        // VLIW slots: arithmetic on each variable (add/sub/reset), the
        // parity shifts, sign select per level, plus header/metadata moves.
        let vliw_slots = 3 * (5 + l) + 2 * l + 10;

        Self {
            xbar_bytes,
            hash_bits,
            gateways,
            sram_blocks,
            map_ram_blocks,
            vliw_slots,
            salus,
        }
    }

    /// The Figure 7 stage plan: which logical operation occupies each
    /// pipeline stage and the stateful resources it anchors there. Returned
    /// as `(stage, operation, salus)` rows; the SALU totals across stages
    /// equal [`Self::model`]'s light-part count for one row plus the heavy
    /// part (replication across `d` light rows multiplies stages 2–7's
    /// register usage, not the stage count).
    pub fn stage_plan(config: &SketchConfig) -> Vec<(u32, String, u32)> {
        let l = config.levels;
        // Detail levels pack two per stage in the parallel region (Fig. 7
        // shows levels spread over stages 3-4).
        let detail_stages = l.div_ceil(2);
        let mut plan = vec![
            (
                1,
                "window id, epoch init (w0), heavy key match".to_string(),
                2,
            ),
            (2, "counter update/reset (i, c), heavy vote".to_string(), 3),
        ];
        for s in 0..detail_stages {
            let lo = 2 * s;
            let hi = (2 * s + 1).min(l - 1);
            plan.push((
                3 + s,
                if lo == hi {
                    format!("partial detail level {lo}")
                } else {
                    format!("partial details levels {lo}-{hi}")
                },
                (hi - lo + 1),
            ));
        }
        let next = 3 + detail_stages;
        plan.push((next, "parity shift + threshold filters".to_string(), 0));
        plan.push((next + 1, "retained stores D_odd / D_even".to_string(), 2));
        plan.push((next + 2, "approximation array A".to_string(), 1));
        plan
    }

    /// Percentage rows against `budget`, in Table 1 order:
    /// (xbar, hash bits, gateway, SRAM, map RAM, VLIW, SALU).
    pub fn percentages(&self, budget: &PipelineBudget) -> [(String, u32, f64); 7] {
        let pct = |used: u32, cap: u32| 100.0 * used as f64 / cap as f64;
        [
            (
                "Exact Match Input xbar".into(),
                self.xbar_bytes,
                pct(self.xbar_bytes, budget.xbar_bytes),
            ),
            (
                "Hash Bit".into(),
                self.hash_bits,
                pct(self.hash_bits, budget.hash_bits),
            ),
            (
                "Gateway".into(),
                self.gateways,
                pct(self.gateways, budget.gateways),
            ),
            (
                "SRAM".into(),
                self.sram_blocks,
                pct(self.sram_blocks, budget.sram_blocks),
            ),
            (
                "Map RAM".into(),
                self.map_ram_blocks,
                pct(self.map_ram_blocks, budget.map_ram_blocks),
            ),
            (
                "VLIW Instr".into(),
                self.vliw_slots,
                pct(self.vliw_slots, budget.vliw_slots),
            ),
            (
                "Stateful ALU".into(),
                self.salus,
                pct(self.salus, budget.salus),
            ),
        ]
    }

    /// True if every resource fits the budget.
    pub fn fits(&self, budget: &PipelineBudget) -> bool {
        self.xbar_bytes <= budget.xbar_bytes
            && self.hash_bits <= budget.hash_bits
            && self.gateways <= budget.gateways
            && self.sram_blocks <= budget.sram_blocks
            && self.map_ram_blocks <= budget.map_ram_blocks
            && self.vliw_slots <= budget.vliw_slots
            && self.salus <= budget.salus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;

    fn table1_config() -> SketchConfig {
        // Table 1: heavy h=256, L=8, K=64; light w=256, L=8, K=64, D=1.
        SketchConfig::builder()
            .rows(1)
            .width(256)
            .levels(8)
            .topk(64)
            .max_windows(4096)
            .heavy_rows(256)
            .build()
    }

    #[test]
    fn calibration_produces_nonzero_thresholds_for_rich_traces() {
        // Bursty traces with many competing coefficients force real minima.
        let traces: Vec<Vec<(u32, i64)>> = (0..9)
            .map(|t| {
                (0..256u32)
                    .map(|i| {
                        (
                            i,
                            ((i as i64 * 31 + t * 17) % 100) + if i % 37 == 0 { 5000 } else { 0 },
                        )
                    })
                    .collect()
            })
            .collect();
        let cfg = calibrate_thresholds(&traces, 8, 256, 8);
        assert!(cfg.even > 0, "even threshold must be calibrated");
        assert!(cfg.odd > 0, "odd threshold must be calibrated");
    }

    #[test]
    fn calibration_of_sparse_traces_is_permissive() {
        // Flows with fewer coefficients than K need no filtering.
        let traces = vec![vec![(0u32, 5i64), (1, 3)]; 5];
        let cfg = calibrate_thresholds(&traces, 4, 64, 32);
        assert_eq!(cfg.even, 0);
        assert_eq!(cfg.odd, 0);
    }

    #[test]
    fn calibrated_hw_selection_overlaps_ideal_substantially() {
        // Build a realistic candidate population, calibrate on half of the
        // traces, probe overlap on the other half.
        let mk_trace = |seed: i64| -> Vec<(u32, i64)> {
            (0..512u32)
                .map(|i| {
                    let base = ((i as i64).wrapping_mul(2654435761 + seed) % 97).abs();
                    let burst = if (i as i64 + seed) % 53 == 0 {
                        20_000
                    } else {
                        0
                    };
                    (i, base + burst)
                })
                .collect()
        };
        let calib: Vec<_> = (0..10).map(mk_trace).collect();
        let cfg = calibrate_thresholds(&calib, 8, 512, 16);

        let probe = mk_trace(999);
        let mut t = StreamingTransform::new(8, 512, IdealTopK::new(100_000));
        for (i, v) in probe {
            t.push(i, v);
        }
        let candidates = t.finish().details;
        let overlap = selection_overlap(&candidates, 16, cfg);
        assert!(
            overlap >= 0.5,
            "overlap {overlap} too low for a sane calibration"
        );
    }

    #[test]
    fn table1_structure_salu_dominates() {
        let usage = ResourceUsage::model(&table1_config());
        let budget = PipelineBudget::default();
        let rows = usage.percentages(&budget);
        let salu_pct = rows[6].2;
        for (name, _, pct) in &rows[..6] {
            assert!(
                *pct < salu_pct,
                "{name} ({pct}%) must not exceed the SALU share ({salu_pct}%)"
            );
        }
        assert!(usage.fits(&budget), "Table 1 config must fit a Tofino2");
    }

    #[test]
    fn salu_usage_is_independent_of_w_and_k() {
        // §7.1: "increasing the number of buckets (W) and retained
        // coefficients (K) does not result in an increased SALU usage".
        let base = ResourceUsage::model(&table1_config());
        let more_w = ResourceUsage::model(
            &SketchConfig::builder()
                .rows(1)
                .width(1024)
                .levels(8)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(256)
                .build(),
        );
        let more_k = ResourceUsage::model(
            &SketchConfig::builder()
                .rows(1)
                .width(256)
                .levels(8)
                .topk(256)
                .max_windows(4096)
                .heavy_rows(256)
                .build(),
        );
        assert_eq!(base.salus, more_w.salus);
        assert_eq!(base.salus, more_k.salus);
        // But SRAM does grow.
        assert!(more_w.sram_blocks > base.sram_blocks);
    }

    #[test]
    fn stage_plan_fits_a_pisa_pipeline() {
        let plan = ResourceUsage::stage_plan(&table1_config());
        // L=8 packs into 4 detail stages → 9 stages total, well under the
        // 20-stage budget.
        let last_stage = plan.iter().map(|&(s, _, _)| s).max().unwrap();
        assert!(last_stage <= PipelineBudget::default().stages);
        // Stages are contiguous from 1.
        let stages: Vec<u32> = plan.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(stages, (1..=last_stage).collect::<Vec<u32>>());
        // All L detail levels are placed.
        let detail_salus: u32 = plan
            .iter()
            .filter(|(_, op, _)| op.contains("partial detail"))
            .map(|&(_, _, n)| n)
            .sum();
        assert_eq!(detail_salus, 8);
    }

    #[test]
    fn deeper_decomposition_costs_more_salus() {
        let shallow = ResourceUsage::model(
            &SketchConfig::builder()
                .rows(1)
                .levels(4)
                .max_windows(4096)
                .build(),
        );
        let deep = ResourceUsage::model(
            &SketchConfig::builder()
                .rows(1)
                .levels(12)
                .max_windows(8192)
                .build(),
        );
        assert!(deep.salus > shallow.salus);
    }

    #[test]
    fn hw_selector_kind_roundtrip() {
        let cfg = HwSelectorConfig { even: 10, odd: 20 };
        match cfg.kind() {
            SelectorKind::HwThreshold { even, odd } => {
                assert_eq!(even, 10);
                assert_eq!(odd, 20);
            }
            _ => panic!("wrong kind"),
        }
    }
}
