//! Analyzer-side reconstruction of a window-counter series from compressed
//! wavelet coefficients (Algorithm 2).
//!
//! Reconstruction starts from the deepest level: each approximation
//! coefficient `a` and its (possibly discarded ⇒ zero) detail `d` expand into
//! two shallower approximations `(a + d) / 2` and `(a − d) / 2`, repeated
//! until window granularity is reached. It runs in `f64` — the analyzer is a
//! CPU, and halving odd sums is not exact in integers.
//!
//! Two implementations coexist:
//!
//! * [`reconstruct_dense`] — the textbook form: materialize every stage,
//!   look every expansion's detail up in a hash map. O(padded_len · levels)
//!   work and a fresh `Vec` per stage. Kept as the reference oracle.
//! * [`reconstruct_into`] — the sparse kernel the query engine uses. Only
//!   subtrees that contain a *retained* detail are descended; a detail-free
//!   subtree rooted at height `h` with value `v` contributes the constant run
//!   `v / 2^h` and is filled in one `slice::fill` (or skipped outright when
//!   `v` is zero, since the output buffer starts zeroed). With `k` retained
//!   details the work drops to O((k + blocks) · levels) and, given a warm
//!   [`ReconstructScratch`], performs no heap allocation at all.
//!
//! The two are **bit-identical**, not merely close, which is what lets the
//! golden query fixtures pin curves as raw `f64` bit patterns:
//!
//! * halving an f64 is exact (an exponent decrement — the values here are
//!   i64-derived block sums divided at most `levels` ≤ 32 times, nowhere near
//!   the subnormal range), so `h` successive `/ 2.0` equal the single run
//!   value `v / 2^h` computed the same way;
//! * a zero detail expands `a` into `(a + 0) / 2 = (a − 0) / 2 = a / 2` with
//!   no rounding introduced by the addition (`a + 0.0 == a` exactly unless
//!   `a` is `-0.0`, and `-0.0` never arises: inputs are `i64 as f64` and
//!   `x − x` rounds to `+0.0`), so skipping the expansion loses nothing.

use crate::streaming::EpochCoefficients;
use std::collections::HashMap;

/// Reference implementation: materializes every stage of the inverse
/// transform with a hash-map detail lookup. See the module docs; use
/// [`reconstruct`] (or [`reconstruct_into`] with a scratch) instead unless
/// you are differential-testing the sparse kernel against it.
pub fn reconstruct_dense(coeffs: &EpochCoefficients) -> Vec<f64> {
    if coeffs.padded_len == 0 {
        return Vec::new();
    }
    // Effective depth: the transform stops early for short sequences.
    let top = coeffs.levels.min(coeffs.padded_len.trailing_zeros());

    // Index the retained details by (level, idx) for O(1) lookup.
    let mut details: HashMap<(u32, u32), i64> = HashMap::with_capacity(coeffs.details.len());
    for c in &coeffs.details {
        details.insert((c.level, c.idx), c.val);
    }

    // Start at block size 2^top; the approximation array stores one entry per
    // 2^levels windows, which equals 2^top unless the sequence is shorter
    // than one block (then a single entry covers everything).
    let blocks = coeffs.padded_len >> top;
    let mut cur: Vec<f64> = (0..blocks)
        .map(|p| coeffs.approx.get(p).copied().unwrap_or(0) as f64)
        .collect();

    for l in (0..top).rev() {
        let mut next = Vec::with_capacity(cur.len() * 2);
        for (q, &a) in cur.iter().enumerate() {
            let d = details.get(&(l, q as u32)).copied().unwrap_or(0) as f64;
            next.push((a + d) / 2.0);
            next.push((a - d) / 2.0);
        }
        cur = next;
    }
    cur
}

/// Reusable buffers for the sparse kernel. One scratch serves any number of
/// sequential reconstructions; after it has seen each epoch shape once, no
/// further heap allocation happens.
#[derive(Debug, Default)]
pub struct ReconstructScratch {
    /// Filtered `(level, idx, seq, val)` details, sorted by `(level, idx,
    /// seq)` and deduplicated last-wins (matching the hash-map overwrite
    /// semantics of the dense form).
    details: Vec<(u32, u32, u32, i64)>,
    /// `level_start[l]..level_start[l + 1]` indexes level `l`'s run in
    /// [`Self::details`].
    level_start: Vec<usize>,
    /// `active[h]` — sorted node indices at height `h` whose subtree contains
    /// at least one retained detail. Ancestor-closed by construction.
    active: Vec<Vec<u32>>,
    /// Interesting `(idx, value)` nodes at the height currently being
    /// expanded, sorted by `idx`; exactly the nodes in `active[h]`.
    cur: Vec<(u32, f64)>,
    next: Vec<(u32, f64)>,
    /// The reconstruction itself; borrowed out by [`reconstruct_into`].
    out: Vec<f64>,
}

impl ReconstructScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The last reconstruction, if any (what [`reconstruct_into`] returned).
    pub fn last(&self) -> &[f64] {
        &self.out
    }
}

/// Sparse reconstruction of one epoch into `scratch`, returning the
/// `padded_len`-long series. Bit-identical to [`reconstruct_dense`]; see the
/// module docs for why, and the proptest suite for the machine-checked claim.
pub fn reconstruct_into<'a>(
    coeffs: &EpochCoefficients,
    scratch: &'a mut ReconstructScratch,
) -> &'a [f64] {
    reconstruct_sparse_into(
        coeffs.levels,
        coeffs.padded_len,
        &coeffs.approx,
        coeffs.details.iter().map(|c| (c.level, c.idx, c.val)),
        scratch,
    )
}

/// As [`reconstruct_into`], then clamps negative reconstruction artifacts to
/// zero in place (counts cannot be negative).
pub fn reconstruct_non_negative_into<'a>(
    coeffs: &EpochCoefficients,
    scratch: &'a mut ReconstructScratch,
) -> &'a [f64] {
    reconstruct_into(coeffs, scratch);
    clamp_non_negative(&mut scratch.out);
    &scratch.out
}

/// As [`reconstruct_sparse_into`], then clamps negatives to zero in place.
pub fn reconstruct_sparse_non_negative_into<'a>(
    levels: u32,
    padded_len: usize,
    approx: &[i64],
    details: impl Iterator<Item = (u32, u32, i64)>,
    scratch: &'a mut ReconstructScratch,
) -> &'a [f64] {
    reconstruct_sparse_into(levels, padded_len, approx, details, scratch);
    clamp_non_negative(&mut scratch.out);
    &scratch.out
}

/// Clamps negatives to zero in place.
pub(crate) fn clamp_non_negative(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// The sparse kernel over raw report fields. Taking the detail triples as an
/// iterator lets both [`EpochCoefficients`] (selector `Candidate`s) and
/// `BucketReport` (wire `DetailRecord`s) reconstruct without first converting
/// one into the other — the query path calls this with zero allocations.
pub fn reconstruct_sparse_into<'a>(
    levels: u32,
    padded_len: usize,
    approx: &[i64],
    details: impl Iterator<Item = (u32, u32, i64)>,
    scratch: &'a mut ReconstructScratch,
) -> &'a [f64] {
    scratch.out.clear();
    if padded_len == 0 {
        return &scratch.out;
    }
    scratch.out.resize(padded_len, 0.0);
    let top = levels.min(padded_len.trailing_zeros());
    let blocks = padded_len >> top;

    // Retained details the dense form would actually look up: level < top and
    // idx within the level's node count. Sorted by (level, idx, arrival) and
    // deduplicated keeping the *last* arrival — exactly the hash-map
    // overwrite the dense form performs on a duplicate key.
    scratch.details.clear();
    for (seq, (level, idx, val)) in details.enumerate() {
        if level < top && (idx as usize) < padded_len >> (level + 1) {
            scratch.details.push((level, idx, seq as u32, val));
        }
    }
    scratch
        .details
        .sort_unstable_by_key(|&(level, idx, seq, _)| (level, idx, seq));
    scratch.details.dedup_by(|later, earlier| {
        if later.0 == earlier.0 && later.1 == earlier.1 {
            earlier.3 = later.3;
            true
        } else {
            false
        }
    });

    // Per-level runs.
    scratch.level_start.clear();
    scratch.level_start.resize(top as usize + 2, 0);
    for &(level, ..) in &scratch.details {
        scratch.level_start[level as usize + 1] += 1;
    }
    for l in 0..top as usize + 1 {
        scratch.level_start[l + 1] += scratch.level_start[l];
    }

    // Active node sets per height: a detail at level `l` forces the expansion
    // of node (height l + 1, idx), so that node and all its ancestors are
    // interesting. O(k · levels) pushes, then sort + dedup per height.
    if scratch.active.len() < top as usize + 1 {
        scratch.active.resize_with(top as usize + 1, Vec::new);
    }
    for set in &mut scratch.active {
        set.clear();
    }
    for &(level, idx, ..) in &scratch.details {
        for h in level + 1..=top {
            scratch.active[h as usize].push(idx >> (h - level - 1));
        }
    }
    for set in &mut scratch.active {
        set.sort_unstable();
        set.dedup();
    }

    // Seed the descent at height `top`: interesting blocks go on the work
    // list, detail-free blocks are constant runs of `approx[q] / 2^top`.
    scratch.cur.clear();
    let mut ai = 0usize;
    for q in 0..blocks {
        let v = approx.get(q).copied().unwrap_or(0) as f64;
        let act = &scratch.active[top as usize];
        if ai < act.len() && act[ai] == q as u32 {
            scratch.cur.push((q as u32, v));
            ai += 1;
        } else {
            fill_run(&mut scratch.out, q as u32, top, v);
        }
    }
    debug_assert_eq!(ai, scratch.active[top as usize].len());

    // Descend. At height h the work list equals active[h]; each node splits
    // against its (level h − 1) detail, children either stay on the work list
    // (still interesting) or terminate as a constant run.
    for h in (1..=top).rev() {
        let l = (h - 1) as usize;
        let (mut di, dhi) = (scratch.level_start[l], scratch.level_start[l + 1]);
        let child_active: &[u32] = if h >= 2 { &scratch.active[l] } else { &[] };
        let mut ci = 0usize;
        scratch.next.clear();
        for k in 0..scratch.cur.len() {
            let (q, v) = scratch.cur[k];
            let d = if di < dhi && scratch.details[di].1 == q {
                let val = scratch.details[di].3;
                di += 1;
                val as f64
            } else {
                0.0
            };
            let children = [(2 * q, (v + d) / 2.0), (2 * q + 1, (v - d) / 2.0)];
            for (cq, cv) in children {
                if ci < child_active.len() && child_active[ci] == cq {
                    scratch.next.push((cq, cv));
                    ci += 1;
                } else if h == 1 {
                    scratch.out[cq as usize] = cv;
                } else {
                    fill_run(&mut scratch.out, cq, h - 1, cv);
                }
            }
        }
        debug_assert_eq!(di, dhi, "level {l} details not fully consumed");
        debug_assert_eq!(ci, child_active.len());
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
    &scratch.out
}

/// Fills the span of the detail-free subtree rooted at `(height h, idx q)`
/// with its constant leaf value: `v` halved `h` more times. Skipped when `v`
/// is zero — the buffer is pre-zeroed and the zeros are all `+0.0` (see the
/// module docs), so the fill would be a no-op bit for bit.
#[inline]
fn fill_run(out: &mut [f64], q: u32, h: u32, v: f64) {
    if v == 0.0 {
        return;
    }
    let mut x = v;
    for _ in 0..h {
        x /= 2.0;
    }
    let lo = (q as usize) << h;
    out[lo..lo + (1usize << h)].fill(x);
}

/// Reconstructs the per-window series of one epoch.
///
/// The result has `padded_len` entries; windows the flow never touched
/// reconstruct to (approximately) zero. Negative reconstruction artifacts are
/// *not* clamped here — callers that know counts are non-negative can clamp.
///
/// Allocating convenience wrapper over [`reconstruct_into`]; hot paths should
/// hold a [`ReconstructScratch`] instead.
pub fn reconstruct(coeffs: &EpochCoefficients) -> Vec<f64> {
    let mut scratch = ReconstructScratch::new();
    reconstruct_into(coeffs, &mut scratch).to_vec()
}

/// Reconstructs and clamps negatives to zero (counts cannot be negative;
/// small negative artifacts appear when detail coefficients are discarded).
pub fn reconstruct_non_negative(coeffs: &EpochCoefficients) -> Vec<f64> {
    let mut v = reconstruct(coeffs);
    clamp_non_negative(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{Candidate, IdealTopK};
    use crate::streaming::StreamingTransform;

    fn via_stream(signal: &[i64], levels: u32, k: usize) -> Vec<f64> {
        let cap = signal.len().next_power_of_two().max(1 << levels);
        let mut t = StreamingTransform::new(levels, cap, IdealTopK::new(k));
        for (i, &v) in signal.iter().enumerate() {
            if v != 0 {
                t.push(i as u32, v);
            }
        }
        reconstruct(&t.finish())
    }

    fn assert_bit_identical(coeffs: &EpochCoefficients, ctx: &str) {
        let dense = reconstruct_dense(coeffs);
        let mut scratch = ReconstructScratch::new();
        let sparse = reconstruct_into(coeffs, &mut scratch);
        assert_eq!(dense.len(), sparse.len(), "{ctx}: length");
        for (i, (d, s)) in dense.iter().zip(sparse.iter()).enumerate() {
            assert_eq!(
                d.to_bits(),
                s.to_bits(),
                "{ctx}: window {i}: dense {d} vs sparse {s}"
            );
        }
    }

    #[test]
    fn lossless_roundtrip_through_streaming_transform() {
        let signal = [7, 9, 6, 3, 2, 4, 4, 6];
        let rec = via_stream(&signal, 3, 1024);
        for (i, &x) in signal.iter().enumerate() {
            assert!((rec[i] - x as f64).abs() < 1e-9, "window {i}");
        }
    }

    #[test]
    fn lossless_roundtrip_with_gaps_and_deep_levels() {
        let mut signal = vec![0i64; 300];
        signal[3] = 40;
        signal[100] = 7;
        signal[101] = 9;
        signal[299] = 1000;
        let rec = via_stream(&signal, 8, 4096);
        assert_eq!(rec.len(), 512);
        for (i, &x) in signal.iter().enumerate() {
            assert!(
                (rec[i] - x as f64).abs() < 1e-9,
                "window {i}: {} vs {x}",
                rec[i]
            );
        }
        for &r in &rec[300..] {
            assert!(r.abs() < 1e-9);
        }
    }

    #[test]
    fn total_volume_is_preserved_even_under_heavy_compression() {
        // All approximation coefficients are kept, so the series total is
        // exact no matter how few details survive (§4.2).
        let signal: Vec<i64> = (0..256).map(|i| (i * 13) % 97).collect();
        let rec = via_stream(&signal, 4, 2); // keep only 2 details
        let total_true: i64 = signal.iter().sum();
        let total_rec: f64 = rec.iter().sum();
        assert!((total_rec - total_true as f64).abs() < 1e-6);
    }

    #[test]
    fn k_limited_reconstruction_keeps_the_dominant_spike() {
        // One huge spike among small noise: with K=1 the spike's detail
        // coefficients dominate and the spike must survive compression.
        let mut signal = vec![1i64; 64];
        signal[20] = 100_000;
        let rec = via_stream(&signal, 6, 8);
        let max_pos = rec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_pos, 20, "spike must reconstruct at its window");
        assert!(rec[20] > 50_000.0);
    }

    #[test]
    fn empty_epoch_reconstructs_empty() {
        let t: StreamingTransform<IdealTopK> = StreamingTransform::new(3, 8, IdealTopK::new(4));
        assert!(reconstruct(&t.finish()).is_empty());
    }

    #[test]
    fn clamped_reconstruction_has_no_negatives() {
        let mut signal = vec![0i64; 128];
        signal[5] = 1000;
        signal[6] = 3;
        let rec = reconstruct_non_negative(&{
            let mut t = StreamingTransform::new(7, 128, IdealTopK::new(2));
            for (i, &v) in signal.iter().enumerate() {
                if v != 0 {
                    t.push(i as u32, v);
                }
            }
            t.finish()
        });
        assert!(rec.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn single_window_epoch() {
        let rec = via_stream(&[42], 8, 4);
        assert_eq!(rec, vec![42.0]);
    }

    #[test]
    fn sparse_matches_dense_bitwise_on_handpicked_epochs() {
        // Early-stop (trailing_zeros < levels), negative details, duplicate
        // keys (last wins), out-of-range details (ignored), short approx.
        let cases = [
            EpochCoefficients {
                levels: 6,
                padded_len: 8, // early stop: top = 3 < levels
                approx: vec![41],
                details: vec![
                    Candidate {
                        level: 0,
                        idx: 3,
                        val: 7,
                    },
                    Candidate {
                        level: 2,
                        idx: 0,
                        val: -13,
                    },
                ],
            },
            EpochCoefficients {
                levels: 3,
                padded_len: 32, // blocks = 4, approx shorter than blocks
                approx: vec![100, -3],
                details: vec![
                    Candidate {
                        level: 1,
                        idx: 2,
                        val: 9,
                    },
                    Candidate {
                        level: 1,
                        idx: 2,
                        val: -9,
                    }, // duplicate: last wins
                    Candidate {
                        level: 0,
                        idx: 15,
                        val: 5,
                    },
                    Candidate {
                        level: 7,
                        idx: 0,
                        val: 999,
                    }, // level ≥ top: ignored
                    Candidate {
                        level: 0,
                        idx: 400,
                        val: 17,
                    }, // idx out of range: ignored
                ],
            },
            EpochCoefficients {
                levels: 5,
                padded_len: 1, // single window
                approx: vec![42],
                details: vec![],
            },
            EpochCoefficients {
                levels: 4,
                padded_len: 64,
                approx: vec![],
                details: vec![Candidate {
                    level: 3,
                    idx: 1,
                    val: -1,
                }],
            },
        ];
        for (n, coeffs) in cases.iter().enumerate() {
            assert_bit_identical(coeffs, &format!("case {n}"));
        }
    }

    #[test]
    fn one_scratch_serves_epochs_of_different_shapes() {
        let mut scratch = ReconstructScratch::new();
        for (padded_len, levels) in [(64usize, 6u32), (8, 2), (0, 5), (256, 4), (1, 1)] {
            let coeffs = EpochCoefficients {
                levels,
                padded_len,
                approx: (0..padded_len >> levels.min(padded_len.trailing_zeros()))
                    .map(|i| (i as i64 * 37) % 101 - 50)
                    .collect(),
                details: (0..levels.min(8))
                    .map(|l| Candidate {
                        level: l,
                        idx: l % 2,
                        val: 11 - 3 * l as i64,
                    })
                    .collect(),
            };
            let dense = reconstruct_dense(&coeffs);
            let sparse = reconstruct_into(&coeffs, &mut scratch);
            assert_eq!(
                dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                sparse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shape ({padded_len}, {levels})"
            );
        }
    }
}
