//! Analyzer-side reconstruction of a window-counter series from compressed
//! wavelet coefficients (Algorithm 2).
//!
//! Reconstruction starts from the deepest level: each approximation
//! coefficient `a` and its (possibly discarded ⇒ zero) detail `d` expand into
//! two shallower approximations `(a + d) / 2` and `(a − d) / 2`, repeated
//! until window granularity is reached. It runs in `f64` — the analyzer is a
//! CPU, and halving odd sums is not exact in integers.

use crate::streaming::EpochCoefficients;
use std::collections::HashMap;

/// Reconstructs the per-window series of one epoch.
///
/// The result has `padded_len` entries; windows the flow never touched
/// reconstruct to (approximately) zero. Negative reconstruction artifacts are
/// *not* clamped here — callers that know counts are non-negative can clamp.
pub fn reconstruct(coeffs: &EpochCoefficients) -> Vec<f64> {
    if coeffs.padded_len == 0 {
        return Vec::new();
    }
    // Effective depth: the transform stops early for short sequences.
    let top = coeffs.levels.min(coeffs.padded_len.trailing_zeros());

    // Index the retained details by (level, idx) for O(1) lookup.
    let mut details: HashMap<(u32, u32), i64> = HashMap::with_capacity(coeffs.details.len());
    for c in &coeffs.details {
        details.insert((c.level, c.idx), c.val);
    }

    // Start at block size 2^top; the approximation array stores one entry per
    // 2^levels windows, which equals 2^top unless the sequence is shorter
    // than one block (then a single entry covers everything).
    let blocks = coeffs.padded_len >> top;
    let mut cur: Vec<f64> = (0..blocks)
        .map(|p| coeffs.approx.get(p).copied().unwrap_or(0) as f64)
        .collect();

    for l in (0..top).rev() {
        let mut next = Vec::with_capacity(cur.len() * 2);
        for (q, &a) in cur.iter().enumerate() {
            let d = details.get(&(l, q as u32)).copied().unwrap_or(0) as f64;
            next.push((a + d) / 2.0);
            next.push((a - d) / 2.0);
        }
        cur = next;
    }
    cur
}

/// Reconstructs and clamps negatives to zero (counts cannot be negative;
/// small negative artifacts appear when detail coefficients are discarded).
pub fn reconstruct_non_negative(coeffs: &EpochCoefficients) -> Vec<f64> {
    let mut v = reconstruct(coeffs);
    for x in &mut v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::IdealTopK;
    use crate::streaming::StreamingTransform;

    fn via_stream(signal: &[i64], levels: u32, k: usize) -> Vec<f64> {
        let cap = signal.len().next_power_of_two().max(1 << levels);
        let mut t = StreamingTransform::new(levels, cap, IdealTopK::new(k));
        for (i, &v) in signal.iter().enumerate() {
            if v != 0 {
                t.push(i as u32, v);
            }
        }
        reconstruct(&t.finish())
    }

    #[test]
    fn lossless_roundtrip_through_streaming_transform() {
        let signal = [7, 9, 6, 3, 2, 4, 4, 6];
        let rec = via_stream(&signal, 3, 1024);
        for (i, &x) in signal.iter().enumerate() {
            assert!((rec[i] - x as f64).abs() < 1e-9, "window {i}");
        }
    }

    #[test]
    fn lossless_roundtrip_with_gaps_and_deep_levels() {
        let mut signal = vec![0i64; 300];
        signal[3] = 40;
        signal[100] = 7;
        signal[101] = 9;
        signal[299] = 1000;
        let rec = via_stream(&signal, 8, 4096);
        assert_eq!(rec.len(), 512);
        for (i, &x) in signal.iter().enumerate() {
            assert!(
                (rec[i] - x as f64).abs() < 1e-9,
                "window {i}: {} vs {x}",
                rec[i]
            );
        }
        for &r in &rec[300..] {
            assert!(r.abs() < 1e-9);
        }
    }

    #[test]
    fn total_volume_is_preserved_even_under_heavy_compression() {
        // All approximation coefficients are kept, so the series total is
        // exact no matter how few details survive (§4.2).
        let signal: Vec<i64> = (0..256).map(|i| (i * 13) % 97).collect();
        let rec = via_stream(&signal, 4, 2); // keep only 2 details
        let total_true: i64 = signal.iter().sum();
        let total_rec: f64 = rec.iter().sum();
        assert!((total_rec - total_true as f64).abs() < 1e-6);
    }

    #[test]
    fn k_limited_reconstruction_keeps_the_dominant_spike() {
        // One huge spike among small noise: with K=1 the spike's detail
        // coefficients dominate and the spike must survive compression.
        let mut signal = vec![1i64; 64];
        signal[20] = 100_000;
        let rec = via_stream(&signal, 6, 8);
        let max_pos = rec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_pos, 20, "spike must reconstruct at its window");
        assert!(rec[20] > 50_000.0);
    }

    #[test]
    fn empty_epoch_reconstructs_empty() {
        let t: StreamingTransform<IdealTopK> = StreamingTransform::new(3, 8, IdealTopK::new(4));
        assert!(reconstruct(&t.finish()).is_empty());
    }

    #[test]
    fn clamped_reconstruction_has_no_negatives() {
        let mut signal = vec![0i64; 128];
        signal[5] = 1000;
        signal[6] = 3;
        let rec = reconstruct_non_negative(&{
            let mut t = StreamingTransform::new(7, 128, IdealTopK::new(2));
            for (i, &v) in signal.iter().enumerate() {
                if v != 0 {
                    t.push(i as u32, v);
                }
            }
            t.finish()
        });
        assert!(rec.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn single_window_epoch() {
        let rec = via_stream(&[42], 8, 4);
        assert_eq!(rec, vec![42.0]);
    }
}
