//! The full WaveSketch (§4.2): a heavy part electing heavy flows by majority
//! vote, backed by the basic sketch as the light part.
//!
//! Design points from the paper:
//!
//! * The light part counts **every** packet — heavy-flow packets update both
//!   parts simultaneously, so evicting a heavy candidate needs no coefficient
//!   migration: the evicted flow was fully counted in the light part all
//!   along and its heavy bucket is simply discarded.
//! * Querying a heavy flow reads its heavy bucket directly (collision-free).
//! * Querying a mice flow reads the light part and subtracts the
//!   reconstructed curves of heavy flows that share its buckets, since those
//!   flows inflated the light counters.

use crate::arena::BucketArena;
use crate::basic::{BasicWaveSketch, WindowSeries};
use crate::batch::{prefetch_read, BatchScratch, CHUNK};
use crate::config::SketchConfig;
use crate::flow::FlowKey;
use crate::report::{BucketReport, SketchReport};

/// One heavy-part slot: the candidate key and its majority-vote counter,
/// colocated so the packet path's slot probe touches a single cache line.
#[derive(Debug, Clone, Copy)]
struct HeavySlot {
    /// Heavy-candidate key (`None` = free slot).
    key: Option<FlowKey>,
    /// Majority-vote counter.
    votes: i64,
}

const FREE_SLOT: HeavySlot = HeavySlot {
    key: None,
    votes: 0,
};

/// The full WaveSketch.
///
/// The heavy part is a flat [`BucketArena`] plus a key/vote slot array,
/// so an eviction is an in-place bucket reset (no allocation) and the
/// per-packet path shares one [`crate::config::Placement`] (pack + lane
/// hash) between the heavy slot and the light rows.
pub struct FullWaveSketch {
    config: SketchConfig,
    /// Heavy-candidate slots (key + votes), one per heavy bucket.
    slots: Vec<HeavySlot>,
    /// Heavy-part bucket arena, one bucket per slot.
    heavy: BucketArena,
    light: BasicWaveSketch,
    /// Heavy candidates evicted since the last drain (their history lives in
    /// the light part).
    evictions: u64,
    /// Lazily-built staging buffers for [`Self::update_batch`] (with the
    /// heavy-tag chain), reused across batches.
    batch: Option<Box<BatchScratch>>,
}

impl FullWaveSketch {
    /// Creates an empty full sketch.
    pub fn new(config: SketchConfig) -> Self {
        let heavy = BucketArena::from_config(&config, config.heavy_rows);
        let light = BasicWaveSketch::new(config.clone());
        Self {
            slots: vec![FREE_SLOT; config.heavy_rows],
            config,
            heavy,
            light,
            evictions: 0,
            batch: None,
        }
    }

    /// The sketch configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Heavy-candidate evictions since the last drain.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    #[inline]
    fn heavy_index(&self, flow: &FlowKey) -> usize {
        // A distinct hash stream (row tag 0xFF inside the flow's lane) keeps
        // the heavy placement independent of the light rows.
        self.config.heavy_slot(flow)
    }

    /// Records `value` for `flow` at absolute window `window`.
    pub fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        // Pack and batch-hash the key once for both parts.
        let p = self.config.place(flow);

        // The light part counts everything (simultaneous update).
        self.light.update_placed(&p, window, value);

        let idx = self.config.heavy_slot_placed(&p);
        self.heavy_vote(idx, flow, window, value);
    }

    /// The heavy part's majority-vote machine for one packet at slot `idx` —
    /// the only state shared between records of a batch, so the batch path
    /// replays it record-by-record in original order.
    #[inline]
    fn heavy_vote(&mut self, idx: usize, flow: &FlowKey, window: u64, value: i64) {
        let slot = &mut self.slots[idx];
        match slot.key {
            None => {
                // Empty slot: install the flow as a heavy candidate.
                slot.key = Some(*flow);
                slot.votes = 1;
                self.heavy.update(idx, window, value);
            }
            Some(k) if k == *flow => {
                slot.votes += 1;
                self.heavy.update(idx, window, value);
            }
            Some(_) => {
                // Majority vote: challengers decrement; at zero the incumbent
                // is evicted (its counts are safe in the light part).
                slot.votes -= 1;
                if slot.votes <= 0 {
                    slot.key = Some(*flow);
                    slot.votes = 1;
                    self.heavy.reset_bucket(idx);
                    self.heavy.update(idx, window, value);
                    self.evictions += 1;
                }
            }
        }
    }

    /// Records a burst of `(flow, window, value)` updates through the batch
    /// pipeline: one SIMD hashing pass covers the lane, all `d` light rows
    /// *and* the heavy slot of every record, then the light rows are applied
    /// row-phased with prefetch and the heavy vote machine is replayed in
    /// original record order.
    ///
    /// Bit-identical to per-record [`Self::update`] calls: the light and
    /// heavy parts share no state, light buckets preserve per-bucket record
    /// order under row-phasing (see [`BasicWaveSketch::update_batch`]), and
    /// the vote machine — the only cross-record dependency — runs strictly
    /// in order.
    pub fn update_batch(&mut self, records: &[(FlowKey, u64, i64)]) {
        const PF: usize = 16;
        let mut scratch = self
            .batch
            .take()
            .unwrap_or_else(|| Box::new(BatchScratch::new(&self.config, true)));
        for chunk in records.chunks(CHUNK) {
            let n = chunk.len();
            scratch.stage(&self.config, chunk);
            for row in 0..self.config.rows {
                let idx = &scratch.light_idx[row * CHUNK..row * CHUNK + n];
                self.light
                    .arena_mut()
                    .apply_batch(idx, &scratch.windows, &scratch.values, n);
            }
            for j in 0..n {
                if j + PF < n {
                    let b = scratch.heavy_idx[j + PF] as usize;
                    prefetch_read(&self.slots[b]);
                    self.heavy.prefetch_header(b);
                }
                let idx = scratch.heavy_idx[j] as usize;
                let flow = scratch.keys[j];
                self.heavy_vote(idx, &flow, scratch.windows[j], scratch.values[j]);
            }
        }
        self.batch = Some(scratch);
    }

    /// True if `flow` currently holds a heavy-part slot.
    pub fn is_heavy(&self, flow: &FlowKey) -> bool {
        self.slots[self.heavy_index(flow)].key == Some(*flow)
    }

    /// Current heavy candidates and their votes.
    pub fn heavy_flows(&self) -> Vec<(FlowKey, i64)> {
        self.slots
            .iter()
            .filter_map(|slot| slot.key.map(|k| (k, slot.votes)))
            .collect()
    }

    /// The first window covered by `flow`'s heavy bucket — the window it was
    /// (last) elected heavy in. `None` for mice flows. Callers comparing a
    /// query against all-time truth can use this to restrict themselves to
    /// the post-election span, where the heavy bucket is exact.
    pub fn election_window(&self, flow: &FlowKey) -> Option<u64> {
        let idx = self.heavy_index(flow);
        if self.slots[idx].key != Some(*flow) {
            return None;
        }
        self.heavy
            .snapshot_bucket(idx)
            .iter()
            .map(|r| r.w0)
            .min()
            .or_else(|| self.heavy.epoch_start(idx))
    }

    /// The exact volume `flow` sent since its election: the heavy bucket's
    /// block sums are lossless, so this is a sound lower bound on the flow's
    /// all-time volume. `None` for mice flows.
    pub fn post_election_volume(&self, flow: &FlowKey) -> Option<i64> {
        let idx = self.heavy_index(flow);
        if self.slots[idx].key != Some(*flow) {
            return None;
        }
        Some(
            self.heavy
                .snapshot_bucket(idx)
                .iter()
                .map(BucketReport::total)
                .sum(),
        )
    }

    /// Sound all-time volume estimate for `flow`.
    ///
    /// The curve returned by [`Self::query`] merges the exact heavy bucket
    /// with a light-part estimate whose heavy-flow subtraction can
    /// over-subtract (other heavy flows' reconstructions are themselves
    /// upper bounds), so its total can fall below even the flow's exact
    /// post-election volume's worth of evidence. This query clamps the curve
    /// total from below by that exact bound, which is the tightest sound
    /// lower bound the sketch can certify (see `umon-testkit`'s
    /// `heavy_volume_query_is_clamped_to_the_post_election_bound`).
    pub fn query_volume(&self, flow: &FlowKey) -> Option<f64> {
        let total = self.query(flow)?.total();
        match self.post_election_volume(flow) {
            Some(exact) => Some(total.max(exact as f64)),
            None => Some(total),
        }
    }

    /// Queries the reconstructed rate curve of `flow`.
    ///
    /// Heavy flows merge both parts: within the heavy bucket's epochs the
    /// private (collision-free, exact) values win; windows before the flow
    /// was elected heavy come from the light part, which counts every packet
    /// of every flow. Mice flows read the light part with heavy-flow
    /// contributions subtracted from shared buckets.
    pub fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let idx = self.heavy_index(flow);
        if self.slots[idx].key == Some(*flow) {
            let reports = self.heavy.snapshot_bucket(idx);
            let heavy = WindowSeries::from_reports(&reports);
            let light = self.query_light_with_subtraction(flow);
            return match (light, heavy) {
                (Some(mut l), Some(h)) => {
                    // The election window is only partially covered by the
                    // heavy bucket: packets the flow sent in that window
                    // *before* taking the slot were counted light-only. Keep
                    // whichever source saw more there (both upper-bound the
                    // truth; see tests/properties.rs).
                    let election = h.start_window;
                    let light_at_election = l.at(election);
                    l.overlay(&h);
                    let idx = (election - l.start_window) as usize;
                    l.values[idx] = l.values[idx].max(light_at_election);
                    Some(l)
                }
                (l, h) => h.or(l),
            };
        }
        self.query_light_with_subtraction(flow)
    }

    /// Light-part query with heavy-flow subtraction: for each of the flow's
    /// `d` light buckets, subtract the curves of heavy flows that hash into
    /// the same bucket, then take the candidate with the smallest total.
    fn query_light_with_subtraction(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let light_cfg = self.light.config();
        let mut best: Option<WindowSeries> = None;
        for (row, col, reports) in self.light.query_reports(flow) {
            let Some(mut series) = WindowSeries::from_reports(&reports) else {
                continue;
            };
            // Subtract every heavy flow sharing bucket (row, col).
            for slot in 0..self.config.heavy_rows {
                let Some(hkey) = self.slots[slot].key else {
                    continue;
                };
                if hkey == *flow {
                    continue;
                }
                let hcol = light_cfg.light_col(&hkey, row as usize) as u32;
                if hcol != col {
                    continue;
                }
                if let Some(hseries) = WindowSeries::from_reports(&self.heavy.snapshot_bucket(slot))
                {
                    series.subtract_clamped(&hseries);
                }
            }
            let replace = match &best {
                None => true,
                Some(b) => series.total() < b.total(),
            };
            if replace {
                best = Some(series);
            }
        }
        best
    }

    /// Drains the sketch into an uploadable report and resets all state for
    /// the next measurement period.
    pub fn drain(&mut self) -> SketchReport {
        let mut report = SketchReport::default();
        for slot in 0..self.config.heavy_rows {
            let reports: Vec<BucketReport> = self.heavy.drain_bucket(slot);
            if let Some(key) = self.slots[slot].key.take() {
                if !reports.is_empty() {
                    report.heavy.push((key.pack().to_vec(), reports));
                }
            }
            self.slots[slot].votes = 0;
        }
        report.light = self.light.drain();
        self.evictions = 0;
        report
    }

    /// Configured in-dataplane memory in bytes (heavy + light parts).
    pub fn memory_bytes(&self) -> usize {
        self.config.full_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;

    fn config() -> SketchConfig {
        SketchConfig::builder()
            .rows(3)
            .width(32)
            .levels(4)
            .topk(64)
            .max_windows(256)
            .heavy_rows(16)
            .selector(SelectorKind::Ideal)
            .build()
    }

    #[test]
    fn first_flow_becomes_heavy_candidate() {
        let mut s = FullWaveSketch::new(config());
        let f = FlowKey::from_id(1);
        s.update(&f, 0, 100);
        assert!(s.is_heavy(&f));
    }

    #[test]
    fn heavy_flow_query_is_collision_free() {
        let mut s = FullWaveSketch::new(config());
        let f = FlowKey::from_id(1);
        for w in 0..20 {
            s.update(&f, w, 1000);
        }
        // Add background mice that might collide in the light part.
        for id in 100..150 {
            s.update(&FlowKey::from_id(id), 5, 50);
        }
        let curve = s.query(&f).unwrap();
        for w in 0..20u64 {
            assert!((curve.at(w) - 1000.0).abs() < 1e-6, "window {w}");
        }
    }

    #[test]
    fn majority_vote_evicts_after_enough_challenges() {
        let mut s = FullWaveSketch::new(config());
        // Find two flows that share a heavy slot.
        let a = FlowKey::from_id(1);
        let b = (2..10_000u64)
            .map(FlowKey::from_id)
            .find(|k| s.config.heavy_slot(k) == s.config.heavy_slot(&a))
            .expect("some flow must collide");
        s.update(&a, 0, 10); // a installed, vote=1
        s.update(&b, 1, 10); // vote 0 → b evicts a
        assert!(s.is_heavy(&b));
        assert!(!s.is_heavy(&a));
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn evicted_flow_still_queryable_from_light_part() {
        let mut s = FullWaveSketch::new(config());
        let a = FlowKey::from_id(1);
        let b = (2..10_000u64)
            .map(FlowKey::from_id)
            .find(|k| s.config.heavy_slot(k) == s.config.heavy_slot(&a))
            .unwrap();
        s.update(&a, 0, 777);
        s.update(&b, 1, 10);
        s.update(&b, 2, 10);
        // a evicted; its volume must still be visible via the light part.
        let curve = s.query(&a).expect("light part has the history");
        assert!(curve.total() >= 777.0 - 1e-6);
    }

    #[test]
    fn mice_query_subtracts_heavy_contribution() {
        let mut s = FullWaveSketch::new(config());
        let heavy = FlowKey::from_id(1);
        for w in 0..100 {
            s.update(&heavy, w, 10_000);
        }
        // A mouse colliding with the heavy flow in the light part would be
        // massively overestimated without subtraction. Find a full collision.
        let mouse = (2..200_000u64).map(FlowKey::from_id).find(|k| {
            (0..3).all(|row| s.config.light_col(k, row) == s.config.light_col(&heavy, row))
                && !s.is_heavy(k)
        });
        let Some(mouse) = mouse else {
            // No full collision exists for this seed/width — the subtraction
            // path is still covered by the partial-collision assertion below.
            return;
        };
        s.update(&mouse, 50, 500);
        let est = s.query(&mouse).unwrap();
        // Without subtraction the estimate would be ≥ 1,000,000.
        assert!(
            est.total() < 50_000.0,
            "subtraction failed: total {}",
            est.total()
        );
        assert!(est.total() >= 500.0 - 1e-6);
    }

    #[test]
    fn mid_life_election_keeps_pre_election_history() {
        // Flow `a` starts as a mouse (another candidate holds its heavy
        // slot), then wins the slot mid-life. The query must still cover its
        // early windows via the light part.
        let mut s = FullWaveSketch::new(config());
        let a = FlowKey::from_id(1);
        let b = (2..10_000u64)
            .map(FlowKey::from_id)
            .find(|k| s.config.heavy_slot(k) == s.config.heavy_slot(&a))
            .expect("a colliding key exists");
        // b grabs the slot with a strong vote.
        for w in 0..3 {
            s.update(&b, w, 10);
        }
        // a sends early packets as a mouse (vote-challenging b)...
        s.update(&a, 5, 111);
        s.update(&a, 6, 222);
        s.update(&a, 7, 1); // vote hits 0 → a evicts b here
        assert!(s.is_heavy(&a), "a must have taken the slot");
        // ...and keeps sending as a heavy flow.
        s.update(&a, 10, 333);
        let curve = s.query(&a).expect("queryable");
        assert!(
            curve.at(5) >= 111.0 - 1e-6,
            "pre-election window lost: {}",
            curve.at(5)
        );
        assert!(curve.at(6) >= 222.0 - 1e-6);
        assert!(
            (curve.at(10) - 333.0).abs() < 1e-6,
            "heavy window must be exact"
        );
    }

    #[test]
    fn election_window_and_post_election_volume_are_exact() {
        let mut s = FullWaveSketch::new(config());
        let a = FlowKey::from_id(1);
        let b = (2..10_000u64)
            .map(FlowKey::from_id)
            .find(|k| s.config.heavy_slot(k) == s.config.heavy_slot(&a))
            .unwrap();
        // b holds the slot; a sends as a mouse, then takes the slot at w=7.
        for w in 0..3 {
            s.update(&b, w, 10);
        }
        s.update(&a, 4, 100);
        s.update(&a, 5, 100);
        s.update(&a, 7, 40); // vote 0 → a elected here
        s.update(&a, 9, 60);
        assert!(s.is_heavy(&a));
        assert_eq!(s.election_window(&a), Some(7));
        assert_eq!(s.post_election_volume(&a), Some(100));
        assert_eq!(s.election_window(&b), None);
        assert_eq!(s.post_election_volume(&b), None);
    }

    #[test]
    fn query_volume_never_falls_below_the_post_election_bound() {
        let mut s = FullWaveSketch::new(config());
        let f = FlowKey::from_id(3);
        for w in 0..50u64 {
            s.update(&f, w, 100 + (w as i64 % 5));
        }
        // Mice sharing light buckets make the light estimate noisy.
        for id in 100..160u64 {
            s.update(&FlowKey::from_id(id), 25, 900);
        }
        let exact = s.post_election_volume(&f).unwrap() as f64;
        let vol = s.query_volume(&f).unwrap();
        assert!(
            vol >= exact - 1e-9,
            "volume {vol} below exact bound {exact}"
        );
        // Mice flows get the plain light estimate.
        let mouse = FlowKey::from_id(120);
        if !s.is_heavy(&mouse) {
            let via_curve = s.query(&mouse).unwrap().total();
            assert_eq!(s.query_volume(&mouse), Some(via_curve));
        }
    }

    #[test]
    fn drain_produces_heavy_and_light_sections() {
        let mut s = FullWaveSketch::new(config());
        for id in 0..20u64 {
            for w in 0..10 {
                s.update(&FlowKey::from_id(id), w, 100);
            }
        }
        let report = s.drain();
        assert!(!report.heavy.is_empty());
        assert!(!report.light.is_empty());
        assert!(report.wire_bytes() > 0);
        // Sketch fully reset.
        assert!(s.query(&FlowKey::from_id(0)).is_none());
        assert_eq!(s.heavy_flows().len(), 0);
    }

    #[test]
    fn heavy_total_matches_injected_volume() {
        let mut s = FullWaveSketch::new(config());
        let f = FlowKey::from_id(3);
        let mut injected = 0i64;
        for w in 0..200u64 {
            let v = 100 + (w as i64 % 7) * 13;
            s.update(&f, w, v);
            injected += v;
        }
        let curve = s.query(&f).unwrap();
        assert!((curve.total() - injected as f64).abs() < 1e-6);
    }
}
