//! Configuration for WaveSketch instances.

use crate::select::SelectorKind;

/// Parameters of a WaveSketch (basic or full).
///
/// Paper defaults (§7.1): `rows = 3`, `width = 256`, `levels = 8`, `topk` set
/// from the memory budget (32–256), `max_windows` from the measurement period
/// (20 ms at 8.192 μs windows ≈ 2442, rounded up to a power of two).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchConfig {
    /// Number of hash rows `d` in the light/basic part.
    pub rows: usize,
    /// Buckets per row `w`. Sized to the number of *concurrent* flows in a
    /// microsecond window, not the total flow count (§4.2).
    pub width: usize,
    /// Wavelet decomposition depth `L`. The approximation array keeps one
    /// entry per `2^L` windows.
    pub levels: u32,
    /// Number of detail coefficients `K` retained per bucket.
    pub topk: usize,
    /// Maximum number of windows `n` a bucket can cover before it rolls over
    /// to a fresh epoch. Must be a power of two and `>= 2^levels`.
    pub max_windows: usize,
    /// Heavy-part rows `h` for the full version (ignored by the basic one).
    pub heavy_rows: usize,
    /// Which coefficient-selection strategy buckets use.
    pub selector: SelectorKind,
    /// Hash seed; two sketches with the same seed hash identically.
    pub seed: u64,
}

impl SketchConfig {
    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> SketchConfigBuilder {
        SketchConfigBuilder::default()
    }

    /// Entries in each bucket's approximation array: `ceil(n / 2^L)`.
    pub fn approx_len(&self) -> usize {
        let block = 1usize << self.levels;
        self.max_windows.div_ceil(block)
    }

    /// In-dataplane memory of one bucket in bytes.
    ///
    /// Counts the fixed fields (`w0`: 4 B, `i`: 2 B, `c`: 4 B), the
    /// approximation array (4 B per entry), the retained detail store
    /// (4 B value + 2 B level/index metadata per slot, the α ≈ 1.5 factor of
    /// §4.2) and the `L` in-flight partial details (4 B value + 2 B index).
    pub fn bucket_bytes(&self) -> usize {
        let fixed = 4 + 2 + 4;
        let approx = 4 * self.approx_len();
        let details = 6 * self.topk;
        let partial = 6 * self.levels as usize;
        fixed + approx + details + partial
    }

    /// Total in-dataplane memory of the basic sketch in bytes.
    pub fn basic_bytes(&self) -> usize {
        self.rows * self.width * self.bucket_bytes()
    }

    /// Total in-dataplane memory of the full sketch in bytes. Each heavy row
    /// adds a flow key (13 B for an IPv4 5-tuple) and a 4 B vote counter on
    /// top of the bucket itself.
    pub fn full_bytes(&self) -> usize {
        self.basic_bytes() + self.heavy_rows * (self.bucket_bytes() + 13 + 4)
    }

    /// A stable fingerprint of every knob that affects hashing and
    /// reconstruction. Reports tagged with a different fingerprint cannot be
    /// reconstructed correctly (wrong bucket placement or wavelet depth), so
    /// the analyzer refuses them.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.rows as u64,
            self.width as u64,
            self.levels as u64,
            self.max_windows as u64,
            self.heavy_rows as u64,
            self.seed,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Report size in bytes for one *active* bucket: `w0` plus the
    /// approximation array plus the retained details with metadata (§4.2:
    /// bandwidth is `O(n/2^L + K)` with metadata factor α).
    pub fn report_bytes_per_bucket(&self) -> usize {
        4 + 4 * self.approx_len() + 6 * self.topk
    }

    fn validate(&self) {
        assert!(self.rows > 0, "rows must be positive");
        assert!(self.width > 0, "width must be positive");
        assert!(self.levels > 0 && self.levels < 32, "levels must be in 1..32");
        assert!(self.topk > 0, "topk must be positive");
        assert!(
            self.max_windows.is_power_of_two(),
            "max_windows must be a power of two (got {})",
            self.max_windows
        );
        assert!(
            self.max_windows >= (1 << self.levels),
            "max_windows ({}) must be at least 2^levels ({})",
            self.max_windows,
            1u64 << self.levels
        );
    }
}

/// Builder for [`SketchConfig`], pre-loaded with the paper's defaults.
#[derive(Debug, Clone)]
pub struct SketchConfigBuilder {
    config: SketchConfig,
}

impl Default for SketchConfigBuilder {
    fn default() -> Self {
        Self {
            config: SketchConfig {
                rows: 3,
                width: 256,
                levels: 8,
                topk: 64,
                max_windows: 4096,
                heavy_rows: 256,
                selector: SelectorKind::Ideal,
                seed: 0x5EED_u64,
            },
        }
    }
}

impl SketchConfigBuilder {
    /// Sets the number of hash rows `d`.
    pub fn rows(mut self, d: usize) -> Self {
        self.config.rows = d;
        self
    }

    /// Sets the buckets per row `w`.
    pub fn width(mut self, w: usize) -> Self {
        self.config.width = w;
        self
    }

    /// Sets the wavelet depth `L`.
    pub fn levels(mut self, l: u32) -> Self {
        self.config.levels = l;
        self
    }

    /// Sets the retained-coefficient budget `K`.
    pub fn topk(mut self, k: usize) -> Self {
        self.config.topk = k;
        self
    }

    /// Sets the per-epoch window capacity `n` (rounded up to a power of two).
    pub fn max_windows(mut self, n: usize) -> Self {
        self.config.max_windows = n.next_power_of_two();
        self
    }

    /// Sets the heavy-part size `h` for the full version.
    pub fn heavy_rows(mut self, h: usize) -> Self {
        self.config.heavy_rows = h;
        self
    }

    /// Sets the coefficient-selection strategy.
    pub fn selector(mut self, s: SelectorKind) -> Self {
        self.config.selector = s;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero sizes, `max_windows` smaller
    /// than one approximation block, …).
    pub fn build(self) -> SketchConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SketchConfig::builder().build();
        assert_eq!(c.rows, 3);
        assert_eq!(c.width, 256);
        assert_eq!(c.levels, 8);
        assert_eq!(c.max_windows, 4096);
    }

    #[test]
    fn approx_len_is_windows_over_block() {
        let c = SketchConfig::builder().levels(8).max_windows(2048).build();
        assert_eq!(c.approx_len(), 8); // 2048 / 256
    }

    #[test]
    fn max_windows_rounds_up_to_power_of_two() {
        let c = SketchConfig::builder().max_windows(2442).build();
        assert_eq!(c.max_windows, 4096);
    }

    #[test]
    #[should_panic(expected = "at least 2^levels")]
    fn rejects_too_few_windows_for_depth() {
        SketchConfig::builder().levels(10).max_windows(512).build();
    }

    #[test]
    fn paper_compression_example_holds() {
        // §4.2: L=8, K=32, α=1.5, n=2000 → compression rate ≈ 0.028.
        // With n rounded to 2048: report = n/2^L entries + α·K entries.
        let c = SketchConfig::builder()
            .levels(8)
            .topk(32)
            .max_windows(2000)
            .build();
        let raw_entries = 2000.0;
        let kept_entries = c.approx_len() as f64 + 1.5 * 32.0;
        let ratio = kept_entries / raw_entries;
        assert!(ratio < 0.035, "ratio {ratio} should be near the paper's 0.028");
    }

    #[test]
    fn memory_model_is_monotone_in_every_knob() {
        let base = SketchConfig::builder().build();
        let more_k = SketchConfig::builder().topk(128).build();
        let more_w = SketchConfig::builder().width(512).build();
        assert!(more_k.basic_bytes() > base.basic_bytes());
        assert!(more_w.basic_bytes() > base.basic_bytes());
        assert!(base.full_bytes() > base.basic_bytes());
    }
}
