//! Configuration for WaveSketch instances, including the *lane* placement
//! that makes sharded ingest exact (see [`crate::sharded`]).

use crate::flow::FlowKey;
use crate::select::SelectorKind;

/// Hash tag reserved for the lane hash. Light rows use tags `0..d` (small)
/// and the heavy part uses `0xFF`, so `0xFE` yields an independent stream.
pub(crate) const LANE_TAG: u64 = 0xFE;

/// Hash tag of the heavy part (see [`SketchConfig::heavy_slot`]).
pub(crate) const HEAVY_TAG: u64 = 0xFF;

/// How many light-row hashes a [`Placement`] can carry precomputed. Configs
/// with more rows fall back to hashing rows lazily (still correct, just not
/// batched) — `d = 3` is the paper default and 4 is ample headroom.
const MAX_PREHASH_ROWS: usize = 4;

/// `h % m`, with the hardware divide replaced by a mask when `m` is a power
/// of two — the common case, since widths, lane counts and heavy-row counts
/// default to powers of two. The result is identical for every input.
#[inline]
pub(crate) fn fast_mod(h: u64, m: u64) -> u64 {
    if m.is_power_of_two() {
        h & (m - 1)
    } else {
        h % m
    }
}

/// `n / m`, shifting instead of dividing when `m` is a power of two.
#[inline]
fn fast_div(n: usize, m: usize) -> usize {
    if m.is_power_of_two() {
        n >> m.trailing_zeros()
    } else {
        n / m
    }
}

/// Per-update placement state, computed once via [`SketchConfig::place`] and
/// reused across all light rows and the heavy slot: the packed key bytes, the
/// flow's global lane, and the raw row/heavy hashes.
///
/// The derived indices are bit-identical to calling
/// [`SketchConfig::light_col`] / [`SketchConfig::heavy_slot`] per row; this
/// only removes redundant re-packing and re-hashing. All `d + 2` hashes of an
/// update are computed in one interleaved batch
/// ([`FlowKey::hash_packed_many`]) so their multiply chains overlap instead
/// of serializing — the single biggest cost of the pre-refactor packet path.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    packed: [u8; 13],
    lane: usize,
    /// Raw hashes for rows `0..prehashed_rows` (tags `0..d`).
    row_hashes: [u64; MAX_PREHASH_ROWS],
    /// Raw hash for the heavy slot (tag `0xFF`).
    heavy_hash: u64,
    /// How many leading entries of `row_hashes` are valid.
    prehashed_rows: u8,
}

impl Placement {
    /// The flow's global lane, in `0..lanes`.
    #[inline]
    pub fn lane(&self) -> usize {
        self.lane
    }
}

/// Parameters of a WaveSketch (basic or full).
///
/// Paper defaults (§7.1): `rows = 3`, `width = 256`, `levels = 8`, `topk` set
/// from the memory budget (32–256), `max_windows` from the measurement period
/// (20 ms at 8.192 μs windows ≈ 2442, rounded up to a power of two).
///
/// # Lanes
///
/// Bucket placement is hierarchical: a flow first hashes to one of `lanes`
/// *lanes*, then to a column (and heavy slot) inside that lane's contiguous
/// slice of the arrays. The marginal distribution is unchanged — every
/// (lane, within-lane) pair is one distinct column, so pairwise collision
/// probability stays `1/width` per row — but all of a flow's state lives
/// inside its lane. That is what lets [`crate::sharded::ShardedWaveSketch`]
/// split a sketch into independent per-shard instances whose union is
/// bit-identical to the sequential sketch. `lane_base` / `lane_count`
/// describe which slice of the global lane space this instance owns; a
/// stand-alone sketch owns all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchConfig {
    /// Number of hash rows `d` in the light/basic part.
    pub rows: usize,
    /// Buckets per row `w`. Sized to the number of *concurrent* flows in a
    /// microsecond window, not the total flow count (§4.2).
    pub width: usize,
    /// Wavelet decomposition depth `L`. The approximation array keeps one
    /// entry per `2^L` windows.
    pub levels: u32,
    /// Number of detail coefficients `K` retained per bucket.
    pub topk: usize,
    /// Maximum number of windows `n` a bucket can cover before it rolls over
    /// to a fresh epoch. Must be a power of two and `>= 2^levels`.
    pub max_windows: usize,
    /// Heavy-part rows `h` for the full version (ignored by the basic one).
    pub heavy_rows: usize,
    /// Which coefficient-selection strategy buckets use.
    pub selector: SelectorKind,
    /// Hash seed; two sketches with the same seed hash identically.
    pub seed: u64,
    /// Total lanes in the *global* lane space. Must divide `width` and
    /// `heavy_rows`. The builder auto-selects (largest power of two ≤ 8
    /// dividing both) when not set explicitly.
    pub lanes: usize,
    /// First global lane this instance owns (0 for a stand-alone sketch).
    pub lane_base: usize,
    /// Number of lanes this instance owns (`lanes` for a stand-alone
    /// sketch). `width` and `heavy_rows` cover exactly these lanes.
    pub lane_count: usize,
}

impl SketchConfig {
    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> SketchConfigBuilder {
        SketchConfigBuilder::default()
    }

    /// Entries in each bucket's approximation array: `ceil(n / 2^L)`.
    pub fn approx_len(&self) -> usize {
        let block = 1usize << self.levels;
        self.max_windows.div_ceil(block)
    }

    /// In-dataplane memory of one bucket in bytes.
    ///
    /// Counts the fixed fields (`w0`: 4 B, `i`: 2 B, `c`: 4 B), the
    /// approximation array (4 B per entry), the retained detail store
    /// (4 B value + 2 B level/index metadata per slot, the α ≈ 1.5 factor of
    /// §4.2) and the `L` in-flight partial details (4 B value + 2 B index).
    pub fn bucket_bytes(&self) -> usize {
        let fixed = 4 + 2 + 4;
        let approx = 4 * self.approx_len();
        let details = 6 * self.topk;
        let partial = 6 * self.levels as usize;
        fixed + approx + details + partial
    }

    /// Total in-dataplane memory of the basic sketch in bytes.
    pub fn basic_bytes(&self) -> usize {
        self.rows * self.width * self.bucket_bytes()
    }

    /// Total in-dataplane memory of the full sketch in bytes. Each heavy row
    /// adds a flow key (13 B for an IPv4 5-tuple) and a 4 B vote counter on
    /// top of the bucket itself.
    pub fn full_bytes(&self) -> usize {
        self.basic_bytes() + self.heavy_rows * (self.bucket_bytes() + 13 + 4)
    }

    /// A stable fingerprint of every knob that affects hashing and
    /// reconstruction. Reports tagged with a different fingerprint cannot be
    /// reconstructed correctly (wrong bucket placement or wavelet depth), so
    /// the analyzer refuses them.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.rows as u64,
            self.width as u64,
            self.levels as u64,
            self.max_windows as u64,
            self.heavy_rows as u64,
            self.seed,
            self.lanes as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Columns per lane in the light part.
    #[inline]
    pub fn lane_width(&self) -> usize {
        fast_div(self.width, self.lane_count)
    }

    /// Heavy slots per lane.
    #[inline]
    pub fn heavy_lane_rows(&self) -> usize {
        fast_div(self.heavy_rows, self.lane_count)
    }

    /// The flow's *global* lane, in `0..lanes`.
    #[inline]
    pub fn lane_of(&self, flow: &FlowKey) -> usize {
        fast_mod(flow.hash(LANE_TAG, self.seed), self.lanes as u64) as usize
    }

    /// Computes the per-update [`Placement`] once — packs the key and batches
    /// all `d + 2` hashes (lane, light rows, heavy slot) through one
    /// interleaved pass — to be reused by [`Self::light_col_placed`] and
    /// [`Self::heavy_slot_placed`].
    #[inline]
    pub fn place(&self, flow: &FlowKey) -> Placement {
        let packed = flow.pack();
        let mut row_hashes = [0u64; MAX_PREHASH_ROWS];
        let (lane_hash, heavy_hash, prehashed_rows) = match self.rows {
            1 => {
                let [l, r0, hh] =
                    FlowKey::hash_packed_many(&packed, [LANE_TAG, 0, HEAVY_TAG], self.seed);
                row_hashes[0] = r0;
                (l, hh, 1u8)
            }
            2 => {
                let [l, r0, r1, hh] =
                    FlowKey::hash_packed_many(&packed, [LANE_TAG, 0, 1, HEAVY_TAG], self.seed);
                row_hashes[..2].copy_from_slice(&[r0, r1]);
                (l, hh, 2)
            }
            3 => {
                let [l, r0, r1, r2, hh] =
                    FlowKey::hash_packed_many(&packed, [LANE_TAG, 0, 1, 2, HEAVY_TAG], self.seed);
                row_hashes[..3].copy_from_slice(&[r0, r1, r2]);
                (l, hh, 3)
            }
            4 => {
                let [l, r0, r1, r2, r3, hh] = FlowKey::hash_packed_many(
                    &packed,
                    [LANE_TAG, 0, 1, 2, 3, HEAVY_TAG],
                    self.seed,
                );
                row_hashes[..4].copy_from_slice(&[r0, r1, r2, r3]);
                (l, hh, 4)
            }
            _ => {
                // Unusually deep sketches hash rows lazily in
                // `light_col_placed`; lane and heavy still batch.
                let [l, hh] = FlowKey::hash_packed_many(&packed, [LANE_TAG, HEAVY_TAG], self.seed);
                (l, hh, 0)
            }
        };
        let lane = fast_mod(lane_hash, self.lanes as u64) as usize;
        Placement {
            packed,
            lane,
            row_hashes,
            heavy_hash,
            prehashed_rows,
        }
    }

    /// [`Self::light_col`] from a precomputed [`Placement`].
    #[inline]
    pub fn light_col_placed(&self, p: &Placement, row: usize) -> usize {
        debug_assert!(
            p.lane >= self.lane_base && p.lane < self.lane_base + self.lane_count,
            "flow routed to the wrong shard: lane {} not in [{}, {})",
            p.lane,
            self.lane_base,
            self.lane_base + self.lane_count
        );
        let row_hash = if row < p.prehashed_rows as usize {
            p.row_hashes[row]
        } else {
            FlowKey::hash_packed(&p.packed, row as u64, self.seed)
        };
        let lane_width = self.lane_width();
        (p.lane - self.lane_base) * lane_width + fast_mod(row_hash, lane_width as u64) as usize
    }

    /// [`Self::heavy_slot`] from a precomputed [`Placement`].
    #[inline]
    pub fn heavy_slot_placed(&self, p: &Placement) -> usize {
        debug_assert!(
            p.lane >= self.lane_base && p.lane < self.lane_base + self.lane_count,
            "flow routed to the wrong shard: lane {} not in [{}, {})",
            p.lane,
            self.lane_base,
            self.lane_base + self.lane_count
        );
        let per_lane = self.heavy_lane_rows();
        (p.lane - self.lane_base) * per_lane + fast_mod(p.heavy_hash, per_lane as u64) as usize
    }

    /// True if the flow's lane falls in this instance's owned slice.
    #[inline]
    pub fn owns_flow(&self, flow: &FlowKey) -> bool {
        let lane = self.lane_of(flow);
        (self.lane_base..self.lane_base + self.lane_count).contains(&lane)
    }

    /// Light-part column of `flow` in `row`, local to this instance.
    ///
    /// For a stand-alone sketch this is the global column; for a shard it is
    /// the global column minus the shard's column offset
    /// (`lane_base * lane_width`), so a shard's array is exactly the
    /// sequential sketch's slice. The flow must belong to an owned lane.
    #[inline]
    pub fn light_col(&self, flow: &FlowKey, row: usize) -> usize {
        self.light_col_placed(&self.place(flow), row)
    }

    /// Heavy-part slot of `flow`, local to this instance (same lane-relative
    /// layout as [`Self::light_col`]).
    #[inline]
    pub fn heavy_slot(&self, flow: &FlowKey) -> usize {
        self.heavy_slot_placed(&self.place(flow))
    }

    /// The shard (out of `shard_count`) that owns `flow` when the global lane
    /// space is split evenly across `shard_count` shards.
    #[inline]
    pub fn shard_of(&self, flow: &FlowKey, shard_count: usize) -> usize {
        debug_assert!(self.lanes.is_multiple_of(shard_count));
        self.lane_of(flow) / (self.lanes / shard_count)
    }

    /// Derives the configuration of shard `shard` out of `shard_count`: the
    /// same hashing knobs over a `1/shard_count` slice of lanes, columns and
    /// heavy slots. Only a global config (owning every lane) can be sliced.
    ///
    /// # Panics
    ///
    /// Panics if this config is already a slice, `shard_count` does not
    /// divide `lanes`, or `shard >= shard_count`.
    pub fn shard_slice(&self, shard: usize, shard_count: usize) -> SketchConfig {
        assert!(
            self.lane_base == 0 && self.lane_count == self.lanes,
            "only a global config can be sliced into shards"
        );
        assert!(shard_count >= 1, "shard_count must be positive");
        assert!(
            self.lanes.is_multiple_of(shard_count),
            "shard_count ({shard_count}) must divide lanes ({})",
            self.lanes
        );
        assert!(shard < shard_count, "shard {shard} out of {shard_count}");
        let per = self.lanes / shard_count;
        let sliced = SketchConfig {
            width: self.width / shard_count,
            heavy_rows: self.heavy_rows / shard_count,
            lane_base: shard * per,
            lane_count: per,
            ..self.clone()
        };
        sliced.validate();
        sliced
    }

    /// Report size in bytes for one *active* bucket: `w0` plus the
    /// approximation array plus the retained details with metadata (§4.2:
    /// bandwidth is `O(n/2^L + K)` with metadata factor α).
    pub fn report_bytes_per_bucket(&self) -> usize {
        4 + 4 * self.approx_len() + 6 * self.topk
    }

    fn validate(&self) {
        assert!(self.rows > 0, "rows must be positive");
        assert!(self.width > 0, "width must be positive");
        assert!(
            self.levels > 0 && self.levels < 32,
            "levels must be in 1..32"
        );
        assert!(self.topk > 0, "topk must be positive");
        assert!(
            self.max_windows.is_power_of_two(),
            "max_windows must be a power of two (got {})",
            self.max_windows
        );
        assert!(
            self.max_windows >= (1 << self.levels),
            "max_windows ({}) must be at least 2^levels ({})",
            self.max_windows,
            1u64 << self.levels
        );
        assert!(self.lanes > 0, "lanes must be positive");
        assert!(
            self.lane_count > 0 && self.lane_count <= self.lanes,
            "lane_count ({}) must be in 1..=lanes ({})",
            self.lane_count,
            self.lanes
        );
        assert!(
            self.lane_base + self.lane_count <= self.lanes,
            "lane slice [{}, {}) exceeds lanes ({})",
            self.lane_base,
            self.lane_base + self.lane_count,
            self.lanes
        );
        assert!(
            self.width.is_multiple_of(self.lane_count),
            "width ({}) must be divisible by owned lanes ({})",
            self.width,
            self.lane_count
        );
        assert!(
            self.heavy_rows.is_multiple_of(self.lane_count),
            "heavy_rows ({}) must be divisible by owned lanes ({})",
            self.heavy_rows,
            self.lane_count
        );
    }
}

/// Builder for [`SketchConfig`], pre-loaded with the paper's defaults.
#[derive(Debug, Clone)]
pub struct SketchConfigBuilder {
    config: SketchConfig,
}

impl Default for SketchConfigBuilder {
    fn default() -> Self {
        Self {
            config: SketchConfig {
                rows: 3,
                width: 256,
                levels: 8,
                topk: 64,
                max_windows: 4096,
                heavy_rows: 256,
                selector: SelectorKind::Ideal,
                seed: 0x5EED_u64,
                lanes: 0, // auto-selected in build()
                lane_base: 0,
                lane_count: 0, // resolved to `lanes` in build()
            },
        }
    }
}

impl SketchConfigBuilder {
    /// Sets the number of hash rows `d`.
    pub fn rows(mut self, d: usize) -> Self {
        self.config.rows = d;
        self
    }

    /// Sets the buckets per row `w`.
    pub fn width(mut self, w: usize) -> Self {
        self.config.width = w;
        self
    }

    /// Sets the wavelet depth `L`.
    pub fn levels(mut self, l: u32) -> Self {
        self.config.levels = l;
        self
    }

    /// Sets the retained-coefficient budget `K`.
    pub fn topk(mut self, k: usize) -> Self {
        self.config.topk = k;
        self
    }

    /// Sets the per-epoch window capacity `n` (rounded up to a power of two).
    pub fn max_windows(mut self, n: usize) -> Self {
        self.config.max_windows = n.next_power_of_two();
        self
    }

    /// Sets the heavy-part size `h` for the full version.
    pub fn heavy_rows(mut self, h: usize) -> Self {
        self.config.heavy_rows = h;
        self
    }

    /// Sets the coefficient-selection strategy.
    pub fn selector(mut self, s: SelectorKind) -> Self {
        self.config.selector = s;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the lane count explicitly (must divide `width` and
    /// `heavy_rows`). When not called, `build()` picks the largest power of
    /// two ≤ 8 that divides both, so any config stays valid.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.config.lanes = lanes;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero sizes, `max_windows` smaller
    /// than one approximation block, lanes not dividing the arrays, …).
    pub fn build(mut self) -> SketchConfig {
        if self.config.lanes == 0 {
            // Auto: the largest power of two ≤ 8 dividing both arrays. 8
            // lanes allow up to 8-way sharding while keeping the chance of a
            // full d-row collision (lane hash shared across rows) negligible.
            let pow2_div = |n: usize| -> u32 {
                if n == 0 {
                    u32::MAX
                } else {
                    n.trailing_zeros()
                }
            };
            let exp = 3u32
                .min(pow2_div(self.config.width))
                .min(pow2_div(self.config.heavy_rows));
            self.config.lanes = 1 << exp;
        }
        if self.config.lane_count == 0 {
            self.config.lane_count = self.config.lanes;
        }
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SketchConfig::builder().build();
        assert_eq!(c.rows, 3);
        assert_eq!(c.width, 256);
        assert_eq!(c.levels, 8);
        assert_eq!(c.max_windows, 4096);
    }

    #[test]
    fn approx_len_is_windows_over_block() {
        let c = SketchConfig::builder().levels(8).max_windows(2048).build();
        assert_eq!(c.approx_len(), 8); // 2048 / 256
    }

    #[test]
    fn max_windows_rounds_up_to_power_of_two() {
        let c = SketchConfig::builder().max_windows(2442).build();
        assert_eq!(c.max_windows, 4096);
    }

    #[test]
    #[should_panic(expected = "at least 2^levels")]
    fn rejects_too_few_windows_for_depth() {
        SketchConfig::builder().levels(10).max_windows(512).build();
    }

    #[test]
    fn paper_compression_example_holds() {
        // §4.2: L=8, K=32, α=1.5, n=2000 → compression rate ≈ 0.028.
        // With n rounded to 2048: report = n/2^L entries + α·K entries.
        let c = SketchConfig::builder()
            .levels(8)
            .topk(32)
            .max_windows(2000)
            .build();
        let raw_entries = 2000.0;
        let kept_entries = c.approx_len() as f64 + 1.5 * 32.0;
        let ratio = kept_entries / raw_entries;
        assert!(
            ratio < 0.035,
            "ratio {ratio} should be near the paper's 0.028"
        );
    }

    #[test]
    fn lanes_auto_select_to_largest_fitting_power_of_two() {
        assert_eq!(SketchConfig::builder().build().lanes, 8);
        // width 1 (single-bucket ablations) can only support one lane.
        assert_eq!(SketchConfig::builder().width(1).build().lanes, 1);
        // heavy_rows 4 caps the lane count at 4.
        assert_eq!(SketchConfig::builder().heavy_rows(4).build().lanes, 4);
        // Non-power-of-two width keeps its largest power-of-two factor.
        assert_eq!(
            SketchConfig::builder()
                .width(12)
                .heavy_rows(12)
                .build()
                .lanes,
            4
        );
    }

    #[test]
    #[should_panic(expected = "divisible by owned lanes")]
    fn explicit_lanes_must_divide_width() {
        SketchConfig::builder().width(10).lanes(4).build();
    }

    #[test]
    fn shard_slice_partitions_lanes_and_arrays() {
        let global = SketchConfig::builder().build(); // w=256, h=256, lanes=8
        for n in [1usize, 2, 4, 8] {
            let mut lanes_seen = 0;
            for s in 0..n {
                let slice = global.shard_slice(s, n);
                assert_eq!(slice.width, global.width / n);
                assert_eq!(slice.heavy_rows, global.heavy_rows / n);
                assert_eq!(slice.lane_count, global.lanes / n);
                assert_eq!(slice.lane_base, s * global.lanes / n);
                assert_eq!(slice.lane_width(), global.lane_width());
                assert_eq!(slice.heavy_lane_rows(), global.heavy_lane_rows());
                lanes_seen += slice.lane_count;
            }
            assert_eq!(lanes_seen, global.lanes);
        }
    }

    #[test]
    fn shard_placement_matches_global_placement() {
        use crate::flow::FlowKey;
        let global = SketchConfig::builder().build();
        for n in [1usize, 2, 4, 8] {
            for id in 0..500u64 {
                let f = FlowKey::from_id(id);
                let shard = global.shard_of(&f, n);
                let slice = global.shard_slice(shard, n);
                assert!(slice.owns_flow(&f));
                // Local placement + shard offset == global placement.
                for row in 0..global.rows {
                    assert_eq!(
                        shard * slice.width + slice.light_col(&f, row),
                        global.light_col(&f, row),
                        "flow {id} row {row} n {n}"
                    );
                }
                assert_eq!(
                    shard * slice.heavy_rows + slice.heavy_slot(&f),
                    global.heavy_slot(&f)
                );
            }
        }
    }

    #[test]
    fn lane_placement_keeps_columns_uniformish() {
        use crate::flow::FlowKey;
        let c = SketchConfig::builder().build();
        let mut counts = vec![0usize; c.width];
        let flows = 64 * c.width;
        for id in 0..flows as u64 {
            counts[c.light_col(&FlowKey::from_id(id), 0)] += 1;
        }
        // Every column reachable, no column pathologically hot.
        assert!(counts.iter().all(|&n| n > 0), "unreachable column");
        let max = *counts.iter().max().unwrap();
        assert!(max < 64 * 3, "hot column: {max} of expected 64");
    }

    #[test]
    #[should_panic(expected = "only a global config")]
    fn shard_slice_rejects_double_slicing() {
        let c = SketchConfig::builder().build();
        c.shard_slice(0, 2).shard_slice(0, 2);
    }

    #[test]
    fn memory_model_is_monotone_in_every_knob() {
        let base = SketchConfig::builder().build();
        let more_k = SketchConfig::builder().topk(128).build();
        let more_w = SketchConfig::builder().width(512).build();
        assert!(more_k.basic_bytes() > base.basic_bytes());
        assert!(more_w.basic_bytes() > base.basic_bytes());
        assert!(base.full_bytes() > base.basic_bytes());
    }
}
