//! The wire format a measurement point ships to the μMon analyzer and its
//! bandwidth accounting.
//!
//! Per §4.2, only `w0`, the approximation set `A` and the retained detail set
//! `D` travel to the analyzer: bandwidth is `O(n/2^L + K)` per bucket, with a
//! metadata factor α > 1 for each detail coefficient's level and index.

use crate::select::Candidate;
use crate::streaming::EpochCoefficients;
use serde::{Deserialize, Serialize};

/// A retained detail coefficient on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailRecord {
    /// Loop level (0-based, spans `2^{level+1}` windows).
    pub level: u32,
    /// Position index within the level.
    pub idx: u32,
    /// Unnormalized coefficient value.
    pub val: i64,
}

impl From<Candidate> for DetailRecord {
    fn from(c: Candidate) -> Self {
        Self {
            level: c.level,
            idx: c.idx,
            val: c.val,
        }
    }
}

/// The compressed record of one bucket epoch: everything needed to
/// reconstruct the epoch's window series at the analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketReport {
    /// Absolute window id of the first window in the epoch.
    pub w0: u64,
    /// Wavelet depth the bucket ran with.
    pub levels: u32,
    /// Padded epoch length in windows (power of two).
    pub padded_len: usize,
    /// Approximation coefficients (block sums over `2^levels` windows).
    pub approx: Vec<i64>,
    /// Retained detail coefficients.
    pub details: Vec<DetailRecord>,
}

impl BucketReport {
    /// Packs finished epoch coefficients into a report.
    pub fn from_coeffs(w0: u64, coeffs: EpochCoefficients) -> Self {
        Self {
            w0,
            levels: coeffs.levels,
            padded_len: coeffs.padded_len,
            approx: coeffs.approx,
            details: coeffs.details.into_iter().map(DetailRecord::from).collect(),
        }
    }

    /// Rebuilds the coefficient set for [`crate::reconstruct::reconstruct`].
    pub fn coeffs(&self) -> EpochCoefficients {
        EpochCoefficients {
            levels: self.levels,
            padded_len: self.padded_len,
            approx: self.approx.clone(),
            details: self
                .details
                .iter()
                .map(|d| Candidate {
                    level: d.level,
                    idx: d.idx,
                    val: d.val,
                })
                .collect(),
        }
    }

    /// Reconstructed per-window values (non-negative clamped), anchored at
    /// [`Self::w0`].
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut scratch = crate::reconstruct::ReconstructScratch::new();
        self.reconstruct_with(&mut scratch).to_vec()
    }

    /// As [`Self::reconstruct`], but into a reusable scratch — the sparse
    /// kernel runs straight off the wire fields, so a warm scratch makes this
    /// allocation-free.
    pub fn reconstruct_with<'a>(
        &self,
        scratch: &'a mut crate::reconstruct::ReconstructScratch,
    ) -> &'a [f64] {
        crate::reconstruct::reconstruct_sparse_non_negative_into(
            self.levels,
            self.padded_len,
            &self.approx,
            self.details.iter().map(|d| (d.level, d.idx, d.val)),
            scratch,
        )
    }

    /// Total bytes of the epoch (exact — approximation coefficients are block
    /// sums and all of them are retained).
    pub fn total(&self) -> i64 {
        self.approx.iter().sum()
    }

    /// On-the-wire size in bytes: 4 (w0, relative to the period base) +
    /// 4 per approximation coefficient + 6 per detail (4 value + 2 packed
    /// level/index metadata — the α factor of §4.2).
    pub fn wire_bytes(&self) -> usize {
        4 + 4 * self.approx.len() + 6 * self.details.len()
    }

    /// Compression ratio vs. shipping one 4-byte counter per (padded) window.
    pub fn compression_ratio(&self) -> f64 {
        if self.padded_len == 0 {
            return 1.0;
        }
        self.wire_bytes() as f64 / (4.0 * self.padded_len as f64)
    }
}

/// A full sketch report: every active bucket's epochs from one measurement
/// period, as uploaded by a host agent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Reports from the heavy part, tagged with the exact flow key bytes.
    pub heavy: Vec<(Vec<u8>, Vec<BucketReport>)>,
    /// Reports from the light part, tagged with (row, bucket index).
    pub light: Vec<(u32, u32, Vec<BucketReport>)>,
}

impl SketchReport {
    /// Total wire size in bytes, including per-entry tags (13-byte flow key
    /// for heavy entries, 3-byte row/index for light entries).
    pub fn wire_bytes(&self) -> usize {
        let heavy: usize = self
            .heavy
            .iter()
            .map(|(k, rs)| k.len() + rs.iter().map(BucketReport::wire_bytes).sum::<usize>())
            .sum();
        let light: usize = self
            .light
            .iter()
            .map(|(_, _, rs)| 3 + rs.iter().map(BucketReport::wire_bytes).sum::<usize>())
            .sum();
        heavy + light
    }

    /// Number of bucket-epoch records carried.
    pub fn epoch_count(&self) -> usize {
        self.heavy.iter().map(|(_, r)| r.len()).sum::<usize>()
            + self.light.iter().map(|(_, _, r)| r.len()).sum::<usize>()
    }

    /// A cheap structural checksum (FNV-1a over every tag and coefficient).
    ///
    /// Collection envelopes carry this value so the analyzer can detect
    /// truncated or corrupted payloads without deserializing twice: any
    /// dropped entry, reordered record or flipped coefficient changes the
    /// digest. Not cryptographic — it guards against lossy transports, not
    /// adversaries.
    pub fn integrity(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            let mut h = h;
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        fn mix_bucket(mut h: u64, r: &BucketReport) -> u64 {
            h = mix(h, r.w0);
            h = mix(h, r.levels as u64);
            h = mix(h, r.padded_len as u64);
            for &a in &r.approx {
                h = mix(h, a as u64);
            }
            for d in &r.details {
                h = mix(h, ((d.level as u64) << 32) | d.idx as u64);
                h = mix(h, d.val as u64);
            }
            h
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (key, reports) in &self.heavy {
            for &b in key {
                h = mix(h, b as u64);
            }
            h = mix(h, reports.len() as u64);
            for r in reports {
                h = mix_bucket(h, r);
            }
        }
        for &(row, col, ref reports) in &self.light {
            h = mix(h, ((row as u64) << 32) | col as u64);
            h = mix(h, reports.len() as u64);
            for r in reports {
                h = mix_bucket(h, r);
            }
        }
        mix(h, self.epoch_count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{CoeffSelector, IdealTopK};
    use crate::streaming::StreamingTransform;

    fn sample_report() -> BucketReport {
        let mut t = StreamingTransform::new(3, 16, IdealTopK::new(64));
        for (i, v) in [(0u32, 10i64), (1, 20), (5, 5), (9, 40)] {
            t.push(i, v);
        }
        BucketReport::from_coeffs(100, t.finish())
    }

    #[test]
    fn coeffs_roundtrip_through_report() {
        let r = sample_report();
        let rec = r.reconstruct();
        assert_eq!(rec.len(), r.padded_len);
        assert!((rec[0] - 10.0).abs() < 1e-9);
        assert!((rec[9] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_exact() {
        assert_eq!(sample_report().total(), 75);
    }

    #[test]
    fn wire_bytes_counts_all_fields() {
        let r = sample_report();
        assert_eq!(r.wire_bytes(), 4 + 4 * r.approx.len() + 6 * r.details.len());
    }

    #[test]
    fn compression_ratio_shrinks_for_long_epochs() {
        // 2048-window epoch, L=8, K=32: ratio should be near the paper's
        // 0.028 example (§4.2).
        let mut t = StreamingTransform::new(8, 2048, IdealTopK::new(32));
        for i in 0..2000u32 {
            t.push(i, ((i * 7919) % 1501) as i64);
        }
        let r = BucketReport::from_coeffs(0, t.finish());
        let ratio = r.compression_ratio();
        assert!(ratio < 0.05, "ratio {ratio} too large");
        assert!(ratio > 0.005, "ratio {ratio} implausibly small");
    }

    #[test]
    fn empty_selector_keeps_reports_small_but_valid() {
        let mut t = StreamingTransform::new(2, 8, IdealTopK::new(1));
        t.push(0, 100);
        let r = BucketReport::from_coeffs(0, t.finish());
        assert!(r.wire_bytes() >= 8);
        assert!(!r.reconstruct().is_empty());
    }

    #[test]
    fn sketch_report_accounting() {
        let r = sample_report();
        let mut sr = SketchReport::default();
        sr.heavy.push((vec![0u8; 13], vec![r.clone()]));
        sr.light.push((0, 5, vec![r.clone(), r.clone()]));
        assert_eq!(sr.epoch_count(), 3);
        assert_eq!(
            sr.wire_bytes(),
            13 + r.wire_bytes() + 3 + 2 * r.wire_bytes()
        );
    }

    #[test]
    fn integrity_detects_truncation_and_corruption() {
        let r = sample_report();
        let mut sr = SketchReport::default();
        sr.heavy.push((vec![1u8; 13], vec![r.clone()]));
        sr.light.push((0, 5, vec![r.clone(), r.clone()]));
        let base = sr.integrity();
        assert_eq!(base, sr.integrity(), "digest must be deterministic");

        let mut truncated = sr.clone();
        truncated.light.pop();
        assert_ne!(base, truncated.integrity(), "dropped entry undetected");

        let mut shorter = sr.clone();
        shorter.light[0].2.pop();
        assert_ne!(base, shorter.integrity(), "dropped epoch undetected");

        let mut flipped = sr.clone();
        flipped.heavy[0].1[0].approx[0] ^= 1;
        assert_ne!(base, flipped.integrity(), "flipped coefficient undetected");

        let mut retagged = sr;
        retagged.light[0].1 = 6;
        assert_ne!(base, retagged.integrity(), "retagged column undetected");
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: BucketReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn details_are_offered_nonzero_only() {
        // A constant signal has zero detail coefficients everywhere — the
        // selector must not waste slots on them.
        let mut sel = IdealTopK::new(8);
        let mut t = StreamingTransform::new(3, 16, IdealTopK::new(8));
        for i in 0..16u32 {
            t.push(i, 42);
        }
        let out = t.finish();
        assert!(out.details.iter().all(|c| c.val != 0));
        sel.reset();
    }
}
