//! The wire format a measurement point ships to the μMon analyzer and its
//! bandwidth accounting.
//!
//! Per §4.2, only `w0`, the approximation set `A` and the retained detail set
//! `D` travel to the analyzer: bandwidth is `O(n/2^L + K)` per bucket, with a
//! metadata factor α > 1 for each detail coefficient's level and index.

use crate::select::Candidate;
use crate::streaming::EpochCoefficients;
use serde::{Deserialize, Serialize};

/// A retained detail coefficient on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailRecord {
    /// Loop level (0-based, spans `2^{level+1}` windows).
    pub level: u32,
    /// Position index within the level.
    pub idx: u32,
    /// Unnormalized coefficient value.
    pub val: i64,
}

impl From<Candidate> for DetailRecord {
    fn from(c: Candidate) -> Self {
        Self {
            level: c.level,
            idx: c.idx,
            val: c.val,
        }
    }
}

/// The compressed record of one bucket epoch: everything needed to
/// reconstruct the epoch's window series at the analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketReport {
    /// Absolute window id of the first window in the epoch.
    pub w0: u64,
    /// Wavelet depth the bucket ran with.
    pub levels: u32,
    /// Padded epoch length in windows (power of two).
    pub padded_len: usize,
    /// Approximation coefficients (block sums over `2^levels` windows).
    pub approx: Vec<i64>,
    /// Retained detail coefficients.
    pub details: Vec<DetailRecord>,
}

impl BucketReport {
    /// Packs finished epoch coefficients into a report.
    pub fn from_coeffs(w0: u64, coeffs: EpochCoefficients) -> Self {
        Self {
            w0,
            levels: coeffs.levels,
            padded_len: coeffs.padded_len,
            approx: coeffs.approx,
            details: coeffs.details.into_iter().map(DetailRecord::from).collect(),
        }
    }

    /// Rebuilds the coefficient set for [`crate::reconstruct::reconstruct`].
    pub fn coeffs(&self) -> EpochCoefficients {
        EpochCoefficients {
            levels: self.levels,
            padded_len: self.padded_len,
            approx: self.approx.clone(),
            details: self
                .details
                .iter()
                .map(|d| Candidate {
                    level: d.level,
                    idx: d.idx,
                    val: d.val,
                })
                .collect(),
        }
    }

    /// Reconstructed per-window values (non-negative clamped), anchored at
    /// [`Self::w0`].
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut scratch = crate::reconstruct::ReconstructScratch::new();
        self.reconstruct_with(&mut scratch).to_vec()
    }

    /// As [`Self::reconstruct`], but into a reusable scratch — the sparse
    /// kernel runs straight off the wire fields, so a warm scratch makes this
    /// allocation-free.
    pub fn reconstruct_with<'a>(
        &self,
        scratch: &'a mut crate::reconstruct::ReconstructScratch,
    ) -> &'a [f64] {
        crate::reconstruct::reconstruct_sparse_non_negative_into(
            self.levels,
            self.padded_len,
            &self.approx,
            self.details.iter().map(|d| (d.level, d.idx, d.val)),
            scratch,
        )
    }

    /// Total bytes of the epoch (exact — approximation coefficients are block
    /// sums and all of them are retained).
    pub fn total(&self) -> i64 {
        self.approx.iter().sum()
    }

    /// On-the-wire size in bytes: 4 (w0, relative to the period base) +
    /// 4 per approximation coefficient + 6 per detail (4 value + 2 packed
    /// level/index metadata — the α factor of §4.2).
    pub fn wire_bytes(&self) -> usize {
        4 + 4 * self.approx.len() + 6 * self.details.len()
    }

    /// Compression ratio vs. shipping one 4-byte counter per (padded) window.
    pub fn compression_ratio(&self) -> f64 {
        if self.padded_len == 0 {
            return 1.0;
        }
        self.wire_bytes() as f64 / (4.0 * self.padded_len as f64)
    }
}

// ---------------------------------------------------------------------------
// Compact binary serialization
//
// The on-disk period archive (`umon::archive`) stores every accepted report
// forever, so its record payloads use a dense binary encoding instead of
// JSON: varint (LEB128) lengths and zigzag-varint coefficients. Coefficients
// are small deltas most of the time, so zigzag varints beat fixed-width i64
// by ~5-7x on real reports (see the codec tests). Decoding never panics on
// truncated or corrupt input — the archive's crash-recovery path feeds it
// arbitrary tails.
// ---------------------------------------------------------------------------

/// Appends `v` as an unsigned LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (small magnitudes → short varints).
fn put_varint_i64(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` on truncation or
/// a varint longer than 10 bytes (corrupt input).
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads one zigzag varint at `*pos`.
fn get_varint_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let z = get_varint(buf, pos)?;
    Some(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Hard cap on decoded list lengths: a corrupt length prefix must fail the
/// decode, not attempt a multi-gigabyte allocation.
const MAX_DECODE_LEN: u64 = 1 << 24;

fn checked_len(v: u64) -> Option<usize> {
    (v <= MAX_DECODE_LEN).then_some(v as usize)
}

impl BucketReport {
    /// Appends the compact binary encoding of this epoch to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.w0);
        put_varint(out, self.levels as u64);
        put_varint(out, self.padded_len as u64);
        put_varint(out, self.approx.len() as u64);
        for &a in &self.approx {
            put_varint_i64(out, a);
        }
        put_varint(out, self.details.len() as u64);
        for d in &self.details {
            put_varint(out, d.level as u64);
            put_varint(out, d.idx as u64);
            put_varint_i64(out, d.val);
        }
    }

    /// Decodes one epoch at `*pos`, advancing it past the record. `None` on
    /// truncated or corrupt input (never panics).
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let w0 = get_varint(buf, pos)?;
        let levels = u32::try_from(get_varint(buf, pos)?).ok()?;
        let padded_len = checked_len(get_varint(buf, pos)?)?;
        let n_approx = checked_len(get_varint(buf, pos)?)?;
        let mut approx = Vec::with_capacity(n_approx);
        for _ in 0..n_approx {
            approx.push(get_varint_i64(buf, pos)?);
        }
        let n_details = checked_len(get_varint(buf, pos)?)?;
        let mut details = Vec::with_capacity(n_details);
        for _ in 0..n_details {
            let level = u32::try_from(get_varint(buf, pos)?).ok()?;
            let idx = u32::try_from(get_varint(buf, pos)?).ok()?;
            let val = get_varint_i64(buf, pos)?;
            details.push(DetailRecord { level, idx, val });
        }
        Some(Self {
            w0,
            levels,
            padded_len,
            approx,
            details,
        })
    }
}

/// A full sketch report: every active bucket's epochs from one measurement
/// period, as uploaded by a host agent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Reports from the heavy part, tagged with the exact flow key bytes.
    pub heavy: Vec<(Vec<u8>, Vec<BucketReport>)>,
    /// Reports from the light part, tagged with (row, bucket index).
    pub light: Vec<(u32, u32, Vec<BucketReport>)>,
}

impl SketchReport {
    /// Total wire size in bytes, including per-entry tags (13-byte flow key
    /// for heavy entries, 3-byte row/index for light entries).
    pub fn wire_bytes(&self) -> usize {
        let heavy: usize = self
            .heavy
            .iter()
            .map(|(k, rs)| k.len() + rs.iter().map(BucketReport::wire_bytes).sum::<usize>())
            .sum();
        let light: usize = self
            .light
            .iter()
            .map(|(_, _, rs)| 3 + rs.iter().map(BucketReport::wire_bytes).sum::<usize>())
            .sum();
        heavy + light
    }

    /// Number of bucket-epoch records carried.
    pub fn epoch_count(&self) -> usize {
        self.heavy.iter().map(|(_, r)| r.len()).sum::<usize>()
            + self.light.iter().map(|(_, _, r)| r.len()).sum::<usize>()
    }

    /// A cheap structural checksum (FNV-1a over every tag and coefficient).
    ///
    /// Collection envelopes carry this value so the analyzer can detect
    /// truncated or corrupted payloads without deserializing twice: any
    /// dropped entry, reordered record or flipped coefficient changes the
    /// digest. Not cryptographic — it guards against lossy transports, not
    /// adversaries.
    pub fn integrity(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            let mut h = h;
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        fn mix_bucket(mut h: u64, r: &BucketReport) -> u64 {
            h = mix(h, r.w0);
            h = mix(h, r.levels as u64);
            h = mix(h, r.padded_len as u64);
            for &a in &r.approx {
                h = mix(h, a as u64);
            }
            for d in &r.details {
                h = mix(h, ((d.level as u64) << 32) | d.idx as u64);
                h = mix(h, d.val as u64);
            }
            h
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (key, reports) in &self.heavy {
            for &b in key {
                h = mix(h, b as u64);
            }
            h = mix(h, reports.len() as u64);
            for r in reports {
                h = mix_bucket(h, r);
            }
        }
        for &(row, col, ref reports) in &self.light {
            h = mix(h, ((row as u64) << 32) | col as u64);
            h = mix(h, reports.len() as u64);
            for r in reports {
                h = mix_bucket(h, r);
            }
        }
        mix(h, self.epoch_count() as u64)
    }

    /// Appends the compact binary encoding of the whole report to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.heavy.len() as u64);
        for (key, reports) in &self.heavy {
            put_varint(out, key.len() as u64);
            out.extend_from_slice(key);
            put_varint(out, reports.len() as u64);
            for r in reports {
                r.encode_into(out);
            }
        }
        put_varint(out, self.light.len() as u64);
        for &(row, col, ref reports) in &self.light {
            put_varint(out, row as u64);
            put_varint(out, col as u64);
            put_varint(out, reports.len() as u64);
            for r in reports {
                r.encode_into(out);
            }
        }
    }

    /// Convenience: the compact binary encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one report at `*pos`, advancing it past the record. `None` on
    /// truncated or corrupt input (never panics).
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let n_heavy = checked_len(get_varint(buf, pos)?)?;
        let mut heavy = Vec::with_capacity(n_heavy);
        for _ in 0..n_heavy {
            let key_len = checked_len(get_varint(buf, pos)?)?;
            let key = buf.get(*pos..*pos + key_len)?.to_vec();
            *pos += key_len;
            let n_reports = checked_len(get_varint(buf, pos)?)?;
            let mut reports = Vec::with_capacity(n_reports);
            for _ in 0..n_reports {
                reports.push(BucketReport::decode_from(buf, pos)?);
            }
            heavy.push((key, reports));
        }
        let n_light = checked_len(get_varint(buf, pos)?)?;
        let mut light = Vec::with_capacity(n_light);
        for _ in 0..n_light {
            let row = u32::try_from(get_varint(buf, pos)?).ok()?;
            let col = u32::try_from(get_varint(buf, pos)?).ok()?;
            let n_reports = checked_len(get_varint(buf, pos)?)?;
            let mut reports = Vec::with_capacity(n_reports);
            for _ in 0..n_reports {
                reports.push(BucketReport::decode_from(buf, pos)?);
            }
            light.push((row, col, reports));
        }
        Some(Self { heavy, light })
    }

    /// Decodes a buffer that must contain exactly one report (no trailing
    /// bytes). `None` on truncation, corruption, or trailing garbage.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let report = Self::decode_from(buf, &mut pos)?;
        (pos == buf.len()).then_some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{CoeffSelector, IdealTopK};
    use crate::streaming::StreamingTransform;

    fn sample_report() -> BucketReport {
        let mut t = StreamingTransform::new(3, 16, IdealTopK::new(64));
        for (i, v) in [(0u32, 10i64), (1, 20), (5, 5), (9, 40)] {
            t.push(i, v);
        }
        BucketReport::from_coeffs(100, t.finish())
    }

    #[test]
    fn coeffs_roundtrip_through_report() {
        let r = sample_report();
        let rec = r.reconstruct();
        assert_eq!(rec.len(), r.padded_len);
        assert!((rec[0] - 10.0).abs() < 1e-9);
        assert!((rec[9] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_exact() {
        assert_eq!(sample_report().total(), 75);
    }

    #[test]
    fn wire_bytes_counts_all_fields() {
        let r = sample_report();
        assert_eq!(r.wire_bytes(), 4 + 4 * r.approx.len() + 6 * r.details.len());
    }

    #[test]
    fn compression_ratio_shrinks_for_long_epochs() {
        // 2048-window epoch, L=8, K=32: ratio should be near the paper's
        // 0.028 example (§4.2).
        let mut t = StreamingTransform::new(8, 2048, IdealTopK::new(32));
        for i in 0..2000u32 {
            t.push(i, ((i * 7919) % 1501) as i64);
        }
        let r = BucketReport::from_coeffs(0, t.finish());
        let ratio = r.compression_ratio();
        assert!(ratio < 0.05, "ratio {ratio} too large");
        assert!(ratio > 0.005, "ratio {ratio} implausibly small");
    }

    #[test]
    fn empty_selector_keeps_reports_small_but_valid() {
        let mut t = StreamingTransform::new(2, 8, IdealTopK::new(1));
        t.push(0, 100);
        let r = BucketReport::from_coeffs(0, t.finish());
        assert!(r.wire_bytes() >= 8);
        assert!(!r.reconstruct().is_empty());
    }

    #[test]
    fn sketch_report_accounting() {
        let r = sample_report();
        let mut sr = SketchReport::default();
        sr.heavy.push((vec![0u8; 13], vec![r.clone()]));
        sr.light.push((0, 5, vec![r.clone(), r.clone()]));
        assert_eq!(sr.epoch_count(), 3);
        assert_eq!(
            sr.wire_bytes(),
            13 + r.wire_bytes() + 3 + 2 * r.wire_bytes()
        );
    }

    #[test]
    fn integrity_detects_truncation_and_corruption() {
        let r = sample_report();
        let mut sr = SketchReport::default();
        sr.heavy.push((vec![1u8; 13], vec![r.clone()]));
        sr.light.push((0, 5, vec![r.clone(), r.clone()]));
        let base = sr.integrity();
        assert_eq!(base, sr.integrity(), "digest must be deterministic");

        let mut truncated = sr.clone();
        truncated.light.pop();
        assert_ne!(base, truncated.integrity(), "dropped entry undetected");

        let mut shorter = sr.clone();
        shorter.light[0].2.pop();
        assert_ne!(base, shorter.integrity(), "dropped epoch undetected");

        let mut flipped = sr.clone();
        flipped.heavy[0].1[0].approx[0] ^= 1;
        assert_ne!(base, flipped.integrity(), "flipped coefficient undetected");

        let mut retagged = sr;
        retagged.light[0].1 = 6;
        assert_ne!(base, retagged.integrity(), "retagged column undetected");
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: BucketReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    fn sample_sketch_report() -> SketchReport {
        let r = sample_report();
        let mut negated = r.clone();
        for a in &mut negated.approx {
            *a = -*a;
        }
        for d in &mut negated.details {
            d.val = -d.val;
        }
        let mut sr = SketchReport::default();
        sr.heavy.push((vec![7u8; 13], vec![r.clone(), negated]));
        sr.heavy.push((vec![], vec![])); // degenerate entry must survive
        sr.light.push((0, 5, vec![r.clone()]));
        sr.light.push((2, 63, vec![r]));
        sr
    }

    #[test]
    fn binary_codec_roundtrips() {
        let sr = sample_sketch_report();
        let bytes = sr.encode();
        assert_eq!(SketchReport::decode(&bytes), Some(sr.clone()));
        // The dense encoding should be well under the nominal wire budget.
        assert!(bytes.len() <= sr.wire_bytes() + 32);

        // Extreme coefficient magnitudes roundtrip exactly.
        let extreme = BucketReport {
            w0: u64::MAX,
            levels: 31,
            padded_len: 1 << 20,
            approx: vec![i64::MIN, i64::MAX, 0, -1, 1],
            details: vec![DetailRecord {
                level: u32::MAX,
                idx: u32::MAX,
                val: i64::MIN,
            }],
        };
        let mut buf = Vec::new();
        extreme.encode_into(&mut buf);
        let mut pos = 0;
        assert_eq!(BucketReport::decode_from(&buf, &mut pos), Some(extreme));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn binary_decode_rejects_every_truncation() {
        let bytes = sample_sketch_report().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                SketchReport::decode(&bytes[..cut]),
                None,
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn binary_decode_rejects_trailing_garbage_and_huge_lengths() {
        let mut bytes = sample_sketch_report().encode();
        bytes.push(0);
        assert_eq!(SketchReport::decode(&bytes), None, "trailing byte accepted");

        // A length prefix claiming 2^40 heavy entries must fail cleanly
        // rather than attempt the allocation.
        let huge = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x1F];
        assert_eq!(SketchReport::decode(&huge), None);
    }

    #[test]
    fn details_are_offered_nonzero_only() {
        // A constant signal has zero detail coefficients everywhere — the
        // selector must not waste slots on them.
        let mut sel = IdealTopK::new(8);
        let mut t = StreamingTransform::new(3, 16, IdealTopK::new(8));
        for i in 0..16u32 {
            t.push(i, 42);
        }
        let out = t.finish();
        assert!(out.details.iter().all(|c| c.val != 0));
        sel.reset();
    }
}
