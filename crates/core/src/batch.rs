//! Batch ingest: structure-of-arrays staging and vectorized hash chains for
//! [`crate::FullWaveSketch::update_batch`] / [`crate::BasicWaveSketch::update_batch`].
//!
//! A sketch update is three phases: hash the key (`d + 2` FNV-1a chains),
//! derive bucket indices, fold the value into each bucket. The scalar path
//! pays the full FNV latency per packet — ~32 ns of the ~68 ns update on the
//! reference box — because one chain is a serial dependency of 13 multiplies
//! and even the interleaved [`crate::FlowKey::hash_packed_many`] only
//! overlaps the `d + 2` chains of a *single* key. This module restores the
//! missing parallelism by hashing *many keys per instruction stream*:
//!
//! * **Staging** ([`BatchScratch`]): a burst of `(FlowKey, window, value)`
//!   records is packed into transposed key-byte rows (byte `i` of key `j` at
//!   `packed_t[i * CHUNK + j]`), so a SIMD lane-load picks up byte `i` of 8
//!   consecutive keys in one instruction.
//! * **Hash kernels**: the same FNV-1a + splitmix64 math evaluated 8 keys
//!   wide (AVX-512 `vpmullq`), 4 keys wide (AVX2, 64-bit multiply emulated
//!   from 32×32 partial products) or 8 keys wide in scalar registers (a
//!   *wider* software interleave than `hash_packed_many`: 8 independent
//!   chains per tag instead of `d + 2` per key). All integer ops are exact,
//!   so every kernel is bit-identical to the scalar hash by construction —
//!   and unit tests pin it.
//! * **Derive**: lane / light-column / heavy-slot indices from the raw
//!   hashes, identical to [`crate::SketchConfig::light_col_placed`] /
//!   `heavy_slot_placed`, with the range validation hoisted out of the apply
//!   loop (one check per record instead of per bucket access).
//!
//! The fold phase stays in [`crate::arena::BucketArena::apply_batch`], which
//! walks one row at a time with the *next* records' buckets prefetched —
//! possible only in a batch, where future addresses are already known
//! (DESIGN.md §10 records why prefetching the scalar path measured
//! neutral-to-negative: it has no lookahead).
//!
//! # Kernel selection
//!
//! [`active_kernel`] picks the widest kernel the CPU supports at runtime
//! (`is_x86_feature_detected!`), cached for the process. The environment
//! variable `UMON_BATCH_KERNEL` (`avx512` | `avx2` | `scalar` | `auto`)
//! overrides the choice, clamped to what the CPU actually supports — CI uses
//! `scalar` to pin the fallback kernel through the differential fuzz on
//! every run. Because every kernel produces identical bits, the override can
//! never change results, only speed.
//!
//! # Bit-identity contract
//!
//! Batching may only reorder *independent* work. The admissible reorderings
//! (proved by the per-bucket state machine in `arena.rs` and pinned by
//! golden fixtures, the 32-seed differential fuzz and the batch proptests):
//!
//! * light buckets are mutually independent and share no state with the
//!   heavy part, so row-at-a-time application preserves each bucket's
//!   record order while reordering across buckets;
//! * the heavy vote machine is per-slot; the batch path replays records in
//!   original order, so each slot sees the exact scalar sequence.
//!
//! Records for the *same* bucket are never pre-merged: `saturating_add` is
//! not associative once mixed-sign values are involved, so merging
//! same-window records before the fold could change saturation behaviour.

use crate::config::{fast_mod, SketchConfig, HEAVY_TAG, LANE_TAG};
use crate::flow::{avalanche, chain_init, FlowKey, FNV_PRIME};
use std::sync::OnceLock;

/// Records staged per internal chunk. Bounds the scratch memory (a few KB)
/// regardless of caller batch size, and keeps the staged arrays L1-resident
/// while the fold phase walks them.
pub(crate) const CHUNK: usize = 256;

/// Packed key bytes per key (see [`FlowKey::pack`]).
const KEY_BYTES: usize = 13;

/// Records per transpose block (one SIMD row-load's worth of keys).
const BLOCK: usize = 8;

/// Bytes per transpose block: 16 byte-rows (13 key bytes + 3 pad) × 8 keys.
const BLOCK_BYTES: usize = 2 * BLOCK * BLOCK;

/// Byte `i` of record `j` in the block-major packed matrix: record `j`
/// lives in block `j / 8`, lane `j % 8`; inside a block the 16 byte-rows
/// (13 key bytes + 3 pad) are contiguous, 8 lanes each. A hash step's
/// 8-lane byte vector is therefore one contiguous 8-byte load, and the
/// whole block spans two cache lines.
#[inline(always)]
fn packed_pos(i: usize, j: usize) -> usize {
    (j / BLOCK) * BLOCK_BYTES + i * BLOCK + (j % BLOCK)
}

/// Which batch hash kernel is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKernel {
    /// 8 keys per 512-bit vector (`vpmullq`; needs `avx512f` + `avx512dq`).
    Avx512,
    /// 4 keys per 256-bit vector, 64-bit multiply emulated from `vpmuludq`.
    Avx2,
    /// 8 interleaved scalar chains per tag — the bit-identical fallback.
    Scalar,
}

impl BatchKernel {
    /// Stable lower-case name (used in bench records and the env override).
    pub fn name(self) -> &'static str {
        match self {
            BatchKernel::Avx512 => "avx512",
            BatchKernel::Avx2 => "avx2",
            BatchKernel::Scalar => "scalar",
        }
    }
}

/// The widest kernel this CPU supports.
fn best_supported() -> BatchKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            return BatchKernel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return BatchKernel::Avx2;
        }
    }
    BatchKernel::Scalar
}

/// True if the CPU can run `kernel`.
fn supported(kernel: BatchKernel) -> bool {
    match kernel {
        BatchKernel::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        BatchKernel::Avx512 => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
        }
        #[cfg(target_arch = "x86_64")]
        BatchKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// True if the pack phase may use the `vpermt2b` transpose: only together
/// with the AVX-512 hash kernel, so forcing `UMON_BATCH_KERNEL=scalar`
/// (e.g. in CI's differential fuzz) pins the *whole* fallback path, pack
/// included.
fn vbmi_transpose_available(kernel: BatchKernel) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kernel == BatchKernel::Avx512 && std::arch::is_x86_feature_detected!("avx512vbmi")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = kernel;
        false
    }
}

/// Portable transpose-pack: 13 byte stores per record, all landing inside
/// the record's own 128-byte block (two cache lines). Produces bytes
/// identical to the SIMD transpose.
fn pack_transpose_scalar(chunk: &[(FlowKey, u64, i64)], packed_t: &mut [u8]) {
    for (j, (flow, _, _)) in chunk.iter().enumerate() {
        let p = flow.pack();
        for (i, &byte) in p.iter().enumerate() {
            packed_t[packed_pos(i, j)] = byte;
        }
    }
}

/// The kernel every `update_batch` in this process uses: the widest
/// supported one, unless `UMON_BATCH_KERNEL` (`avx512` | `avx2` | `scalar`
/// | `auto`) asks for another. A request the CPU cannot honour falls back
/// to the best supported kernel rather than failing — the choice can never
/// change results, only speed. Cached on first use.
pub fn active_kernel() -> BatchKernel {
    static KERNEL: OnceLock<BatchKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        let requested = match std::env::var("UMON_BATCH_KERNEL").as_deref() {
            Ok("avx512") => Some(BatchKernel::Avx512),
            Ok("avx2") => Some(BatchKernel::Avx2),
            Ok("scalar") => Some(BatchKernel::Scalar),
            _ => None,
        };
        match requested {
            Some(k) if supported(k) => k,
            _ => best_supported(),
        }
    })
}

/// Reusable staging buffers for one sketch's batch ingest. Sized once at
/// construction (from the config's row count); `stage` never allocates, so
/// the batch path stays inside the repo's zero-allocation gate.
#[derive(Debug)]
pub(crate) struct BatchScratch {
    kernel: BatchKernel,
    /// Transpose the pack phase with `vpermt2b` (AVX-512 kernel on CPUs
    /// with `avx512vbmi`); otherwise byte-by-byte scalar stores produce the
    /// identical matrix.
    vbmi: bool,
    /// Per-tag initial FNV states: lane, rows `0..d`, then (full sketch
    /// only) the heavy tag.
    inits: Vec<u64>,
    /// Transposed packed key bytes, block-major (see [`packed_pos`]).
    packed_t: Vec<u8>,
    /// Raw hashes, tag-major: tag `t` of record `j` at `t * CHUNK + j`.
    hashes: Vec<u64>,
    /// Per-record flow keys (SoA copy of the chunk). The heavy vote replay
    /// compares keys per record; reading them here instead of back out of
    /// the caller's wider AoS records avoids a second streaming pass over
    /// the input.
    pub(crate) keys: Vec<FlowKey>,
    /// Per-record windows (SoA copy of the chunk).
    pub(crate) windows: Vec<u64>,
    /// Per-record values (SoA copy of the chunk).
    pub(crate) values: Vec<i64>,
    /// Light arena bucket index (`row * width + col`), row-major:
    /// row `r` of record `j` at `r * CHUNK + j`.
    pub(crate) light_idx: Vec<u32>,
    /// Heavy slot per record (empty when staged without a heavy part).
    pub(crate) heavy_idx: Vec<u32>,
}

impl BatchScratch {
    /// Builds scratch for `config`; `heavy` adds the heavy-tag chain.
    pub(crate) fn new(config: &SketchConfig, heavy: bool) -> Self {
        let mut tags: Vec<u64> = Vec::with_capacity(config.rows + 2);
        tags.push(LANE_TAG);
        tags.extend(0..config.rows as u64);
        if heavy {
            tags.push(HEAVY_TAG);
        }
        let inits: Vec<u64> = tags.iter().map(|&t| chain_init(config.seed, t)).collect();
        let kernel = active_kernel();
        Self {
            kernel,
            vbmi: vbmi_transpose_available(kernel),
            packed_t: vec![0; (CHUNK / BLOCK) * BLOCK_BYTES],
            hashes: vec![0; inits.len() * CHUNK],
            inits,
            keys: vec![FlowKey::from_id(0); CHUNK],
            windows: vec![0; CHUNK],
            values: vec![0; CHUNK],
            light_idx: vec![0; config.rows * CHUNK],
            heavy_idx: if heavy { vec![0; CHUNK] } else { Vec::new() },
        }
    }

    /// The kernel this scratch hashes with (tests override via
    /// [`Self::force_kernel`]).
    #[cfg(test)]
    pub(crate) fn force_kernel(&mut self, kernel: BatchKernel) {
        assert!(supported(kernel), "kernel {:?} not supported here", kernel);
        self.kernel = kernel;
        self.vbmi = vbmi_transpose_available(kernel);
    }

    /// Packs, hashes and derives bucket indices for `chunk`
    /// (`chunk.len() <= CHUNK`). After this, `windows`/`values`,
    /// `light_idx` and (if staged with a heavy part) `heavy_idx` describe
    /// the chunk record-for-record.
    ///
    /// # Panics
    ///
    /// Panics if a record's flow does not belong to a lane this sketch
    /// instance owns — the same misrouting the scalar path catches, checked
    /// here once per record so the fold loop can trust every index.
    pub(crate) fn stage(&mut self, config: &SketchConfig, chunk: &[(FlowKey, u64, i64)]) {
        let n = chunk.len();
        debug_assert!(n <= CHUNK);

        // Copy windows/values SoA and transpose-pack the keys block-major
        // (see `packed_pos`). The transposed byte stores dominated the
        // original pack phase (~12 ns/record as 13 long-stride stores);
        // contiguous 16-byte key writes + a 2×`vpermt2b` in-register
        // transpose per 8 keys brought it under 2 ns.
        for (j, (flow, window, value)) in chunk.iter().enumerate() {
            self.keys[j] = *flow;
            self.windows[j] = *window;
            self.values[j] = *value;
        }
        #[cfg(target_arch = "x86_64")]
        if self.vbmi {
            // SAFETY: `vbmi` is only set when avx512f+avx512bw+avx512vbmi
            // were detected at runtime.
            unsafe { x86::pack_transpose_vbmi(chunk, &mut self.packed_t) };
        } else {
            pack_transpose_scalar(chunk, &mut self.packed_t);
        }
        #[cfg(not(target_arch = "x86_64"))]
        pack_transpose_scalar(chunk, &mut self.packed_t);

        hash_chunk(
            self.kernel,
            &self.packed_t,
            &self.inits,
            n,
            &mut self.hashes,
        );

        // Derive lane / light / heavy indices — bit-identical to
        // `light_col_placed` / `heavy_slot_placed` over `place()`.
        let rows = config.rows;
        let width = config.width;
        let lanes = config.lanes as u64;
        let lane_width = config.lane_width();
        let heavy = !self.heavy_idx.is_empty();
        let heavy_per_lane = config.heavy_lane_rows();
        let mut routed_ok = true;
        for j in 0..n {
            let lane = fast_mod(self.hashes[j], lanes) as usize;
            let lane_rel = lane.wrapping_sub(config.lane_base);
            routed_ok &= lane_rel < config.lane_count;
            let lane_rel = if lane_rel < config.lane_count {
                lane_rel
            } else {
                0 // placeholder; the batch panics below before indices are used
            };
            let col_base = lane_rel * lane_width;
            for r in 0..rows {
                let h = self.hashes[(r + 1) * CHUNK + j];
                self.light_idx[r * CHUNK + j] =
                    (r * width + col_base + fast_mod(h, lane_width as u64) as usize) as u32;
            }
            if heavy {
                let h = self.hashes[(rows + 1) * CHUNK + j];
                self.heavy_idx[j] = (lane_rel * heavy_per_lane
                    + fast_mod(h, heavy_per_lane as u64) as usize)
                    as u32;
            }
        }
        assert!(
            routed_ok,
            "batch contains a flow routed to a lane outside [{}, {}) — \
             feed shard slices only flows they own (see ShardedWaveSketch)",
            config.lane_base,
            config.lane_base + config.lane_count
        );
    }
}

/// Hashes `n` staged keys for every tag in `inits`, writing raw hash `t` of
/// key `j` to `out[t * CHUNK + j]`. Lanes `>= n` of the trailing SIMD block
/// hash stale staging bytes; callers never read them.
pub(crate) fn hash_chunk(
    kernel: BatchKernel,
    packed_t: &[u8],
    inits: &[u64],
    n: usize,
    out: &mut [u64],
) {
    debug_assert_eq!(packed_t.len(), (CHUNK / BLOCK) * BLOCK_BYTES);
    debug_assert!(out.len() >= inits.len() * CHUNK);
    if n == 0 {
        return;
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        BatchKernel::Avx512 => {
            // Tag groups of up to 5 chains share each byte-vector load and
            // keep 5 independent multiply chains in flight per block.
            let blocks = n.div_ceil(8);
            for (g0, group) in inits.chunks(5).enumerate() {
                let out_g = &mut out[g0 * 5 * CHUNK..];
                // SAFETY: `active_kernel`/`force_kernel` admit Avx512 only
                // when avx512f+avx512dq are detected; slice bounds are
                // checked by the deepest block (blocks * 8 <= CHUNK).
                unsafe {
                    match group.len() {
                        5 => x86::hash_avx512::<5>(packed_t, group, blocks, out_g),
                        4 => x86::hash_avx512::<4>(packed_t, group, blocks, out_g),
                        3 => x86::hash_avx512::<3>(packed_t, group, blocks, out_g),
                        2 => x86::hash_avx512::<2>(packed_t, group, blocks, out_g),
                        _ => x86::hash_avx512::<1>(packed_t, group, blocks, out_g),
                    }
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        BatchKernel::Avx2 => {
            let blocks = n.div_ceil(4);
            for (g0, group) in inits.chunks(5).enumerate() {
                let out_g = &mut out[g0 * 5 * CHUNK..];
                // SAFETY: Avx2 is only selected when detected; bounds as above.
                unsafe {
                    match group.len() {
                        5 => x86::hash_avx2::<5>(packed_t, group, blocks, out_g),
                        4 => x86::hash_avx2::<4>(packed_t, group, blocks, out_g),
                        3 => x86::hash_avx2::<3>(packed_t, group, blocks, out_g),
                        2 => x86::hash_avx2::<2>(packed_t, group, blocks, out_g),
                        _ => x86::hash_avx2::<1>(packed_t, group, blocks, out_g),
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        BatchKernel::Avx512 | BatchKernel::Avx2 => hash_scalar_interleaved(packed_t, inits, n, out),
        BatchKernel::Scalar => hash_scalar_interleaved(packed_t, inits, n, out),
    }
}

/// The software fallback: per tag, 8 keys' chains interleaved in scalar
/// registers — wider than `hash_packed_many`'s `d + 2` interleave, and with
/// fully independent chains (no cross-key dependency at all).
fn hash_scalar_interleaved(packed_t: &[u8], inits: &[u64], n: usize, out: &mut [u64]) {
    let blocks = n.div_ceil(BLOCK);
    for (t, &init) in inits.iter().enumerate() {
        for blk in 0..blocks {
            let j = blk * BLOCK;
            let mut s = [init; BLOCK];
            for i in 0..KEY_BYTES {
                let row = &packed_t[blk * BLOCK_BYTES + i * BLOCK..][..BLOCK];
                for l in 0..BLOCK {
                    s[l] = (s[l] ^ row[l] as u64).wrapping_mul(FNV_PRIME);
                }
            }
            for l in 0..BLOCK {
                out[t * CHUNK + j + l] = avalanche(s[l]);
            }
        }
    }
}

/// Prefetches the cache line holding `p` into all levels (no-op off x86_64).
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is allowed, it cannot fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The SIMD kernels. Both evaluate exactly
    //! `avalanche((...((init ^ b0) * P ^ b1) * P ... ^ b12) * P)` per lane —
    //! xor, shift and wrapping multiply are exact integer ops, so the lanes
    //! are bit-identical to the scalar chain by construction.

    use super::{BLOCK, BLOCK_BYTES, CHUNK, KEY_BYTES};
    use crate::flow::{AVALANCHE_MUL2, FNV_PRIME, TAG_MUL};
    use crate::FlowKey;
    use core::arch::x86_64::*;

    /// `vpermt2b` index vector for the 8×16 key transpose: output byte
    /// `i * 8 + l` of half `half` takes source byte `l * 16 + half * 8 + i`
    /// of the two concatenated 64-byte AoS key registers.
    const fn transpose_idx(half: usize) -> [u8; 64] {
        let mut idx = [0u8; 64];
        let mut i = 0;
        while i < 8 {
            let mut l = 0;
            while l < 8 {
                idx[i * 8 + l] = (l * 16 + half * 8 + i) as u8;
                l += 1;
            }
            i += 1;
        }
        idx
    }

    static IDX_LO: [u8; 64] = transpose_idx(0);
    static IDX_HI: [u8; 64] = transpose_idx(1);

    /// One key's 16 packed bytes in an xmm, built from registers (no stack
    /// round-trip). SSE4.1 ⊂ the callers' AVX-512 feature set, so this
    /// inlines into them.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn key_xmm(flow: &FlowKey) -> __m128i {
        let v = flow.pack_u128();
        _mm_insert_epi64::<1>(_mm_cvtsi64_si128(v as u64 as i64), (v >> 64) as i64)
    }

    /// Four keys' xmm registers stacked into one 64-byte register.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn stack4(k0: __m128i, k1: __m128i, k2: __m128i, k3: __m128i) -> __m512i {
        let r = _mm512_inserti32x4::<1>(_mm512_castsi128_si512(k0), k1);
        let r = _mm512_inserti32x4::<2>(r, k2);
        _mm512_inserti32x4::<3>(r, k3)
    }

    /// Packs up to `CHUNK` keys block-major: 8 keys are widened to 16-byte
    /// register lanes, stacked into two 64-byte registers and transposed
    /// into byte-row order by two `vpermt2b`s — the whole block never
    /// touches memory until the final two stores. (An earlier variant
    /// staged the keys through a 128-byte stack buffer; the vector loads
    /// then stalled on store-to-load-forwarding misses against the scalar
    /// byte stores, costing more than the transpose itself.) Bytes written
    /// are identical to [`super::pack_transpose_scalar`] for lanes `< n`;
    /// tail lanes of a ragged last block are zero here and stale there —
    /// both unread garbage.
    ///
    /// # Safety
    ///
    /// Requires `avx512f`, `avx512bw` and `avx512vbmi` at runtime.
    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
    pub(super) unsafe fn pack_transpose_vbmi(chunk: &[(FlowKey, u64, i64)], packed_t: &mut [u8]) {
        debug_assert_eq!(packed_t.len(), (CHUNK / BLOCK) * BLOCK_BYTES);
        let idx_lo = _mm512_loadu_si512(IDX_LO.as_ptr() as *const __m512i);
        let idx_hi = _mm512_loadu_si512(IDX_HI.as_ptr() as *const __m512i);
        let mut blocks = chunk.chunks_exact(BLOCK);
        let mut dst = packed_t.as_mut_ptr();
        for recs in blocks.by_ref() {
            let a = stack4(
                key_xmm(&recs[0].0),
                key_xmm(&recs[1].0),
                key_xmm(&recs[2].0),
                key_xmm(&recs[3].0),
            );
            let b = stack4(
                key_xmm(&recs[4].0),
                key_xmm(&recs[5].0),
                key_xmm(&recs[6].0),
                key_xmm(&recs[7].0),
            );
            _mm512_storeu_si512(dst as *mut __m512i, _mm512_permutex2var_epi8(a, idx_lo, b));
            _mm512_storeu_si512(
                dst.add(64) as *mut __m512i,
                _mm512_permutex2var_epi8(a, idx_hi, b),
            );
            dst = dst.add(BLOCK_BYTES);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            let mut keys = [_mm_setzero_si128(); BLOCK];
            for (l, (flow, _, _)) in tail.iter().enumerate() {
                keys[l] = key_xmm(flow);
            }
            let a = stack4(keys[0], keys[1], keys[2], keys[3]);
            let b = stack4(keys[4], keys[5], keys[6], keys[7]);
            _mm512_storeu_si512(dst as *mut __m512i, _mm512_permutex2var_epi8(a, idx_lo, b));
            _mm512_storeu_si512(
                dst.add(64) as *mut __m512i,
                _mm512_permutex2var_epi8(a, idx_hi, b),
            );
        }
    }

    /// Finishing avalanche on one 8-lane state vector. (Inlines into the
    /// `avx512f,avx512dq` callers, which enable a superset of features.)
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn avalanche512(x: __m512i, m1: __m512i, m2: __m512i) -> __m512i {
        let mut x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
        x = _mm512_mullo_epi64(x, m1);
        x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
        x = _mm512_mullo_epi64(x, m2);
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 31))
    }

    /// 8 keys per 512-bit register, `G` tag chains per block, **two blocks
    /// in flight**: `vpmullq` is long-latency (~15 cycles) and each chain
    /// is 13 serial multiplies, so `G` chains alone leave the multiplier
    /// mostly idle — 2×`G` independent chains turn the block loop from
    /// latency-bound (~24 cycles/key at `G = 5`) to throughput-bound
    /// (~14 cycles/key).
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512dq` at runtime. `out` must hold
    /// `G * CHUNK` u64s and `blocks * 8 <= CHUNK`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn hash_avx512<const G: usize>(
        packed_t: &[u8],
        inits: &[u64],
        blocks: usize,
        out: &mut [u64],
    ) {
        debug_assert_eq!(inits.len(), G);
        debug_assert!(blocks * BLOCK <= CHUNK);
        debug_assert!(out.len() >= G * CHUNK);
        let prime = _mm512_set1_epi64(FNV_PRIME as i64);
        let m1 = _mm512_set1_epi64(TAG_MUL as i64);
        let m2 = _mm512_set1_epi64(AVALANCHE_MUL2 as i64);
        let mut blk = 0;
        while blk + 2 <= blocks {
            let p0 = packed_t.as_ptr().add(blk * BLOCK_BYTES);
            let p1 = p0.add(BLOCK_BYTES);
            let mut s0 = [_mm512_setzero_si512(); G];
            let mut s1 = [_mm512_setzero_si512(); G];
            for g in 0..G {
                s0[g] = _mm512_set1_epi64(inits[g] as i64);
                s1[g] = s0[g];
            }
            for i in 0..KEY_BYTES {
                // One 8-byte row load per block feeds all G chains.
                let b0 = _mm512_cvtepu8_epi64(_mm_loadl_epi64(p0.add(i * BLOCK) as *const __m128i));
                let b1 = _mm512_cvtepu8_epi64(_mm_loadl_epi64(p1.add(i * BLOCK) as *const __m128i));
                for g in 0..G {
                    s0[g] = _mm512_mullo_epi64(_mm512_xor_si512(s0[g], b0), prime);
                    s1[g] = _mm512_mullo_epi64(_mm512_xor_si512(s1[g], b1), prime);
                }
            }
            let j = blk * BLOCK;
            for g in 0..G {
                let o = out.as_mut_ptr().add(g * CHUNK + j);
                _mm512_storeu_si512(o as *mut __m512i, avalanche512(s0[g], m1, m2));
                _mm512_storeu_si512(o.add(BLOCK) as *mut __m512i, avalanche512(s1[g], m1, m2));
            }
            blk += 2;
        }
        if blk < blocks {
            let p0 = packed_t.as_ptr().add(blk * BLOCK_BYTES);
            let mut st = [_mm512_setzero_si512(); G];
            for g in 0..G {
                st[g] = _mm512_set1_epi64(inits[g] as i64);
            }
            for i in 0..KEY_BYTES {
                let b = _mm512_cvtepu8_epi64(_mm_loadl_epi64(p0.add(i * BLOCK) as *const __m128i));
                for s in st.iter_mut() {
                    *s = _mm512_mullo_epi64(_mm512_xor_si512(*s, b), prime);
                }
            }
            for (g, &s) in st.iter().enumerate() {
                let o = out.as_mut_ptr().add(g * CHUNK + blk * BLOCK);
                _mm512_storeu_si512(o as *mut __m512i, avalanche512(s, m1, m2));
            }
        }
    }

    /// Full 64-bit low-half product from 32×32 partials (AVX2 has no
    /// `vpmullq`): `lo64(a*b) = lo(a_lo*b_lo) + ((a_hi*b_lo + a_lo*b_hi) << 32)`.
    #[inline(always)]
    unsafe fn mullo64_avx2(a: __m256i, b: __m256i, b_hi: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let c1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
        let c2 = _mm256_mul_epu32(a, b_hi);
        _mm256_add_epi64(lo, _mm256_slli_epi64(_mm256_add_epi64(c1, c2), 32))
    }

    /// 4 keys per 256-bit register, `G` tag chains interleaved per block.
    ///
    /// # Safety
    ///
    /// Requires `avx2` at runtime. `out` must hold `G * CHUNK` u64s and
    /// `blocks * 4 <= CHUNK`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hash_avx2<const G: usize>(
        packed_t: &[u8],
        inits: &[u64],
        blocks: usize,
        out: &mut [u64],
    ) {
        debug_assert_eq!(inits.len(), G);
        debug_assert!(blocks * 4 <= CHUNK);
        debug_assert!(out.len() >= G * CHUNK);
        let prime = _mm256_set1_epi64x(FNV_PRIME as i64);
        let prime_hi = _mm256_srli_epi64(prime, 32);
        let m1 = _mm256_set1_epi64x(TAG_MUL as i64);
        let m1_hi = _mm256_srli_epi64(m1, 32);
        let m2 = _mm256_set1_epi64x(AVALANCHE_MUL2 as i64);
        let m2_hi = _mm256_srli_epi64(m2, 32);
        for blk in 0..blocks {
            let j = blk * 4;
            // 4 records = half an 8-record transpose block; `j % 8` selects
            // which half of each byte-row.
            let base = packed_t
                .as_ptr()
                .add((j / BLOCK) * BLOCK_BYTES + (j % BLOCK));
            let mut st = [_mm256_setzero_si256(); G];
            for g in 0..G {
                st[g] = _mm256_set1_epi64x(inits[g] as i64);
            }
            for i in 0..KEY_BYTES {
                let four = (base.add(i * BLOCK) as *const i32).read_unaligned();
                let b = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(four));
                for s in st.iter_mut() {
                    *s = mullo64_avx2(_mm256_xor_si256(*s, b), prime, prime_hi);
                }
            }
            for (g, &s) in st.iter().enumerate() {
                let mut x = s;
                x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
                x = mullo64_avx2(x, m1, m1_hi);
                x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
                x = mullo64_avx2(x, m2, m2_hi);
                x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
                _mm256_storeu_si256(out.as_mut_ptr().add(g * CHUNK + j) as *mut __m256i, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels_here() -> Vec<BatchKernel> {
        let mut ks = vec![BatchKernel::Scalar];
        if supported(BatchKernel::Avx2) {
            ks.push(BatchKernel::Avx2);
        }
        if supported(BatchKernel::Avx512) {
            ks.push(BatchKernel::Avx512);
        }
        ks
    }

    /// Every kernel must reproduce `FlowKey::hash_packed` bit-for-bit for
    /// every tag, including ragged chunk tails.
    #[test]
    fn kernels_match_scalar_hash_bit_for_bit() {
        let seed = 0x5EED_CAFE;
        let tags = [LANE_TAG, 0u64, 1, 2, HEAVY_TAG];
        let inits: Vec<u64> = tags.iter().map(|&t| chain_init(seed, t)).collect();
        for &n in &[1usize, 7, 8, 9, 63, 255, 256] {
            let keys: Vec<FlowKey> = (0..n as u64)
                .map(|i| FlowKey::from_id(i * 7919 + 3))
                .collect();
            let mut packed_t = vec![0u8; (CHUNK / BLOCK) * BLOCK_BYTES];
            for (j, k) in keys.iter().enumerate() {
                for (i, &b) in k.pack().iter().enumerate() {
                    packed_t[packed_pos(i, j)] = b;
                }
            }
            for kernel in kernels_here() {
                let mut out = vec![0u64; tags.len() * CHUNK];
                hash_chunk(kernel, &packed_t, &inits, n, &mut out);
                for (t, &tag) in tags.iter().enumerate() {
                    for (j, k) in keys.iter().enumerate() {
                        assert_eq!(
                            out[t * CHUNK + j],
                            FlowKey::hash_packed(&k.pack(), tag, seed),
                            "kernel {kernel:?}, tag {tag:#x}, key {j}, n {n}"
                        );
                    }
                }
            }
        }
    }

    /// Staged indices must equal the scalar placement-derived ones.
    #[test]
    fn staged_indices_match_scalar_placement() {
        let config = SketchConfig::builder()
            .rows(3)
            .width(64)
            .levels(4)
            .topk(16)
            .max_windows(256)
            .heavy_rows(16)
            .build();
        let chunk: Vec<(FlowKey, u64, i64)> = (0..100u64)
            .map(|i| (FlowKey::from_id(i * 31), i / 4, 100 + i as i64))
            .collect();
        for kernel in kernels_here() {
            let mut scratch = BatchScratch::new(&config, true);
            scratch.force_kernel(kernel);
            scratch.stage(&config, &chunk);
            for (j, (flow, window, value)) in chunk.iter().enumerate() {
                let p = config.place(flow);
                for r in 0..config.rows {
                    let want = r * config.width + config.light_col_placed(&p, r);
                    assert_eq!(
                        scratch.light_idx[r * CHUNK + j] as usize,
                        want,
                        "kernel {kernel:?}, row {r}, record {j}"
                    );
                }
                assert_eq!(
                    scratch.heavy_idx[j] as usize,
                    config.heavy_slot_placed(&p),
                    "kernel {kernel:?}, record {j}"
                );
                assert_eq!(scratch.windows[j], *window);
                assert_eq!(scratch.values[j], *value);
            }
        }
    }

    /// Deep sketches (rows > 4, beyond the Placement prehash limit) must
    /// still derive identical indices: tag groups split at 5 chains.
    #[test]
    fn deep_row_configs_split_tag_groups_correctly() {
        let config = SketchConfig::builder()
            .rows(6)
            .width(64)
            .levels(4)
            .topk(16)
            .max_windows(256)
            .heavy_rows(16)
            .build();
        let chunk: Vec<(FlowKey, u64, i64)> =
            (0..50u64).map(|i| (FlowKey::from_id(i), 0, 1)).collect();
        for kernel in kernels_here() {
            let mut scratch = BatchScratch::new(&config, true);
            scratch.force_kernel(kernel);
            scratch.stage(&config, &chunk);
            for (j, (flow, _, _)) in chunk.iter().enumerate() {
                for r in 0..config.rows {
                    let want = r * config.width + config.light_col(flow, r);
                    assert_eq!(scratch.light_idx[r * CHUNK + j] as usize, want);
                }
                assert_eq!(scratch.heavy_idx[j] as usize, config.heavy_slot(flow));
            }
        }
    }

    /// A shard slice must reject foreign flows instead of folding them into
    /// the wrong buckets.
    #[test]
    #[should_panic(expected = "routed to a lane outside")]
    fn misrouted_flow_panics_in_stage() {
        let config = SketchConfig::builder()
            .rows(3)
            .width(64)
            .levels(4)
            .topk(16)
            .max_windows(256)
            .heavy_rows(16)
            .build();
        let slice = config.shard_slice(0, 2);
        // Find a flow the slice does NOT own.
        let foreign = (0..10_000u64)
            .map(FlowKey::from_id)
            .find(|k| !slice.owns_flow(k))
            .expect("some flow lands in the other shard");
        let mut scratch = BatchScratch::new(&slice, true);
        scratch.stage(&slice, &[(foreign, 0, 1)]);
    }

    #[test]
    fn active_kernel_is_supported() {
        assert!(supported(active_kernel()));
    }

    /// Diagnostic (not a gate): per-phase wall time of the batch pipeline,
    /// for attributing a throughput regression to pack, hash, derive or the
    /// fold without rebuilding the bench harness. Ignored by default; run
    /// with: cargo test --release -p wavesketch --lib -- --ignored
    /// phase_timing --nocapture
    #[test]
    #[ignore = "manual perf diagnostic, prints timings"]
    fn phase_timing() {
        use std::time::Instant;
        let n: u64 = 4_000_000;
        let flows = 512u64;
        // splitmix-driven stream mimicking the bench workload shape.
        let mut s = 0xBE9Cu64;
        let mut rnd = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut x = s;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        };
        let mut window = 0u64;
        let stream: Vec<(FlowKey, u64, i64)> = (0..n)
            .map(|_| {
                if rnd() % 5 == 0 {
                    window = (window + 1).min(4000);
                }
                (
                    FlowKey::from_id(rnd() % flows),
                    window,
                    64 + (rnd() % 1436) as i64,
                )
            })
            .collect();
        let config = SketchConfig::builder().build();
        let nf = n as f64;
        let report = |name: &str, f: &mut dyn FnMut() -> u64| {
            let mut best = u64::MAX;
            let mut acc = 0;
            for _ in 0..3 {
                let t = Instant::now();
                acc = f();
                best = best.min(t.elapsed().as_nanos() as u64);
            }
            println!("{name:26}{:6.1} ns/u  [{acc:x}]", best as f64 / nf);
        };

        let mut scratch = BatchScratch::new(&config, true);
        report("stage (pack+hash+derive):", &mut || {
            let mut acc = 0u64;
            for chunk in stream.chunks(CHUNK) {
                scratch.stage(&config, chunk);
                acc ^= scratch.light_idx[0] as u64 ^ scratch.heavy_idx[0] as u64;
            }
            acc
        });

        let mut scratch = BatchScratch::new(&config, true);
        report("pack only:", &mut || {
            let mut acc = 0u64;
            for chunk in stream.chunks(CHUNK) {
                for (j, (_, window, value)) in chunk.iter().enumerate() {
                    scratch.windows[j] = *window;
                    scratch.values[j] = *value;
                }
                #[cfg(target_arch = "x86_64")]
                if scratch.vbmi {
                    unsafe { x86::pack_transpose_vbmi(chunk, &mut scratch.packed_t) };
                } else {
                    pack_transpose_scalar(chunk, &mut scratch.packed_t);
                }
                acc ^= scratch.packed_t[0] as u64;
            }
            acc
        });

        let chunks = stream.len() / CHUNK;
        let mut scratch2 = BatchScratch::new(&config, true);
        scratch2.stage(&config, &stream[..CHUNK]);
        report("hash only:", &mut || {
            let mut acc = 0u64;
            for _ in 0..chunks {
                hash_chunk(
                    scratch2.kernel,
                    &scratch2.packed_t,
                    &scratch2.inits,
                    CHUNK,
                    &mut scratch2.hashes,
                );
                acc ^= scratch2.hashes[0];
            }
            acc
        });

        report("full update_batch[256]:", &mut || {
            let mut sketch = crate::FullWaveSketch::new(config.clone());
            for chunk in stream.chunks(CHUNK) {
                sketch.update_batch(chunk);
            }
            sketch.heavy_flows().len() as u64
        });

        report("basic update_batch[256]:", &mut || {
            let mut sketch = crate::BasicWaveSketch::new(config.clone());
            for chunk in stream.chunks(CHUNK) {
                sketch.update_batch(chunk);
            }
            sketch.active_buckets() as u64
        });

        report("full scalar:", &mut || {
            let mut sketch = crate::FullWaveSketch::new(config.clone());
            for (flow, w, v) in &stream {
                sketch.update(flow, *w, *v);
            }
            sketch.heavy_flows().len() as u64
        });

        report("basic scalar:", &mut || {
            let mut sketch = crate::BasicWaveSketch::new(config.clone());
            for (flow, w, v) in &stream {
                sketch.update(flow, *w, *v);
            }
            sketch.active_buckets() as u64
        });
    }
}
