//! Flow identifiers and the hash family used by the sketch.

/// A 5-tuple flow key (IPv4), the flow identifier WaveSketch hashes on.
///
/// The simulator's flow ids map into this type; any unique 104-bit identity
/// works since the sketch only hashes the packed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP/RoCEv2).
    pub proto: u8,
}

impl FlowKey {
    /// Builds a key from explicit 5-tuple parts.
    pub fn from_v4(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        proto: u8,
    ) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// Builds a synthetic key from a dense flow id, convenient for simulators
    /// and tests. Distinct ids yield distinct keys.
    pub fn from_id(id: u64) -> Self {
        let b = id.to_le_bytes();
        Self {
            src_ip: [10, b[0], b[1], b[2]],
            dst_ip: [10, b[3], b[4], b[5]],
            src_port: u16::from_le_bytes([b[6], b[7]]),
            dst_port: 4791, // RoCEv2 UDP port
            proto: 17,
        }
    }

    /// Packs the key into 13 bytes for hashing.
    pub fn pack(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_ip);
        out[4..8].copy_from_slice(&self.dst_ip);
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.proto;
        out
    }

    /// [`Self::pack`] widened to a little-endian `u128` (bytes 13..16 zero):
    /// byte `k` of the result equals `pack()[k]`. Built entirely in
    /// registers — the batch pack phase feeds SIMD lanes from this and a
    /// 13-byte stack array would stall every vector load on
    /// store-to-load-forwarding misses.
    #[inline]
    pub(crate) fn pack_u128(&self) -> u128 {
        u32::from_le_bytes(self.src_ip) as u128
            | (u32::from_le_bytes(self.dst_ip) as u128) << 32
            | (self.src_port.swap_bytes() as u128) << 64
            | (self.dst_port.swap_bytes() as u128) << 80
            | (self.proto as u128) << 96
    }

    /// Hash of the key for row `row` under `seed`.
    ///
    /// This is a seeded FNV-1a/xor-fold construction: cheap, deterministic and
    /// pairwise independent enough for the Count-Min analysis (each row gets a
    /// distinct seeded stream).
    #[inline]
    pub fn hash(&self, row: u64, seed: u64) -> u64 {
        Self::hash_packed(&self.pack(), row, seed)
    }

    /// [`Self::hash`] over pre-packed key bytes.
    ///
    /// The sketch update needs `d + 2` hashes of the *same* key (lane, light
    /// rows, heavy slot); packing once and hashing the bytes directly keeps
    /// the values bit-identical while the packing cost is paid once per
    /// packet instead of once per hash.
    #[inline]
    pub fn hash_packed(packed: &[u8; 13], row: u64, seed: u64) -> u64 {
        let [h] = Self::hash_packed_many(packed, [row], seed);
        h
    }

    /// Computes [`Self::hash_packed`] for `N` row tags at once, returning one
    /// hash per tag in order.
    ///
    /// Each value is bit-identical to the corresponding single-tag call; the
    /// point of the batch is instruction-level parallelism. One FNV-1a chain
    /// is a serial dependency of 13 multiplies (~40 cycles of latency on its
    /// own), so hashing the `d + 2` tags of a sketch update one after another
    /// is latency-bound. Interleaving the chains byte-by-byte keeps `N`
    /// independent multiplies in flight and makes the batch cost close to a
    /// single chain.
    #[inline]
    pub fn hash_packed_many<const N: usize>(
        packed: &[u8; 13],
        rows: [u64; N],
        seed: u64,
    ) -> [u64; N] {
        let mut h = [0u64; N];
        for (state, row) in h.iter_mut().zip(rows) {
            *state = chain_init(seed, row);
        }
        for &byte in packed {
            let b = byte as u64;
            for state in &mut h {
                *state = (*state ^ b).wrapping_mul(FNV_PRIME);
            }
        }
        // Final avalanche (splitmix64 finalizer) so low bits are well mixed
        // before the caller reduces modulo a small width.
        for state in &mut h {
            *state = avalanche(*state);
        }
        h
    }
}

/// FNV-1a offset basis (the `base` of every chain before seed/tag mixing).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Multiplier folding the seed into the chain's initial state.
pub(crate) const SEED_MUL: u64 = 0x9e37_79b9_7f4a_7c15;
/// Multiplier folding the row tag into the initial state; also the first
/// multiplier of the splitmix64 avalanche.
pub(crate) const TAG_MUL: u64 = 0xbf58_476d_1ce4_e5b9;
/// Second multiplier of the splitmix64 avalanche.
pub(crate) const AVALANCHE_MUL2: u64 = 0x94d0_49bb_1331_11eb;

/// Initial FNV state for `(seed, tag)` — the per-chain seed/tag mixing of
/// [`FlowKey::hash_packed_many`], shared with the batch kernels
/// ([`crate::batch`]) so both paths stay bit-identical by construction.
#[inline]
pub(crate) fn chain_init(seed: u64, tag: u64) -> u64 {
    (FNV_OFFSET ^ seed.wrapping_mul(SEED_MUL)) ^ tag.wrapping_add(1).wrapping_mul(TAG_MUL)
}

/// The splitmix64 finalizer applied to every finished FNV chain.
#[inline]
pub(crate) fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(TAG_MUL);
    x ^= x >> 27;
    x = x.wrapping_mul(AVALANCHE_MUL2);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn from_id_is_injective_on_a_large_range() {
        let keys: HashSet<FlowKey> = (0..10_000).map(FlowKey::from_id).collect();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn hash_depends_on_row_and_seed() {
        let k = FlowKey::from_id(42);
        assert_ne!(k.hash(0, 1), k.hash(1, 1), "rows must hash independently");
        assert_ne!(k.hash(0, 1), k.hash(0, 2), "seeds must hash independently");
        assert_eq!(k.hash(0, 1), k.hash(0, 1), "hash must be deterministic");
    }

    #[test]
    fn hash_spreads_over_small_width() {
        // 1000 flows into 256 buckets: every bucket index should be hit at
        // least once if the low bits are well mixed.
        let mut hit = [false; 256];
        for id in 0..1000 {
            let k = FlowKey::from_id(id);
            hit[(k.hash(0, 7) % 256) as usize] = true;
        }
        let covered = hit.iter().filter(|h| **h).count();
        assert!(covered > 240, "only {covered}/256 buckets covered");
    }

    #[test]
    fn batched_hashes_match_single_hashes() {
        // The interleaved chains must not contaminate each other: every lane
        // of the batch equals the stand-alone hash for its tag.
        for id in 0..100u64 {
            let p = FlowKey::from_id(id).pack();
            let tags = [0xFEu64, 0, 1, 2, 0xFF];
            let batch = FlowKey::hash_packed_many(&p, tags, 0x5EED);
            for (i, &t) in tags.iter().enumerate() {
                assert_eq!(batch[i], FlowKey::hash_packed(&p, t, 0x5EED), "tag {t}");
            }
        }
    }

    #[test]
    fn pack_u128_matches_pack_bytes() {
        // The SIMD pack path widens through pack_u128; byte k of the LE u128
        // must equal pack()[k] for the kernels to stay bit-identical.
        for id in 0..100u64 {
            let k = FlowKey::from_id(id);
            let bytes = k.pack_u128().to_le_bytes();
            assert_eq!(&bytes[..13], &k.pack(), "id {id}");
            assert_eq!(&bytes[13..], &[0, 0, 0], "high bytes must be zero");
        }
        let k = FlowKey::from_v4([1, 2, 3, 4], [5, 6, 7, 8], 0x1234, 0x5678, 6);
        assert_eq!(&k.pack_u128().to_le_bytes()[..13], &k.pack());
    }

    #[test]
    fn pack_roundtrips_fields() {
        let k = FlowKey::from_v4([1, 2, 3, 4], [5, 6, 7, 8], 0x1234, 0x5678, 6);
        let p = k.pack();
        assert_eq!(&p[0..4], &[1, 2, 3, 4]);
        assert_eq!(&p[8..10], &[0x12, 0x34]);
        assert_eq!(p[12], 6);
    }
}
