//! Coefficient selection — the compression stage of WaveSketch.
//!
//! When a detail coefficient finishes accumulating, the compression stage
//! decides whether to retain it. Two strategies are implemented:
//!
//! * [`IdealTopK`] — keeps the `K` coefficients with the largest
//!   energy-normalized magnitude `|d| · 2^{-(l+1)/2}` using a min-heap, the
//!   provably L2-optimal choice (Appendix A). This is the CPU version.
//! * [`HwThresholdSelector`] — the PISA-feasible approximation of §4.3:
//!   coefficients are split by level parity into two queues so that relative
//!   weights within a queue are exact powers of two (applied as right
//!   shifts), and the top-k is approximated by a pre-calibrated threshold.

use crate::haar::weighted_cmp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A finished detail coefficient offered to the compression stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Loop level `l` (0-based, as in Algorithm 1); the coefficient spans
    /// `2^{l+1}` windows.
    pub level: u32,
    /// Position index within the level (`i >> (l+1)`).
    pub idx: u32,
    /// Unnormalized coefficient value.
    pub val: i64,
}

/// Strategy choice carried in [`crate::SketchConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectorKind {
    /// Exact weighted top-k via a min-heap (CPU / control-plane version).
    Ideal,
    /// Threshold + parity-queue approximation (hardware version). The two
    /// fields are the per-parity retain thresholds in the *shifted* domain;
    /// calibrate them with [`crate::hw::calibrate_thresholds`].
    HwThreshold {
        /// Retain threshold for even loop levels (0, 2, 4, …).
        even: u64,
        /// Retain threshold for odd loop levels (1, 3, 5, …).
        odd: u64,
    },
}

/// Common interface of the two selection strategies.
pub trait CoeffSelector {
    /// Offers a finished coefficient; the selector may keep or discard it.
    fn offer(&mut self, c: Candidate);
    /// All currently retained coefficients (order unspecified).
    fn retained(&self) -> Vec<Candidate>;
    /// Number of retained coefficients.
    fn len(&self) -> usize;
    /// True if nothing is retained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Clears all state for a new epoch.
    fn reset(&mut self);
}

/// Heap entry ordered by *ascending* weighted magnitude so the
/// `BinaryHeap` (a max-heap) pops the weakest retained coefficient first.
#[derive(Debug, Clone, Copy)]
struct MinWeighted(Candidate);

impl PartialEq for MinWeighted {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MinWeighted {}
impl PartialOrd for MinWeighted {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinWeighted {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse of the weighted comparison → max-heap pops the minimum.
        weighted_cmp(other.0.val, other.0.level, self.0.val, self.0.level)
    }
}

/// Exact weighted top-k selection (Appendix A) with an O(log K) min-heap.
#[derive(Debug, Clone)]
pub struct IdealTopK {
    k: usize,
    heap: BinaryHeap<MinWeighted>,
}

impl IdealTopK {
    /// Creates a selector retaining at most `k` coefficients.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The weakest retained coefficient, if any — used for threshold
    /// calibration of the hardware version (§4.3).
    pub fn weakest(&self) -> Option<Candidate> {
        self.heap.peek().map(|m| m.0)
    }
}

impl CoeffSelector for IdealTopK {
    fn offer(&mut self, c: Candidate) {
        if c.val == 0 {
            return; // zero coefficients reconstruct as zero anyway
        }
        self.heap.push(MinWeighted(c));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    fn retained(&self) -> Vec<Candidate> {
        self.heap.iter().map(|m| m.0).collect()
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reset(&mut self) {
        self.heap.clear();
    }
}

/// Hardware-feasible selection (§4.3).
///
/// Weights `2^{-(l+1)/2}` differ by exact powers of two between levels of the
/// same parity, so the comparison value is `|val| >> (l / 2)` and coefficients
/// only compete within their parity class. Instead of a priority queue, a
/// coefficient is retained iff its shifted magnitude meets the calibrated
/// per-parity threshold; each class has a bounded store of `k/2` slots and
/// once full, further qualifying coefficients evict the weakest *slot* only
/// if strictly larger in the shifted domain (modelling the register-based
/// replacement a PISA pipeline can afford).
#[derive(Debug, Clone)]
pub struct HwThresholdSelector {
    cap_even: usize,
    cap_odd: usize,
    threshold_even: u64,
    threshold_odd: u64,
    even: Vec<Candidate>,
    odd: Vec<Candidate>,
    /// Coefficients that met the threshold but found the class store full and
    /// could not displace anything — counted for diagnostics.
    pub overflow_drops: u64,
}

impl HwThresholdSelector {
    /// Creates a selector with total capacity `k` (split across the two
    /// parity classes) and the given shifted-domain thresholds.
    ///
    /// An odd `k` cannot split evenly; the spare slot goes to the even class,
    /// which holds the lower (more energetic) half of the level range, so the
    /// total capacity is always exactly `k`.
    pub fn new(k: usize, threshold_even: u64, threshold_odd: u64) -> Self {
        assert!(
            k >= 2,
            "hardware selector needs k >= 2 (one slot per parity)"
        );
        Self {
            cap_even: k / 2 + k % 2,
            cap_odd: k / 2,
            threshold_even,
            threshold_odd,
            even: Vec::new(),
            odd: Vec::new(),
            overflow_drops: 0,
        }
    }

    /// Shifted-domain comparison value: `|val| >> (level / 2)` (§4.3's
    /// "right shift by ⌊r/2⌋").
    #[inline]
    pub fn shifted_magnitude(c: &Candidate) -> u64 {
        (c.val.unsigned_abs()) >> (c.level / 2)
    }

    fn offer_class(
        store: &mut Vec<Candidate>,
        cap: usize,
        threshold: u64,
        overflow: &mut u64,
        c: Candidate,
    ) {
        let mag = Self::shifted_magnitude(&c);
        if mag < threshold || c.val == 0 {
            return;
        }
        if store.len() < cap {
            store.push(c);
            return;
        }
        // Full: replace the weakest slot if strictly weaker than the newcomer.
        let (weakest_pos, weakest_mag) = store
            .iter()
            .enumerate()
            .map(|(i, s)| (i, Self::shifted_magnitude(s)))
            .min_by_key(|&(_, m)| m)
            .expect("store is non-empty when full");
        if weakest_mag < mag {
            store[weakest_pos] = c;
        } else {
            *overflow += 1;
        }
    }
}

impl CoeffSelector for HwThresholdSelector {
    fn offer(&mut self, c: Candidate) {
        if c.level.is_multiple_of(2) {
            Self::offer_class(
                &mut self.even,
                self.cap_even,
                self.threshold_even,
                &mut self.overflow_drops,
                c,
            );
        } else {
            Self::offer_class(
                &mut self.odd,
                self.cap_odd,
                self.threshold_odd,
                &mut self.overflow_drops,
                c,
            );
        }
    }

    fn retained(&self) -> Vec<Candidate> {
        self.even.iter().chain(self.odd.iter()).copied().collect()
    }

    fn len(&self) -> usize {
        self.even.len() + self.odd.len()
    }

    fn reset(&mut self) {
        self.even.clear();
        self.odd.clear();
        self.overflow_drops = 0;
    }
}

/// A concrete, cloneable selector — either strategy behind one type, so the
/// streaming transform (and with it, whole buckets) stays `Clone`-able for
/// non-destructive snapshots.
#[derive(Debug, Clone)]
pub enum Selector {
    /// Exact weighted top-k (CPU version).
    Ideal(IdealTopK),
    /// Threshold approximation (hardware version).
    Hw(HwThresholdSelector),
}

impl Selector {
    /// Builds a selector of the given kind with capacity `k`.
    pub fn new(kind: SelectorKind, k: usize) -> Self {
        match kind {
            SelectorKind::Ideal => Selector::Ideal(IdealTopK::new(k)),
            SelectorKind::HwThreshold { even, odd } => {
                Selector::Hw(HwThresholdSelector::new(k, even, odd))
            }
        }
    }
}

impl CoeffSelector for Selector {
    fn offer(&mut self, c: Candidate) {
        match self {
            Selector::Ideal(s) => s.offer(c),
            Selector::Hw(s) => s.offer(c),
        }
    }

    fn retained(&self) -> Vec<Candidate> {
        match self {
            Selector::Ideal(s) => s.retained(),
            Selector::Hw(s) => s.retained(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Selector::Ideal(s) => s.len(),
            Selector::Hw(s) => s.len(),
        }
    }

    fn reset(&mut self) {
        match self {
            Selector::Ideal(s) => s.reset(),
            Selector::Hw(s) => s.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(level: u32, idx: u32, val: i64) -> Candidate {
        Candidate { level, idx, val }
    }

    #[test]
    fn ideal_keeps_the_k_largest_same_level() {
        let mut s = IdealTopK::new(2);
        for (i, v) in [5i64, -9, 3, 7].iter().enumerate() {
            s.offer(cand(0, i as u32, *v));
        }
        let mut vals: Vec<i64> = s.retained().iter().map(|c| c.val).collect();
        vals.sort();
        assert_eq!(vals, vec![-9, 7]);
    }

    #[test]
    fn ideal_applies_level_weights() {
        // |100| at level 3 weighs 100/4 = 25; |30| at level 0 weighs 30/√2 ≈ 21.2.
        // So level-3 100 beats level-0 30, but level-0 40 (≈28.3) beats it.
        let mut s = IdealTopK::new(1);
        s.offer(cand(0, 0, 30));
        s.offer(cand(3, 0, 100));
        assert_eq!(s.retained()[0].level, 3);
        s.offer(cand(0, 1, 40));
        assert_eq!(s.retained()[0].val, 40);
    }

    #[test]
    fn ideal_ignores_zero_coefficients() {
        let mut s = IdealTopK::new(4);
        s.offer(cand(0, 0, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn ideal_weakest_tracks_heap_minimum() {
        let mut s = IdealTopK::new(2);
        s.offer(cand(0, 0, 10));
        s.offer(cand(0, 1, 20));
        assert_eq!(s.weakest().unwrap().val, 10);
        s.offer(cand(0, 2, 15));
        assert_eq!(s.weakest().unwrap().val, 15);
    }

    #[test]
    fn ideal_selection_is_l2_optimal_exhaustively() {
        // Appendix A: keeping the largest weighted coefficients minimizes the
        // L2 error. Verify exhaustively against all subsets of size k.
        use crate::haar::{inverse, transform, HaarCoefficients};
        let signal: Vec<i64> = vec![9, 1, 0, 14, 3, 3, 8, 2];
        let full = transform(&signal, 3);
        // Enumerate all (level, idx) coefficient positions.
        let mut positions = Vec::new();
        for (l, det) in full.details.iter().enumerate() {
            for (q, &v) in det.iter().enumerate() {
                positions.push((l as u32, q as u32, v));
            }
        }
        let k = 3;
        let err = |keep: &[usize]| -> f64 {
            let mut det: Vec<Vec<i64>> = full.details.iter().map(|d| vec![0; d.len()]).collect();
            for &p in keep {
                let (l, q, v) = positions[p];
                det[l as usize][q as usize] = v;
            }
            let rec = inverse(&HaarCoefficients {
                approx: full.approx.clone(),
                details: det,
                padded_len: full.padded_len,
            });
            signal
                .iter()
                .zip(&rec)
                .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                .sum::<f64>()
        };
        // Error of the heap's choice.
        let mut sel = IdealTopK::new(k);
        for &(l, q, v) in &positions {
            sel.offer(cand(l, q, v));
        }
        let chosen: Vec<usize> = sel
            .retained()
            .iter()
            .map(|c| {
                positions
                    .iter()
                    .position(|&(l, q, _)| l == c.level && q == c.idx)
                    .unwrap()
            })
            .collect();
        let heap_err = err(&chosen);
        // Brute force over all C(7,3) subsets.
        let n = positions.len();
        let mut best = f64::INFINITY;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    best = best.min(err(&[a, b, c]));
                }
            }
        }
        assert!(
            heap_err <= best + 1e-9,
            "heap error {heap_err} exceeds brute-force optimum {best}"
        );
    }

    #[test]
    fn hw_shifted_magnitude_halves_every_two_levels() {
        assert_eq!(
            HwThresholdSelector::shifted_magnitude(&cand(0, 0, 100)),
            100
        );
        assert_eq!(
            HwThresholdSelector::shifted_magnitude(&cand(1, 0, 100)),
            100
        );
        assert_eq!(HwThresholdSelector::shifted_magnitude(&cand(2, 0, 100)), 50);
        assert_eq!(HwThresholdSelector::shifted_magnitude(&cand(3, 0, 100)), 50);
        assert_eq!(HwThresholdSelector::shifted_magnitude(&cand(4, 0, 100)), 25);
    }

    #[test]
    fn hw_threshold_filters_small_coefficients() {
        let mut s = HwThresholdSelector::new(8, 10, 10);
        s.offer(cand(0, 0, 9)); // below threshold
        s.offer(cand(0, 1, 10)); // at threshold → kept
        s.offer(cand(1, 0, -50)); // odd class, kept
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hw_classes_are_independent() {
        let mut s = HwThresholdSelector::new(4, 1, 1); // 2 slots per class
        s.offer(cand(0, 0, 100)); // even, shifted 100
        s.offer(cand(2, 0, 100)); // even, shifted 50
                                  // Even class full; a stronger newcomer evicts the weakest slot.
        s.offer(cand(0, 1, 100)); // shifted 100 → evicts (2,0)
        assert!(s.retained().iter().all(|c| c.level != 2));
        // A weak even coefficient cannot displace anything.
        s.offer(cand(0, 2, 5));
        assert_eq!(s.overflow_drops, 1);
        // The odd class is independent: still empty, accepts even weak ones.
        s.offer(cand(1, 0, 5));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hw_full_class_evicts_weakest_when_newcomer_is_larger() {
        let mut s = HwThresholdSelector::new(2, 1, 1); // 1 slot per class
        s.offer(cand(0, 0, 10));
        s.offer(cand(0, 1, 30));
        let kept = s.retained();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].val, 30);
    }

    #[test]
    fn hw_odd_k_keeps_full_capacity() {
        // Regression: `k / 2` per class silently capped an odd k at k - 1
        // retained coefficients. The spare slot belongs to the even class.
        for k in [2usize, 3, 5, 7, 8, 63, 64] {
            let mut s = HwThresholdSelector::new(k, 1, 1);
            for i in 0..(2 * k as u32) {
                s.offer(cand(i % 2, i, 1_000 + i as i64)); // alternate parity
            }
            assert_eq!(s.len(), k, "total capacity must be exactly k = {k}");
            let even = s.retained().iter().filter(|c| c.level == 0).count();
            assert_eq!(even, k / 2 + k % 2, "even class takes the spare slot");
            assert_eq!(s.len() - even, k / 2);
        }
    }

    #[test]
    fn reset_clears_both_strategies() {
        let mut a = IdealTopK::new(2);
        a.offer(cand(0, 0, 5));
        a.reset();
        assert!(a.is_empty());
        let mut b = HwThresholdSelector::new(2, 0, 0);
        b.offer(cand(0, 0, 5));
        b.reset();
        assert!(b.is_empty());
    }
}
