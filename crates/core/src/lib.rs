#![warn(missing_docs)]

//! # WaveSketch — in-dataplane wavelet compression of flow-rate curves
//!
//! This crate implements the core contribution of *μMon: Empowering
//! Microsecond-level Network Monitoring with Wavelets* (SIGCOMM 2024, §4):
//! a sketch that measures per-flow rate curves at microsecond granularity and
//! compresses them online with a Haar-variant discrete wavelet transform.
//!
//! ## Layout
//!
//! * [`haar`] — the offline reference transform and its inverse (the
//!   unnormalized Haar variant of §4.2 that needs only add/sub).
//! * [`streaming`] — the online per-bucket transform of Algorithm 1: a window
//!   counter is folded into the approximation array and per-level partial
//!   detail coefficients as soon as it closes.
//! * [`select`] — coefficient selection: the ideal weighted top-k of
//!   Appendix A and the hardware (PISA) approximation of §4.3 with
//!   parity-split shift weights and a calibrated threshold.
//! * [`bucket`] — a complete counter bucket (`w0, i, c, A, D`) tying counting,
//!   transformation and compression together.
//! * [`arena`] — flat, preallocated multi-bucket storage backing the sketch
//!   types: allocation-free updates, in-place evictions, bit-identical
//!   drains.
//! * [`reconstruct`] — the analyzer-side reconstruction of Algorithm 2.
//! * [`basic`] — the basic WaveSketch: a Count-Min-style `d × w` bucket array.
//! * [`full`] — the full WaveSketch: majority-vote heavy part + light part.
//! * [`hw`] — hardware implementation model: approximate selection knobs,
//!   threshold calibration from traces, and the PISA pipeline resource model
//!   used to reproduce Table 1.
//! * [`report`] — the wire format a host ships to the μMon analyzer and its
//!   bandwidth accounting (`w0 + A + D`, §4.2 compression-ratio analysis).
//!
//! ## Quick start
//!
//! ```
//! use wavesketch::{BasicWaveSketch, FlowKey, SketchConfig};
//!
//! let config = SketchConfig::builder()
//!     .rows(3)
//!     .width(256)
//!     .levels(8)
//!     .topk(32)
//!     .max_windows(2048)
//!     .build();
//! let mut sketch = BasicWaveSketch::new(config);
//!
//! let flow = FlowKey::from_v4([10, 0, 0, 1], [10, 0, 0, 2], 4791, 4791, 17);
//! // Three packets of 1500 B in windows 100, 100 and 103.
//! sketch.update(&flow, 100, 1500);
//! sketch.update(&flow, 100, 1500);
//! sketch.update(&flow, 103, 1500);
//!
//! let curve = sketch.query(&flow).expect("flow was recorded");
//! assert_eq!(curve.at(100), 3000.0);
//! assert_eq!(curve.at(101), 0.0);
//! assert_eq!(curve.at(103), 1500.0);
//! ```

pub mod aggevict;
pub mod arena;
pub mod basic;
pub mod batch;
pub mod bucket;
pub mod config;
pub mod flow;
pub mod full;
pub mod haar;
pub mod hw;
pub mod reconstruct;
pub mod report;
pub mod select;
pub mod sharded;
pub mod streaming;

pub use aggevict::AggEvictBuffer;
pub use arena::BucketArena;
pub use basic::BasicWaveSketch;
pub use batch::{active_kernel, BatchKernel};
pub use bucket::WaveBucket;
pub use config::{Placement, SketchConfig, SketchConfigBuilder};
pub use flow::FlowKey;
pub use full::FullWaveSketch;
pub use hw::{HwSelectorConfig, PipelineBudget, ResourceUsage};
pub use reconstruct::ReconstructScratch;
pub use report::{BucketReport, DetailRecord, SketchReport};
pub use select::{CoeffSelector, HwThresholdSelector, IdealTopK, Selector, SelectorKind};

/// The paper's reference window length: 8.192 μs, chosen so the window id is
/// the nanosecond timestamp right-shifted by 13 bits (§7.1).
pub const DEFAULT_WINDOW_SHIFT: u32 = 13;

/// Nanoseconds per window for [`DEFAULT_WINDOW_SHIFT`] (8192 ns = 8.192 μs).
pub const DEFAULT_WINDOW_NS: u64 = 1 << DEFAULT_WINDOW_SHIFT;

/// Converts a nanosecond timestamp to a global window id using the default
/// 8.192 μs window.
#[inline]
pub fn window_of_ns(ts_ns: u64) -> u64 {
    ts_ns >> DEFAULT_WINDOW_SHIFT
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn window_id_is_timestamp_shift() {
        assert_eq!(window_of_ns(0), 0);
        assert_eq!(window_of_ns(8191), 0);
        assert_eq!(window_of_ns(8192), 1);
        assert_eq!(window_of_ns(10 * 8192 + 5), 10);
    }
}
