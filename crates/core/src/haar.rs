//! Offline reference implementation of the unnormalized Haar transform used
//! by WaveSketch (§4.1–4.2) and its exact inverse.
//!
//! The paper drops the `1/√2` energy-normalization factor so that the forward
//! transform needs only integer addition and subtraction (the factor is
//! reintroduced as a *selection weight*, see [`crate::select`]). Concretely,
//! one decomposition step maps a pair of adjacent values `(x0, x1)` to an
//! approximation `a = x0 + x1` and a detail `d = x0 - x1`; the inverse is
//! `x0 = (a + d) / 2`, `x1 = (a - d) / 2`. Repeating the step on the
//! approximation sequence for `L` levels yields the layout of Figure 5:
//! `[a_L..., d_L..., d_{L-1}..., ..., d_1...]`.

/// Coefficients of an `L`-level unnormalized Haar decomposition.
///
/// `approx[p]` is the sum of the input block `[p·2^L, (p+1)·2^L)`.
/// `details[l][q]` (with *loop level* `l` in `0..L`, matching Algorithm 1) is
/// `sum(block [q·2^{l+1}, q·2^{l+1}+2^l)) − sum(block [q·2^{l+1}+2^l, (q+1)·2^{l+1}))`.
#[derive(Debug, Clone, PartialEq)]
pub struct HaarCoefficients {
    /// Last-level approximation coefficients (block sums).
    pub approx: Vec<i64>,
    /// `details[l]` holds the loop-level-`l` detail coefficients.
    pub details: Vec<Vec<i64>>,
    /// Length of the (padded) input the coefficients describe.
    pub padded_len: usize,
}

impl HaarCoefficients {
    /// The decomposition depth that was applied.
    pub fn levels(&self) -> u32 {
        self.details.len() as u32
    }
}

/// Pads `signal` with zeros to the next power of two (at least 1).
pub fn pad_to_pow2(signal: &[i64]) -> Vec<i64> {
    let n = signal.len().max(1).next_power_of_two();
    let mut out = signal.to_vec();
    out.resize(n, 0);
    out
}

/// Forward unnormalized Haar transform over `levels` levels.
///
/// The input is zero-padded to a power of two. If the padded length is
/// shorter than `2^levels`, the decomposition stops once a single
/// approximation coefficient remains (the effective depth is
/// `min(levels, log2(padded_len))`), mirroring Algorithm 2's
/// `min(max_level, L-1)` iteration bound.
pub fn transform(signal: &[i64], levels: u32) -> HaarCoefficients {
    let padded = pad_to_pow2(signal);
    let padded_len = padded.len();
    let effective = levels.min(padded_len.trailing_zeros());

    let mut details: Vec<Vec<i64>> = Vec::with_capacity(effective as usize);
    let mut cur = padded;
    for _ in 0..effective {
        let half = cur.len() / 2;
        let mut next = Vec::with_capacity(half);
        let mut det = Vec::with_capacity(half);
        for q in 0..half {
            let x0 = cur[2 * q];
            let x1 = cur[2 * q + 1];
            next.push(x0 + x1);
            det.push(x0 - x1);
        }
        details.push(det);
        cur = next;
    }
    HaarCoefficients {
        approx: cur,
        details,
        padded_len,
    }
}

/// Inverse transform; exact when no coefficients were zeroed.
///
/// Reconstruction is done in `f64` because halving odd sums is not exact in
/// integers — this matches the paper, where reconstruction happens on the
/// analyzer, not in the data plane.
pub fn inverse(coeffs: &HaarCoefficients) -> Vec<f64> {
    let mut cur: Vec<f64> = coeffs.approx.iter().map(|&a| a as f64).collect();
    for det in coeffs.details.iter().rev() {
        let mut next = Vec::with_capacity(cur.len() * 2);
        for (q, &a) in cur.iter().enumerate() {
            let d = det.get(q).copied().unwrap_or(0) as f64;
            next.push((a + d) / 2.0);
            next.push((a - d) / 2.0);
        }
        cur = next;
    }
    cur.truncate(coeffs.padded_len);
    cur
}

/// Energy-normalized value of a detail coefficient at loop level `l`
/// (0-based): the unnormalized value times `2^{-(l+1)/2}`.
///
/// Discarding a coefficient increases the squared L2 reconstruction error by
/// exactly the square of this value (Appendix A), which is why selection
/// ranks by it.
pub fn normalized_weight(level: u32) -> f64 {
    0.5f64.powf((level as f64 + 1.0) / 2.0)
}

/// Squared-magnitude comparison of two weighted detail coefficients without
/// floating point: returns the ordering of
/// `|a|²·2^{-(la+1)}` vs `|b|²·2^{-(lb+1)}` via cross-multiplication in
/// `u128`. This is the exact comparison the ideal top-k uses.
pub fn weighted_cmp(a_val: i64, a_level: u32, b_val: i64, b_level: u32) -> std::cmp::Ordering {
    let a2 = (a_val.unsigned_abs() as u128).pow(2);
    let b2 = (b_val.unsigned_abs() as u128).pow(2);
    // Fast path for the overwhelmingly common case (selection runs one
    // comparison per heap edge, so this is the hottest arithmetic in the
    // sketch): when both squares fit in 96 bits and both levels are below 32,
    // compare `a2·2^{31-la}` vs `b2·2^{31-lb}` directly — that is the target
    // ratio scaled by the constant `2^{32}`, and neither shift can overflow
    // (96 + 31 < 128). Zero squares order correctly here too (`0 << s == 0`).
    if (a2 | b2) >> 96 == 0 && a_level < 32 && b_level < 32 {
        return (a2 << (31 - a_level)).cmp(&(b2 << (31 - b_level)));
    }
    if a2 == 0 || b2 == 0 {
        return a2.cmp(&b2);
    }
    // a2 / 2^{la+1} vs b2 / 2^{lb+1}  ⇔  a2 · 2^{lb+1} vs b2 · 2^{la+1}.
    // The squares already occupy up to 126 bits, so the cross-multiplication
    // can overflow u128. Cancel the common power of two first (at most one
    // side still needs a shift), then guard the remaining shift: if it pushes
    // the value's bit length past 128 the shifted side is strictly larger,
    // because the unshifted side always fits in 128 bits.
    let (shift_a, shift_b) = (b_level as u64 + 1, a_level as u64 + 1);
    let common = shift_a.min(shift_b);
    let (shift_a, shift_b) = (shift_a - common, shift_b - common);
    if shift_a > 0 {
        if shift_a > a2.leading_zeros() as u64 {
            std::cmp::Ordering::Greater
        } else {
            (a2 << shift_a).cmp(&b2)
        }
    } else if shift_b > 0 {
        if shift_b > b2.leading_zeros() as u64 {
            std::cmp::Ordering::Less
        } else {
            a2.cmp(&(b2 << shift_b))
        }
    } else {
        a2.cmp(&b2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(signal: &[i64], levels: u32) {
        let coeffs = transform(signal, levels);
        let rec = inverse(&coeffs);
        for (i, &x) in signal.iter().enumerate() {
            assert!(
                (rec[i] - x as f64).abs() < 1e-9,
                "mismatch at {i}: {} vs {}",
                rec[i],
                x
            );
        }
        // Padding reconstructs as zero.
        for &r in &rec[signal.len()..] {
            assert!(r.abs() < 1e-9);
        }
    }

    #[test]
    fn figure5_example_transforms_as_in_the_paper() {
        // Figure 5's running example: the original signal [7,9,6,3,2,4,4,6]
        // decomposes to a11..a14 = 16,9,6,10 and d11..d14 = -2,3,-2,-2 at
        // level 1, a21,a22 = 25,16 / d21,d22 = 7,-4 at level 2, and
        // a31 = 41 / d31 = 9 at level 3.
        let signal = [7, 9, 6, 3, 2, 4, 4, 6];
        let c = transform(&signal, 3);
        assert_eq!(c.approx, vec![41]);
        assert_eq!(c.details[2], vec![9]); // d31
        assert_eq!(c.details[1], vec![7, -4]); // d21, d22
        assert_eq!(c.details[0], vec![-2, 3, -2, -2]); // d11..d14
    }

    #[test]
    fn figure5_compression_reconstructs_the_paper_waveform() {
        // Figure 5 drops the three smallest level-1 details (d11, d13, d14),
        // keeping [41, 9, 7, -4, 0, 3, 0, 0]; the paper's reconstruction is
        // [8, 8, 6, 3, 3, 3, 5, 5].
        let c = HaarCoefficients {
            approx: vec![41],
            details: vec![vec![0, 3, 0, 0], vec![7, -4], vec![9]],
            padded_len: 8,
        };
        assert_eq!(inverse(&c), vec![8.0, 8.0, 6.0, 3.0, 3.0, 3.0, 5.0, 5.0]);
    }

    #[test]
    fn roundtrip_exact_for_various_lengths() {
        roundtrip(&[5], 3);
        roundtrip(&[1, 2], 1);
        roundtrip(&[1, 2, 3], 4);
        roundtrip(&[10, 0, 0, 7, 0, 0, 0, 0, 3], 8);
        let long: Vec<i64> = (0..1000).map(|i| (i * 37) % 101).collect();
        roundtrip(&long, 8);
    }

    #[test]
    fn roundtrip_with_negative_values() {
        roundtrip(&[-5, 3, -2, 8, 0, -1], 3);
    }

    #[test]
    fn shallow_levels_cap_at_signal_depth() {
        // Signal of padded length 4 can only decompose 2 levels even if L=8.
        let c = transform(&[1, 2, 3, 4], 8);
        assert_eq!(c.levels(), 2);
        assert_eq!(c.approx, vec![10]);
    }

    #[test]
    fn approx_entries_are_block_sums() {
        let signal: Vec<i64> = (1..=8).collect();
        let c = transform(&signal, 2);
        // Blocks of 4: [1+2+3+4, 5+6+7+8].
        assert_eq!(c.approx, vec![10, 26]);
    }

    #[test]
    fn empty_signal_transforms_to_zero() {
        let c = transform(&[], 3);
        assert_eq!(c.padded_len, 1);
        assert_eq!(inverse(&c), vec![0.0]);
    }

    #[test]
    fn normalized_weight_follows_the_paper_sequence() {
        // §4.3: "as the level increases, the weights are 1/√2, 1/2, 1/(2√2), 1/4, …"
        let w: Vec<f64> = (0..4).map(normalized_weight).collect();
        assert!((w[0] - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[2] - 1.0 / (2.0 * 2f64.sqrt())).abs() < 1e-12);
        assert!((w[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_cmp_survives_i64_extremes() {
        use std::cmp::Ordering::*;
        // Regression: the old cross-multiplication shifted a ~2^126 square by
        // up to 64 bits, silently wrapping modulo 2^128 in release builds. At
        // b_level = 63 the wrapped lhs collapsed to 2^64 and a maximal
        // coefficient compared *smaller* than a mid-sized one.
        assert_eq!(weighted_cmp(i64::MAX, 0, 1 << 33, 63), Greater);
        assert_eq!(weighted_cmp(1 << 33, 63, i64::MAX, 0), Less);
        assert_eq!(weighted_cmp(i64::MIN, 0, i64::MAX, 0), Greater);
        assert_eq!(weighted_cmp(i64::MAX, 7, i64::MAX, 7), Equal);
        assert_eq!(weighted_cmp(i64::MAX, 1, i64::MAX, 0), Less);
        // |2v| at level l+2 weighs exactly as |v| at level l.
        let v = (1i64 << 61) - 3;
        assert_eq!(weighted_cmp(2 * v, 9, v, 7), Equal);
        assert_eq!(weighted_cmp(2 * v + 1, 9, v, 7), Greater);
        assert_eq!(weighted_cmp(2 * v - 1, 9, v, 7), Less);
    }

    #[test]
    fn weighted_cmp_survives_deep_levels() {
        use std::cmp::Ordering::*;
        // Regression: the old `.min(64)` clamp collapsed every level beyond
        // 63 into the same weight class.
        assert_eq!(weighted_cmp(5, 100, 5, 101), Greater);
        assert_eq!(weighted_cmp(5, 101, 5, 100), Less);
        assert_eq!(weighted_cmp(5, 1000, 5, 1000), Equal);
        assert_eq!(
            weighted_cmp(i64::MAX, u32::MAX, i64::MAX, u32::MAX - 1),
            Less
        );
        assert_eq!(weighted_cmp(1, 0, i64::MAX, 200), Greater);
        assert_eq!(weighted_cmp(i64::MAX, 200, 1, 0), Less);
        // Zero loses to everything except zero, at any depth.
        assert_eq!(weighted_cmp(0, 0, 1, u32::MAX), Less);
        assert_eq!(weighted_cmp(1, u32::MAX, 0, 0), Greater);
        assert_eq!(weighted_cmp(0, 3, 0, 90), Equal);
    }

    #[test]
    fn weighted_cmp_matches_float_comparison() {
        let cases = [
            (100i64, 0u32, 100i64, 1u32),
            (-50, 2, 49, 2),
            (7, 0, 10, 2),
            (1 << 30, 7, (1 << 30) + 1, 7),
        ];
        for (av, al, bv, bl) in cases {
            let float = (av.abs() as f64 * normalized_weight(al))
                .partial_cmp(&(bv.abs() as f64 * normalized_weight(bl)))
                .unwrap();
            assert_eq!(
                weighted_cmp(av, al, bv, bl),
                float,
                "case {av},{al} vs {bv},{bl}"
            );
        }
    }
}
