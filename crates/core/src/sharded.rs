//! Sharded parallel host ingest: N independent [`FullWaveSketch`] shards
//! partitioning the flow space by lane.
//!
//! Placement is lane-first (see [`SketchConfig::light_col`]): every flow hashes
//! to one global lane, and shard `s` of `N` owns the contiguous lane slice
//! `[s·lanes/N, (s+1)·lanes/N)`. Each shard's arrays are exactly the
//! corresponding slice of the sequential sketch's arrays, so:
//!
//! * a flow's entire state (heavy slot and all light buckets) lives in exactly
//!   one shard — no cross-shard aggregation or approximation on merge;
//! * shard-local heavy subtraction is exact, because a heavy flow in another
//!   shard occupies disjoint columns and can never collide with a local flow;
//! * the merged drain is **bit-identical** to a sequential
//!   [`FullWaveSketch`]'s drain: heavy entries concatenate in shard order
//!   (ascending global slot), light entries get their column offset restored
//!   and are re-sorted into row-major order.
//!
//! Shards share no state, so they can be moved onto worker threads (see the
//! `umon` host agent); this module also offers a single-threaded wrapper whose
//! queries and drains are usable as a drop-in for the sequential sketch.

use crate::basic::WindowSeries;
use crate::config::SketchConfig;
use crate::flow::FlowKey;
use crate::full::FullWaveSketch;
use crate::report::SketchReport;

/// A full WaveSketch split into `N` lane-partitioned shards.
pub struct ShardedWaveSketch {
    config: SketchConfig,
    shards: Vec<FullWaveSketch>,
    /// Per-shard sub-batch buffers for [`Self::update_batch`], reused across
    /// calls (cleared, never shrunk) so routing allocates only until each
    /// buffer has grown to the workload's burst size.
    route: Vec<Vec<(FlowKey, u64, i64)>>,
}

impl ShardedWaveSketch {
    /// Splits `config` into `shard_count` lane-partitioned shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` does not divide `config.lanes` (and therefore
    /// the width and heavy-row counts), or if `config` is already a slice.
    pub fn new(config: SketchConfig, shard_count: usize) -> Self {
        let shards = (0..shard_count)
            .map(|s| FullWaveSketch::new(config.shard_slice(s, shard_count)))
            .collect();
        Self {
            config,
            shards,
            route: vec![Vec::new(); shard_count],
        }
    }

    /// The global (unsliced) configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index that owns `flow`.
    #[inline]
    pub fn shard_of(&self, flow: &FlowKey) -> usize {
        self.config.shard_of(flow, self.shards.len())
    }

    /// Records `value` for `flow` at absolute window `window`.
    #[inline]
    pub fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        let s = self.shard_of(flow);
        self.shards[s].update(flow, window, value);
    }

    /// Records a batch of updates: routes each record to its owning shard's
    /// sub-batch (a stable partition — per-shard record order is the arrival
    /// order), then runs every shard's SIMD batch pipeline
    /// ([`FullWaveSketch::update_batch`]) over its sub-batch.
    ///
    /// Bit-identical to calling [`Self::update`] per entry: shards share no
    /// state, so only the per-shard order matters, and that is preserved.
    /// Short bursts skip staging entirely — below one hash block per shard
    /// the scalar path's interleaved hashing is already optimal.
    pub fn update_batch(&mut self, batch: &[(FlowKey, u64, i64)]) {
        if batch.len() < 8 * self.shards.len() {
            for (flow, window, value) in batch {
                self.update(flow, *window, *value);
            }
            return;
        }
        for sub in &mut self.route {
            sub.clear();
        }
        for rec in batch {
            self.route[self.config.shard_of(&rec.0, self.shards.len())].push(*rec);
        }
        for (shard, sub) in self.shards.iter_mut().zip(&self.route) {
            shard.update_batch(sub);
        }
    }

    /// Queries the reconstructed rate curve of `flow` from its owning shard.
    pub fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        self.shards[self.shard_of(flow)].query(flow)
    }

    /// True if `flow` currently holds a heavy-part slot in its shard.
    pub fn is_heavy(&self, flow: &FlowKey) -> bool {
        self.shards[self.shard_of(flow)].is_heavy(flow)
    }

    /// Current heavy candidates and votes across all shards, in global heavy
    /// slot order.
    pub fn heavy_flows(&self) -> Vec<(FlowKey, i64)> {
        self.shards.iter().flat_map(|s| s.heavy_flows()).collect()
    }

    /// Heavy-candidate evictions across all shards since the last drain.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions()).sum()
    }

    /// Drains all shards and merges them into one report, bit-identical to a
    /// sequential [`FullWaveSketch`] drain under the same config.
    pub fn drain(&mut self) -> SketchReport {
        let reports: Vec<SketchReport> = self.shards.iter_mut().map(|s| s.drain()).collect();
        merge_shard_reports(&self.config, reports)
    }

    /// Configured in-dataplane memory in bytes (identical to the sequential
    /// sketch: sharding slices the arrays, it does not duplicate them).
    pub fn memory_bytes(&self) -> usize {
        self.config.full_bytes()
    }
}

/// Merges per-shard drain reports (in shard order) into the report a
/// sequential [`FullWaveSketch`] under the global `config` would produce.
///
/// Heavy entries concatenate as-is: shard `s`'s local heavy slots are the
/// contiguous global slots `[s·H/N, (s+1)·H/N)`, so shard-order concatenation
/// *is* ascending global slot order. Light entries carry shard-local columns;
/// the global column is `s · width/N + local`, and a final row-major sort
/// restores the sequential emission order.
pub fn merge_shard_reports(config: &SketchConfig, reports: Vec<SketchReport>) -> SketchReport {
    let shard_count = reports.len().max(1);
    let shard_width = config.width / shard_count;
    let mut merged = SketchReport::default();
    for (s, report) in reports.into_iter().enumerate() {
        merged.heavy.extend(report.heavy);
        let offset = (s * shard_width) as u32;
        merged.light.extend(
            report
                .light
                .into_iter()
                .map(|(row, col, brs)| (row, col + offset, brs)),
        );
    }
    merged.light.sort_by_key(|(row, col, _)| (*row, *col));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;

    // Shards move onto worker threads in the umon host agent; keep the
    // compiler honest about that here, next to the type.
    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<FullWaveSketch>();
        assert_send::<ShardedWaveSketch>();
    };

    fn config() -> SketchConfig {
        SketchConfig::builder()
            .rows(3)
            .width(64)
            .levels(4)
            .topk(16)
            .max_windows(256)
            .heavy_rows(16)
            .selector(SelectorKind::Ideal)
            .build()
    }

    /// A deterministic, skewed workload: a few elephants plus many mice, with
    /// out-of-order windows and negative-free values.
    fn workload() -> Vec<(FlowKey, u64, i64)> {
        let mut batch = Vec::new();
        for w in 0..64u64 {
            for id in 1..=4u64 {
                batch.push((FlowKey::from_id(id), w, 1000 + (id as i64) * (w as i64 % 7)));
            }
            for m in 0..8u64 {
                let id = 100 + (w * 13 + m * 7) % 400;
                batch.push((FlowKey::from_id(id), w, 40 + (m as i64)));
            }
        }
        batch
    }

    #[test]
    fn sharded_drain_is_bit_identical_to_sequential() {
        let batch = workload();
        for n in [1usize, 2, 4, 8] {
            let mut seq = FullWaveSketch::new(config());
            let mut sharded = ShardedWaveSketch::new(config(), n);
            for (f, w, v) in &batch {
                seq.update(f, *w, *v);
            }
            sharded.update_batch(&batch);
            assert_eq!(sharded.drain(), seq.drain(), "drain mismatch at {n} shards");
        }
    }

    #[test]
    fn sharded_queries_match_sequential_bit_for_bit() {
        let batch = workload();
        let mut seq = FullWaveSketch::new(config());
        for (f, w, v) in &batch {
            seq.update(f, *w, *v);
        }
        for n in [1usize, 2, 4, 8] {
            let mut sharded = ShardedWaveSketch::new(config(), n);
            sharded.update_batch(&batch);
            let keys: Vec<FlowKey> = (1..=4u64).chain(100..500).map(FlowKey::from_id).collect();
            for k in &keys {
                assert_eq!(
                    sharded.is_heavy(k),
                    seq.is_heavy(k),
                    "is_heavy({k:?}) at {n} shards"
                );
                let (a, b) = (sharded.query(k), seq.query(k));
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.start_window, y.start_window, "{k:?} at {n} shards");
                        assert_eq!(x.values, y.values, "{k:?} at {n} shards");
                    }
                    (None, None) => {}
                    _ => panic!("query presence mismatch for {k:?} at {n} shards"),
                }
            }
        }
    }

    #[test]
    fn every_flow_lives_in_exactly_one_shard() {
        let sharded = ShardedWaveSketch::new(config(), 4);
        for id in 0..2000u64 {
            let f = FlowKey::from_id(id);
            let s = sharded.shard_of(&f);
            assert!(s < 4);
            assert!(sharded.shards[s].config().owns_flow(&f));
            for (other, shard) in sharded.shards.iter().enumerate() {
                if other != s {
                    assert!(!shard.config().owns_flow(&f));
                }
            }
        }
    }

    #[test]
    fn heavy_flows_and_evictions_aggregate_across_shards() {
        let batch = workload();
        let mut seq = FullWaveSketch::new(config());
        let mut sharded = ShardedWaveSketch::new(config(), 4);
        for (f, w, v) in &batch {
            seq.update(f, *w, *v);
        }
        sharded.update_batch(&batch);
        assert_eq!(sharded.heavy_flows(), seq.heavy_flows());
        assert_eq!(sharded.evictions(), seq.evictions());
        assert_eq!(sharded.memory_bytes(), seq.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "must divide lanes")]
    fn shard_count_must_divide_lanes() {
        // config() auto-selects 8 lanes; 3 does not divide 8.
        ShardedWaveSketch::new(config(), 3);
    }
}
