//! The basic WaveSketch (§4.2, Figure 6): a Count-Min-style array of
//! `d × w` [`WaveBucket`]s. Updates hash the flow key into one bucket per
//! row; queries reconstruct each of the `d` candidate buckets and return the
//! one with the smallest total (the Count-Min minimum generalized to curves).

use crate::arena::BucketArena;
use crate::batch::{BatchScratch, CHUNK};
use crate::config::{Placement, SketchConfig};
use crate::flow::FlowKey;
use crate::reconstruct::ReconstructScratch;
use crate::report::BucketReport;

/// A reconstructed flow-rate curve: per-window values anchored at an
/// absolute window id. Mirrors `umon_metrics::RateCurve` but lives here so
/// the core crate has no dependencies.
///
/// Every mutating operation works in place: once a series (and the
/// [`ReconstructScratch`] feeding it) has grown to a workload's span, query
/// loops reuse it with zero heap traffic. The in-place span growth only
/// moves and zero-fills values — no arithmetic — so it cannot perturb a
/// single result bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSeries {
    /// Absolute window id of `values[0]`.
    pub start_window: u64,
    /// Reconstructed per-window values.
    pub values: Vec<f64>,
}

impl WindowSeries {
    /// An empty series (no span, no values) ready for [`Self::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the union series from a set of per-epoch reports (epochs of one
    /// bucket never overlap).
    pub fn from_reports(reports: &[BucketReport]) -> Option<Self> {
        let mut series = Self::new();
        let mut scratch = ReconstructScratch::new();
        series
            .assign_from_reports(reports, &mut scratch)
            .then_some(series)
    }

    /// In-place [`Self::from_reports`]: resets this series to the reports'
    /// union span and accumulates every report through `scratch`. Returns
    /// `false` (leaving the series empty) when `reports` is empty.
    pub fn assign_from_reports(
        &mut self,
        reports: &[BucketReport],
        scratch: &mut ReconstructScratch,
    ) -> bool {
        let Some(start) = reports.iter().map(|r| r.w0).min() else {
            self.reset(0, 0);
            return false;
        };
        let end = reports
            .iter()
            .map(|r| r.w0 + r.padded_len as u64)
            .max()
            .expect("non-empty");
        self.reset(start, (end - start) as usize);
        for r in reports {
            self.accumulate_report(r, scratch);
        }
        true
    }

    /// Resets to an all-zero series of `len` windows anchored at
    /// `start_window`, keeping the allocation.
    pub fn reset(&mut self, start_window: u64, len: usize) {
        self.start_window = start_window;
        self.values.clear();
        self.values.resize(len, 0.0);
    }

    /// Becomes a copy of `other`, keeping this series' allocation.
    pub fn assign_from(&mut self, other: &WindowSeries) {
        self.start_window = other.start_window;
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }

    /// Adds one epoch's (clamped) reconstruction into the series. The epoch
    /// must lie inside the current span — callers size the span first (as
    /// [`Self::assign_from_reports`] does).
    pub fn accumulate_report(&mut self, r: &BucketReport, scratch: &mut ReconstructScratch) {
        let rec = r.reconstruct_with(scratch);
        let base = (r.w0 - self.start_window) as usize;
        for (i, &v) in rec.iter().enumerate() {
            self.values[base + i] += v;
        }
    }

    /// Adds one already-reconstructed epoch curve into the series — the
    /// cached-curve twin of [`Self::accumulate_report`], with the same
    /// must-lie-inside-the-span contract and the same per-window addition
    /// order (so sums are bit-identical either way).
    pub fn accumulate_curve(&mut self, w0: u64, curve: &[f64]) {
        let base = (w0 - self.start_window) as usize;
        for (i, &v) in curve.iter().enumerate() {
            self.values[base + i] += v;
        }
    }

    /// Grows the span to cover `[new_start, new_end)` in place, zero-filling
    /// the new windows: one `resize`, one `copy_within`, one `fill` — no
    /// fresh buffer. Shrinks nothing.
    fn grow_to_span(&mut self, new_start: u64, new_end: u64) {
        let new_start = new_start.min(self.start_window);
        let new_end = new_end.max(self.end_window());
        let old_len = self.values.len();
        let pad_front = (self.start_window - new_start) as usize;
        self.values.resize((new_end - new_start) as usize, 0.0);
        if pad_front > 0 {
            self.values.copy_within(0..old_len, pad_front);
            self.values[..pad_front].fill(0.0);
            self.start_window = new_start;
        }
    }

    /// The absolute window id one past the last value.
    pub fn end_window(&self) -> u64 {
        self.start_window + self.values.len() as u64
    }

    /// Value at absolute window `w` (0 outside the series span).
    pub fn at(&self, w: u64) -> f64 {
        if w < self.start_window {
            return 0.0;
        }
        self.values
            .get((w - self.start_window) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Overlays `other` onto this series: within `other`'s span, this
    /// series takes `other`'s values (extending the span if needed). Used by
    /// the full-version query to prefer exact heavy-part values where the
    /// heavy bucket has coverage while keeping the light part's history for
    /// windows before the flow was elected heavy.
    pub fn overlay(&mut self, other: &WindowSeries) {
        if other.values.is_empty() {
            return;
        }
        self.grow_to_span(other.start_window, other.end_window());
        let off = (other.start_window - self.start_window) as usize;
        self.values[off..off + other.values.len()].copy_from_slice(&other.values);
    }

    /// Extends the span with zeros so absolute window `w` indexes a real
    /// slot. A no-op when `w` is already inside the span. Used by analyzers
    /// merging evidence whose light series lost coverage (e.g. a dropped
    /// upload period) while a heavy epoch still anchors earlier windows.
    pub fn extend_to_cover(&mut self, w: u64) {
        if w < self.start_window {
            self.grow_to_span(w, self.end_window());
        } else if w >= self.end_window() {
            let len = (w - self.start_window + 1) as usize;
            self.values.resize(len, 0.0);
        }
    }

    /// Pointwise subtraction of `other`, clamped at zero. Used when removing
    /// heavy-flow contributions from a light-part curve (§4.2 full version).
    pub fn subtract_clamped(&mut self, other: &WindowSeries) {
        for (offset, v) in other.values.iter().enumerate() {
            let w = other.start_window + offset as u64;
            if w < self.start_window {
                continue;
            }
            let idx = (w - self.start_window) as usize;
            if let Some(slot) = self.values.get_mut(idx) {
                *slot = (*slot - v).max(0.0);
            }
        }
    }
}

/// The basic WaveSketch.
///
/// All `d × w` buckets share one flat [`BucketArena`] (bucket `row * width +
/// col`), so the per-packet update path performs no allocation and touches
/// contiguous header/counter arrays instead of chasing per-bucket heap
/// state.
pub struct BasicWaveSketch {
    config: SketchConfig,
    /// Row-major bucket arena: bucket `row * width + col`.
    arena: BucketArena,
    /// Lazily-built staging buffers for [`Self::update_batch`]; allocated on
    /// the first batch and reused forever after (the alloc gate covers this).
    batch: Option<Box<BatchScratch>>,
}

impl BasicWaveSketch {
    /// Creates an empty sketch.
    pub fn new(config: SketchConfig) -> Self {
        let arena = BucketArena::from_config(&config, config.rows * config.width);
        Self {
            config,
            arena,
            batch: None,
        }
    }

    /// The sketch configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Records `value` (bytes or packets) for `flow` at absolute window
    /// `window` — the sketch update of Algorithm 1 applied to all `d` rows.
    pub fn update(&mut self, flow: &FlowKey, window: u64, value: i64) {
        let p = self.config.place(flow);
        self.update_placed(&p, window, value);
    }

    /// [`Self::update`] with the key already packed and lane-hashed —
    /// lets [`crate::FullWaveSketch`] share one [`Placement`] between its
    /// heavy part and this light part.
    #[inline]
    pub(crate) fn update_placed(&mut self, p: &Placement, window: u64, value: i64) {
        for row in 0..self.config.rows {
            let idx = row * self.config.width + self.config.light_col_placed(p, row);
            self.arena.update(idx, window, value);
        }
    }

    /// Records a burst of `(flow, window, value)` updates through the batch
    /// pipeline ([`crate::batch`]): keys are packed and hashed many-at-a-time
    /// with the widest SIMD kernel the CPU supports, then each row's window
    /// folds are applied with the upcoming buckets prefetched.
    ///
    /// The resulting sketch state is **bit-identical** to calling
    /// [`Self::update`] for each record in order: light buckets are mutually
    /// independent and the row-phased application preserves every individual
    /// bucket's record order (two records can share a bucket only within one
    /// row, and within a row they are applied in record order).
    pub fn update_batch(&mut self, records: &[(FlowKey, u64, i64)]) {
        let mut scratch = self
            .batch
            .take()
            .unwrap_or_else(|| Box::new(BatchScratch::new(&self.config, false)));
        for chunk in records.chunks(CHUNK) {
            let n = chunk.len();
            scratch.stage(&self.config, chunk);
            for row in 0..self.config.rows {
                let idx = &scratch.light_idx[row * CHUNK..row * CHUNK + n];
                self.arena
                    .apply_batch(idx, &scratch.windows, &scratch.values, n);
            }
        }
        self.batch = Some(scratch);
    }

    /// Mutable access to the bucket arena, for [`crate::FullWaveSketch`]'s
    /// batch path (which stages once and applies to both parts).
    #[inline]
    pub(crate) fn arena_mut(&mut self) -> &mut BucketArena {
        &mut self.arena
    }

    /// Queries the flow's reconstructed rate curve: reconstructs the `d`
    /// candidate buckets and returns the one with the smallest total volume
    /// (least over-counted by collisions). `None` if the flow hit no bucket.
    pub fn query(&self, flow: &FlowKey) -> Option<WindowSeries> {
        let p = self.config.place(flow);
        let mut best: Option<WindowSeries> = None;
        for row in 0..self.config.rows {
            let idx = row * self.config.width + self.config.light_col_placed(&p, row);
            let reports = self.arena.snapshot_bucket(idx);
            if let Some(series) = WindowSeries::from_reports(&reports) {
                let replace = match &best {
                    None => true,
                    Some(b) => series.total() < b.total(),
                };
                if replace {
                    best = Some(series);
                }
            }
        }
        best
    }

    /// Raw per-bucket reports of the flow's `d` candidate buckets (for
    /// analyzers that need every row, e.g. the full version's subtraction).
    pub fn query_reports(&self, flow: &FlowKey) -> Vec<(u32, u32, Vec<BucketReport>)> {
        let p = self.config.place(flow);
        (0..self.config.rows)
            .map(|row| {
                let col = self.config.light_col_placed(&p, row);
                let idx = row * self.config.width + col;
                (row as u32, col as u32, self.arena.snapshot_bucket(idx))
            })
            .collect()
    }

    /// Drains every bucket into a list of `(row, col, reports)` entries and
    /// resets the sketch for the next measurement period.
    pub fn drain(&mut self) -> Vec<(u32, u32, Vec<BucketReport>)> {
        let mut out = Vec::new();
        for row in 0..self.config.rows {
            for col in 0..self.config.width {
                let idx = row * self.config.width + col;
                let reports = self.arena.drain_bucket(idx);
                if !reports.is_empty() {
                    out.push((row as u32, col as u32, reports));
                }
            }
        }
        out
    }

    /// Number of buckets that have recorded at least one packet.
    pub fn active_buckets(&self) -> usize {
        (0..self.arena.bucket_count())
            .filter(|&b| !self.arena.is_bucket_empty(b))
            .count()
    }

    /// Configured in-dataplane memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.config.basic_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::WaveBucket;
    use crate::select::SelectorKind;

    fn config(w: usize, k: usize) -> SketchConfig {
        SketchConfig::builder()
            .rows(3)
            .width(w)
            .levels(4)
            .topk(k)
            .max_windows(256)
            .selector(SelectorKind::Ideal)
            .build()
    }

    #[test]
    fn single_flow_reconstructs_exactly_with_big_k() {
        let mut s = BasicWaveSketch::new(config(64, 256));
        let f = FlowKey::from_id(1);
        let pattern = [(0u64, 1000i64), (1, 2000), (3, 500), (10, 1500)];
        for (w, v) in pattern {
            s.update(&f, w, v);
        }
        let curve = s.query(&f).expect("flow present");
        for (w, v) in pattern {
            assert!((curve.at(w) - v as f64).abs() < 1e-9, "window {w}");
        }
        assert_eq!(curve.at(2), 0.0);
    }

    #[test]
    fn unknown_flow_queries_to_none_mostly() {
        // An unseen flow may collide with a recorded one, but with an empty
        // sketch the query must be None.
        let s = BasicWaveSketch::new(config(64, 16));
        assert!(s.query(&FlowKey::from_id(9)).is_none());
    }

    #[test]
    fn query_never_underestimates_total_for_recorded_flow() {
        // Count-Min property lifted to curves: collisions only add volume.
        let mut s = BasicWaveSketch::new(config(8, 64)); // tiny width → collisions
        let mut totals = std::collections::HashMap::new();
        for id in 0..50u64 {
            let f = FlowKey::from_id(id);
            let bytes = 100 * (id as i64 + 1);
            s.update(&f, id % 32, bytes);
            *totals.entry(id).or_insert(0i64) += bytes;
        }
        for (id, true_total) in totals {
            let est = s.query(&FlowKey::from_id(id)).unwrap().total();
            assert!(
                est >= true_total as f64 - 1e-6,
                "flow {id}: est {est} < true {true_total}"
            );
        }
    }

    #[test]
    fn drain_resets_and_reports_active_buckets_only() {
        let mut s = BasicWaveSketch::new(config(64, 16));
        s.update(&FlowKey::from_id(1), 5, 100);
        let drained = s.drain();
        // One flow hits d=3 buckets (possibly fewer if rows collide — they
        // can't across rows since indices are row-scoped).
        assert_eq!(drained.len(), 3);
        assert_eq!(s.active_buckets(), 0);
        assert!(s.query(&FlowKey::from_id(1)).is_none());
    }

    #[test]
    fn two_flows_in_different_buckets_do_not_interfere() {
        let mut s = BasicWaveSketch::new(config(256, 64));
        let (a, b) = (FlowKey::from_id(1), FlowKey::from_id(2));
        s.update(&a, 0, 111);
        s.update(&b, 0, 999);
        // With w=256 and 2 flows a full 3-row collision is vanishingly
        // unlikely; the min-total query isolates each flow.
        let qa = s.query(&a).unwrap().total();
        assert!((qa - 111.0).abs() < 1e-6 || (qa - 1110.0).abs() < 1e-6);
    }

    #[test]
    fn window_series_merges_multiple_epochs() {
        let mut bucket = WaveBucket::with_params(2, 4, 16, SelectorKind::Ideal);
        for w in 0..8 {
            bucket.update(w, 10 * (w as i64 + 1));
        }
        let series = WindowSeries::from_reports(&bucket.drain()).unwrap();
        assert_eq!(series.start_window, 0);
        for w in 0..8u64 {
            assert!((series.at(w) - 10.0 * (w as f64 + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn overlay_prefers_other_within_its_span() {
        let mut base = WindowSeries {
            start_window: 10,
            values: vec![5.0, 5.0, 5.0, 5.0],
        };
        let exact = WindowSeries {
            start_window: 12,
            values: vec![1.0, 2.0],
        };
        base.overlay(&exact);
        assert_eq!(base.values, vec![5.0, 5.0, 1.0, 2.0]);
    }

    #[test]
    fn overlay_extends_the_span_when_needed() {
        let mut base = WindowSeries {
            start_window: 10,
            values: vec![5.0],
        };
        let other = WindowSeries {
            start_window: 8,
            values: vec![1.0, 1.0],
        };
        base.overlay(&other);
        assert_eq!(base.start_window, 8);
        assert_eq!(base.values, vec![1.0, 1.0, 5.0]);
        // And extending forward.
        let tail = WindowSeries {
            start_window: 12,
            values: vec![9.0],
        };
        base.overlay(&tail);
        assert_eq!(base.values, vec![1.0, 1.0, 5.0, 0.0, 9.0]);
    }

    #[test]
    fn overlay_with_empty_other_is_a_noop() {
        let mut base = WindowSeries {
            start_window: 3,
            values: vec![7.0],
        };
        base.overlay(&WindowSeries {
            start_window: 0,
            values: vec![],
        });
        assert_eq!(base.values, vec![7.0]);
        assert_eq!(base.start_window, 3);
    }

    #[test]
    fn extend_to_cover_pads_with_zeros_both_ways() {
        let mut s = WindowSeries {
            start_window: 10,
            values: vec![3.0, 4.0],
        };
        s.extend_to_cover(11); // inside: no-op
        assert_eq!(s.start_window, 10);
        assert_eq!(s.values, vec![3.0, 4.0]);
        s.extend_to_cover(8); // grow backwards
        assert_eq!(s.start_window, 8);
        assert_eq!(s.values, vec![0.0, 0.0, 3.0, 4.0]);
        s.extend_to_cover(13); // grow forwards
        assert_eq!(s.values, vec![0.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
        assert_eq!(s.end_window(), 14);
    }

    #[test]
    fn assign_from_reports_reuses_buffers_and_matches_from_reports() {
        let mut bucket = WaveBucket::with_params(3, 8, 16, SelectorKind::Ideal);
        for w in 0..20 {
            bucket.update(w, 7 * (w as i64 % 5) + 1);
        }
        let reports = bucket.drain();
        let fresh = WindowSeries::from_reports(&reports).unwrap();

        let mut series = WindowSeries::new();
        let mut scratch = crate::reconstruct::ReconstructScratch::new();
        // Dirty the series first: reuse must fully overwrite stale state.
        series.reset(999, 3);
        series.values.fill(42.0);
        assert!(series.assign_from_reports(&reports, &mut scratch));
        assert_eq!(series, fresh);
        // And an empty report set resets to empty and reports false.
        assert!(!series.assign_from_reports(&[], &mut scratch));
        assert!(series.values.is_empty());
    }

    #[test]
    fn subtract_clamped_removes_overlap_only() {
        let mut a = WindowSeries {
            start_window: 10,
            values: vec![5.0, 5.0, 5.0],
        };
        let b = WindowSeries {
            start_window: 11,
            values: vec![2.0, 10.0],
        };
        a.subtract_clamped(&b);
        assert_eq!(a.values, vec![5.0, 3.0, 0.0]);
    }
}
