//! Agg-Evict-style pre-aggregation (§8 future work, after Zhou et al.'s
//! software-measurement acceleration): a small direct-mapped buffer in
//! front of the sketch merges consecutive same-flow same-window packets
//! into one update, cutting the per-packet hash and bucket work. Entries
//! are evicted into the sketch on conflict, window advance, or flush.
//!
//! Correctness invariant (tested below and by property test): a sketch fed
//! through the buffer ends up in exactly the same state as one fed
//! directly, because buckets fold same-window values additively.

use crate::flow::FlowKey;

/// One aggregation slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: FlowKey,
    window: u64,
    value: i64,
}

/// A sink for evicted aggregates — any sketch update function.
pub trait AggSink {
    /// Applies one aggregated update.
    fn apply(&mut self, key: &FlowKey, window: u64, value: i64);
}

impl<F: FnMut(&FlowKey, u64, i64)> AggSink for F {
    fn apply(&mut self, key: &FlowKey, window: u64, value: i64) {
        self(key, window, value)
    }
}

/// The pre-aggregation buffer.
///
/// The buffer is *window-synchronous*: when the stream moves to a newer
/// window, every resident aggregate is flushed first. This keeps the sketch
/// state bit-identical to direct feeding — per bucket, updates arrive with
/// non-decreasing windows, and within one window addition commutes. (A
/// fully asynchronous buffer could deliver a window-`w` aggregate after
/// another flow's window-`w+1` update reached the same bucket, folding it
/// into the wrong counter.)
#[derive(Debug)]
pub struct AggEvictBuffer {
    slots: Vec<Option<Slot>>,
    mask: u64,
    /// The window the buffer currently aggregates for.
    current_window: Option<u64>,
    /// Packets absorbed without touching the sketch.
    pub merged: u64,
    /// Aggregates evicted into the sketch.
    pub evictions: u64,
}

impl AggEvictBuffer {
    /// Creates a buffer with `slots` entries (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        Self {
            slots: vec![None; n],
            mask: n as u64 - 1,
            current_window: None,
            merged: 0,
            evictions: 0,
        }
    }

    /// Offers a packet; evicted aggregates flow into `sink`.
    pub fn offer<S: AggSink>(&mut self, key: &FlowKey, window: u64, value: i64, sink: &mut S) {
        match self.current_window {
            Some(cur) if window > cur => {
                // Window advanced: drain everything from the old window
                // before accepting the new one (see type-level docs).
                self.flush(sink);
                self.current_window = Some(window);
            }
            Some(cur) if window < cur => {
                // Straggler from an older window: bypass the buffer so it
                // reaches the sketch in the same relative order as direct
                // feeding would deliver it.
                sink.apply(key, window, value);
                return;
            }
            None => self.current_window = Some(window),
            _ => {}
        }
        let idx = (key.hash(0x77, 0xA66) & self.mask) as usize;
        match &mut self.slots[idx] {
            Some(slot) if slot.key == *key && slot.window == window => {
                slot.value += value;
                self.merged += 1;
            }
            occupied => {
                if let Some(old) = occupied.take() {
                    sink.apply(&old.key, old.window, old.value);
                    self.evictions += 1;
                }
                *occupied = Some(Slot {
                    key: *key,
                    window,
                    value,
                });
            }
        }
    }

    /// Flushes every resident aggregate into `sink` (end of period).
    pub fn flush<S: AggSink>(&mut self, sink: &mut S) {
        for slot in &mut self.slots {
            if let Some(old) = slot.take() {
                sink.apply(&old.key, old.window, old.value);
                self.evictions += 1;
            }
        }
    }

    /// Fraction of offered packets absorbed by aggregation.
    pub fn merge_ratio(&self) -> f64 {
        let offered = self.merged + self.evictions;
        if offered == 0 {
            return 0.0;
        }
        self.merged as f64 / offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicWaveSketch;
    use crate::config::SketchConfig;

    fn config() -> SketchConfig {
        SketchConfig::builder()
            .rows(2)
            .width(32)
            .levels(4)
            .topk(64)
            .max_windows(256)
            .build()
    }

    /// Feeds `packets` directly and through a buffer; the queried curves
    /// must match exactly.
    fn assert_equivalent(packets: &[(u64, u64, i64)], slots: usize) {
        let mut direct = BasicWaveSketch::new(config());
        for &(f, w, v) in packets {
            direct.update(&FlowKey::from_id(f), w, v);
        }
        let mut buffered = BasicWaveSketch::new(config());
        let mut buffer = AggEvictBuffer::new(slots);
        {
            let mut sink = |k: &FlowKey, w: u64, v: i64| buffered.update(k, w, v);
            for &(f, w, v) in packets {
                buffer.offer(&FlowKey::from_id(f), w, v, &mut sink);
            }
            buffer.flush(&mut sink);
        }
        let flows: std::collections::BTreeSet<u64> = packets.iter().map(|&(f, _, _)| f).collect();
        for f in flows {
            let a = direct.query(&FlowKey::from_id(f)).expect("direct");
            let b = buffered.query(&FlowKey::from_id(f)).expect("buffered");
            assert_eq!(a, b, "flow {f} curves diverge");
        }
    }

    #[test]
    fn buffered_equals_direct_for_bursty_stream() {
        // Dense bursts: many same-flow same-window packets → big merges.
        let mut packets = Vec::new();
        for w in 0..20u64 {
            for _ in 0..10 {
                packets.push((w % 3, w, 500));
            }
        }
        assert_equivalent(&packets, 16);
    }

    #[test]
    fn buffered_equals_direct_under_conflicts() {
        // One slot: every flow change evicts.
        let packets: Vec<(u64, u64, i64)> =
            (0..100).map(|i| (i % 7, i / 4, 100 + i as i64)).collect();
        assert_equivalent(&packets, 1);
    }

    #[test]
    fn merge_ratio_reflects_stream_density() {
        let mut buffer = AggEvictBuffer::new(64);
        let mut sink = |_: &FlowKey, _: u64, _: i64| {};
        // 100 packets of one flow in one window: 99 merges, flush evicts 1.
        for _ in 0..100 {
            buffer.offer(&FlowKey::from_id(1), 5, 100, &mut sink);
        }
        buffer.flush(&mut sink);
        assert_eq!(buffer.merged, 99);
        assert_eq!(buffer.evictions, 1);
        assert!((buffer.merge_ratio() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn window_advance_evicts_the_slot() {
        let mut out = Vec::new();
        let mut buffer = AggEvictBuffer::new(4);
        {
            let mut sink = |k: &FlowKey, w: u64, v: i64| out.push((*k, w, v));
            buffer.offer(&FlowKey::from_id(1), 0, 10, &mut sink);
            buffer.offer(&FlowKey::from_id(1), 1, 20, &mut sink); // new window
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 0);
        assert_eq!(out[0].2, 10);
    }
}
