//! Flat bucket arenas: the state of many sketch buckets (`w0, i, c`, the
//! approximation array, the in-flight partial details and the retained
//! detail store) laid out in a handful of preallocated flat arrays instead
//! of one heap-allocated transform per bucket.
//!
//! Motivation (perf): the packet path of [`crate::BasicWaveSketch`] and
//! [`crate::FullWaveSketch`] touches one bucket per row per packet. With
//! per-bucket `Vec`s that is several dependent pointer chases per touch and
//! a fresh set of allocations on every heavy-part eviction or epoch
//! rollover. The arena keeps every bucket's state at a fixed offset of four
//! flat arrays, so
//!
//! * steady-state updates allocate nothing (asserted by the counting
//!   allocator in `tests/alloc_gate.rs`),
//! * evicting a heavy candidate is a constant-time in-place reset
//!   ([`BucketArena::reset_bucket`]) instead of building a new bucket, and
//! * completed epochs drain into a caller-provided scratch buffer
//!   ([`BucketArena::drain_bucket_into`]).
//!
//! # Bit-identity
//!
//! Drains and snapshots are **bit-identical** to the original per-bucket
//! [`crate::streaming::StreamingTransform`] implementation (`umon-testkit`'s
//! `diff_run` and the golden fixtures under `tests/golden/` enforce this).
//! Two details matter:
//!
//! * The ideal selector's retained order is the *internal array order* of
//!   `std::collections::BinaryHeap`. The flat heap below replicates std's
//!   exact `sift_up` / `sift_down_to_bottom` algorithms; the property tests
//!   at the bottom of this file drive it against [`crate::IdealTopK`] (which
//!   wraps the real `BinaryHeap`) and require identical retained *order*.
//! * The hardware selector's retained order is even-class-then-odd-class in
//!   insertion order with first-minimum replacement, replicated verbatim
//!   from [`HwThresholdSelector`].

use crate::config::SketchConfig;
use crate::haar::weighted_cmp;
use crate::report::BucketReport;
use crate::select::{Candidate, HwThresholdSelector, SelectorKind};
use crate::streaming::EpochCoefficients;
use std::cmp::Ordering;

const EMPTY_CANDIDATE: Candidate = Candidate {
    level: 0,
    idx: 0,
    val: 0,
};

/// In-flight detail coefficient of one level (`_details[l]` in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partial {
    idx: u32,
    val: i64,
}

const EMPTY_PARTIAL: Partial = Partial { idx: 0, val: 0 };

/// Sentinel for "no offset folded into the transform yet". Real offsets are
/// `< max_windows` (the push asserts it), far below `u32::MAX`, so the
/// sentinel encoding is unambiguous — and keeps [`Header`] at 32 bytes
/// (vs 40 with `Option<u32>`), which matters because the packet path is one
/// header touch per row per packet and the header array is the hottest
/// cache-resident state.
const NO_OFFSET: u32 = u32::MAX;

/// Fixed-size per-bucket counter state (Figure 6's `w0, i, c` plus the
/// transform's last-offset watermark).
#[derive(Debug, Clone, Copy)]
struct Header {
    /// Absolute window id of the epoch start; `None` until the first packet.
    w0: Option<u64>,
    /// Count accumulated in the current window.
    c: i64,
    /// Offset of the window currently being counted.
    i: u32,
    /// Highest offset folded into the transform, [`NO_OFFSET`] before the
    /// first.
    last_offset: u32,
}

const EMPTY_HEADER: Header = Header {
    w0: None,
    c: 0,
    i: 0,
    last_offset: NO_OFFSET,
};

/// `MinWeighted(a) > MinWeighted(b)` — the ordering `crate::select` gives its
/// `BinaryHeap` entries (reversed weighted comparison, so the max-heap pops
/// the weighted minimum).
#[inline]
fn min_gt(a: &Candidate, b: &Candidate) -> bool {
    weighted_cmp(b.val, b.level, a.val, a.level) == Ordering::Greater
}

/// `std::collections::BinaryHeap::sift_up` on a candidate slice, element
/// comparisons in `MinWeighted` order. Moves `data[pos]` toward the root
/// while it is strictly greater than its parent.
fn heap_sift_up(data: &mut [Candidate], start: usize, pos: usize) {
    let element = data[pos];
    let mut hole = pos;
    while hole > start {
        let parent = (hole - 1) / 2;
        if !min_gt(&element, &data[parent]) {
            break;
        }
        data[hole] = data[parent];
        hole = parent;
    }
    data[hole] = element;
}

/// `BinaryHeap::push`: append then sift up from the end.
fn heap_push(data: &mut [Candidate], len: &mut u32, item: Candidate) {
    let old_len = *len as usize;
    data[old_len] = item;
    *len += 1;
    heap_sift_up(data, 0, old_len);
}

/// `BinaryHeap::sift_down_to_bottom`: move the hole to the bottom of the
/// heap unconditionally, then sift the displaced element back up. This is
/// the exact std algorithm — a plain sift-down would produce a *different*
/// (still valid) heap array, breaking retained-order bit-identity.
fn heap_sift_down_to_bottom(data: &mut [Candidate], len: usize, pos: usize) {
    let end = len;
    let start = pos;
    let element = data[pos];
    let mut hole = pos;
    let mut child = 2 * hole + 1;
    while child <= end.saturating_sub(2) {
        // Pick the greater of the two children (ties pick the right one,
        // matching std's `hole.get(child) <= hole.get(child + 1)`).
        child += !min_gt(&data[child], &data[child + 1]) as usize;
        data[hole] = data[child];
        hole = child;
        child = 2 * hole + 1;
    }
    if child == end - 1 {
        data[hole] = data[child];
        hole = child;
    }
    data[hole] = element;
    heap_sift_up(data, start, hole);
}

/// `BinaryHeap::pop`: swap the last element into the root and sift it down.
fn heap_pop(data: &mut [Candidate], len: &mut u32) -> Option<Candidate> {
    if *len == 0 {
        return None;
    }
    *len -= 1;
    let end = *len as usize;
    let mut item = data[end];
    if end > 0 {
        std::mem::swap(&mut item, &mut data[0]);
        heap_sift_down_to_bottom(data, end, 0);
    }
    Some(item)
}

/// [`HwThresholdSelector::offer`]'s per-class body on a flat slice: retain
/// iff the shifted magnitude meets the threshold, evicting the *first*
/// weakest slot only when strictly weaker than the newcomer.
fn hw_offer_class(
    store: &mut [Candidate],
    len: &mut u32,
    cap: usize,
    threshold: u64,
    overflow: &mut u64,
    c: Candidate,
) {
    let mag = HwThresholdSelector::shifted_magnitude(&c);
    if mag < threshold || c.val == 0 {
        return;
    }
    if (*len as usize) < cap {
        store[*len as usize] = c;
        *len += 1;
        return;
    }
    let filled = &mut store[..*len as usize];
    let (weakest_pos, weakest_mag) = filled
        .iter()
        .enumerate()
        .map(|(i, s)| (i, HwThresholdSelector::shifted_magnitude(s)))
        .min_by_key(|&(_, m)| m)
        .expect("store is non-empty when full");
    if weakest_mag < mag {
        filled[weakest_pos] = c;
    } else {
        *overflow += 1;
    }
}

/// Flat retained-coefficient stores for all buckets of an arena. One variant
/// per [`SelectorKind`]; the kind is uniform across the arena (it comes from
/// one [`SketchConfig`]).
#[derive(Debug, Clone)]
enum SelectorArena {
    /// Ideal weighted top-k: per bucket, `k + 1` slots holding the internal
    /// array of a std `BinaryHeap` (the spare slot absorbs the push that
    /// precedes the capacity-restoring pop).
    Ideal {
        k: usize,
        data: Vec<Candidate>,
        len: Vec<u32>,
    },
    /// Hardware parity-split threshold stores: per bucket, `cap_even` +
    /// `cap_odd` slots in insertion order.
    Hw {
        cap_even: usize,
        cap_odd: usize,
        threshold_even: u64,
        threshold_odd: u64,
        even: Vec<Candidate>,
        odd: Vec<Candidate>,
        len_even: Vec<u32>,
        len_odd: Vec<u32>,
        overflow: Vec<u64>,
    },
}

impl SelectorArena {
    fn new(kind: SelectorKind, k: usize, n: usize) -> Self {
        match kind {
            SelectorKind::Ideal => {
                assert!(k > 0, "k must be positive");
                SelectorArena::Ideal {
                    k,
                    data: vec![EMPTY_CANDIDATE; n * (k + 1)],
                    len: vec![0; n],
                }
            }
            SelectorKind::HwThreshold { even, odd } => {
                assert!(
                    k >= 2,
                    "hardware selector needs k >= 2 (one slot per parity)"
                );
                let cap_even = k / 2 + k % 2;
                let cap_odd = k / 2;
                SelectorArena::Hw {
                    cap_even,
                    cap_odd,
                    threshold_even: even,
                    threshold_odd: odd,
                    even: vec![EMPTY_CANDIDATE; n * cap_even],
                    odd: vec![EMPTY_CANDIDATE; n * cap_odd],
                    len_even: vec![0; n],
                    len_odd: vec![0; n],
                    overflow: vec![0; n],
                }
            }
        }
    }

    /// Mutable view of bucket `b`'s slice of the stores.
    fn view(&mut self, b: usize) -> SelView<'_> {
        match self {
            SelectorArena::Ideal { k, data, len } => {
                let w = *k + 1;
                SelView::Ideal {
                    k: *k,
                    data: &mut data[b * w..(b + 1) * w],
                    len: &mut len[b],
                }
            }
            SelectorArena::Hw {
                cap_even,
                cap_odd,
                threshold_even,
                threshold_odd,
                even,
                odd,
                len_even,
                len_odd,
                overflow,
            } => SelView::Hw {
                cap_even: *cap_even,
                cap_odd: *cap_odd,
                threshold_even: *threshold_even,
                threshold_odd: *threshold_odd,
                even: &mut even[b * *cap_even..(b + 1) * *cap_even],
                odd: &mut odd[b * *cap_odd..(b + 1) * *cap_odd],
                len_even: &mut len_even[b],
                len_odd: &mut len_odd[b],
                overflow: &mut overflow[b],
            },
        }
    }

    /// An owned single-bucket copy of bucket `b`'s state, for non-destructive
    /// snapshots (queries may allocate; the packet path never calls this).
    fn owned(&self, b: usize) -> SelectorArena {
        match self {
            SelectorArena::Ideal { k, data, len } => {
                let w = *k + 1;
                SelectorArena::Ideal {
                    k: *k,
                    data: data[b * w..(b + 1) * w].to_vec(),
                    len: vec![len[b]],
                }
            }
            SelectorArena::Hw {
                cap_even,
                cap_odd,
                threshold_even,
                threshold_odd,
                even,
                odd,
                len_even,
                len_odd,
                overflow,
            } => SelectorArena::Hw {
                cap_even: *cap_even,
                cap_odd: *cap_odd,
                threshold_even: *threshold_even,
                threshold_odd: *threshold_odd,
                even: even[b * *cap_even..(b + 1) * *cap_even].to_vec(),
                odd: odd[b * *cap_odd..(b + 1) * *cap_odd].to_vec(),
                len_even: vec![len_even[b]],
                len_odd: vec![len_odd[b]],
                overflow: vec![overflow[b]],
            },
        }
    }

    /// Clears bucket `b`'s store (the slice contents are left stale — the
    /// length is the source of truth, exactly like `BinaryHeap::clear`).
    fn reset(&mut self, b: usize) {
        match self {
            SelectorArena::Ideal { len, .. } => len[b] = 0,
            SelectorArena::Hw {
                len_even,
                len_odd,
                overflow,
                ..
            } => {
                len_even[b] = 0;
                len_odd[b] = 0;
                overflow[b] = 0;
            }
        }
    }
}

/// One bucket's selector, borrowed from the flat stores. Mirrors
/// `CoeffSelector::offer` / `retained` exactly.
enum SelView<'a> {
    Ideal {
        k: usize,
        data: &'a mut [Candidate],
        len: &'a mut u32,
    },
    Hw {
        cap_even: usize,
        cap_odd: usize,
        threshold_even: u64,
        threshold_odd: u64,
        even: &'a mut [Candidate],
        odd: &'a mut [Candidate],
        len_even: &'a mut u32,
        len_odd: &'a mut u32,
        overflow: &'a mut u64,
    },
}

impl SelView<'_> {
    fn offer(&mut self, c: Candidate) {
        match self {
            SelView::Ideal { k, data, len } => {
                if c.val == 0 {
                    return; // zero coefficients reconstruct as zero anyway
                }
                heap_push(data, len, c);
                if **len as usize > *k {
                    heap_pop(data, len);
                }
            }
            SelView::Hw {
                cap_even,
                cap_odd,
                threshold_even,
                threshold_odd,
                even,
                odd,
                len_even,
                len_odd,
                overflow,
            } => {
                if c.level.is_multiple_of(2) {
                    hw_offer_class(even, len_even, *cap_even, *threshold_even, overflow, c);
                } else {
                    hw_offer_class(odd, len_odd, *cap_odd, *threshold_odd, overflow, c);
                }
            }
        }
    }

    fn retained(&self) -> Vec<Candidate> {
        match self {
            SelView::Ideal { data, len, .. } => data[..**len as usize].to_vec(),
            SelView::Hw {
                even,
                odd,
                len_even,
                len_odd,
                ..
            } => even[..**len_even as usize]
                .iter()
                .chain(odd[..**len_odd as usize].iter())
                .copied()
                .collect(),
        }
    }
}

/// One bucket's streaming-transform state, borrowed from the flat arrays.
/// `push` and `finish` are line-for-line the algorithms of
/// [`crate::streaming::StreamingTransform`], operating on slices.
struct XformView<'a> {
    levels: u32,
    approx: &'a mut [i64],
    partials: &'a mut [Partial],
    /// [`NO_OFFSET`] encodes "nothing folded yet".
    last_offset: &'a mut u32,
    sel: SelView<'a>,
}

impl XformView<'_> {
    /// The `Transformation` procedure of Algorithm 1 (see
    /// `StreamingTransform::push` for the derivation).
    fn push(&mut self, offset: u32, count: i64) {
        let last = *self.last_offset;
        if last != NO_OFFSET {
            assert!(
                offset > last,
                "offsets must strictly increase ({offset} after {last})"
            );
        }
        let pos_a = (offset >> self.levels) as usize;
        assert!(
            pos_a < self.approx.len(),
            "offset {offset} exceeds capacity ({} approx entries)",
            self.approx.len()
        );
        self.approx[pos_a] += count;

        // Iterate the partial slots directly (the slice length *is* the level
        // count) and fold the sign without a data-dependent branch — the
        // parity bit of `offset >> l` is effectively random across levels.
        for (l, slot) in self.partials.iter_mut().enumerate() {
            let l = l as u32;
            let pos_d = offset >> (l + 1);
            let mut partial = *slot;
            if pos_d > partial.idx {
                // The previous span at this level is complete — compress it.
                self.sel.offer(Candidate {
                    level: l,
                    idx: partial.idx,
                    val: partial.val,
                });
                partial = Partial { idx: pos_d, val: 0 };
            }
            let delta = if (offset >> l) & 1 == 0 {
                count
            } else {
                count.wrapping_neg()
            };
            partial.val += delta;
            *slot = partial;
        }
        *self.last_offset = offset;
    }

    /// Flushes the in-flight partials and produces the epoch's coefficients
    /// (see `StreamingTransform::finish`). The underlying bucket state is
    /// left dirty; the caller resets or discards it.
    fn finish(mut self) -> EpochCoefficients {
        let len = match *self.last_offset {
            NO_OFFSET => {
                return EpochCoefficients {
                    levels: self.levels,
                    padded_len: 0,
                    approx: Vec::new(),
                    details: Vec::new(),
                }
            }
            last => last as usize + 1,
        };
        let padded_len = len.next_power_of_two();
        let top = self.levels.min(padded_len.trailing_zeros());
        for l in 0..top {
            let partial = self.partials[l as usize];
            self.sel.offer(Candidate {
                level: l,
                idx: partial.idx,
                val: partial.val,
            });
        }
        let blocks = padded_len.div_ceil(1 << self.levels).max(1);
        let blocks = blocks.min(self.approx.len());
        EpochCoefficients {
            levels: self.levels,
            padded_len,
            approx: self.approx[..blocks].to_vec(),
            details: self.sel.retained(),
        }
    }
}

/// A flat arena of `n` WaveSketch counter buckets, drop-in equivalent (and
/// bit-identical in output) to `n` independent [`crate::WaveBucket`]s.
///
/// Bucket `b`'s state lives at offset `b` of [`Self::headers`]-style flat
/// arrays; no per-bucket allocation exists, so updates, evictions
/// ([`Self::reset_bucket`]) and epoch rollovers never touch the allocator.
/// Only epoch *completion* stores grow (`completed`), and only at rollover —
/// never on the per-packet path.
#[derive(Debug, Clone)]
pub struct BucketArena {
    levels: u32,
    max_windows: usize,
    approx_len: usize,
    headers: Vec<Header>,
    /// `n × approx_len` block sums, bucket-major.
    approx: Vec<i64>,
    /// `n × levels` in-flight partial details, bucket-major.
    partials: Vec<Partial>,
    selectors: SelectorArena,
    /// Reports of epochs that rolled over before being drained, per bucket.
    completed: Vec<Vec<BucketReport>>,
}

impl BucketArena {
    /// Creates an arena of `n` empty buckets from explicit parameters.
    pub fn new(
        levels: u32,
        max_windows: usize,
        topk: usize,
        selector: SelectorKind,
        n: usize,
    ) -> Self {
        let approx_len = max_windows.div_ceil(1 << levels);
        Self {
            levels,
            max_windows,
            approx_len,
            headers: vec![EMPTY_HEADER; n],
            approx: vec![0; n * approx_len],
            partials: vec![EMPTY_PARTIAL; n * levels as usize],
            selectors: SelectorArena::new(selector, topk, n),
            completed: vec![Vec::new(); n],
        }
    }

    /// Creates an arena of `n` empty buckets from a sketch configuration.
    pub fn from_config(config: &SketchConfig, n: usize) -> Self {
        Self::new(
            config.levels,
            config.max_windows,
            config.topk,
            config.selector,
            n,
        )
    }

    /// Number of buckets in the arena.
    pub fn bucket_count(&self) -> usize {
        self.headers.len()
    }

    #[inline]
    fn xform_view(&mut self, b: usize) -> XformView<'_> {
        let a0 = b * self.approx_len;
        let p0 = b * self.levels as usize;
        XformView {
            levels: self.levels,
            approx: &mut self.approx[a0..a0 + self.approx_len],
            partials: &mut self.partials[p0..p0 + self.levels as usize],
            last_offset: &mut self.headers[b].last_offset,
            sel: self.selectors.view(b),
        }
    }

    /// The `Counting` procedure of Algorithm 1 on bucket `b`: adds `value`
    /// at absolute window `window`. Allocation-free in steady state.
    ///
    /// Packets must arrive in non-decreasing window order (they do on a real
    /// timeline); a packet for an older window than the current one is
    /// folded into the current window rather than lost, since the data plane
    /// cannot rewind. That fold saturates at `i64::MAX` instead of wrapping.
    #[inline]
    pub fn update(&mut self, b: usize, window: u64, value: i64) {
        let hdr = &mut self.headers[b];
        let w0 = match hdr.w0 {
            None => {
                // First packet of the epoch initializes w0.
                hdr.w0 = Some(window);
                hdr.i = 0;
                hdr.c = value;
                return;
            }
            Some(w0) => w0,
        };

        let offset = window.saturating_sub(w0);
        if offset >= self.max_windows as u64 {
            // Epoch capacity exhausted: seal it and start a new epoch at the
            // incoming window.
            self.seal_epoch(b);
            let hdr = &mut self.headers[b];
            hdr.w0 = Some(window);
            hdr.i = 0;
            hdr.c = value;
            return;
        }
        let offset = offset as u32;

        if offset <= hdr.i {
            // Same window (or a clock-skew straggler): accumulate. Saturate
            // so an adversarial byte count cannot wrap the counter past
            // i64::MAX into a huge negative epoch.
            hdr.c = hdr.c.saturating_add(value);
        } else {
            // The counted window is finished — transform and compress it,
            // then start counting the new window.
            let (i, c) = (hdr.i, hdr.c);
            self.xform_view(b).push(i, c);
            let hdr = &mut self.headers[b];
            hdr.i = offset;
            hdr.c = value;
        }
    }

    /// Prefetches bucket `b`'s header so a following [`Self::update`] of `b`
    /// starts from warm cache. Pure hint — no effect on results. Header-only
    /// on purpose: prefetching the approx/partials/selector slices as well
    /// measured as pure overhead, since the common fold touches only the
    /// header (DESIGN.md §15).
    #[inline]
    pub(crate) fn prefetch_header(&self, b: usize) {
        crate::batch::prefetch_read(&self.headers[b]);
    }

    /// Applies `n` staged records (`idx`/`windows`/`values`, SoA) to this
    /// arena **in record order**, prefetching the buckets of upcoming
    /// records a fixed distance ahead. Equivalent to `n` sequential
    /// [`Self::update`] calls — the prefetch distance only hides the cache
    /// miss that dominates the fold when the working set exceeds L2
    /// (DESIGN.md §10: the same prefetch on the scalar path measured
    /// neutral-to-negative because it had no lookahead; the batch does).
    pub(crate) fn apply_batch(&mut self, idx: &[u32], windows: &[u64], values: &[i64], n: usize) {
        const PF: usize = 16;
        debug_assert!(idx.len() >= n && windows.len() >= n && values.len() >= n);
        // One up-front range check over the whole batch lets the fold loop
        // skip the per-access bounds check on the hottest load. `stage`
        // constructs indices below `rows * width` by design; this assert
        // keeps the contract local instead of trusting the caller.
        let len = self.headers.len();
        assert!(idx[..n].iter().all(|&b| (b as usize) < len));
        for j in 0..n {
            if j + PF < n {
                // SAFETY: all of idx[..n] checked in-range above.
                crate::batch::prefetch_read(unsafe {
                    self.headers.get_unchecked(idx[j + PF] as usize)
                });
            }
            // SAFETY: same in-range guarantee.
            unsafe { self.update_trusted(idx[j] as usize, windows[j], values[j]) };
        }
    }

    /// [`Self::update`] with the bucket index trusted (caller has
    /// range-checked it) so the same-window fast path runs without a bounds
    /// check. Cold paths (first packet handled inline; push and epoch seal)
    /// fall back to the safe [`Self::update`], which redoes the header load
    /// from unmodified state — bit-identical by construction.
    ///
    /// # Safety
    ///
    /// `b` must be less than `self.headers.len()`.
    #[inline]
    unsafe fn update_trusted(&mut self, b: usize, window: u64, value: i64) {
        debug_assert!(b < self.headers.len());
        let max_windows = self.max_windows as u64;
        let hdr = unsafe { self.headers.get_unchecked_mut(b) };
        if let Some(w0) = hdr.w0 {
            let offset = window.saturating_sub(w0);
            if offset < max_windows {
                let offset = offset as u32;
                if offset <= hdr.i {
                    hdr.c = hdr.c.saturating_add(value);
                    return;
                }
            }
            self.update(b, window, value);
        } else {
            hdr.w0 = Some(window);
            hdr.i = 0;
            hdr.c = value;
        }
    }

    /// Seals bucket `b`'s current epoch into its completed list and resets
    /// the streaming state in place (no allocation unless a report is
    /// produced).
    fn seal_epoch(&mut self, b: usize) {
        let hdr = self.headers[b];
        if let Some(w0) = hdr.w0 {
            let (i, c) = (hdr.i, hdr.c);
            let mut view = self.xform_view(b);
            view.push(i, c);
            let coeffs = view.finish();
            if coeffs.padded_len > 0 {
                self.completed[b].push(BucketReport::from_coeffs(w0, coeffs));
            }
        }
        self.reset_epoch_state(b);
    }

    /// Zeroes bucket `b`'s transform state in place. Touches only the
    /// bucket's own slices; never allocates.
    ///
    /// A bucket whose transform never ran (`last_offset == NO_OFFSET`, i.e.
    /// no window ever completed) still has the all-zero approx/partials and
    /// empty selector the previous reset left behind, so only the header
    /// needs clearing. That is the common case for heavy-part evictions
    /// under slot contention — candidates are usually voted out within the
    /// window they were installed in — and skipping the dead fills roughly
    /// halves the eviction cost there.
    fn reset_epoch_state(&mut self, b: usize) {
        if self.headers[b].last_offset != NO_OFFSET {
            let a0 = b * self.approx_len;
            self.approx[a0..a0 + self.approx_len].fill(0);
            let p0 = b * self.levels as usize;
            self.partials[p0..p0 + self.levels as usize].fill(EMPTY_PARTIAL);
            self.selectors.reset(b);
        }
        self.headers[b] = EMPTY_HEADER;
    }

    /// Drains bucket `b`: seals the current epoch and appends all reports to
    /// `out`, leaving the bucket empty (its completed list keeps its
    /// capacity for the next period).
    pub fn drain_bucket_into(&mut self, b: usize, out: &mut Vec<BucketReport>) {
        self.seal_epoch(b);
        out.append(&mut self.completed[b]);
    }

    /// Drains bucket `b` into a fresh vector (see
    /// [`Self::drain_bucket_into`] for the reuse-friendly variant).
    pub fn drain_bucket(&mut self, b: usize) -> Vec<BucketReport> {
        self.seal_epoch(b);
        std::mem::take(&mut self.completed[b])
    }

    /// Discards bucket `b`'s entire state — completed epochs included — in
    /// place. This is the heavy-part *eviction* path: constant-time, and
    /// allocation-free whenever no epoch had rolled over.
    pub fn reset_bucket(&mut self, b: usize) {
        self.completed[b].clear();
        self.reset_epoch_state(b);
    }

    /// Non-destructive query of bucket `b`: reports for all completed epochs
    /// plus a snapshot of the in-progress epoch (including the still-open
    /// window). Copies the bucket's slices; the flat state is untouched.
    pub fn snapshot_bucket(&self, b: usize) -> Vec<BucketReport> {
        let mut out = self.completed[b].clone();
        let hdr = self.headers[b];
        if let Some(w0) = hdr.w0 {
            let a0 = b * self.approx_len;
            let p0 = b * self.levels as usize;
            let mut approx = self.approx[a0..a0 + self.approx_len].to_vec();
            let mut partials = self.partials[p0..p0 + self.levels as usize].to_vec();
            let mut last_offset = hdr.last_offset;
            let mut sel = self.selectors.owned(b);
            let mut view = XformView {
                levels: self.levels,
                approx: &mut approx,
                partials: &mut partials,
                last_offset: &mut last_offset,
                sel: sel.view(0),
            };
            view.push(hdr.i, hdr.c);
            let coeffs = view.finish();
            if coeffs.padded_len > 0 {
                out.push(BucketReport::from_coeffs(w0, coeffs));
            }
        }
        out
    }

    /// True if no packet has ever hit bucket `b` (in the current or any
    /// completed epoch).
    pub fn is_bucket_empty(&self, b: usize) -> bool {
        self.headers[b].w0.is_none() && self.completed[b].is_empty()
    }

    /// The absolute window id that starts bucket `b`'s current epoch.
    pub fn epoch_start(&self, b: usize) -> Option<u64> {
        self.headers[b].w0
    }

    /// Total bytes recorded in bucket `b`'s current epoch so far (the
    /// approximation array plus the open window counter).
    pub fn current_epoch_total(&self, b: usize) -> i64 {
        let a0 = b * self.approx_len;
        let folded: i64 = self.approx[a0..a0 + self.approx_len].iter().sum();
        folded.saturating_add(self.headers[b].c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{CoeffSelector, HwThresholdSelector, IdealTopK};

    /// Deterministic candidate stream: splitmix-style generator, no external
    /// RNG needed.
    fn candidates(seed: u64, n: usize, max_level: u32) -> Vec<Candidate> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let r = next();
                Candidate {
                    level: (r % (max_level as u64 + 1)) as u32,
                    idx: ((r >> 8) % 1024) as u32,
                    // Small value range to force plenty of weighted ties,
                    // the case where heap layouts diverge first.
                    val: ((r >> 32) % 41) as i64 - 20,
                }
            })
            .collect()
    }

    #[test]
    fn flat_ideal_heap_matches_std_binary_heap_order_exactly() {
        // The retained order must equal IdealTopK's (std BinaryHeap internal
        // array order), not just the retained *set* — BucketReport equality
        // is order-sensitive.
        for seed in 0..64u64 {
            for k in [1usize, 2, 3, 7, 8, 64] {
                let stream = candidates(seed, 300, 9);
                let mut reference = IdealTopK::new(k);
                let mut data = vec![EMPTY_CANDIDATE; k + 1];
                let mut len = 0u32;
                let mut view = SelView::Ideal {
                    k,
                    data: &mut data,
                    len: &mut len,
                };
                for c in stream {
                    reference.offer(c);
                    view.offer(c);
                }
                assert_eq!(
                    view.retained(),
                    reference.retained(),
                    "seed {seed} k {k}: flat heap diverged from std order"
                );
            }
        }
    }

    #[test]
    fn flat_hw_store_matches_reference_selector_exactly() {
        for seed in 0..32u64 {
            for (k, te, to) in [(2usize, 0u64, 0u64), (5, 3, 1), (8, 5, 5), (64, 1, 2)] {
                let stream = candidates(seed ^ 0xABCD, 400, 9);
                let mut reference = HwThresholdSelector::new(k, te, to);
                let cap_even = k / 2 + k % 2;
                let cap_odd = k / 2;
                let mut even = vec![EMPTY_CANDIDATE; cap_even];
                let mut odd = vec![EMPTY_CANDIDATE; cap_odd];
                let (mut le, mut lo, mut ov) = (0u32, 0u32, 0u64);
                let mut view = SelView::Hw {
                    cap_even,
                    cap_odd,
                    threshold_even: te,
                    threshold_odd: to,
                    even: &mut even,
                    odd: &mut odd,
                    len_even: &mut le,
                    len_odd: &mut lo,
                    overflow: &mut ov,
                };
                for c in stream {
                    reference.offer(c);
                    view.offer(c);
                }
                assert_eq!(view.retained(), reference.retained(), "seed {seed} k {k}");
                assert_eq!(ov, reference.overflow_drops, "overflow count diverged");
            }
        }
    }

    #[test]
    fn arena_bucket_matches_streaming_transform_reports() {
        use crate::select::Selector;
        use crate::streaming::StreamingTransform;
        // Drive an arena bucket and a StreamingTransform with the same
        // window stream; finished coefficients must be identical.
        for kind in [
            SelectorKind::Ideal,
            SelectorKind::HwThreshold { even: 2, odd: 2 },
        ] {
            let mut arena = BucketArena::new(4, 64, 8, kind, 3);
            let mut xform = StreamingTransform::new(4, 64, Selector::new(kind, 8));
            let mut state = 7u64;
            let mut w = 10u64;
            let (mut last_i, mut last_c) = (0u32, 0i64);
            let mut w0: Option<u64> = None;
            for _ in 0..40 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let adv = state >> 60; // 0..16 window gap
                let v = ((state >> 20) % 1000) as i64;
                w += adv;
                if let Some(w0) = w0 {
                    if w - w0 >= 64 {
                        break; // stay inside one epoch (max_windows = 64)
                    }
                }
                // Mirror WaveBucket's folding against the raw transform
                // (offsets are relative to the first window seen, w0).
                match w0 {
                    None => {
                        w0 = Some(w);
                        last_i = 0;
                        last_c = v;
                    }
                    Some(w0) if (w - w0) as u32 <= last_i => last_c += v,
                    Some(w0) => {
                        xform.push(last_i, last_c);
                        last_i = (w - w0) as u32;
                        last_c = v;
                    }
                }
                arena.update(1, w, v); // use a middle bucket
            }
            if w0.is_some() {
                xform.push(last_i, last_c);
            }
            let reports = arena.drain_bucket(1);
            let coeffs = xform.finish();
            if coeffs.padded_len == 0 {
                assert!(reports.is_empty());
            } else {
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].w0, w0.expect("bucket saw packets"));
                assert_eq!(reports[0].coeffs(), coeffs, "kind {kind:?}");
            }
            // Neighbour buckets untouched.
            assert!(arena.is_bucket_empty(0));
            assert!(arena.is_bucket_empty(2));
        }
    }

    #[test]
    fn reset_bucket_discards_everything_in_place() {
        let mut arena = BucketArena::new(3, 8, 4, SelectorKind::Ideal, 2);
        for w in 0..20u64 {
            arena.update(0, w, 100); // several rollovers → completed epochs
        }
        assert!(!arena.is_bucket_empty(0));
        arena.reset_bucket(0);
        assert!(arena.is_bucket_empty(0));
        assert!(arena.drain_bucket(0).is_empty());
        // And the bucket is immediately reusable.
        arena.update(0, 3, 7);
        let reports = arena.drain_bucket(0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].w0, 3);
    }

    #[test]
    fn drain_into_appends_and_keeps_capacity() {
        let mut arena = BucketArena::new(2, 4, 4, SelectorKind::Ideal, 1);
        for w in 0..9u64 {
            arena.update(0, w, 1); // two completed epochs + one open
        }
        let mut scratch = Vec::new();
        arena.drain_bucket_into(0, &mut scratch);
        assert_eq!(scratch.len(), 3);
        assert!(arena.is_bucket_empty(0));
    }
}
