//! The online (streaming) wavelet transform of Algorithm 1.
//!
//! Window counters arrive one at a time, in increasing offset order, possibly
//! with gaps (windows in which no packet arrived are implicitly zero). Each
//! finished counter is folded into:
//!
//! * the last-level approximation entry `A[i >> L]`, and
//! * the in-flight ("partial") detail coefficient of every level `l`, with
//!   sign chosen by bit `l` of the offset: `+c` if the counter falls in the
//!   first half of the coefficient's span, `-c` otherwise.
//!
//! When the offset moves past a level's current span, the finished partial
//! detail is handed to the compression stage (the [`CoeffSelector`]).

use crate::select::{Candidate, CoeffSelector};

/// In-flight detail coefficient of one level (`_details[l]` in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partial {
    /// Position index `i >> (l+1)` this partial accumulates for.
    idx: u32,
    /// Accumulated value.
    val: i64,
}

/// Streaming Haar transform state for one bucket epoch.
///
/// Generic over the selector so the ideal and hardware variants share all
/// transform logic.
#[derive(Debug, Clone)]
pub struct StreamingTransform<S> {
    levels: u32,
    approx: Vec<i64>,
    partials: Vec<Partial>,
    selector: S,
    /// Highest offset pushed so far, or `None` before the first push.
    last_offset: Option<u32>,
}

impl<S: CoeffSelector> StreamingTransform<S> {
    /// Creates transform state for sequences of up to `max_windows` windows
    /// decomposed over `levels` levels.
    pub fn new(levels: u32, max_windows: usize, selector: S) -> Self {
        let approx_len = max_windows.div_ceil(1 << levels);
        Self {
            levels,
            approx: vec![0; approx_len],
            partials: vec![Partial { idx: 0, val: 0 }; levels as usize],
            selector,
            last_offset: None,
        }
    }

    /// Number of levels `L`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Read access to the selector (e.g. to inspect retained coefficients).
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// Sum of the approximation array — the total count folded into finished
    /// windows so far (approximation coefficients are block sums).
    pub fn approx_total(&self) -> i64 {
        self.approx.iter().sum()
    }

    /// Folds the finished counter of window-offset `offset` with value
    /// `count` into the transform (the `Transformation` procedure).
    ///
    /// # Panics
    ///
    /// Panics if offsets do not arrive in strictly increasing order or exceed
    /// the configured capacity.
    pub fn push(&mut self, offset: u32, count: i64) {
        if let Some(last) = self.last_offset {
            assert!(
                offset > last,
                "offsets must strictly increase ({offset} after {last})"
            );
        }
        let pos_a = (offset >> self.levels) as usize;
        assert!(
            pos_a < self.approx.len(),
            "offset {offset} exceeds capacity ({} approx entries)",
            self.approx.len()
        );
        self.approx[pos_a] += count;

        for l in 0..self.levels {
            let pos_d = offset >> (l + 1);
            let partial = &mut self.partials[l as usize];
            if pos_d > partial.idx {
                // The previous span at this level is complete — compress it.
                let finished = Candidate {
                    level: l,
                    idx: partial.idx,
                    val: partial.val,
                };
                self.selector.offer(finished);
                *partial = Partial { idx: pos_d, val: 0 };
            }
            if (offset >> l) & 1 == 0 {
                partial.val += count;
            } else {
                partial.val -= count;
            }
        }
        self.last_offset = Some(offset);
    }

    /// Flushes all in-flight partial details and returns the epoch's
    /// coefficients. `self` is consumed; the caller starts a fresh epoch.
    ///
    /// Only levels whose span is not wider than the padded sequence are
    /// flushed: a partial at a level spanning more than the whole padded
    /// sequence is redundant (reconstruction starts at the padded length) and
    /// would only waste top-k slots.
    pub fn finish(mut self) -> EpochCoefficients {
        let len = match self.last_offset {
            None => {
                return EpochCoefficients {
                    levels: self.levels,
                    padded_len: 0,
                    approx: Vec::new(),
                    details: Vec::new(),
                }
            }
            Some(last) => last as usize + 1,
        };
        let padded_len = len.next_power_of_two();
        let top = self.levels.min(padded_len.trailing_zeros());
        for l in 0..top {
            let partial = self.partials[l as usize];
            self.selector.offer(Candidate {
                level: l,
                idx: partial.idx,
                val: partial.val,
            });
        }
        let blocks = padded_len.div_ceil(1 << self.levels).max(1);
        self.approx.truncate(blocks);
        EpochCoefficients {
            levels: self.levels,
            padded_len,
            approx: self.approx,
            details: self.selector.retained(),
        }
    }

    /// Like [`finish`](Self::finish) but non-destructive: clones the state
    /// and finishes the clone. Used for mid-epoch queries.
    pub fn snapshot(&self) -> EpochCoefficients
    where
        S: Clone,
    {
        self.clone().finish()
    }
}

/// The compressed output of one epoch: everything the analyzer needs to
/// reconstruct the window series (plus `w0`, kept by the bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochCoefficients {
    /// Decomposition depth the transform ran with.
    pub levels: u32,
    /// Padded sequence length (power of two, 0 for an empty epoch).
    pub padded_len: usize,
    /// Last-level approximation coefficients (block sums), truncated to the
    /// blocks the epoch actually touched.
    pub approx: Vec<i64>,
    /// Retained detail coefficients.
    pub details: Vec<Candidate>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar;
    use crate::select::IdealTopK;

    /// Streams `signal` (dense) through the online transform with a selector
    /// big enough to keep everything.
    fn stream_all(signal: &[i64], levels: u32) -> EpochCoefficients {
        let mut t = StreamingTransform::new(
            levels,
            signal.len().next_power_of_two().max(1 << levels),
            IdealTopK::new(4096),
        );
        for (i, &v) in signal.iter().enumerate() {
            t.push(i as u32, v);
        }
        t.finish()
    }

    /// Compares streaming coefficients against the offline reference.
    fn assert_matches_offline(signal: &[i64], levels: u32) {
        let online = stream_all(signal, levels);
        let offline = haar::transform(signal, levels);
        assert_eq!(
            online.approx, offline.approx,
            "approx mismatch for {signal:?}"
        );
        // Collect offline non-zero details as (level, idx) → val.
        let mut expected = std::collections::BTreeMap::new();
        for (l, det) in offline.details.iter().enumerate() {
            for (q, &v) in det.iter().enumerate() {
                if v != 0 {
                    expected.insert((l as u32, q as u32), v);
                }
            }
        }
        let mut got = std::collections::BTreeMap::new();
        for c in &online.details {
            if c.val != 0 {
                got.insert((c.level, c.idx), c.val);
            }
        }
        assert_eq!(got, expected, "details mismatch for {signal:?}");
    }

    #[test]
    fn dense_sequences_match_offline_transform() {
        assert_matches_offline(&[7, 9, 6, 3, 2, 4, 4, 6], 3);
        assert_matches_offline(&[1], 3);
        assert_matches_offline(&[5, 5, 5, 5], 2);
        let long: Vec<i64> = (0..200).map(|i| (i * i) % 23).collect();
        assert_matches_offline(&long, 4);
    }

    #[test]
    fn sparse_sequence_equals_zero_filled_dense_sequence() {
        // Push only offsets 1, 6, 7 — equivalent to a dense sequence with
        // zeros elsewhere.
        let mut t = StreamingTransform::new(3, 8, IdealTopK::new(64));
        t.push(1, 10);
        t.push(6, 4);
        t.push(7, 2);
        let online = t.finish();
        let dense = [0, 10, 0, 0, 0, 0, 4, 2];
        let offline = haar::transform(&dense, 3);
        assert_eq!(online.approx, offline.approx);
        for c in &online.details {
            assert_eq!(
                offline.details[c.level as usize][c.idx as usize], c.val,
                "coefficient {c:?}"
            );
        }
    }

    #[test]
    fn gap_skipping_flushes_stale_partials() {
        // Offsets 0 then 5: the level-0 partial for idx 0 must be flushed
        // when offset 5 (idx 2) arrives, not merged into it.
        let mut t = StreamingTransform::new(2, 8, IdealTopK::new(64));
        t.push(0, 8);
        t.push(5, 4);
        let out = t.finish();
        let d0: Vec<&Candidate> = out.details.iter().filter(|c| c.level == 0).collect();
        // idx 0 → +8; idx 2 → -4 (offset 5 is the odd half).
        assert!(d0.iter().any(|c| c.idx == 0 && c.val == 8));
        assert!(d0.iter().any(|c| c.idx == 2 && c.val == -4));
    }

    #[test]
    fn empty_epoch_finishes_empty() {
        let t = StreamingTransform::new(3, 8, IdealTopK::new(4));
        let out = t.finish();
        assert_eq!(out.padded_len, 0);
        assert!(out.approx.is_empty());
        assert!(out.details.is_empty());
    }

    #[test]
    fn short_epoch_truncates_approx_to_touched_blocks() {
        // Capacity 4096 with L=8 has 16 approx entries, but a 3-window epoch
        // needs only one block.
        let mut t = StreamingTransform::new(8, 4096, IdealTopK::new(16));
        t.push(0, 1);
        t.push(2, 1);
        let out = t.finish();
        assert_eq!(out.padded_len, 4);
        assert_eq!(out.approx, vec![2]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_monotonic_offsets() {
        let mut t = StreamingTransform::new(2, 8, IdealTopK::new(4));
        t.push(3, 1);
        t.push(3, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn rejects_offset_beyond_capacity() {
        let mut t = StreamingTransform::new(2, 8, IdealTopK::new(4));
        t.push(8, 1);
    }

    #[test]
    fn snapshot_does_not_disturb_streaming() {
        let mut t = StreamingTransform::new(3, 8, IdealTopK::new(64));
        t.push(0, 3);
        t.push(1, 5);
        let snap = t.snapshot();
        assert_eq!(snap.approx, vec![8]);
        // Continue streaming after the snapshot.
        t.push(4, 2);
        let fin = t.finish();
        assert_eq!(fin.approx, vec![10]);
    }
}
