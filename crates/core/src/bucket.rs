//! A complete WaveSketch counter bucket (Figure 6): initial window `w0`,
//! current offset `i`, current counter `c`, approximation set `A` and detail
//! set `D`, with the counting → transformation → compression pipeline of
//! Algorithm 1 and automatic epoch rollover for flows outliving one
//! measurement period ("longer flows are handled in multiple reporting
//! periods", §7.1).
//!
//! Since the flat-arena refactor this type is a one-bucket
//! [`BucketArena`] — the sketch-level types ([`crate::BasicWaveSketch`],
//! [`crate::FullWaveSketch`]) share one arena across all their buckets, while
//! stand-alone users (oracles, calibration, tests) keep this per-bucket API.

use crate::arena::BucketArena;
use crate::config::SketchConfig;
use crate::report::BucketReport;
use crate::select::SelectorKind;

/// One bucket of the sketch. Counts values per microsecond-level window and
/// compresses finished windows online.
#[derive(Debug, Clone)]
pub struct WaveBucket {
    arena: BucketArena,
}

impl WaveBucket {
    /// Creates an empty bucket from a sketch configuration.
    pub fn new(config: &SketchConfig) -> Self {
        Self::with_params(
            config.levels,
            config.max_windows,
            config.topk,
            config.selector,
        )
    }

    /// Creates an empty bucket from explicit parameters.
    pub fn with_params(
        levels: u32,
        max_windows: usize,
        topk: usize,
        selector_kind: SelectorKind,
    ) -> Self {
        Self {
            arena: BucketArena::new(levels, max_windows, topk, selector_kind, 1),
        }
    }

    /// True if no packet has ever hit this bucket (in the current or any
    /// completed epoch).
    pub fn is_empty(&self) -> bool {
        self.arena.is_bucket_empty(0)
    }

    /// The absolute window id that starts the current epoch.
    pub fn epoch_start(&self) -> Option<u64> {
        self.arena.epoch_start(0)
    }

    /// The `Counting` procedure of Algorithm 1: adds `value` at absolute
    /// window `window`.
    ///
    /// Packets must arrive in non-decreasing window order (they do on a real
    /// timeline); a packet for an older window than the current one is folded
    /// into the current window rather than lost, since the data plane cannot
    /// rewind. The fold saturates at `i64::MAX` instead of wrapping.
    pub fn update(&mut self, window: u64, value: i64) {
        self.arena.update(0, window, value);
    }

    /// Drains the bucket: seals the current epoch and returns all reports,
    /// leaving the bucket empty. This is what a host agent calls at the end
    /// of every reporting period.
    pub fn drain(&mut self) -> Vec<BucketReport> {
        self.arena.drain_bucket(0)
    }

    /// Non-destructive query: reports for all completed epochs plus a
    /// snapshot of the in-progress epoch (including the still-open window).
    pub fn snapshot(&self) -> Vec<BucketReport> {
        self.arena.snapshot_bucket(0)
    }

    /// Total bytes recorded in the current epoch so far (the approximation
    /// array plus the open window counter).
    pub fn current_epoch_total(&self) -> i64 {
        self.arena.current_epoch_total(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::reconstruct;
    use crate::select::SelectorKind;

    fn bucket(levels: u32, max_windows: usize, k: usize) -> WaveBucket {
        WaveBucket::with_params(levels, max_windows, k, SelectorKind::Ideal)
    }

    #[test]
    fn first_packet_initializes_w0() {
        let mut b = bucket(3, 64, 16);
        assert!(b.is_empty());
        b.update(1000, 500);
        assert_eq!(b.epoch_start(), Some(1000));
        assert!(!b.is_empty());
    }

    #[test]
    fn same_window_accumulates() {
        let mut b = bucket(3, 64, 16);
        b.update(10, 100);
        b.update(10, 50);
        let reports = b.drain();
        assert_eq!(reports.len(), 1);
        let rec = reconstruct(&reports[0].coeffs());
        assert_eq!(rec[0], 150.0);
    }

    #[test]
    fn drain_then_reuse_starts_a_fresh_epoch() {
        let mut b = bucket(3, 64, 16);
        b.update(10, 100);
        let first = b.drain();
        assert_eq!(first[0].w0, 10);
        assert!(b.is_empty());
        b.update(500, 7);
        let second = b.drain();
        assert_eq!(second[0].w0, 500);
        let rec = reconstruct(&second[0].coeffs());
        assert_eq!(rec[0], 7.0);
    }

    #[test]
    fn capacity_overflow_rolls_into_a_new_epoch() {
        let mut b = bucket(3, 8, 16);
        b.update(0, 1);
        b.update(7, 2);
        b.update(8, 3); // exceeds max_windows=8 → rollover
        b.update(9, 4);
        let reports = b.drain();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].w0, 0);
        assert_eq!(reports[1].w0, 8);
        let rec0 = reconstruct(&reports[0].coeffs());
        assert_eq!(rec0[0], 1.0);
        assert_eq!(rec0[7], 2.0);
        let rec1 = reconstruct(&reports[1].coeffs());
        assert_eq!(rec1[0], 3.0);
        assert_eq!(rec1[1], 4.0);
    }

    #[test]
    fn straggler_packets_fold_into_current_window() {
        let mut b = bucket(3, 64, 16);
        b.update(10, 100);
        b.update(12, 10);
        b.update(11, 5); // late packet: counted in window 12's counter
        let reports = b.drain();
        let rec = reconstruct(&reports[0].coeffs());
        assert_eq!(rec[0], 100.0);
        assert_eq!(rec[2], 15.0);
    }

    #[test]
    fn straggler_fold_saturates_instead_of_wrapping() {
        // Regression: the same-window fold used a plain `+=`, so a counter
        // near i64::MAX wrapped into a huge negative epoch total in release
        // builds. It must saturate.
        let mut b = bucket(3, 64, 16);
        b.update(10, i64::MAX - 10);
        b.update(10, 100); // would wrap past i64::MAX
        assert_eq!(b.current_epoch_total(), i64::MAX);
        let reports = b.drain(); // the saturated window still seals cleanly
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].approx[0], i64::MAX);
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let mut b = bucket(3, 64, 16);
        b.update(10, 100);
        b.update(13, 40);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 1);
        let rec = reconstruct(&snap[0].coeffs());
        assert_eq!(rec[0], 100.0);
        assert_eq!(rec[3], 40.0);
        // Bucket still live.
        b.update(14, 1);
        let fin = b.drain();
        let rec = reconstruct(&fin[0].coeffs());
        assert_eq!(rec[4], 1.0);
    }

    #[test]
    fn drain_of_empty_bucket_is_empty() {
        let mut b = bucket(3, 64, 16);
        assert!(b.drain().is_empty());
    }

    #[test]
    fn current_epoch_total_tracks_bytes() {
        let mut b = bucket(3, 64, 16);
        b.update(0, 10);
        b.update(1, 20);
        b.update(5, 30);
        assert_eq!(b.current_epoch_total(), 60);
    }

    #[test]
    fn long_flow_reconstructs_across_epochs() {
        let mut b = bucket(2, 4, 64);
        for w in 0..12 {
            b.update(w, (w as i64 + 1) * 10);
        }
        let reports = b.drain();
        assert_eq!(reports.len(), 3);
        let mut all = Vec::new();
        for r in &reports {
            let rec = reconstruct(&r.coeffs());
            all.extend(rec.into_iter().take(4));
        }
        let expect: Vec<f64> = (0..12).map(|w| (w as f64 + 1.0) * 10.0).collect();
        for (i, (&got, &want)) in all.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-9, "window {i}: {got} vs {want}");
        }
    }

    #[test]
    fn hw_selector_bucket_also_roundtrips() {
        let mut b =
            WaveBucket::with_params(4, 64, 32, SelectorKind::HwThreshold { even: 0, odd: 0 });
        for w in 0..16 {
            b.update(w, 100 + w as i64);
        }
        let reports = b.drain();
        let rec = reconstruct(&reports[0].coeffs());
        for (w, &r) in rec.iter().enumerate().take(16) {
            assert!((r - (100.0 + w as f64)).abs() < 1e-9);
        }
    }
}
