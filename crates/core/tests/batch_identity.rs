//! Batch-vs-scalar bit-identity properties (DESIGN.md §15).
//!
//! `update_batch` may reorder *independent* work only, so for any stream,
//! any burst size and any kernel the staged path selects, the sketch must
//! end up indistinguishable from per-record `update` calls: drain reports
//! compared exactly, reconstructed curves compared by `f64::to_bits` (not
//! an epsilon), heavy elections and eviction counts equal.
//!
//! The configs here are deliberately tiny so the generated streams cross
//! every boundary the staging pipeline has to respect: `max_windows` is
//! small enough that single bursts straddle epoch seals, `heavy_rows` is
//! small enough that evictions land mid-batch, and streams longer than the
//! staging `CHUNK` (256) cover chunk-boundary remainders.

use proptest::prelude::*;
use wavesketch::{BasicWaveSketch, FlowKey, FullWaveSketch, SketchConfig};

/// Epochs roll over at 16 windows; 8 heavy slots for ~40 flows guarantees
/// vote churn; width 32 keeps collisions (and thus shared buckets) common.
fn churn_config() -> SketchConfig {
    SketchConfig::builder()
        .rows(3)
        .width(32)
        .levels(4)
        .topk(32)
        .max_windows(16)
        .heavy_rows(8)
        .build()
}

/// An arbitrary stream: flow ids over a small population, windows spanning
/// several epochs of `churn_config` (0..96 with `max_windows = 16`), and
/// positive byte counts. Sorted by window like a real timeline, which still
/// leaves same-window reordering and epoch straddling to the batch path.
fn stream(max_len: usize) -> impl Strategy<Value = Vec<(FlowKey, u64, i64)>> {
    proptest::collection::vec((0u64..40, 0u64..96, 1i64..100_000), 0..max_len).prop_map(|mut v| {
        v.sort_by_key(|&(_, w, _)| w);
        v.into_iter()
            .map(|(id, w, val)| (FlowKey::from_id(id), w, val))
            .collect()
    })
}

/// Asserts two curve queries are bit-identical.
fn assert_curves_match(
    scalar: Option<wavesketch::basic::WindowSeries>,
    batched: Option<wavesketch::basic::WindowSeries>,
) -> Result<(), TestCaseError> {
    match (scalar, batched) {
        (None, None) => Ok(()),
        (Some(s), Some(b)) => {
            prop_assert_eq!(s.start_window, b.start_window);
            let s_bits: Vec<u64> = s.values.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(s_bits, b_bits);
            Ok(())
        }
        (s, b) => {
            prop_assert!(
                false,
                "curve presence differs: scalar {:?} batch {:?}",
                s,
                b
            );
            Ok(())
        }
    }
}

#[test]
fn empty_batch_is_a_noop() {
    let mut batched = FullWaveSketch::new(churn_config());
    batched.update_batch(&[]);
    let mut scalar = FullWaveSketch::new(churn_config());
    assert_eq!(batched.drain(), scalar.drain());

    let mut batched = BasicWaveSketch::new(churn_config());
    batched.update_batch(&[]);
    let mut scalar = BasicWaveSketch::new(churn_config());
    assert_eq!(batched.drain(), scalar.drain());
}

proptest! {
    /// Full sketch: heavy elections, eviction counts, per-flow curves and
    /// the full drain report all bit-identical for any burst size — 1,
    /// odd sizes, larger than the stream, and larger than the staging CHUNK.
    #[test]
    fn full_batch_matches_scalar_bit_for_bit(
        records in stream(600),
        burst in 1usize..600,
    ) {
        let mut scalar = FullWaveSketch::new(churn_config());
        for (f, w, v) in &records {
            scalar.update(f, *w, *v);
        }
        let mut batched = FullWaveSketch::new(churn_config());
        for chunk in records.chunks(burst) {
            batched.update_batch(chunk);
        }

        prop_assert_eq!(scalar.evictions(), batched.evictions());
        let mut heavy_s = scalar.heavy_flows();
        let mut heavy_b = batched.heavy_flows();
        heavy_s.sort();
        heavy_b.sort();
        prop_assert_eq!(heavy_s, heavy_b);
        for (f, _, _) in &records {
            prop_assert_eq!(scalar.is_heavy(f), batched.is_heavy(f));
            assert_curves_match(scalar.query(f), batched.query(f))?;
        }
        prop_assert_eq!(scalar.drain(), batched.drain());
    }

    /// Basic (light-only) sketch: same contract without the vote machine,
    /// so this isolates the row-phased light fold.
    #[test]
    fn basic_batch_matches_scalar_bit_for_bit(
        records in stream(600),
        burst in 1usize..600,
    ) {
        let mut scalar = BasicWaveSketch::new(churn_config());
        for (f, w, v) in &records {
            scalar.update(f, *w, *v);
        }
        let mut batched = BasicWaveSketch::new(churn_config());
        for chunk in records.chunks(burst) {
            batched.update_batch(chunk);
        }
        for (f, _, _) in &records {
            assert_curves_match(scalar.query(f), batched.query(f))?;
        }
        prop_assert_eq!(scalar.drain(), batched.drain());
    }

    /// Unsorted timelines (clock-skew stragglers folding into the current
    /// window, including regressions *across* an epoch seal) take different
    /// arena branches than monotone streams — identity must survive them
    /// too, since the batch path replays per-bucket order exactly.
    #[test]
    fn full_batch_matches_scalar_on_unsorted_streams(
        raw in proptest::collection::vec((0u64..40, 0u64..96, 1i64..100_000), 0..300),
        burst in 1usize..300,
    ) {
        let records: Vec<(FlowKey, u64, i64)> = raw
            .into_iter()
            .map(|(id, w, v)| (FlowKey::from_id(id), w, v))
            .collect();
        let mut scalar = FullWaveSketch::new(churn_config());
        for (f, w, v) in &records {
            scalar.update(f, *w, *v);
        }
        let mut batched = FullWaveSketch::new(churn_config());
        for chunk in records.chunks(burst) {
            batched.update_batch(chunk);
        }
        prop_assert_eq!(scalar.evictions(), batched.evictions());
        for (f, _, _) in &records {
            prop_assert_eq!(scalar.is_heavy(f), batched.is_heavy(f));
            assert_curves_match(scalar.query(f), batched.query(f))?;
        }
        prop_assert_eq!(scalar.drain(), batched.drain());
    }
}
