//! Property-based tests for the WaveSketch core invariants (DESIGN.md §6).

use proptest::prelude::*;
use wavesketch::haar;
use wavesketch::reconstruct::reconstruct;
use wavesketch::select::{Candidate, CoeffSelector, HwThresholdSelector, IdealTopK};
use wavesketch::streaming::StreamingTransform;
use wavesketch::{BasicWaveSketch, FlowKey, SketchConfig, WaveBucket};

/// A sparse window series: strictly increasing offsets with positive counts.
fn sparse_series(max_offset: u32) -> impl Strategy<Value = Vec<(u32, i64)>> {
    proptest::collection::btree_map(0..max_offset, 1i64..100_000, 0..64)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    /// Offline Haar transform round-trips exactly for any signal.
    #[test]
    fn offline_roundtrip(signal in proptest::collection::vec(-50_000i64..50_000, 0..300),
                         levels in 1u32..10) {
        let coeffs = haar::transform(&signal, levels);
        let rec = haar::inverse(&coeffs);
        for (i, &x) in signal.iter().enumerate() {
            prop_assert!((rec[i] - x as f64).abs() < 1e-6);
        }
        for &r in &rec[signal.len()..] {
            prop_assert!(r.abs() < 1e-6);
        }
    }

    /// Streaming transform + reconstruction with an unbounded selector is
    /// lossless for any sparse series.
    #[test]
    fn streaming_roundtrip(series in sparse_series(512), levels in 1u32..9) {
        let mut t = StreamingTransform::new(levels, 512, IdealTopK::new(1 << 16));
        for &(off, v) in &series {
            t.push(off, v);
        }
        let rec = reconstruct(&t.finish());
        let mut dense = vec![0i64; rec.len()];
        for &(off, v) in &series {
            dense[off as usize] = v;
        }
        for (i, &x) in dense.iter().enumerate() {
            prop_assert!((rec[i] - x as f64).abs() < 1e-6,
                         "window {}: {} vs {}", i, rec[i], x);
        }
    }

    /// Streaming coefficients equal the offline transform of the dense
    /// zero-filled series (approximations always, details where retained).
    #[test]
    fn streaming_matches_offline(series in sparse_series(256), levels in 1u32..8) {
        let mut dense = vec![0i64; 256];
        for &(off, v) in &series {
            dense[off as usize] = v;
        }
        let mut t = StreamingTransform::new(levels, 256, IdealTopK::new(1 << 16));
        for &(off, v) in &series {
            t.push(off, v);
        }
        let online = t.finish();
        if online.padded_len == 0 {
            return Ok(()); // empty series
        }
        let offline = haar::transform(&dense[..online.padded_len], levels);
        prop_assert_eq!(&online.approx, &offline.approx);
        for c in &online.details {
            prop_assert_eq!(offline.details[c.level as usize][c.idx as usize], c.val);
        }
    }

    /// Total volume survives any compression level because approximation
    /// coefficients are never discarded.
    #[test]
    fn total_always_exact(series in sparse_series(512), k in 1usize..16) {
        let mut t = StreamingTransform::new(6, 512, IdealTopK::new(k));
        let mut total = 0i64;
        for &(off, v) in &series {
            t.push(off, v);
            total += v;
        }
        let rec = reconstruct(&t.finish());
        let rec_total: f64 = rec.iter().sum();
        prop_assert!((rec_total - total as f64).abs() < 1e-6);
    }

    /// Appendix A optimality on random signals: the ideal selection's L2
    /// error never exceeds that of 32 random same-size selections.
    #[test]
    fn ideal_selection_beats_random_subsets(
        signal in proptest::collection::vec(0i64..10_000, 16..64),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let levels = 4u32;
        let k = 4usize;
        let full = haar::transform(&signal, levels);
        let mut positions = Vec::new();
        for (l, det) in full.details.iter().enumerate() {
            for (q, &v) in det.iter().enumerate() {
                if v != 0 {
                    positions.push(Candidate { level: l as u32, idx: q as u32, val: v });
                }
            }
        }
        let err_of = |keep: &[Candidate]| -> f64 {
            let mut det: Vec<Vec<i64>> = full.details.iter().map(|d| vec![0; d.len()]).collect();
            for c in keep {
                det[c.level as usize][c.idx as usize] = c.val;
            }
            let rec = haar::inverse(&haar::HaarCoefficients {
                approx: full.approx.clone(),
                details: det,
                padded_len: full.padded_len,
            });
            // L2 optimality (Appendix A) holds over the padded vector — the
            // padding windows are part of the reconstruction target too.
            let mut padded = signal.clone();
            padded.resize(full.padded_len, 0);
            padded.iter().zip(&rec).map(|(&a, &b)| (a as f64 - b).powi(2)).sum()
        };
        let mut sel = IdealTopK::new(k);
        for &c in &positions {
            sel.offer(c);
        }
        let ideal_err = err_of(&sel.retained());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..32 {
            if positions.is_empty() {
                break;
            }
            let subset: Vec<Candidate> = (0..k.min(positions.len()))
                .map(|_| positions[rng.gen_range(0..positions.len())])
                .collect();
            prop_assert!(ideal_err <= err_of(&subset) + 1e-6);
        }
    }

    /// A bucket never under-reports total volume, for any update pattern
    /// (monotone or with stragglers) and any selector budget.
    #[test]
    fn bucket_total_conserved(updates in proptest::collection::vec((0u64..600, 1i64..10_000), 1..80),
                              k in 1usize..32) {
        let mut sorted = updates.clone();
        sorted.sort_by_key(|&(w, _)| w);
        let mut bucket = WaveBucket::with_params(5, 256, k, wavesketch::SelectorKind::Ideal);
        let mut total = 0i64;
        for &(w, v) in &sorted {
            bucket.update(w, v);
            total += v;
        }
        let reports = bucket.drain();
        let rep_total: i64 = reports.iter().map(|r| r.total()).sum();
        prop_assert_eq!(rep_total, total);
    }

    /// Count-Min property lifted to curves: for any flow population, the
    /// queried total of a recorded flow is never below its true total.
    #[test]
    fn sketch_never_undercounts(flows in proptest::collection::vec((0u64..40, 0u64..64, 1i64..5_000), 1..120)) {
        let config = SketchConfig::builder()
            .rows(3)
            .width(16)
            .levels(4)
            .topk(16)
            .max_windows(64)
            .build();
        let mut sketch = BasicWaveSketch::new(config);
        let mut truth = std::collections::HashMap::new();
        let mut by_window = flows.clone();
        by_window.sort_by_key(|&(_, w, _)| w);
        for &(id, w, v) in &by_window {
            sketch.update(&FlowKey::from_id(id), w, v);
            *truth.entry(id).or_insert(0i64) += v;
        }
        for (id, true_total) in truth {
            let est = sketch.query(&FlowKey::from_id(id)).expect("recorded flow").total();
            prop_assert!(est >= true_total as f64 - 1e-6,
                         "flow {} est {} < truth {}", id, est, true_total);
        }
    }

    /// Full-version conservation: whatever the flow mix, vote churn and
    /// elections, a queried flow's total never undercounts the truth (the
    /// light part counts everything; the heavy overlay only substitutes
    /// exact values).
    #[test]
    fn full_sketch_never_undercounts(
        flows in proptest::collection::vec((0u64..30, 0u64..128, 1i64..5_000), 1..150),
    ) {
        let config = SketchConfig::builder()
            .rows(2)
            .width(8)
            .levels(5)
            .topk(512)
            .max_windows(128)
            .heavy_rows(4) // tiny → guaranteed vote churn
            .build();
        let mut sketch = wavesketch::FullWaveSketch::new(config);
        let mut truth = std::collections::HashMap::new();
        let mut by_window = flows.clone();
        by_window.sort_by_key(|&(_, w, _)| w);
        for &(id, w, v) in &by_window {
            sketch.update(&FlowKey::from_id(id), w, v);
            *truth.entry(id).or_insert(0i64) += v;
        }
        for (id, true_total) in truth {
            let est = sketch.query(&FlowKey::from_id(id)).expect("recorded").total();
            prop_assert!(
                est >= true_total as f64 - 1e-6,
                "flow {} est {} < truth {}", id, est, true_total
            );
        }
    }

    /// Agg-Evict equivalence under arbitrary streams: buffering + eviction
    /// never changes what the sketch learns.
    #[test]
    fn aggevict_is_transparent(
        flows in proptest::collection::vec((0u64..10, 0u64..64, 1i64..1_000), 1..120),
        slots in 1usize..32,
    ) {
        let config = || SketchConfig::builder()
            .rows(2)
            .width(16)
            .levels(4)
            .topk(64)
            .max_windows(64)
            .build();
        let mut by_window = flows.clone();
        by_window.sort_by_key(|&(_, w, _)| w);
        let mut direct = BasicWaveSketch::new(config());
        for &(f, w, v) in &by_window {
            direct.update(&FlowKey::from_id(f), w, v);
        }
        let mut buffered = BasicWaveSketch::new(config());
        let mut buffer = wavesketch::AggEvictBuffer::new(slots);
        {
            let mut sink = |k: &FlowKey, w: u64, v: i64| buffered.update(k, w, v);
            for &(f, w, v) in &by_window {
                buffer.offer(&FlowKey::from_id(f), w, v, &mut sink);
            }
            buffer.flush(&mut sink);
        }
        for &(f, _, _) in &by_window {
            let key = FlowKey::from_id(f);
            prop_assert_eq!(direct.query(&key), buffered.query(&key));
        }
    }

    /// The hardware selector with zero thresholds and huge capacity retains
    /// exactly the nonzero candidates the ideal selector would (same set).
    #[test]
    fn hw_with_zero_threshold_equals_ideal_at_large_k(series in sparse_series(128)) {
        let run = |mut sel: Box<dyn FnMut(Candidate)>| {
            let mut t = StreamingTransform::new(4, 128, IdealTopK::new(1 << 16));
            for &(off, v) in &series {
                t.push(off, v);
            }
            for c in t.finish().details {
                sel(c);
            }
        };
        let mut ideal = IdealTopK::new(1 << 16);
        run(Box::new(|c| ideal.offer(c)));
        let mut hw = HwThresholdSelector::new(1 << 16, 0, 0);
        run(Box::new(|c| hw.offer(c)));
        let to_set = |v: Vec<Candidate>| -> std::collections::BTreeSet<(u32, u32, i64)> {
            v.into_iter().map(|c| (c.level, c.idx, c.val)).collect()
        };
        prop_assert_eq!(to_set(ideal.retained()), to_set(hw.retained()));
    }
}

proptest! {
    /// `weighted_cmp` is exact across the full i64 range: it must agree with
    /// itself under the weight identity 2·|v| at level l+2 ≡ |v| at level l
    /// (value² quadruples, squared weight quarters), and be antisymmetric —
    /// properties the pre-fix u128 arithmetic violated by overflowing.
    #[test]
    fn weighted_cmp_is_antisymmetric_and_scale_invariant(
        a in -i64::MAX..i64::MAX,
        b in -i64::MAX..i64::MAX,
        la in 0u32..200,
        lb in 0u32..200,
    ) {
        let fwd = haar::weighted_cmp(a, la, b, lb);
        prop_assert_eq!(fwd, haar::weighted_cmp(b, lb, a, la).reverse());
        prop_assert_eq!(haar::weighted_cmp(a, la, a, la), std::cmp::Ordering::Equal);
        if a.checked_mul(2).is_some() {
            prop_assert_eq!(haar::weighted_cmp(2 * a, la + 2, b, lb), fwd);
        }
        if b.checked_mul(2).is_some() {
            prop_assert_eq!(haar::weighted_cmp(a, la, 2 * b, lb + 2), fwd);
        }
    }

    /// Lane-sharded ingest is invisible: for any flow mix and any shard
    /// count in {1, 2, 4, 8}, `ShardedWaveSketch` answers every query and
    /// drains bit-identically to a sequential `FullWaveSketch`.
    #[test]
    fn sharded_sketch_is_bit_identical_to_sequential(
        flows in proptest::collection::vec((0u64..200, 0u64..64, 1i64..5_000), 1..200),
        shard_shift in 0u32..4,
    ) {
        use wavesketch::sharded::ShardedWaveSketch;
        let shards = 1usize << shard_shift;
        let config = SketchConfig::builder()
            .rows(3)
            .width(32)
            .levels(4)
            .topk(32)
            .max_windows(64)
            .heavy_rows(8)
            .build();
        let mut by_window = flows.clone();
        by_window.sort_by_key(|&(_, w, _)| w);
        let batch: Vec<(FlowKey, u64, i64)> = by_window
            .iter()
            .map(|&(id, w, v)| (FlowKey::from_id(id), w, v))
            .collect();
        let mut seq = wavesketch::FullWaveSketch::new(config.clone());
        let mut sharded = ShardedWaveSketch::new(config, shards);
        for (f, w, v) in &batch {
            seq.update(f, *w, *v);
        }
        sharded.update_batch(&batch);
        for (f, _, _) in &batch {
            prop_assert_eq!(sharded.is_heavy(f), seq.is_heavy(f));
            prop_assert_eq!(sharded.query(f), seq.query(f));
        }
        prop_assert_eq!(sharded.drain(), seq.drain());
    }
}

/// An arbitrary epoch coefficient set, including shapes the transform itself
/// would never emit: single-window and early-stop epochs
/// (`padded_len.trailing_zeros() < levels`), truncated or over-long
/// approximation arrays, duplicate detail keys and details whose level or
/// index is out of range for the epoch. The sparse kernel must shrug at all
/// of them exactly the way the dense reference does.
fn arb_epoch() -> impl Strategy<Value = wavesketch::streaming::EpochCoefficients> {
    (
        0u32..8,
        0usize..8,
        proptest::collection::vec(-1_000_000i64..1_000_000, 0..16),
        proptest::collection::vec((0u32..10, 0u32..300, -1_000_000i64..1_000_000), 0..24),
    )
        .prop_map(|(levels, len_log2, mut approx, details)| {
            let padded_len = 1usize << len_log2;
            let blocks = padded_len >> levels.min(padded_len.trailing_zeros());
            approx.truncate(blocks + 3); // short, exact and over-long lengths
            wavesketch::streaming::EpochCoefficients {
                levels,
                padded_len,
                approx,
                details: details
                    .into_iter()
                    .map(|(level, idx, val)| Candidate { level, idx, val })
                    .collect(),
            }
        })
}

proptest! {
    /// The sparse reconstruction kernel is **bit-identical** to the dense
    /// reference — `f64::to_bits` equality per window, not an epsilon — for
    /// arbitrary coefficient sets, including empty, single-window and
    /// early-stop epochs and out-of-range or duplicate details.
    #[test]
    fn sparse_reconstruction_is_bit_identical_to_dense(coeffs in arb_epoch()) {
        use wavesketch::reconstruct::{reconstruct_dense, reconstruct_into, ReconstructScratch};
        let dense = reconstruct_dense(&coeffs);
        let mut scratch = ReconstructScratch::new();
        let sparse = reconstruct_into(&coeffs, &mut scratch);
        prop_assert_eq!(dense.len(), sparse.len());
        for (i, (d, s)) in dense.iter().zip(sparse.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), s.to_bits(),
                            "window {}: dense {} vs sparse {}", i, d, s);
        }
    }

    /// Same bit-identity over *real* epochs: coefficient sets produced by the
    /// streaming transform under aggressive top-k compression, reconstructed
    /// through one shared scratch (so buffer reuse across shapes is also
    /// under test). Covers empty epochs (no pushes survive) naturally.
    #[test]
    fn sparse_matches_dense_on_transform_output(
        series in sparse_series(512),
        levels in 1u32..9,
        k in 1usize..12,
    ) {
        use wavesketch::reconstruct::{reconstruct_dense, reconstruct_into, ReconstructScratch};
        let mut scratch = ReconstructScratch::new();
        for cap in [512usize, 64, 1] {
            let mut t = StreamingTransform::new(levels, cap, IdealTopK::new(k));
            for &(off, v) in &series {
                if (off as usize) < cap {
                    t.push(off, v);
                }
            }
            let coeffs = t.finish();
            let dense = reconstruct_dense(&coeffs);
            let sparse = reconstruct_into(&coeffs, &mut scratch);
            let dense_bits: Vec<u64> = dense.iter().map(|v| v.to_bits()).collect();
            let sparse_bits: Vec<u64> = sparse.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(dense_bits, sparse_bits, "cap {}", cap);
        }
    }
}
