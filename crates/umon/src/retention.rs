//! Bounded-memory retention for the long-running analyzer.
//!
//! The μMon analyzer is meant to run always-on; without a retention policy
//! it keeps every accepted [`PeriodReport`](crate::PeriodReport), every
//! cached reconstruction and every index ref forever and eventually OOMs.
//! [`RetentionPolicy`] makes the memory budget explicit and drives the
//! analyzer's time-tiered storage:
//!
//! * **hot** — the newest [`RetentionPolicy::hot_periods`] periods per host
//!   keep full query-index refs *and* cached window-curve reconstructions:
//!   queries are pure cached-`f64` accumulation (the PR 5 fast path).
//! * **compacted** — periods aging past the hot horizon stay resident (the
//!   raw [`PeriodReport`] is kept) but are deindexed: their cached curves
//!   and per-column collision refs are dropped, and queries fall back to a
//!   linear period scan with sparse inverse-Haar reconstruction. The two
//!   paths are bit-identical (`WindowSeries::accumulate_report` vs
//!   `accumulate_curve`), so compaction never changes a curve — it trades
//!   query throughput for memory.
//! * **evicted** — periods aging past [`RetentionPolicy::resident_periods`]
//!   leave memory entirely. When the analyzer has an archive
//!   ([`crate::archive::PeriodArchive`]) the data survives on disk — every
//!   accepted report is archived at ingest (write-ahead), so eviction is
//!   just a drop — and a restarted analyzer recovers it. Without an archive
//!   eviction is an explicit data-loss budget, visible in
//!   [`RetentionStats::evicted_periods`].
//!
//! Tier floors only move forward: a host's hot/eviction floors are raised as
//! newer periods arrive and never lowered, so a late-arriving report lands
//! directly in the tier its age dictates. Without an archive, an arrival
//! below the eviction floor is dropped as stale — the store can no longer
//! tell a stale first delivery from a redelivery of an evicted period. With
//! an archive the store *can* tell (the cold index records every archived
//! `(host, period)`), so a first delivery below the floor is archived and
//! immediately queryable from the cold tier, while a true redelivery is
//! still dropped.
//!
//! Since PR 8, evicted periods with an archive are not gone, merely *cold*:
//! queries transparently read evicted segments back from disk through a
//! bounded segment cache ([`RetentionPolicy::cold_cache_bytes`]), so
//! eviction is a latency budget instead of a data-loss budget. The cold
//! read path's cost is surfaced in the `cold_*` fields of
//! [`RetentionStats`].

/// The analyzer's explicit memory budget. The default is fully unbounded —
/// identical behavior to the pre-retention analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Newest periods per host kept fully indexed with cached
    /// reconstructions.
    pub hot_periods: u64,
    /// Newest periods per host kept resident at all (hot + compacted);
    /// older periods are evicted from memory.
    pub resident_periods: u64,
    /// Optional global (all hosts) budget for cached reconstruction bytes.
    /// When exceeded, the globally oldest hot period is compacted early,
    /// even inside the hot horizon.
    pub max_cached_bytes: Option<usize>,
    /// Byte budget for the cold tier's in-memory segment cache (decoded
    /// archive records retained across queries). Only consulted when the
    /// analyzer has an archive. A budget smaller than one record still
    /// yields correct answers — every cold query simply re-reads from disk.
    pub cold_cache_bytes: usize,
    /// Optional first lossy compaction level, off by default. When
    /// `Some(k)`, a period leaving the hot tier keeps only the `k`
    /// largest-magnitude detail coefficients per bucket epoch; smaller
    /// details are dropped from the *resident* copy to shrink the compacted
    /// tier. The write-ahead archive record keeps full fidelity, so the
    /// trade is resident-memory-vs-accuracy, never data loss — but resident
    /// compacted curves are no longer bit-identical to the unbounded
    /// analyzer, so this must stay `None` under the differential contract.
    pub lossy_floor: Option<usize>,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

impl RetentionPolicy {
    /// Default cold segment-cache budget: enough for a handful of decoded
    /// period records without rivaling the resident tiers.
    pub const DEFAULT_COLD_CACHE_BYTES: usize = 4 << 20;

    /// Keep everything forever (the pre-retention behavior).
    pub const UNBOUNDED: RetentionPolicy = RetentionPolicy {
        hot_periods: u64::MAX,
        resident_periods: u64::MAX,
        max_cached_bytes: None,
        cold_cache_bytes: Self::DEFAULT_COLD_CACHE_BYTES,
        lossy_floor: None,
    };

    /// A bounded policy: `hot` fully-indexed periods inside `resident`
    /// in-memory periods per host.
    pub fn bounded(hot: u64, resident: u64) -> Self {
        assert!(hot >= 1, "at least one hot period is required");
        assert!(
            resident >= hot,
            "resident horizon must contain the hot horizon"
        );
        Self {
            hot_periods: hot,
            resident_periods: resident,
            max_cached_bytes: None,
            cold_cache_bytes: Self::DEFAULT_COLD_CACHE_BYTES,
            lossy_floor: None,
        }
    }

    /// Adds a cached-bytes budget to this policy.
    pub fn with_cached_bytes(mut self, bytes: usize) -> Self {
        self.max_cached_bytes = Some(bytes);
        self
    }

    /// Sets the cold segment-cache byte budget.
    pub fn with_cold_cache_bytes(mut self, bytes: usize) -> Self {
        self.cold_cache_bytes = bytes;
        self
    }

    /// Enables the lossy compaction floor: resident compacted periods keep
    /// only the `keep` largest-magnitude detail coefficients per epoch.
    pub fn with_lossy_floor(mut self, keep: usize) -> Self {
        self.lossy_floor = Some(keep);
        self
    }
}

/// One host's tier floors. Monotone: both only ever increase.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TierFloors {
    /// Periods `>= hot_floor` are (or will be, on arrival) fully indexed.
    pub(crate) hot_floor: u64,
    /// Periods `< evict_floor` are no longer resident; arrivals below it
    /// are dropped as stale.
    pub(crate) evict_floor: u64,
}

impl TierFloors {
    /// Raises the floors for a host whose newest stored period is `newest`.
    /// Returns the previous floors (the caller compacts/evicts the periods
    /// between old and new).
    pub(crate) fn raise(&mut self, newest: u64, policy: &RetentionPolicy) -> TierFloors {
        let prev = *self;
        let hot_target = (newest + 1).saturating_sub(policy.hot_periods);
        let evict_target = (newest + 1).saturating_sub(policy.resident_periods);
        self.hot_floor = self.hot_floor.max(hot_target);
        self.evict_floor = self.evict_floor.max(evict_target);
        // The hot floor can never trail the eviction floor (a non-resident
        // period cannot be hot).
        self.hot_floor = self.hot_floor.max(self.evict_floor);
        prev
    }
}

/// Retention accounting, cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionStats {
    /// Periods demoted from hot to compacted (cached curves dropped).
    pub compacted_periods: u64,
    /// Periods evicted from memory.
    pub evicted_periods: u64,
    /// Accepted reports that arrived already past the hot horizon and were
    /// stored without indexing.
    pub compacted_on_arrival: u64,
    /// Reports dropped because they arrived below the eviction floor and
    /// were either already archived (true redeliveries) or, without an
    /// archive, indistinguishable from redeliveries; also counted as
    /// duplicates in [`crate::analyzer::IngestStats`].
    pub stale_dropped: u64,
    /// First deliveries that arrived below the eviction floor and went
    /// straight to the archive (cold tier) without becoming resident.
    pub stale_archived: u64,
    /// Archive append failures (the report stayed resident; the archive
    /// record is missing).
    pub archive_errors: u64,
    /// Cold-tier reads served from the segment cache.
    pub cold_hits: u64,
    /// Cold-tier reads that went to disk.
    pub cold_misses: u64,
    /// Bytes read back from archive segments by cold queries.
    pub cold_bytes_read: u64,
    /// Wall-clock nanoseconds spent in cold-tier disk reads (the latency
    /// side of the staleness/latency contract).
    pub cold_read_ns: u64,
    /// Cold-tier reads that failed (I/O error or a record that no longer
    /// verifies); the period is omitted from that query's answer.
    pub cold_read_errors: u64,
    /// Archive records lost to torn segment tails, as reported by recovery.
    pub torn_tail_records: u64,
    /// Detail coefficients dropped from resident compacted periods by the
    /// lossy floor ([`RetentionPolicy::lossy_floor`]).
    pub lossy_trimmed_details: u64,
}

/// A point-in-time snapshot of what the analyzer holds resident — the
/// quantities the retention soak asserts stay bounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencySnapshot {
    /// Resident periods across all hosts (hot + compacted).
    pub resident_periods: usize,
    /// Resident periods that are fully indexed (hot tier).
    pub hot_periods: usize,
    /// Bytes held by cached epoch reconstructions.
    pub cached_bytes: usize,
    /// Nominal wire bytes of all resident reports (the compacted tier's
    /// dominant cost).
    pub resident_report_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_unbounded() {
        let p = RetentionPolicy::default();
        assert_eq!(p, RetentionPolicy::UNBOUNDED);
        let mut floors = TierFloors::default();
        floors.raise(1_000_000, &p);
        assert_eq!(floors.hot_floor, 0);
        assert_eq!(floors.evict_floor, 0);
    }

    #[test]
    fn floors_follow_the_newest_period_and_never_regress() {
        let p = RetentionPolicy::bounded(2, 5);
        let mut floors = TierFloors::default();
        floors.raise(10, &p);
        assert_eq!(floors.hot_floor, 9);
        assert_eq!(floors.evict_floor, 6);
        // An older "newest" (late report didn't change the max) is a no-op.
        floors.raise(7, &p);
        assert_eq!(floors.hot_floor, 9);
        assert_eq!(floors.evict_floor, 6);
    }

    #[test]
    fn hot_floor_never_trails_evict_floor() {
        let p = RetentionPolicy {
            hot_periods: 10,
            resident_periods: 10,
            ..RetentionPolicy::UNBOUNDED
        };
        let mut floors = TierFloors::default();
        floors.raise(20, &p);
        assert!(floors.hot_floor >= floors.evict_floor);
    }

    #[test]
    #[should_panic(expected = "resident horizon")]
    fn bounded_rejects_inverted_horizons() {
        let _ = RetentionPolicy::bounded(8, 4);
    }
}
