#![warn(missing_docs)]

//! # umon — the μMon system: μFlow host agents, μEvent switch agents and
//! the network-wide analyzer
//!
//! Ties the WaveSketch measurement core to the simulated data center:
//!
//! * [`host_agent`] — runs a full WaveSketch per host over the host's egress
//!   packet stream, draining an uploadable report every measurement period
//!   and accounting the report bandwidth (§3, §4; the "~5 Mbps per host" of
//!   §7.1).
//! * [`switch_agent`] — the μEvent capture of §5: an ACL rule matching
//!   CE-marked packets, PSN low-bit sampling at `1/2^w`, and remote
//!   mirroring with per-port VLAN tags and switch-local timestamps.
//! * [`analyzer`] — network-wide synchronized analysis (§6): collects host
//!   reports and mirrored packets, clusters mirrors into congestion events,
//!   reconstructs flow-rate curves, and replays events by joining the two.
//! * [`collector`] — the report collection plane: sequence-numbered,
//!   checksummed envelopes over a fault-injectable transport, host-side
//!   bounded retransmission and analyzer-side dedup / gap detection /
//!   quarantine, so loss degrades coverage instead of corrupting curves.
//! * [`usecases`] — the §6.2 analyses: underutilization gap detection and
//!   congestion-control convergence/fairness checks.

pub mod analyzer;
pub mod archive;
mod cold;
pub mod collector;
pub mod events;
pub mod host_agent;
pub mod parallel_host;
pub mod pswitch;
pub mod query_index;
pub mod retention;
pub mod seqwin;
pub mod switch_agent;
pub mod usecases;

pub use analyzer::{
    Analyzer, AnnotatedCurve, DetectedEvent, EventMatchStats, IngestStats, PeriodCoverage,
    RecoveryStats,
};
pub use archive::{ArchiveScan, PeriodArchive, SegLoc, TornTail};
pub use collector::{
    BackfillRequest, Collector, CollectorStats, Envelope, FaultLog, FaultSpec, FaultyTransport,
    HostUplink, PerfectTransport, RetransmitPolicy, Transport,
};
pub use events::{loss_events, pause_storms, LossEvent, PauseStorm};
pub use host_agent::{HostAgent, HostAgentConfig, PeriodReport};
pub use parallel_host::ParallelHostAgent;
pub use pswitch::{PSwitchAgent, PSwitchConfig, PSwitchEvent};
pub use query_index::QueryScratch;
pub use retention::{ResidencySnapshot, RetentionPolicy, RetentionStats};
pub use seqwin::SeqWindow;
pub use switch_agent::{MirrorBatch, MirroredPacket, SamplerField, SwitchAgent, SwitchAgentConfig};
pub use usecases::{classify_event_role, fairness_index, find_gaps, EventRole, GapReport};
