//! Extended μEvent analysis: PFC pause storms and packet-loss events.
//!
//! §5 lists PFC storms, packet loss, microbursts and load imbalance as the
//! μEvents of interest. The ACL/mirror path covers queue-driven events; this
//! module analyzes the two complementary taps — PFC pause frames (lossless
//! fabrics) and deflect-on-drop reports.

use std::collections::BTreeMap;
use umon_netsim::telemetry::{DropRecord, PauseRecord};

/// A sustained PFC pause episode on one upstream port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseStorm {
    /// The paused node.
    pub node: usize,
    /// The paused port.
    pub port: usize,
    /// First XOFF of the episode, ns.
    pub start_ns: u64,
    /// Final XON of the episode, ns.
    pub end_ns: u64,
    /// Number of XOFF assertions merged into this episode.
    pub xoffs: usize,
    /// Total time spent paused within the episode, ns.
    pub paused_ns: u64,
}

impl PauseStorm {
    /// Fraction of the episode the port spent paused.
    pub fn paused_fraction(&self) -> f64 {
        if self.end_ns == self.start_ns {
            return 1.0;
        }
        self.paused_ns as f64 / (self.end_ns - self.start_ns) as f64
    }
}

/// Clusters pause records into storms: per (node, port), consecutive
/// XOFF→XON cycles closer than `gap_ns` merge into one storm. A storm is
/// only reported when it contains at least `min_xoffs` assertions —
/// isolated pauses are normal in a lossless fabric; repeated rapid pausing
/// is the pathology.
pub fn pause_storms(records: &[PauseRecord], gap_ns: u64, min_xoffs: usize) -> Vec<PauseStorm> {
    // Per port: the XOFF/XON cycle list.
    let mut by_port: BTreeMap<(usize, usize), Vec<&PauseRecord>> = BTreeMap::new();
    for r in records {
        by_port.entry((r.node, r.port)).or_default().push(r);
    }
    let mut storms = Vec::new();
    for ((node, port), mut recs) in by_port {
        recs.sort_by_key(|r| (r.ts_ns, !r.on));
        // Build (xoff_ts, xon_ts) cycles, tracking the pause refcount so
        // overlapping assertions from several triggers merge correctly.
        let mut cycles: Vec<(u64, u64)> = Vec::new();
        let mut depth = 0usize;
        let mut opened = 0u64;
        for r in recs {
            if r.on {
                if depth == 0 {
                    opened = r.ts_ns;
                }
                depth += 1;
            } else if depth > 0 {
                depth -= 1;
                if depth == 0 {
                    cycles.push((opened, r.ts_ns));
                }
            }
        }
        // Merge cycles into storms on the gap threshold.
        let mut cur: Option<PauseStorm> = None;
        for (start, end) in cycles {
            match cur.as_mut() {
                Some(s) if start.saturating_sub(s.end_ns) <= gap_ns => {
                    s.end_ns = end;
                    s.xoffs += 1;
                    s.paused_ns += end - start;
                }
                _ => {
                    if let Some(s) = cur.take() {
                        if s.xoffs >= min_xoffs {
                            storms.push(s);
                        }
                    }
                    cur = Some(PauseStorm {
                        node,
                        port,
                        start_ns: start,
                        end_ns: end,
                        xoffs: 1,
                        paused_ns: end - start,
                    });
                }
            }
        }
        if let Some(s) = cur.take() {
            if s.xoffs >= min_xoffs {
                storms.push(s);
            }
        }
    }
    storms
}

/// A packet-loss event: a burst of drops at one switch port.
#[derive(Debug, Clone, PartialEq)]
pub struct LossEvent {
    /// Dropping switch.
    pub switch: usize,
    /// Egress port.
    pub port: usize,
    /// First drop, ns.
    pub start_ns: u64,
    /// Last drop, ns.
    pub end_ns: u64,
    /// Packets lost.
    pub packets: usize,
    /// Bytes lost.
    pub bytes: u64,
    /// Victim flows, sorted.
    pub victims: Vec<u64>,
}

/// Clusters deflect-on-drop reports into loss events split on `gap_ns`.
pub fn loss_events(records: &[DropRecord], gap_ns: u64) -> Vec<LossEvent> {
    let mut by_port: BTreeMap<(usize, usize), Vec<&DropRecord>> = BTreeMap::new();
    for r in records {
        by_port.entry((r.switch, r.port)).or_default().push(r);
    }
    let mut events = Vec::new();
    for ((switch, port), mut recs) in by_port {
        recs.sort_by_key(|r| r.ts_ns);
        let mut cur: Option<LossEvent> = None;
        for r in recs {
            match cur.as_mut() {
                Some(e) if r.ts_ns.saturating_sub(e.end_ns) <= gap_ns => {
                    e.end_ns = r.ts_ns;
                    e.packets += 1;
                    e.bytes += r.bytes as u64;
                    if !e.victims.contains(&r.flow.0) {
                        e.victims.push(r.flow.0);
                    }
                }
                _ => {
                    if let Some(mut done) = cur.take() {
                        done.victims.sort_unstable();
                        events.push(done);
                    }
                    cur = Some(LossEvent {
                        switch,
                        port,
                        start_ns: r.ts_ns,
                        end_ns: r.ts_ns,
                        packets: 1,
                        bytes: r.bytes as u64,
                        victims: vec![r.flow.0],
                    });
                }
            }
        }
        if let Some(mut done) = cur.take() {
            done.victims.sort_unstable();
            events.push(done);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_netsim::FlowId;

    fn pause(node: usize, ts: u64, on: bool) -> PauseRecord {
        PauseRecord {
            node,
            port: 0,
            triggered_by: 99,
            ts_ns: ts,
            on,
        }
    }

    #[test]
    fn storms_merge_rapid_cycles() {
        let records = vec![
            pause(1, 1000, true),
            pause(1, 2000, false),
            pause(1, 2500, true),
            pause(1, 4000, false),
            // 200 μs quiet, then an isolated pause — not part of the storm.
            pause(1, 204_000, true),
            pause(1, 205_000, false),
        ];
        let storms = pause_storms(&records, 50_000, 2);
        assert_eq!(storms.len(), 1);
        let s = &storms[0];
        assert_eq!((s.start_ns, s.end_ns), (1000, 4000));
        assert_eq!(s.xoffs, 2);
        assert_eq!(s.paused_ns, 1000 + 1500);
        assert!((s.paused_fraction() - 2500.0 / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_xoffs_refcount_into_one_cycle() {
        // Two triggers pause the same port before the first resumes.
        let records = vec![
            pause(1, 1000, true),
            pause(1, 1200, true),
            pause(1, 1500, false),
            pause(1, 2000, false), // only now fully resumed
        ];
        let storms = pause_storms(&records, 10_000, 1);
        assert_eq!(storms.len(), 1);
        assert_eq!(storms[0].paused_ns, 1000);
        assert_eq!(storms[0].xoffs, 1);
    }

    #[test]
    fn min_xoffs_filters_isolated_pauses() {
        let records = vec![pause(1, 0, true), pause(1, 10, false)];
        assert!(pause_storms(&records, 1000, 2).is_empty());
        assert_eq!(pause_storms(&records, 1000, 1).len(), 1);
    }

    #[test]
    fn loss_events_cluster_and_count_victims() {
        let drop = |ts: u64, flow: u64| DropRecord {
            switch: 20,
            port: 1,
            ts_ns: ts,
            flow: FlowId(flow),
            psn: 0,
            bytes: 1000,
        };
        let records = vec![drop(100, 1), drop(200, 2), drop(250, 1), drop(90_000, 3)];
        let events = loss_events(&records, 10_000);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].packets, 3);
        assert_eq!(events[0].bytes, 3000);
        assert_eq!(events[0].victims, vec![1, 2]);
        assert_eq!(events[1].victims, vec![3]);
    }

    /// μEvent start/end from a hand-built queue-depth series: XOFF fires
    /// when the depth crosses the PFC threshold upward, XON when it falls
    /// back, and the storm boundaries must equal the crossing times exactly.
    #[test]
    fn storm_boundaries_follow_queue_depth_threshold_crossings() {
        let threshold = 50_000u32;
        let series: &[(u64, u32)] = &[
            (0, 10_000),
            (1_000, 60_000), // cross up → XOFF @ 1000
            (3_000, 70_000),
            (4_000, 20_000),   // cross down → XON @ 4000
            (9_000, 55_000),   // XOFF @ 9000
            (10_000, 0),       // XON @ 10000
            (500_000, 80_000), // isolated hump much later
            (501_000, 0),
        ];
        let mut records = Vec::new();
        let mut above = false;
        for &(ts, depth) in series {
            if !above && depth >= threshold {
                records.push(pause(3, ts, true));
                above = true;
            } else if above && depth < threshold {
                records.push(pause(3, ts, false));
                above = false;
            }
        }
        let storms = pause_storms(&records, 50_000, 2);
        assert_eq!(storms.len(), 1);
        let s = &storms[0];
        assert_eq!((s.start_ns, s.end_ns), (1_000, 10_000));
        assert_eq!(s.xoffs, 2);
        assert_eq!(s.paused_ns, 3_000 + 1_000);
        // With min_xoffs = 1 the isolated hump becomes its own storm.
        let all = pause_storms(&records, 50_000, 1);
        assert_eq!(all.len(), 2);
        assert_eq!((all[1].start_ns, all[1].end_ns), (500_000, 501_000));
    }

    #[test]
    fn storm_gap_boundary_is_inclusive() {
        // A cycle starting exactly gap_ns after the previous one ends
        // merges; one nanosecond later it splits.
        let records = |extra: u64| {
            vec![
                pause(1, 0, true),
                pause(1, 100, false),
                pause(1, 100 + 1_000 + extra, true),
                pause(1, 100 + 1_000 + extra + 50, false),
            ]
        };
        assert_eq!(pause_storms(&records(0), 1_000, 1).len(), 1);
        assert_eq!(pause_storms(&records(1), 1_000, 1).len(), 2);
    }

    #[test]
    fn dangling_xon_and_unresumed_xoff_are_ignored() {
        let records = vec![
            pause(1, 100, false), // stray resume with no open pause
            pause(1, 200, true),
            pause(1, 300, false),
            pause(1, 400, true), // never resumed: no closed cycle
        ];
        let storms = pause_storms(&records, 1_000, 1);
        assert_eq!(storms.len(), 1);
        assert_eq!((storms[0].start_ns, storms[0].end_ns), (200, 300));
        assert_eq!(storms[0].xoffs, 1);
    }

    #[test]
    fn loss_event_gap_boundary_and_port_separation() {
        let drop = |sw: usize, port: usize, ts: u64| DropRecord {
            switch: sw,
            port,
            ts_ns: ts,
            flow: FlowId(1),
            psn: 0,
            bytes: 500,
        };
        // Exactly gap_ns apart merges ...
        let merged = loss_events(&[drop(20, 0, 0), drop(20, 0, 1_000)], 1_000);
        assert_eq!(merged.len(), 1);
        assert_eq!((merged[0].start_ns, merged[0].end_ns), (0, 1_000));
        // ... one nanosecond beyond splits.
        let split = loss_events(&[drop(20, 0, 0), drop(20, 0, 1_001)], 1_000);
        assert_eq!(split.len(), 2);
        // Identical timestamps on different ports or switches never merge.
        let ports = loss_events(&[drop(20, 0, 0), drop(20, 1, 0), drop(21, 0, 0)], 1_000);
        assert_eq!(ports.len(), 3);
    }

    #[test]
    fn empty_inputs_yield_no_events() {
        assert!(pause_storms(&[], 1000, 1).is_empty());
        assert!(loss_events(&[], 1000).is_empty());
    }
}
