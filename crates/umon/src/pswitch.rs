//! Programmable-switch μEvent capture (§5's extension): when programmable
//! switches are available, μMon can observe queues directly in the data
//! plane instead of inferring congestion from ECN marks. This agent models
//! a ConQuest/BurstRadar-style P4 program:
//!
//! * it sees every data packet enqueued above a queue threshold together
//!   with the instantaneous queue length (the simulator's burst tap),
//! * deduplicates flows in the data plane within an event (a small flow
//!   cache, feasible in SRAM), and
//! * batch-reports events to the analyzer: one compact record per event
//!   with the flow list and peak queue length, instead of mirroring whole
//!   packets.

use std::collections::BTreeSet;
use umon_netsim::telemetry::BurstRecord;

/// Configuration of the programmable capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PSwitchConfig {
    /// Records further apart than this close the event (ns).
    pub gap_ns: u64,
    /// Report framing overhead per event (header, timestamps, qlen), bytes.
    pub event_header_bytes: u32,
    /// Bytes per reported flow entry (flow key + per-flow byte count).
    pub flow_entry_bytes: u32,
}

impl Default for PSwitchConfig {
    fn default() -> Self {
        Self {
            gap_ns: 50_000,
            event_header_bytes: 40,
            flow_entry_bytes: 17,
        }
    }
}

/// One batch-reported in-dataplane event.
#[derive(Debug, Clone, PartialEq)]
pub struct PSwitchEvent {
    /// Observing switch.
    pub switch: usize,
    /// Congested port.
    pub port: usize,
    /// First over-threshold enqueue, ns (switch-local).
    pub start_ns: u64,
    /// Last over-threshold enqueue, ns.
    pub end_ns: u64,
    /// Peak instantaneous queue length seen, bytes.
    pub max_qlen: u32,
    /// Distinct flows observed above the threshold.
    pub flows: BTreeSet<u64>,
    /// Over-threshold packets observed.
    pub packets: usize,
}

/// The per-switch programmable capture agent.
#[derive(Debug, Clone)]
pub struct PSwitchAgent {
    /// The switch this agent runs on.
    pub switch: usize,
    config: PSwitchConfig,
    /// Open event per port.
    open: std::collections::HashMap<usize, PSwitchEvent>,
    finished: Vec<PSwitchEvent>,
}

impl PSwitchAgent {
    /// Creates an agent for `switch`.
    pub fn new(switch: usize, config: PSwitchConfig) -> Self {
        Self {
            switch,
            config,
            open: std::collections::HashMap::new(),
            finished: Vec::new(),
        }
    }

    /// Offers one burst record (records must be time-ordered per port, as
    /// the simulator produces them).
    pub fn offer(&mut self, r: &BurstRecord) {
        debug_assert_eq!(r.switch, self.switch);
        match self.open.get_mut(&r.port) {
            Some(ev) if r.ts_ns.saturating_sub(ev.end_ns) <= self.config.gap_ns => {
                ev.end_ns = r.ts_ns;
                ev.max_qlen = ev.max_qlen.max(r.qlen_bytes);
                ev.flows.insert(r.flow.0);
                ev.packets += 1;
            }
            _ => {
                if let Some(done) = self.open.remove(&r.port) {
                    self.finished.push(done);
                }
                self.open.insert(
                    r.port,
                    PSwitchEvent {
                        switch: self.switch,
                        port: r.port,
                        start_ns: r.ts_ns,
                        end_ns: r.ts_ns,
                        max_qlen: r.qlen_bytes,
                        flows: BTreeSet::from([r.flow.0]),
                        packets: 1,
                    },
                );
            }
        }
    }

    /// Feeds every record belonging to this switch.
    pub fn ingest(&mut self, records: &[BurstRecord]) {
        for r in records {
            if r.switch == self.switch {
                self.offer(r);
            }
        }
    }

    /// Closes open events and returns everything captured.
    pub fn finish(mut self) -> Vec<PSwitchEvent> {
        let mut open: Vec<PSwitchEvent> = self.open.drain().map(|(_, e)| e).collect();
        open.sort_by_key(|e| (e.port, e.start_ns));
        self.finished.extend(open);
        self.finished.sort_by_key(|e| (e.port, e.start_ns));
        self.finished
    }

    /// Report bytes for a set of events under this agent's framing: batch
    /// reporting sends one header plus one entry per distinct flow per
    /// event — no packet payloads.
    pub fn report_bytes(config: &PSwitchConfig, events: &[PSwitchEvent]) -> u64 {
        events
            .iter()
            .map(|e| {
                config.event_header_bytes as u64
                    + e.flows.len() as u64 * config.flow_entry_bytes as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_netsim::FlowId;

    fn rec(port: usize, ts: u64, flow: u64, qlen: u32) -> BurstRecord {
        BurstRecord {
            switch: 20,
            port,
            ts_ns: ts,
            flow: FlowId(flow),
            qlen_bytes: qlen,
        }
    }

    #[test]
    fn events_split_on_gap_and_track_peak() {
        let mut a = PSwitchAgent::new(20, PSwitchConfig::default());
        a.ingest(&[
            rec(0, 1000, 1, 30_000),
            rec(0, 2000, 2, 250_000),
            rec(0, 3000, 1, 100_000),
            rec(0, 90_000, 3, 40_000), // > 50 μs gap → new event
        ]);
        let events = a.finish();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].max_qlen, 250_000);
        assert_eq!(events[0].flows.len(), 2);
        assert_eq!(events[0].packets, 3);
        assert_eq!(events[1].flows.len(), 1);
    }

    #[test]
    fn ports_are_independent() {
        let mut a = PSwitchAgent::new(20, PSwitchConfig::default());
        a.ingest(&[rec(0, 1000, 1, 30_000), rec(1, 1500, 2, 30_000)]);
        let events = a.finish();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn flow_dedup_keeps_reports_compact() {
        let mut a = PSwitchAgent::new(20, PSwitchConfig::default());
        // 1000 packets of the same flow: one event, one flow entry.
        for i in 0..1000u64 {
            a.offer(&rec(0, 1000 + i * 10, 7, 50_000));
        }
        let events = a.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flows.len(), 1);
        let bytes = PSwitchAgent::report_bytes(&PSwitchConfig::default(), &events);
        assert_eq!(bytes, 40 + 17);
    }

    #[test]
    fn ingest_filters_by_switch() {
        let mut a = PSwitchAgent::new(20, PSwitchConfig::default());
        let mut other = rec(0, 100, 1, 30_000);
        other.switch = 21;
        a.ingest(&[rec(0, 100, 1, 30_000), other]);
        assert_eq!(a.finish().len(), 1);
    }
}
