//! The analyzer's cold tier: evicted periods read back from the archive.
//!
//! Eviction under a [`RetentionPolicy`](crate::RetentionPolicy) drops a
//! period from memory, but with an archive the bytes are still on disk —
//! so a query touching an evicted period should *read it back*, not
//! silently omit it. The [`ColdStore`] keeps a byte-location index of every
//! archived `(host, period)` record (fed by live appends and by the
//! recovery scan) and serves decoded records through a bounded-bytes cache:
//!
//! * **Correctness is unconditional.** A cache smaller than one record
//!   still answers every query correctly — it just re-reads from disk each
//!   time. Decode is exact, and the analyzer accumulates cold epochs in the
//!   same period-ascending order the resident tiers use, so cold answers
//!   are bit-identical to an unbounded analyzer's.
//! * **The contract is latency, not staleness of data.** Archive records
//!   are immutable once written, so a cold read never returns stale
//!   *values*; what the cold tier costs is disk time, surfaced as
//!   `cold_hits` / `cold_misses` / `cold_bytes_read` / `cold_read_ns` in
//!   [`RetentionStats`](crate::RetentionStats). A read that fails (I/O
//!   error, or a record damaged after indexing) is counted in
//!   `cold_read_errors` and that period is omitted from the answer — the
//!   same visible degradation as an eviction without an archive, but now
//!   counted instead of silent.

use crate::archive::{PeriodArchive, SegLoc};
use crate::host_agent::PeriodReport;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

/// Cold-tier read accounting, merged into
/// [`RetentionStats`](crate::RetentionStats) by the analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ColdReadStats {
    /// Reads served from the segment cache.
    pub(crate) hits: u64,
    /// Reads that went to disk.
    pub(crate) misses: u64,
    /// Bytes read from archive segments.
    pub(crate) bytes_read: u64,
    /// Wall-clock nanoseconds spent in disk reads.
    pub(crate) read_ns: u64,
    /// Failed reads (the period was omitted from that query's answer).
    pub(crate) errors: u64,
}

/// One cached decoded record. `Rc` so an in-progress query keeps its
/// epochs alive even if the budget evicts the entry mid-fetch.
struct CacheEntry {
    report: Rc<PeriodReport>,
    /// Charged bytes: the on-disk record span (stable and already known,
    /// unlike the decoded heap size).
    bytes: usize,
    last_used: u64,
}

/// The mutable half of the store, behind a `RefCell` because queries run
/// under `&Analyzer`.
#[derive(Default)]
struct ColdCache {
    entries: HashMap<(usize, u64), CacheEntry>,
    bytes: usize,
    clock: u64,
    stats: ColdReadStats,
}

impl ColdCache {
    /// Evicts least-recently-used entries until the budget is respected.
    /// May evict everything (budget below one record): queries stay
    /// correct, every fetch just goes to disk.
    fn enforce(&mut self, budget: usize) {
        while self.bytes > budget && !self.entries.is_empty() {
            let (&key, _) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .expect("non-empty");
            let gone = self.entries.remove(&key).expect("just found");
            self.bytes -= gone.bytes;
        }
    }
}

/// The queryable cold tier over one archive directory.
pub(crate) struct ColdStore {
    dir: PathBuf,
    budget: usize,
    /// Byte location of every archived record: host → period → location.
    index: HashMap<usize, BTreeMap<u64, SegLoc>>,
    cache: RefCell<ColdCache>,
}

impl ColdStore {
    pub(crate) fn new(dir: PathBuf, budget: usize) -> Self {
        Self {
            dir,
            budget,
            index: HashMap::new(),
            cache: RefCell::new(ColdCache::default()),
        }
    }

    /// Records one archived record's location (live append or recovery
    /// scan).
    pub(crate) fn record(&mut self, host: usize, period: u64, loc: SegLoc) {
        self.index.entry(host).or_default().insert(period, loc);
    }

    /// True if `(host, period)` is archived — the test that tells a stale
    /// first delivery from a redelivery of an evicted period.
    pub(crate) fn contains(&self, host: usize, period: u64) -> bool {
        self.index
            .get(&host)
            .is_some_and(|m| m.contains_key(&period))
    }

    /// The newest archived period for `host`, if any.
    pub(crate) fn newest_archived(&self, host: usize) -> Option<u64> {
        self.index
            .get(&host)
            .and_then(|m| m.last_key_value())
            .map(|(&p, _)| p)
    }

    /// Archived periods strictly below `floor` (the non-resident,
    /// cold-only ones) for coverage reporting.
    pub(crate) fn archived_below(&self, host: usize, floor: u64) -> BTreeSet<u64> {
        self.index
            .get(&host)
            .map(|m| m.range(..floor).map(|(&p, _)| p).collect())
            .unwrap_or_default()
    }

    /// A copy of the cumulative read stats.
    pub(crate) fn stats(&self) -> ColdReadStats {
        self.cache.borrow().stats
    }

    /// Fetches every archived period of `host` strictly below `floor` into
    /// `out`, period-ascending — the epochs a query must visit *before*
    /// the resident tiers. Called once per query, before the two-pass
    /// epoch walk, so both passes see identical epochs. Unreadable records
    /// are counted and skipped.
    pub(crate) fn fetch_below(&self, host: usize, floor: u64, out: &mut Vec<Rc<PeriodReport>>) {
        out.clear();
        let Some(periods) = self.index.get(&host) else {
            return;
        };
        let mut cache = self.cache.borrow_mut();
        for (&period, &loc) in periods.range(..floor) {
            cache.clock += 1;
            let clock = cache.clock;
            if let Some(e) = cache.entries.get_mut(&(host, period)) {
                e.last_used = clock;
                let report = Rc::clone(&e.report);
                cache.stats.hits += 1;
                out.push(report);
                continue;
            }
            let t0 = Instant::now();
            let read = PeriodArchive::read_record_at(&self.dir, host, loc);
            cache.stats.read_ns += t0.elapsed().as_nanos() as u64;
            cache.stats.misses += 1;
            match read {
                Ok(Some(report)) => {
                    cache.stats.bytes_read += u64::from(loc.len);
                    let report = Rc::new(report);
                    out.push(Rc::clone(&report));
                    cache.entries.insert(
                        (host, period),
                        CacheEntry {
                            report,
                            bytes: loc.len as usize,
                            last_used: clock,
                        },
                    );
                    cache.bytes += loc.len as usize;
                    cache.enforce(self.budget);
                }
                Ok(None) | Err(_) => cache.stats.errors += 1,
            }
        }
    }
}
