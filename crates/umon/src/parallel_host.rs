//! Sharded parallel host ingest: the [`HostAgent`](crate::HostAgent)
//! pipeline spread across worker threads, one lane-partitioned
//! `FullWaveSketch` shard per worker.
//!
//! The observe path routes each packet to its flow's shard (a single hash)
//! and appends it to a small per-shard batch; full batches travel over an
//! mpsc channel to the owning worker, which applies them to its private
//! shard. At a period boundary every worker drains its shard and the merged
//! report is bit-identical to what a sequential [`HostAgent`] would have
//! uploaded (see `wavesketch::sharded`), so the analyzer cannot tell the two
//! apart.

use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::host_agent::{HostAgentConfig, PeriodReport};
use umon_netsim::TxRecord;
use wavesketch::sharded::merge_shard_reports;
use wavesketch::{FlowKey, FullWaveSketch, SketchReport};

/// Updates handed to a shard worker: `(flow, window, bytes)`.
type Batch = Vec<(FlowKey, u64, i64)>;

enum ShardMsg {
    /// Apply a batch of updates to the shard.
    Batch(Batch),
    /// Drain the shard and send its report back.
    Drain(mpsc::Sender<SketchReport>),
}

fn shard_worker(mut sketch: FullWaveSketch, rx: mpsc::Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                // The batch is pre-routed (every record belongs to this
                // shard), so it feeds the SIMD batch pipeline directly.
                sketch.update_batch(&batch);
            }
            ShardMsg::Drain(reply) => {
                // The agent waits on the reply; a dropped receiver means the
                // agent is gone and the report is moot.
                let _ = reply.send(sketch.drain());
            }
        }
    }
}

/// Packets buffered per shard before a batch is shipped to its worker.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// A [`HostAgent`](crate::HostAgent) with the sketch split into
/// lane-partitioned shards, each owned by a worker thread.
///
/// ```
/// use umon::{HostAgentConfig, ParallelHostAgent};
///
/// let mut agent = ParallelHostAgent::new(0, HostAgentConfig::default(), 4);
/// agent.observe(7, 1_000_000, 1500);
/// let reports = agent.finish();
/// assert_eq!(reports.len(), 1);
/// ```
pub struct ParallelHostAgent {
    /// This host's node id.
    pub host: usize,
    config: HostAgentConfig,
    shard_count: usize,
    batch_size: usize,
    senders: Vec<mpsc::Sender<ShardMsg>>,
    workers: Vec<JoinHandle<()>>,
    pending: Vec<Batch>,
    current_period: Option<u64>,
    finished: Vec<PeriodReport>,
    /// Total packets observed.
    pub packets: u64,
    /// Total bytes observed.
    pub bytes: u64,
}

impl ParallelHostAgent {
    /// Creates an agent for `host` with `shard_count` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` does not divide the sketch's lane count
    /// (powers of two up to the lane count always do).
    pub fn new(host: usize, config: HostAgentConfig, shard_count: usize) -> Self {
        let mut senders = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let sketch = FullWaveSketch::new(config.sketch.shard_slice(s, shard_count));
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("umon-shard-{s}"))
                    .spawn(move || shard_worker(sketch, rx))
                    .expect("spawn shard worker"),
            );
        }
        Self {
            host,
            config,
            shard_count,
            batch_size: DEFAULT_BATCH_SIZE,
            senders,
            workers,
            pending: (0..shard_count).map(|_| Vec::new()).collect(),
            current_period: None,
            finished: Vec::new(),
            packets: 0,
            bytes: 0,
        }
    }

    /// Overrides the per-shard batch size (mostly for tests and benchmarks).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The agent configuration.
    pub fn config(&self) -> &HostAgentConfig {
        &self.config
    }

    /// Observes one egress packet (host-local clock, non-decreasing
    /// timestamps) — same contract as [`HostAgent::observe`](crate::HostAgent::observe).
    pub fn observe(&mut self, flow_id: u64, local_ts_ns: u64, bytes: u32) {
        let period = local_ts_ns / self.config.period_ns;
        match self.current_period {
            None => self.current_period = Some(period),
            Some(cur) if period > cur => {
                self.flush_period(cur);
                self.current_period = Some(period);
            }
            _ => {}
        }
        let window = local_ts_ns >> self.config.window_shift;
        let key = FlowKey::from_id(flow_id);
        let s = self.config.sketch.shard_of(&key, self.shard_count);
        self.pending[s].push((key, window, bytes as i64));
        if self.pending[s].len() >= self.batch_size {
            let batch = std::mem::take(&mut self.pending[s]);
            self.senders[s]
                .send(ShardMsg::Batch(batch))
                .expect("shard worker alive");
        }
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Convenience: feeds every record of this host from a simulation tap.
    pub fn ingest(&mut self, records: &[TxRecord]) {
        for r in records {
            if r.host == self.host {
                self.observe(r.flow.0, r.ts_ns, r.bytes);
            }
        }
    }

    /// Drains every shard (after flushing buffered batches) and merges the
    /// per-shard reports into one sequential-identical period report.
    fn flush_period(&mut self, period: u64) {
        let mut replies = Vec::with_capacity(self.shard_count);
        for s in 0..self.shard_count {
            if !self.pending[s].is_empty() {
                let batch = std::mem::take(&mut self.pending[s]);
                self.senders[s]
                    .send(ShardMsg::Batch(batch))
                    .expect("shard worker alive");
            }
            let (tx, rx) = mpsc::channel();
            self.senders[s]
                .send(ShardMsg::Drain(tx))
                .expect("shard worker alive");
            replies.push(rx);
        }
        // Collect in shard order: the merge relies on it, and each worker
        // processes its channel in order, so the drain sees every batch.
        let shard_reports: Vec<SketchReport> = replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker replies"))
            .collect();
        let report = merge_shard_reports(&self.config.sketch, shard_reports);
        if report.epoch_count() > 0 {
            self.finished.push(PeriodReport {
                period,
                host: self.host,
                config_fingerprint: self.config.sketch.fingerprint(),
                report,
            });
        }
    }

    /// Takes the reports of periods that have already closed, leaving the
    /// in-progress period counting — the incremental upload path, mirroring
    /// [`HostAgent::poll_finished`](crate::HostAgent::poll_finished).
    pub fn poll_finished(&mut self) -> Vec<PeriodReport> {
        std::mem::take(&mut self.finished)
    }

    /// Flushes the in-progress period, stops the workers and returns all
    /// reports collected so far.
    pub fn finish(mut self) -> Vec<PeriodReport> {
        if let Some(cur) = self.current_period.take() {
            self.flush_period(cur);
        }
        self.senders.clear(); // closes every channel; workers exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        std::mem::take(&mut self.finished)
    }
}

impl Drop for ParallelHostAgent {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_agent::HostAgent;
    use wavesketch::SketchConfig;

    fn small_config() -> HostAgentConfig {
        HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(32)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 1_000_000,
            window_shift: 13,
        }
    }

    /// Several periods of skewed traffic across many flows.
    fn drive(observe: &mut dyn FnMut(u64, u64, u32)) {
        for i in 0..30_000u64 {
            let ts = i * 100; // 3 ms span => 3 periods of 1 ms
            let flow = if i % 5 == 0 { i % 3 } else { 10 + i % 97 };
            observe(flow, ts, 64 + (i % 1400) as u32);
        }
    }

    #[test]
    fn parallel_reports_are_bit_identical_to_sequential() {
        let mut seq = HostAgent::new(0, small_config());
        drive(&mut |f, t, b| seq.observe(f, t, b));
        let seq_reports = seq.finish();
        assert!(seq_reports.len() >= 2, "want multiple periods");

        for shards in [1usize, 2, 4, 8] {
            let mut par = ParallelHostAgent::new(0, small_config(), shards).with_batch_size(64);
            drive(&mut |f, t, b| par.observe(f, t, b));
            let par_reports = par.finish();
            assert_eq!(par_reports.len(), seq_reports.len(), "{shards} shards");
            for (p, s) in par_reports.iter().zip(&seq_reports) {
                assert_eq!(p.period, s.period, "{shards} shards");
                assert_eq!(p.config_fingerprint, s.config_fingerprint);
                assert_eq!(p.report, s.report, "{shards} shards, period {}", p.period);
            }
        }
    }

    #[test]
    fn counters_match_sequential_agent() {
        let mut seq = HostAgent::new(0, small_config());
        let mut par = ParallelHostAgent::new(0, small_config(), 4);
        drive(&mut |f, t, b| seq.observe(f, t, b));
        drive(&mut |f, t, b| par.observe(f, t, b));
        assert_eq!(par.packets, seq.packets);
        assert_eq!(par.bytes, seq.bytes);
        par.finish();
    }

    #[test]
    fn ingest_filters_by_host() {
        use umon_netsim::FlowId;
        let mut agent = ParallelHostAgent::new(3, small_config(), 2);
        let records = vec![
            TxRecord {
                host: 3,
                flow: FlowId(1),
                ts_ns: 0,
                bytes: 500,
            },
            TxRecord {
                host: 4,
                flow: FlowId(2),
                ts_ns: 10,
                bytes: 500,
            },
            TxRecord {
                host: 3,
                flow: FlowId(1),
                ts_ns: 20,
                bytes: 500,
            },
        ];
        agent.ingest(&records);
        assert_eq!(agent.packets, 2);
        assert_eq!(agent.bytes, 1000);
        agent.finish();
    }

    #[test]
    fn empty_agent_produces_no_reports() {
        let agent = ParallelHostAgent::new(0, small_config(), 4);
        assert!(agent.finish().is_empty());
    }

    #[test]
    fn poll_finished_matches_sequential_incremental_upload() {
        let mut seq = HostAgent::new(0, small_config());
        let mut par = ParallelHostAgent::new(0, small_config(), 2).with_batch_size(16);
        for i in 0..5_000u64 {
            seq.observe(i % 9, i * 500, 200);
            par.observe(i % 9, i * 500, 200);
        }
        let seq_closed = seq.poll_finished();
        let par_closed = par.poll_finished();
        assert!(!par_closed.is_empty());
        assert_eq!(par_closed.len(), seq_closed.len());
        for (p, s) in par_closed.iter().zip(&seq_closed) {
            assert_eq!(p.period, s.period);
            assert_eq!(p.report, s.report);
        }
        par.finish();
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let mut agent = ParallelHostAgent::new(0, small_config(), 4);
        agent.observe(1, 100, 1000);
        drop(agent); // must not hang or panic
    }
}
