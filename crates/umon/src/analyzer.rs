//! The μMon analyzer (§6): network-wide synchronized analysis.
//!
//! Collects period reports from every host agent and mirrored packets from
//! every switch agent, then offers:
//!
//! * **flow-rate queries** — reconstructing a flow's microsecond-level curve
//!   from the heavy part directly or from the light part with heavy-flow
//!   subtraction (§4.2 full-version query),
//! * **event clustering** — grouping mirrored packets per (switch, VLAN)
//!   into detected congestion events split on idle gaps,
//! * **recall/coverage evaluation** against the simulator's ground-truth
//!   queue episodes (Figure 14), and
//! * **event replay** — the Figure 10c join of detected events with the
//!   rate curves of the involved flows.

use crate::archive::{PeriodArchive, TornTail};
use crate::cold::ColdStore;
use crate::collector::BackfillRequest;
use crate::host_agent::PeriodReport;
use crate::query_index::{
    series_from_epochs, unpack_key, visit_refs, Epoch, HostIndex, QueryIndex, QueryScratch,
};
use crate::retention::{ResidencySnapshot, RetentionPolicy, RetentionStats, TierFloors};
use crate::seqwin::SeqWindow;
use crate::switch_agent::{MirrorBatch, MirroredPacket};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::Path;
use std::rc::Rc;
use umon_netsim::QueueEpisode;
use wavesketch::basic::WindowSeries;
use wavesketch::reconstruct::ReconstructScratch;
use wavesketch::{BucketReport, FlowKey, SketchConfig, SketchReport};

/// Accounting for one [`Analyzer::add_reports`] batch (and, cumulatively,
/// for an analyzer's lifetime via [`Analyzer::ingest_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Reports accepted into the store.
    pub accepted: u64,
    /// Reports dropped because their `(host, period)` slot was already
    /// filled — redelivered or double-counted uploads.
    pub duplicates: u64,
    /// Reports quarantined because their config fingerprint does not match
    /// the analyzer's sketch configuration.
    pub mismatched: u64,
}

impl IngestStats {
    /// Total reports the batch carried.
    pub fn total(&self) -> u64 {
        self.accepted + self.duplicates + self.mismatched
    }

    fn absorb(&mut self, other: IngestStats) {
        self.accepted += other.accepted;
        self.duplicates += other.duplicates;
        self.mismatched += other.mismatched;
    }
}

/// Which upload periods of a host the analyzer actually holds — the
/// difference between "the flow sent nothing" and "the report never made it"
/// when reading a reconstructed curve.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeriodCoverage {
    /// Periods with an accepted report.
    pub periods: BTreeSet<u64>,
    /// Periods no longer resident but queryable from the cold tier (the
    /// archive): queries read them back from disk transparently. Empty
    /// without an archive.
    pub archived: BTreeSet<u64>,
    /// Uploads the collection plane knows were lost (sequence gaps reported
    /// by `umon::collector`); 0 when no collector feeds this analyzer.
    pub known_lost: u64,
}

impl PeriodCoverage {
    /// True if `period` has an accepted *resident* report.
    pub fn covers(&self, period: u64) -> bool {
        self.periods.contains(&period)
    }

    /// True if a query can see `period` — resident or readable from the
    /// cold tier.
    pub fn queryable(&self, period: u64) -> bool {
        self.periods.contains(&period) || self.archived.contains(&period)
    }

    /// True if no upload is known to be missing. A period absent from
    /// `periods` is not by itself a loss — hosts skip periods with no
    /// traffic — so only the collector's sequence-gap count decides. A curve
    /// read under incomplete coverage is evidence from the surviving periods
    /// only, not a statement about the holes.
    pub fn is_complete(&self) -> bool {
        self.known_lost == 0
    }
}

/// A reconstructed curve plus the period coverage it was built under.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedCurve {
    /// The reconstructed rate curve.
    pub series: WindowSeries,
    /// Coverage of the measuring host's upload periods.
    pub coverage: PeriodCoverage,
}

/// Detected event time spans `(start_ns, end_ns)` per link `(switch, VLAN)`,
/// sorted by event count descending.
pub type CongestionMap = Vec<((usize, u16), Vec<(u64, u64)>)>;

/// A congestion event reconstructed from mirrored packets.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedEvent {
    /// Switch the event was mirrored from.
    pub switch: usize,
    /// VLAN tag (port + 1).
    pub vlan: u16,
    /// First mirrored-packet timestamp (switch-local), ns.
    pub start_ns: u64,
    /// Last mirrored-packet timestamp, ns.
    pub end_ns: u64,
    /// Distinct flows among the mirrored packets.
    pub flows: BTreeSet<u64>,
    /// Mirrored packets in the event.
    pub packets: usize,
}

impl DetectedEvent {
    /// Event duration in ns (0 for a single-packet event).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Recall/coverage statistics against ground truth (one Figure 14 cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMatchStats {
    /// Ground-truth episodes considered.
    pub episodes: usize,
    /// Episodes with at least one mirrored packet inside (± tolerance).
    pub detected: usize,
    /// Mean distinct flows captured per detected episode.
    pub mean_flows_captured: f64,
}

impl EventMatchStats {
    /// Recall = detected / episodes (1.0 for an empty set).
    pub fn recall(&self) -> f64 {
        if self.episodes == 0 {
            1.0
        } else {
            self.detected as f64 / self.episodes as f64
        }
    }
}

/// The analyzer: a store of host reports and mirrored packets plus the
/// sketch configuration needed to reconstruct curves.
///
/// ```
/// use umon::{Analyzer, HostAgent, HostAgentConfig};
///
/// let config = HostAgentConfig::default();
/// let mut agent = HostAgent::new(0, config.clone());
/// agent.observe(5, 10 << 13, 1000); // flow 5, window 10, 1 kB
/// agent.observe(5, 12 << 13, 2000);
///
/// let mut analyzer = Analyzer::new(config.sketch.clone());
/// analyzer.add_reports(agent.finish());
/// let curve = analyzer.flow_curve(0, 5).expect("flow was measured");
/// assert_eq!(curve.at(10), 1000.0);
/// assert_eq!(curve.at(11), 0.0);
/// assert_eq!(curve.at(12), 2000.0);
/// ```
pub struct Analyzer {
    sketch_config: SketchConfig,
    /// Host reports keyed by host, then by period — the map deduplicates
    /// redelivered periods and keeps reconstruction inputs period-ordered no
    /// matter how the collection plane reordered arrivals. Under a bounded
    /// [`RetentionPolicy`] this is the resident set only (hot + compacted);
    /// evicted periods live in the archive, if any.
    reports: HashMap<usize, BTreeMap<u64, PeriodReport>>,
    /// Ingest-time query index over `reports`; updated exactly when a report
    /// is accepted, so it stays coherent under dedup, quarantine and
    /// out-of-order delivery. Only hot-tier periods are indexed; compacted
    /// periods are deindexed and queries fall back to a linear period scan.
    index: QueryIndex,
    /// The memory budget driving compaction and eviction.
    retention: RetentionPolicy,
    /// Per-host tier floors (monotone; see [`TierFloors`]).
    floors: HashMap<usize, TierFloors>,
    /// Cumulative retention accounting.
    retention_stats: RetentionStats,
    /// Crash-safe on-disk period archive. Every accepted report is appended
    /// here *before* it becomes queryable (write-ahead), so eviction is a
    /// pure in-memory drop and a crash can lose at most one segment tail.
    archive: Option<PeriodArchive>,
    /// The queryable cold tier over the archive: a byte-location index of
    /// every archived record plus a bounded segment cache. Present exactly
    /// when `archive` is. Queries fall through hot → compacted → cold, so
    /// with an archive eviction is a latency budget, not a data-loss
    /// budget.
    cold: Option<ColdStore>,
    /// Suppresses archive appends while replaying the archive itself
    /// ([`Self::recover_from_archive`]), so recovery never duplicates
    /// records.
    recovering: bool,
    /// All mirrored packets. Intentionally retained unbounded: positions in
    /// this list are referenced by [`Self::mirror_index`], so eviction would
    /// invalidate the index, and mirror volume is bounded by the switch
    /// agents' sampling rate rather than by time alone. Long-running
    /// deployments restart the mirror plane per epoch.
    mirrors: Vec<MirroredPacket>,
    /// Per-`(switch, vlan)` positions into [`Self::mirrors`], each list
    /// sorted by timestamp (ties in arrival order — what a stable sort of
    /// the flat list produced before this index existed). Maintained on
    /// ingest so event queries stop re-bucketing and re-sorting every
    /// mirror. Retained alongside `mirrors` (same lifetime, same bound).
    mirror_index: BTreeMap<(usize, u16), Vec<usize>>,
    /// Mirror batch numbers already accepted, per switch: a contiguous-ack
    /// watermark plus a bounded out-of-order tail, not an ever-growing set.
    mirror_batches_seen: HashMap<usize, SeqWindow>,
    /// Redelivered mirror batches dropped.
    mirror_duplicates: u64,
    /// Cumulative report-ingestion accounting.
    stats: IngestStats,
    /// The most recent mismatched reports, kept for postmortems: a ring of
    /// the last [`QUARANTINE_CAP`] arrivals, oldest evicted first.
    quarantine: VecDeque<PeriodReport>,
    /// Collector-reported lost uploads per host. Bounded by the number of
    /// hosts, not by time.
    known_lost: HashMap<usize, u64>,
}

/// Mismatched reports retained for inspection before old ones are evicted.
const QUARANTINE_CAP: usize = 64;

/// Out-of-order tolerance for mirror batch sequence numbers, per switch.
/// Batches more than this many sequence numbers behind the newest seen are
/// treated as duplicates (the dedup window has moved past them).
const MIRROR_BATCH_HORIZON: usize = 1024;

/// What [`Analyzer::recover_from_archive`] found and replayed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Archived reports re-accepted into the store.
    pub recovered: u64,
    /// Archived records skipped: already resident, or below the eviction
    /// floor the replay itself advanced (their periods aged out again).
    pub skipped: u64,
    /// Archived records whose config fingerprint no longer matches
    /// (quarantined, as on live ingest).
    pub mismatched: u64,
    /// Hosts whose segment had a damaged (truncated or corrupt) tail; the
    /// intact prefix was still recovered.
    pub damaged_tails: Vec<usize>,
    /// Per-segment damage detail (how many records each torn tail lost),
    /// parallel in host order to `damaged_tails`. Feed this to
    /// [`Analyzer::backfill_requests`] to ask the affected hosts to
    /// re-upload what the tear lost.
    pub torn_tails: Vec<TornTail>,
}

impl Analyzer {
    /// Creates an analyzer that reconstructs against `sketch_config` (must
    /// match the host agents' configuration). Retention is unbounded — the
    /// pre-retention behavior; long-running deployments should use
    /// [`Self::with_retention`] or [`Self::with_archive`].
    pub fn new(sketch_config: SketchConfig) -> Self {
        Self::with_retention(sketch_config, RetentionPolicy::UNBOUNDED)
    }

    /// An analyzer with an explicit memory budget; see [`RetentionPolicy`].
    pub fn with_retention(sketch_config: SketchConfig, retention: RetentionPolicy) -> Self {
        Self {
            sketch_config,
            reports: HashMap::new(),
            index: QueryIndex::default(),
            retention,
            floors: HashMap::new(),
            retention_stats: RetentionStats::default(),
            archive: None,
            cold: None,
            recovering: false,
            mirrors: Vec::new(),
            mirror_index: BTreeMap::new(),
            mirror_batches_seen: HashMap::new(),
            mirror_duplicates: 0,
            stats: IngestStats::default(),
            quarantine: VecDeque::new(),
            known_lost: HashMap::new(),
        }
    }

    /// An analyzer with a memory budget *and* a crash-safe on-disk archive
    /// rooted at `dir`. Every accepted report is archived before it becomes
    /// queryable, so evicted periods survive on disk and a restarted
    /// analyzer recovers them with [`Self::recover_from_archive`].
    pub fn with_archive(
        sketch_config: SketchConfig,
        retention: RetentionPolicy,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<Self> {
        let mut a = Self::with_retention(sketch_config, retention);
        a.archive = Some(PeriodArchive::open(&dir)?);
        a.cold = Some(ColdStore::new(
            dir.as_ref().to_path_buf(),
            retention.cold_cache_bytes,
        ));
        Ok(a)
    }

    /// Replays the archive this analyzer writes to, re-accepting every
    /// intact record (the crash-recovery path: construct with
    /// [`Self::with_archive`] over the surviving directory, then call this).
    /// Records replay sorted by `(host, period)`, so retention enforcement
    /// re-evicts periods past the policy's horizon as the replay advances —
    /// the recovered analyzer converges to the same resident set, and
    /// bit-identical curves, as one that never crashed. Appends are
    /// suppressed during the replay, so recovery never duplicates archive
    /// records. No-op without an archive.
    pub fn recover_from_archive(&mut self) -> std::io::Result<RecoveryStats> {
        let Some(dir) = self.archive.as_ref().map(|a| a.dir().to_path_buf()) else {
            return Ok(RecoveryStats::default());
        };
        let scan = PeriodArchive::scan(&dir)?;
        // Truncate torn tails back to the intact prefix so post-recovery
        // appends — including the backfilled re-uploads of what the tear
        // lost — extend a clean segment instead of hiding behind
        // unreachable bytes.
        if let Some(archive) = self.archive.as_mut() {
            archive.truncate_damage(&scan)?;
        }
        for t in &scan.torn_tails {
            self.retention_stats.torn_tail_records += t.lost_records;
            eprintln!(
                "umon: archive segment for host {} lost {} record(s) ({} bytes) \
                 to a torn tail; backfill needed",
                t.host, t.lost_records, t.lost_bytes
            );
        }
        // Index every intact record's location for the cold tier before the
        // replay: records the replay re-evicts (or skips as stale) stay
        // queryable from disk.
        let expected = self.sketch_config.fingerprint();
        if let Some(cold) = self.cold.as_mut() {
            for (r, loc) in scan.reports.iter().zip(&scan.locs) {
                if r.config_fingerprint == expected {
                    cold.record(r.host, r.period, *loc);
                }
            }
        }
        self.recovering = true;
        let stats = self.add_reports(scan.reports);
        self.recovering = false;
        Ok(RecoveryStats {
            recovered: stats.accepted,
            skipped: stats.duplicates,
            mismatched: stats.mismatched,
            damaged_tails: scan.damaged_tails,
            torn_tails: scan.torn_tails,
        })
    }

    /// Ingests period reports, one host or many mixed.
    ///
    /// Reports built under a different sketch configuration are quarantined
    /// (counted in [`IngestStats::mismatched`], the most recent kept for
    /// inspection) instead of poisoning the batch; redelivered periods are
    /// dropped as duplicates. Never panics — the collection plane delivers
    /// whatever the network did to it.
    pub fn add_reports(&mut self, reports: Vec<PeriodReport>) -> IngestStats {
        let expected = self.sketch_config.fingerprint();
        let mut batch = IngestStats::default();
        for r in reports {
            if r.config_fingerprint != expected {
                batch.mismatched += 1;
                if self.quarantine.len() >= QUARANTINE_CAP {
                    self.quarantine.pop_front();
                }
                self.quarantine.push_back(r);
                continue;
            }
            let floors = self.floors.get(&r.host).copied().unwrap_or_default();
            if r.period < floors.evict_floor {
                // Below the eviction floor the report can never become
                // resident, but with an archive the cold index *can* tell a
                // stale first delivery from a redelivery of an evicted
                // period: first deliveries are archived (immediately
                // queryable from the cold tier), redeliveries are dropped.
                // Without an archive the two are indistinguishable, so
                // everything is dropped as before.
                let mut archived_first = false;
                if !self.recovering {
                    if let (Some(archive), Some(cold)) = (self.archive.as_mut(), self.cold.as_mut())
                    {
                        if !cold.contains(r.host, r.period) {
                            match archive.append(&r) {
                                Ok(loc) => {
                                    cold.record(r.host, r.period, loc);
                                    archived_first = true;
                                }
                                Err(_) => self.retention_stats.archive_errors += 1,
                            }
                        }
                    }
                }
                if archived_first {
                    self.retention_stats.stale_archived += 1;
                    batch.accepted += 1;
                } else {
                    batch.duplicates += 1;
                    self.retention_stats.stale_dropped += 1;
                }
                continue;
            }
            let host = r.host;
            let mut accepted = false;
            match self.reports.entry(host).or_default().entry(r.period) {
                std::collections::btree_map::Entry::Occupied(_) => batch.duplicates += 1,
                std::collections::btree_map::Entry::Vacant(v) => {
                    // Write-ahead: archive before the report becomes
                    // queryable, so eviction never races a missing record.
                    // The archive record keeps full fidelity even when the
                    // lossy floor trims the resident copy below.
                    if !self.recovering {
                        if let Some(archive) = self.archive.as_mut() {
                            match archive.append(&r) {
                                Ok(loc) => {
                                    if let Some(cold) = self.cold.as_mut() {
                                        cold.record(host, r.period, loc);
                                    }
                                }
                                Err(_) => self.retention_stats.archive_errors += 1,
                            }
                        }
                    }
                    if r.period >= floors.hot_floor {
                        self.index.index_report(host, &r, &self.sketch_config);
                        v.insert(r);
                    } else {
                        // Arrived already past the hot horizon: store it
                        // compacted (resident, never indexed).
                        self.index.ensure_host(host);
                        self.retention_stats.compacted_on_arrival += 1;
                        let mut r = r;
                        if let Some(keep) = self.retention.lossy_floor {
                            self.retention_stats.lossy_trimmed_details +=
                                trim_details(&mut r.report, keep);
                        }
                        v.insert(r);
                    }
                    batch.accepted += 1;
                    accepted = true;
                }
            }
            if accepted {
                self.enforce_retention(host);
            }
        }
        self.enforce_cached_budget();
        self.stats.absorb(batch);
        batch
    }

    /// Raises `host`'s tier floors to track its newest stored period, then
    /// compacts/evicts the periods the raise uncovered. No-ops entirely
    /// under the default unbounded policy (the floors stay at 0).
    fn enforce_retention(&mut self, host: usize) {
        let Some(store) = self.reports.get(&host) else {
            return;
        };
        let Some((&newest, _)) = store.last_key_value() else {
            return;
        };
        let floors = self.floors.entry(host).or_default();
        let prev = floors.raise(newest, &self.retention);
        let (hot_floor, evict_floor) = (floors.hot_floor, floors.evict_floor);
        if evict_floor > prev.evict_floor {
            let store = self.reports.get_mut(&host).expect("checked above");
            let doomed: Vec<u64> = store
                .range(prev.evict_floor..evict_floor)
                .map(|(&p, _)| p)
                .collect();
            for p in doomed {
                let r = store.remove(&p).expect("just enumerated");
                // The period may still be hot (small resident horizons);
                // deindexing is a no-op if it was already compacted.
                self.index.deindex_period(host, &r, &self.sketch_config);
                self.retention_stats.evicted_periods += 1;
            }
        }
        let compact_from = prev.hot_floor.max(evict_floor);
        if hot_floor > compact_from {
            let store = self.reports.get_mut(&host).expect("checked above");
            let doomed: Vec<u64> = store
                .range(compact_from..hot_floor)
                .map(|(&p, _)| p)
                .collect();
            let mut compacted = 0u64;
            for p in doomed {
                let r = store.get_mut(&p).expect("just enumerated");
                // Deindex against the untrimmed report (the index entries
                // were built from it), then trim the resident copy if the
                // lossy floor is on — the archive already holds the full
                // record, so this trades resident memory for compacted-tier
                // accuracy, never data.
                if self.index.deindex_period(host, r, &self.sketch_config) {
                    compacted += 1;
                }
                if let Some(keep) = self.retention.lossy_floor {
                    self.retention_stats.lossy_trimmed_details += trim_details(&mut r.report, keep);
                }
            }
            self.retention_stats.compacted_periods += compacted;
        }
    }

    /// Compacts the globally oldest hot periods until the cached-bytes
    /// budget is respected, raising the victims' hot floors so re-ingest
    /// of the same periods cannot thrash.
    fn enforce_cached_budget(&mut self) {
        let Some(budget) = self.retention.max_cached_bytes else {
            return;
        };
        while self.index.cached_bytes() > budget {
            let Some((p, h)) = self.index.oldest_indexed() else {
                break;
            };
            let r = self
                .reports
                .get(&h)
                .and_then(|m| m.get(&p))
                .expect("indexed periods are resident");
            self.index.deindex_period(h, r, &self.sketch_config);
            let floors = self.floors.entry(h).or_default();
            floors.hot_floor = floors.hot_floor.max(p + 1);
            self.retention_stats.compacted_periods += 1;
        }
    }

    /// Cumulative ingestion accounting since construction.
    pub fn ingest_stats(&self) -> IngestStats {
        self.stats
    }

    /// The retention policy this analyzer runs under.
    pub fn retention_policy(&self) -> &RetentionPolicy {
        &self.retention
    }

    /// Cumulative retention accounting since construction, including the
    /// cold tier's read counters (the latency side of the cold-read
    /// contract: archive records are immutable, so cold answers are never
    /// stale — they just cost `cold_read_ns` of disk time).
    pub fn retention_stats(&self) -> RetentionStats {
        let mut s = self.retention_stats;
        if let Some(cold) = &self.cold {
            let c = cold.stats();
            s.cold_hits = c.hits;
            s.cold_misses = c.misses;
            s.cold_bytes_read = c.bytes_read;
            s.cold_read_ns = c.read_ns;
            s.cold_read_errors = c.errors;
        }
        s
    }

    /// A point-in-time snapshot of resident state — what the retention soak
    /// asserts stays bounded. Walks the resident set (`O(resident)`), so
    /// call it at checkpoints, not per query.
    pub fn residency(&self) -> ResidencySnapshot {
        ResidencySnapshot {
            resident_periods: self.reports.values().map(|m| m.len()).sum(),
            hot_periods: self.index.indexed_periods(),
            cached_bytes: self.index.cached_bytes(),
            resident_report_bytes: self
                .reports
                .values()
                .flat_map(|m| m.values())
                .map(|r| r.report.wire_bytes())
                .sum(),
        }
    }

    /// The most recently quarantined (fingerprint-mismatched) reports,
    /// oldest first.
    pub fn quarantined(&self) -> &VecDeque<PeriodReport> {
        &self.quarantine
    }

    /// Records how many of `host`'s uploads the collection plane knows were
    /// lost (sequence gaps). Surfaced through [`PeriodCoverage::known_lost`]
    /// on every curve reconstructed for that host.
    pub fn set_known_lost(&mut self, host: usize, lost: u64) {
        if lost == 0 {
            self.known_lost.remove(&host);
        } else {
            self.known_lost.insert(host, lost);
        }
    }

    /// Which of `host`'s upload periods this analyzer holds.
    pub fn host_coverage(&self, host: usize) -> PeriodCoverage {
        let evict_floor = self.floors.get(&host).map_or(0, |f| f.evict_floor);
        PeriodCoverage {
            periods: self
                .reports
                .get(&host)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default(),
            archived: self
                .cold
                .as_ref()
                .map(|c| c.archived_below(host, evict_floor))
                .unwrap_or_default(),
            known_lost: self.known_lost.get(&host).copied().unwrap_or(0),
        }
    }

    /// After a crash recovery: which hosts should re-upload, and from which
    /// period on. A host needs backfill if its archive segment lost records
    /// to a torn tail (`recovery.damaged_tails`) or the collection plane
    /// knows uploads were lost (`known_lost`). `after_period` is the newest
    /// period the analyzer still holds for the host (resident or archived)
    /// — everything newer is gone and should be replayed; `None` means the
    /// analyzer holds nothing for the host. Deliver the requests over the
    /// collection plane's control channel and answer them with
    /// [`HostUplink::backfill`](crate::collector::HostUplink::backfill);
    /// the re-uploads dedup through the normal collector path.
    pub fn backfill_requests(&self, recovery: &RecoveryStats) -> Vec<BackfillRequest> {
        let mut hosts: BTreeSet<usize> = recovery.damaged_tails.iter().copied().collect();
        hosts.extend(self.known_lost.keys().copied());
        hosts
            .into_iter()
            .map(|host| {
                let resident = self
                    .reports
                    .get(&host)
                    .and_then(|m| m.last_key_value())
                    .map(|(&p, _)| p);
                let archived = self.cold.as_ref().and_then(|c| c.newest_archived(host));
                BackfillRequest {
                    host,
                    after_period: resident.max(archived),
                }
            })
            .collect()
    }

    /// Ingests mirrored packets from a switch agent.
    pub fn add_mirrors(&mut self, mirrors: Vec<MirroredPacket>) {
        for m in mirrors {
            self.index_mirror(m);
        }
    }

    /// Ingests a sequence-numbered mirror batch, dropping redelivered batch
    /// numbers. Returns `true` if the batch was new. Dedup state is a
    /// per-switch [`SeqWindow`], so it stays bounded no matter how long the
    /// analyzer runs; a batch delivered more than [`MIRROR_BATCH_HORIZON`]
    /// sequence numbers late is dropped as a duplicate.
    pub fn add_mirror_batch(&mut self, batch: MirrorBatch) -> bool {
        let seen = self
            .mirror_batches_seen
            .entry(batch.switch)
            .or_insert_with(|| SeqWindow::new(MIRROR_BATCH_HORIZON));
        if !seen.insert(batch.seq) {
            self.mirror_duplicates += 1;
            return false;
        }
        for m in batch.packets {
            self.index_mirror(m);
        }
        true
    }

    /// Appends one mirror and files its position in the per-port index at
    /// its timestamp-sorted slot. Inserting after all equal timestamps keeps
    /// ties in arrival order — the same order the stable per-query sort this
    /// index replaced would have produced.
    fn index_mirror(&mut self, m: MirroredPacket) {
        let list = self.mirror_index.entry((m.switch, m.vlan)).or_default();
        let pos = list.partition_point(|&j| self.mirrors[j].ts_ns <= m.ts_ns);
        list.insert(pos, self.mirrors.len());
        self.mirrors.push(m);
    }

    /// Redelivered mirror batches dropped so far.
    pub fn mirror_duplicates(&self) -> u64 {
        self.mirror_duplicates
    }

    /// All mirrored packets seen so far.
    pub fn mirrors(&self) -> &[MirroredPacket] {
        &self.mirrors
    }

    /// Reconstructs the rate curve of `flow_id` as measured at `host`.
    ///
    /// Heavy-part records are collision-free and used directly; otherwise
    /// the light part is reconstructed with heavy-flow subtraction, taking
    /// the minimum-total row (the Count-Min query lifted to curves).
    ///
    /// Allocating convenience wrapper over [`Self::flow_curve_with`] — query
    /// loops should hold a [`QueryScratch`] and call that instead.
    pub fn flow_curve(&self, host: usize, flow_id: u64) -> Option<WindowSeries> {
        let mut scratch = QueryScratch::new();
        self.flow_curve_with(host, flow_id, &mut scratch).cloned()
    }

    /// [`Self::flow_curve`] through a reusable [`QueryScratch`]: all lookups
    /// go through the ingest-time index and all curve arithmetic runs in the
    /// scratch's buffers, so a warm scratch makes repeated queries
    /// allocation-free. The returned series borrows the scratch and is valid
    /// until its next use.
    pub fn flow_curve_with<'a>(
        &self,
        host: usize,
        flow_id: u64,
        scratch: &'a mut QueryScratch,
    ) -> Option<&'a WindowSeries> {
        let floors = self.floors.get(&host).copied().unwrap_or_default();
        let hot_floor = floors.hot_floor;
        // Cold tier first: fetch every archived-only period once, before
        // the two-pass epoch walks below, so both passes see identical
        // epochs (and the fetch's `&mut` borrow ends before the closures
        // capture the scratch).
        match &self.cold {
            Some(c) => c.fetch_below(host, floors.evict_floor, &mut scratch.cold),
            None => scratch.cold.clear(),
        }
        let empty_store = BTreeMap::new();
        let empty_hidx = HostIndex::default();
        if !self.reports.contains_key(&host)
            && self.index.host(host).is_none()
            && scratch.cold.is_empty()
        {
            return None;
        }
        let store = self.reports.get(&host).unwrap_or(&empty_store);
        let hidx = self.index.host(host).unwrap_or(&empty_hidx);
        let key = FlowKey::from_id(flow_id);
        let packed: [u8; 13] = key.pack();

        // Split borrows: every buffer the query touches, carved out of the
        // scratch once so tier visitors can borrow them independently.
        let QueryScratch {
            light_best,
            light_cand,
            heavy_sub,
            heavy,
            starts,
            light_at,
            recon,
            cold,
            ..
        } = scratch;
        let cold: &[Rc<PeriodReport>] = cold;

        // Heavy path: concatenate heavy records across periods. Cold
        // periods (read back from the archive, all strictly older than the
        // eviction floor) come first, then compacted periods (older than
        // the hot floor) scanned from the store in period order, then hot
        // refs — epochs concatenate chronologically even when uploads
        // arrived shuffled, and the float-addition order matches the
        // all-hot (and pre-index, and unbounded) path exactly. The heavy
        // bucket is exact within its epochs but misses any history from
        // before the flow's election, so it is overlaid onto the light-part
        // estimate rather than used alone.
        let heavy_refs = hidx.heavy.get(&packed).map_or(&[][..], Vec::as_slice);
        let has_heavy = series_from_epochs(
            |f| {
                for pr in cold {
                    for (k, brs) in &pr.report.heavy {
                        if k.as_slice() == packed.as_slice() {
                            for r in brs {
                                f(Epoch::Raw(r));
                            }
                        }
                    }
                }
                for (_, pr) in store.range(..hot_floor) {
                    for (k, brs) in &pr.report.heavy {
                        if k.as_slice() == packed.as_slice() {
                            for r in brs {
                                f(Epoch::Raw(r));
                            }
                        }
                    }
                }
                visit_refs(
                    heavy_refs,
                    |p, i| hidx.heavy_entry(p, i).map(|(_, ces)| ces.as_slice()),
                    f,
                );
            },
            heavy,
            recon,
        );
        if has_heavy {
            // Each heavy epoch's opening window may be partial (the flow's
            // packets in that window before it took the slot were counted
            // light-only): keep the larger source there. Both upper-bound
            // the truth. Collected in the same tier order as the epochs.
            starts.clear();
            for pr in cold {
                for (k, brs) in &pr.report.heavy {
                    if k.as_slice() == packed.as_slice() {
                        starts.extend(brs.iter().map(|r| r.w0));
                    }
                }
            }
            for (_, pr) in store.range(..hot_floor) {
                for (k, brs) in &pr.report.heavy {
                    if k.as_slice() == packed.as_slice() {
                        starts.extend(brs.iter().map(|r| r.w0));
                    }
                }
            }
            for &(p, i) in heavy_refs {
                if let Some((_, ces)) = hidx.heavy_entry(p, i) {
                    starts.extend(ces.iter().map(|e| e.w0));
                }
            }
            if !self.light_with_subtraction_into(
                cold, store, hot_floor, hidx, &key, &packed, light_best, light_cand, heavy_sub,
                recon,
            ) {
                return Some(heavy);
            }
            light_at.clear();
            for &w in starts.iter() {
                light_at.push(light_best.at(w));
            }
            light_best.overlay(heavy);
            for (&w, &lv) in starts.iter().zip(light_at.iter()) {
                // A heavy epoch can start before the light series when the
                // covering light period was lost in collection — extend the
                // series instead of underflowing the index.
                light_best.extend_to_cover(w);
                let idx = (w - light_best.start_window) as usize;
                light_best.values[idx] = light_best.values[idx].max(lv);
            }
            return Some(light_best);
        }

        self.light_with_subtraction_into(
            cold, store, hot_floor, hidx, &key, &packed, light_best, light_cand, heavy_sub, recon,
        )
        .then_some(light_best)
    }

    /// [`Self::flow_curve`] plus the period coverage the curve was built
    /// under, so downstream analyses (event clustering, gap detection) can
    /// distinguish "the flow sent nothing" from "the reports never arrived".
    pub fn flow_curve_with_coverage(&self, host: usize, flow_id: u64) -> Option<AnnotatedCurve> {
        let series = self.flow_curve(host, flow_id)?;
        Some(AnnotatedCurve {
            series,
            coverage: self.host_coverage(host),
        })
    }

    /// Light-part reconstruction with heavy-flow subtraction, min-total over
    /// rows (the Count-Min query lifted to curves). On `true` the winning
    /// row's series is in `light_best`. Each row visits the cold tier
    /// (archive read-back), then the compacted tier (raw store scan, sparse
    /// reconstruction), then the hot refs; all three use bit-identical
    /// accumulation, so neither compaction nor eviction-to-archive ever
    /// moves a row's total or the min-row choice.
    #[allow(clippy::too_many_arguments)] // split borrows of one scratch
    fn light_with_subtraction_into(
        &self,
        cold: &[Rc<PeriodReport>],
        store: &BTreeMap<u64, PeriodReport>,
        hot_floor: u64,
        hidx: &HostIndex,
        key: &FlowKey,
        packed: &[u8; 13],
        light_best: &mut WindowSeries,
        light_cand: &mut WindowSeries,
        heavy_sub: &mut WindowSeries,
        recon: &mut ReconstructScratch,
    ) -> bool {
        let cfg = &self.sketch_config;
        let mut has_best = false;
        for row in 0..cfg.rows {
            let col = cfg.light_col(key, row) as u32;
            let light_refs = hidx
                .light
                .get(&(row as u32, col))
                .map_or(&[][..], Vec::as_slice);
            if !series_from_epochs(
                |f| {
                    for pr in cold {
                        for (r0, c0, brs) in &pr.report.light {
                            if *r0 == row as u32 && *c0 == col {
                                for r in brs {
                                    f(Epoch::Raw(r));
                                }
                            }
                        }
                    }
                    for (_, pr) in store.range(..hot_floor) {
                        for (r0, c0, brs) in &pr.report.light {
                            if *r0 == row as u32 && *c0 == col {
                                for r in brs {
                                    f(Epoch::Raw(r));
                                }
                            }
                        }
                    }
                    visit_refs(light_refs, |p, i| hidx.light_curves(p, i), f);
                },
                light_cand,
                recon,
            ) {
                continue;
            }
            // Heavy flows that share this light bucket inflated it; the
            // index pre-resolved hot-tier columns, so the only per-query
            // work there is skipping the queried flow's own records. In the
            // compacted tier the columns are re-derived from the stored key
            // (stack-only work — the fallback trades speed, not memory).
            let heavy_refs = hidx
                .heavy_by_col
                .get(&(row as u32, col))
                .map_or(&[][..], Vec::as_slice);
            let colliding = series_from_epochs(
                |f| {
                    for pr in cold {
                        for (k, brs) in &pr.report.heavy {
                            if k.as_slice() == packed.as_slice() {
                                continue;
                            }
                            if cfg.light_col(&unpack_key(k), row) as u32 == col {
                                for r in brs {
                                    f(Epoch::Raw(r));
                                }
                            }
                        }
                    }
                    for (_, pr) in store.range(..hot_floor) {
                        for (k, brs) in &pr.report.heavy {
                            if k.as_slice() == packed.as_slice() {
                                continue;
                            }
                            if cfg.light_col(&unpack_key(k), row) as u32 == col {
                                for r in brs {
                                    f(Epoch::Raw(r));
                                }
                            }
                        }
                    }
                    visit_refs(
                        heavy_refs,
                        |p, i| {
                            let (k, ces) = hidx.heavy_entry(p, i)?;
                            (k != packed).then_some(ces.as_slice())
                        },
                        f,
                    );
                },
                heavy_sub,
                recon,
            );
            if colliding {
                light_cand.subtract_clamped(heavy_sub);
            }
            if !has_best || light_cand.total() < light_best.total() {
                std::mem::swap(light_best, light_cand);
                has_best = true;
            }
        }
        has_best
    }

    /// Clusters mirrored packets into detected events: per (switch, VLAN),
    /// packets closer than `gap_ns` belong to the same event.
    pub fn cluster_events(&self, gap_ns: u64) -> Vec<DetectedEvent> {
        let mut events = Vec::new();
        for (&(switch, vlan), positions) in &self.mirror_index {
            let mut cur: Option<DetectedEvent> = None;
            for &j in positions {
                let m = &self.mirrors[j];
                match cur.as_mut() {
                    Some(ev) if m.ts_ns.saturating_sub(ev.end_ns) <= gap_ns => {
                        ev.end_ns = m.ts_ns;
                        ev.flows.insert(m.flow);
                        ev.packets += 1;
                    }
                    _ => {
                        if let Some(done) = cur.take() {
                            events.push(done);
                        }
                        cur = Some(DetectedEvent {
                            switch,
                            vlan,
                            start_ns: m.ts_ns,
                            end_ns: m.ts_ns,
                            flows: BTreeSet::from([m.flow]),
                            packets: 1,
                        });
                    }
                }
            }
            if let Some(done) = cur.take() {
                events.push(done);
            }
        }
        events
    }

    /// Evaluates detection against ground-truth episodes whose max queue
    /// length falls in `[qlen_min, qlen_max)` bytes. An episode counts as
    /// detected if any mirrored packet from the same switch/port lands
    /// within its span extended by `tolerance_ns` on both sides (absorbing
    /// clock offsets and the marking-to-egress delay).
    pub fn match_episodes(
        &self,
        episodes: &[QueueEpisode],
        qlen_min: u32,
        qlen_max: u32,
        tolerance_ns: u64,
    ) -> EventMatchStats {
        let mut considered = 0usize;
        let mut detected = 0usize;
        let mut flows_sum = 0usize;
        for ep in episodes {
            if ep.max_qlen < qlen_min || ep.max_qlen >= qlen_max {
                continue;
            }
            considered += 1;
            let vlan = ep.port as u16 + 1;
            let lo = ep.start_ns.saturating_sub(tolerance_ns);
            let hi = ep.end_ns + tolerance_ns;
            if let Some(positions) = self.mirror_index.get(&(ep.switch, vlan)) {
                // The per-port index is timestamp-sorted: binary-search the
                // episode's span instead of filtering every mirror.
                let from = positions.partition_point(|&j| self.mirrors[j].ts_ns < lo);
                let to = positions.partition_point(|&j| self.mirrors[j].ts_ns <= hi);
                let inside: BTreeSet<u64> = positions[from..to]
                    .iter()
                    .map(|&j| self.mirrors[j].flow)
                    .collect();
                if !inside.is_empty() {
                    detected += 1;
                    flows_sum += inside.len();
                }
            }
        }
        EventMatchStats {
            episodes: considered,
            detected,
            mean_flows_captured: if detected == 0 {
                0.0
            } else {
                flows_sum as f64 / detected as f64
            },
        }
    }

    /// The host's total egress rate curve, reconstructed from its reports
    /// alone: every packet lands in exactly one bucket per light row, so the
    /// sum of one row's bucket reconstructions is the host's aggregate
    /// traffic (heavy flows are counted in the light part too — §4.2's
    /// simultaneous update — so no heavy-part term is needed).
    pub fn host_rate_curve(&self, host: usize) -> Option<WindowSeries> {
        let mut scratch = QueryScratch::new();
        self.host_rate_curve_with(host, &mut scratch).cloned()
    }

    /// [`Self::host_rate_curve`] through a reusable [`QueryScratch`]; see
    /// [`Self::flow_curve_with`] for the borrowing rules.
    pub fn host_rate_curve_with<'a>(
        &self,
        host: usize,
        scratch: &'a mut QueryScratch,
    ) -> Option<&'a WindowSeries> {
        let floors = self.floors.get(&host).copied().unwrap_or_default();
        let hot_floor = floors.hot_floor;
        match &self.cold {
            Some(c) => c.fetch_below(host, floors.evict_floor, &mut scratch.cold),
            None => scratch.cold.clear(),
        }
        let empty_store = BTreeMap::new();
        let empty_hidx = HostIndex::default();
        if !self.reports.contains_key(&host)
            && self.index.host(host).is_none()
            && scratch.cold.is_empty()
        {
            return None;
        }
        let store = self.reports.get(&host).unwrap_or(&empty_store);
        let hidx = self.index.host(host).unwrap_or(&empty_hidx);
        let QueryScratch {
            rate, recon, cold, ..
        } = scratch;
        let cold: &[Rc<PeriodReport>] = cold;
        // Accumulation sums overlapping epochs — exactly what aggregating
        // different buckets over the same timeline needs. Cold periods
        // first (archive read-back, row-0 entries in period order), then
        // compacted periods, then the hot refs.
        series_from_epochs(
            |f| {
                for pr in cold {
                    for (row, _, brs) in &pr.report.light {
                        if *row == 0 {
                            for r in brs {
                                f(Epoch::Raw(r));
                            }
                        }
                    }
                }
                for (_, pr) in store.range(..hot_floor) {
                    for (row, _, brs) in &pr.report.light {
                        if *row == 0 {
                            for r in brs {
                                f(Epoch::Raw(r));
                            }
                        }
                    }
                }
                visit_refs(&hidx.row0, |p, i| hidx.light_curves(p, i), f);
            },
            rate,
            recon,
        )
        .then_some(rate)
    }

    /// The Figure 10a congestion map: per link (switch, VLAN), the list of
    /// detected event time spans, sorted by event count descending — the
    /// operator's "which links hurt" view.
    pub fn congestion_map(&self, gap_ns: u64) -> CongestionMap {
        let mut per_link: BTreeMap<(usize, u16), Vec<(u64, u64)>> = BTreeMap::new();
        for e in self.cluster_events(gap_ns) {
            per_link
                .entry((e.switch, e.vlan))
                .or_default()
                .push((e.start_ns, e.end_ns));
        }
        let mut out: Vec<_> = per_link.into_iter().collect();
        out.sort_by_key(|(_, spans)| std::cmp::Reverse(spans.len()));
        out
    }

    /// The Figure 10b duration distribution: sorted event durations in ns
    /// with their empirical CDF.
    pub fn duration_cdf(&self, gap_ns: u64) -> Vec<(u64, f64)> {
        let mut durations: Vec<u64> = self
            .cluster_events(gap_ns)
            .iter()
            .map(DetectedEvent::duration_ns)
            .collect();
        durations.sort_unstable();
        let n = durations.len() as f64;
        durations
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, (i + 1) as f64 / n))
            .collect()
    }

    /// Event replay (Figure 10c): the rate curves of the event's flows over
    /// `[event.start − margin, event.end + margin]`, sampled per window.
    /// `host_of_flow` maps a flow to the host that measured it (its source).
    ///
    /// Returns `(window_ids, per-flow curves)` where each curve is
    /// `(flow_id, bytes-per-window values)`.
    pub fn replay_event(
        &self,
        event: &DetectedEvent,
        margin_ns: u64,
        window_shift: u32,
        host_of_flow: impl Fn(u64) -> Option<usize>,
    ) -> (Vec<u64>, Vec<(u64, Vec<f64>)>) {
        let from = event.start_ns.saturating_sub(margin_ns) >> window_shift;
        let to = ((event.end_ns + margin_ns) >> window_shift) + 1;
        let windows: Vec<u64> = (from..to).collect();
        let mut curves = Vec::new();
        for &flow in &event.flows {
            let Some(host) = host_of_flow(flow) else {
                continue;
            };
            let Some(series) = self.flow_curve(host, flow) else {
                continue;
            };
            let values: Vec<f64> = windows.iter().map(|&w| series.at(w)).collect();
            curves.push((flow, values));
        }
        (windows, curves)
    }
}

/// Drops all but the `keep` largest-magnitude detail coefficients from every
/// bucket epoch of `report` (the lossy compaction floor,
/// [`RetentionPolicy::lossy_floor`]). Survivors keep their original order;
/// ties break toward the earlier record, so the trim is deterministic.
/// Returns how many details were dropped. Haar approx coefficients are
/// untouched, so block sums — and the curve's total — survive the trim;
/// what degrades is sub-block detail.
fn trim_details(report: &mut SketchReport, keep: usize) -> u64 {
    fn trim_bucket(br: &mut BucketReport, keep: usize) -> u64 {
        let n = br.details.len();
        if n <= keep {
            return 0;
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(br.details[i].val.unsigned_abs()), i));
        idx.truncate(keep);
        idx.sort_unstable();
        br.details = idx.iter().map(|&i| br.details[i]).collect();
        (n - keep) as u64
    }
    let mut dropped = 0u64;
    for (_, brs) in report.heavy.iter_mut() {
        for br in brs {
            dropped += trim_bucket(br, keep);
        }
    }
    for (_, _, brs) in report.light.iter_mut() {
        for br in brs {
            dropped += trim_bucket(br, keep);
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_agent::{HostAgent, HostAgentConfig};
    use wavesketch::BucketReport;

    fn agent_config() -> HostAgentConfig {
        HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 100_000_000,
            window_shift: 13,
        }
    }

    fn mirror(switch: usize, vlan: u16, ts: u64, flow: u64) -> MirroredPacket {
        MirroredPacket {
            switch,
            vlan,
            ts_ns: ts,
            flow,
            psn: 0,
            wire_bytes: 1064,
            orig_bytes: 1000,
        }
    }

    #[test]
    fn flow_curve_roundtrips_through_agent_and_analyzer() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        // Flow 5 sends 1 kB in windows 10, 11 and 20 (ts = window << 13).
        for w in [10u64, 11, 20] {
            agent.observe(5, w << 13, 1000);
        }
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(agent.finish());
        let curve = analyzer.flow_curve(0, 5).expect("flow recorded");
        assert!((curve.at(10) - 1000.0).abs() < 1e-6);
        assert!((curve.at(11) - 1000.0).abs() < 1e-6);
        assert!((curve.at(20) - 1000.0).abs() < 1e-6);
        assert_eq!(curve.at(15), 0.0);
    }

    #[test]
    fn unknown_flow_or_host_is_none() {
        let cfg = agent_config();
        let analyzer = Analyzer::new(cfg.sketch);
        assert!(analyzer.flow_curve(0, 1).is_none());
    }

    #[test]
    fn clustering_splits_on_gaps_and_ports() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        analyzer.add_mirrors(vec![
            mirror(20, 1, 1000, 1),
            mirror(20, 1, 2000, 2),
            mirror(20, 1, 100_000, 1), // > gap → new event
            mirror(20, 2, 1500, 3),    // other port → own event
        ]);
        let events = analyzer.cluster_events(50_000);
        assert_eq!(events.len(), 3);
        let first = events
            .iter()
            .find(|e| e.vlan == 1 && e.start_ns == 1000)
            .unwrap();
        assert_eq!(first.packets, 2);
        assert_eq!(first.flows.len(), 2);
    }

    #[test]
    fn host_rate_curve_sums_all_flows() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        // Three flows in overlapping windows (time-ordered observations).
        agent.observe(1, 10 << 13, 1000);
        agent.observe(2, 10 << 13, 500);
        agent.observe(3, 11 << 13, 700);
        agent.observe(1, 12 << 13, 250);
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(agent.finish());
        let curve = analyzer.host_rate_curve(0).expect("host measured");
        assert!(
            (curve.at(10) - 1500.0).abs() < 1e-6,
            "window 10: {}",
            curve.at(10)
        );
        assert!((curve.at(11) - 700.0).abs() < 1e-6);
        assert!((curve.at(12) - 250.0).abs() < 1e-6);
        assert!((curve.total() - 2450.0).abs() < 1e-6);
        assert!(analyzer.host_rate_curve(5).is_none());
    }

    #[test]
    fn congestion_map_ranks_links_by_event_count() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        // Link (20, 1): two events; link (21, 3): one.
        analyzer.add_mirrors(vec![
            mirror(20, 1, 1_000, 1),
            mirror(20, 1, 200_000, 1),
            mirror(21, 3, 5_000, 2),
        ]);
        let map = analyzer.congestion_map(50_000);
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].0, (20, 1));
        assert_eq!(map[0].1.len(), 2);
        assert_eq!(map[1].0, (21, 3));
    }

    #[test]
    fn duration_cdf_is_monotone_and_complete() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        analyzer.add_mirrors(vec![
            mirror(20, 1, 0, 1),
            mirror(20, 1, 30_000, 1), // 30 μs event
            mirror(20, 2, 0, 2),      // 0-duration event
        ]);
        let cdf = analyzer.duration_cdf(50_000);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].0, 0);
        assert_eq!(cdf[1].0, 30_000);
        assert!((cdf[1].1 - 1.0).abs() < 1e-12);
        assert!(cdf[0].1 <= cdf[1].1);
    }

    #[test]
    fn match_episodes_computes_recall_by_qlen_bin() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        analyzer.add_mirrors(vec![mirror(20, 1, 5_000, 1)]);
        let episodes = vec![
            QueueEpisode {
                switch: 20,
                port: 0,
                start_ns: 4_000,
                end_ns: 6_000,
                max_qlen: 100_000,
            },
            QueueEpisode {
                switch: 20,
                port: 0,
                start_ns: 50_000,
                end_ns: 60_000,
                max_qlen: 120_000,
            },
        ];
        let stats = analyzer.match_episodes(&episodes, 0, u32::MAX, 1_000);
        assert_eq!(stats.episodes, 2);
        assert_eq!(stats.detected, 1);
        assert!((stats.recall() - 0.5).abs() < 1e-12);
        // Binning filters by max queue length.
        let only_big = analyzer.match_episodes(&episodes, 110_000, u32::MAX, 1_000);
        assert_eq!(only_big.episodes, 1);
        assert_eq!(only_big.detected, 0);
    }

    #[test]
    fn tolerance_absorbs_clock_offset() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        // Mirror timestamped 300 ns after the episode end (clock skew).
        analyzer.add_mirrors(vec![mirror(20, 1, 6_300, 1)]);
        let ep = QueueEpisode {
            switch: 20,
            port: 0,
            start_ns: 4_000,
            end_ns: 6_000,
            max_qlen: 50_000,
        };
        let strict = analyzer.match_episodes(&[ep], 0, u32::MAX, 100);
        assert_eq!(strict.detected, 0);
        let tolerant = analyzer.match_episodes(&[ep], 0, u32::MAX, 500);
        assert_eq!(tolerant.detected, 1);
    }

    #[test]
    fn replay_joins_mirrors_with_rate_curves() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        for w in 0..50u64 {
            agent.observe(5, w << 13, 2000);
        }
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(agent.finish());
        let event = DetectedEvent {
            switch: 20,
            vlan: 1,
            start_ns: 20 << 13,
            end_ns: 25 << 13,
            flows: BTreeSet::from([5u64]),
            packets: 3,
        };
        let (windows, curves) = analyzer.replay_event(&event, 2 << 13, 13, |_| Some(0));
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].0, 5);
        assert_eq!(windows.len(), curves[0].1.len());
        // Every replayed window inside the flow's life shows its rate.
        assert!(curves[0].1.iter().all(|&v| (v - 2000.0).abs() < 1e-6));
        assert_eq!(windows[0], 18);
    }

    /// Evidence from several upload periods of one host merges into a
    /// single continuous curve.
    #[test]
    fn flow_curve_merges_reports_across_periods() {
        let mut cfg = agent_config();
        cfg.period_ns = 16 << 13; // 16 windows per upload period
        let mut agent = HostAgent::new(0, cfg.clone());
        agent.observe(7, 2 << 13, 800); // period 0
        agent.observe(7, 20 << 13, 900); // period 1
        agent.observe(7, 37 << 13, 650); // period 2
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(agent.finish());
        let curve = analyzer.flow_curve(0, 7).expect("flow recorded");
        assert!((curve.at(2) - 800.0).abs() < 1e-6);
        assert!((curve.at(20) - 900.0).abs() < 1e-6);
        assert!((curve.at(37) - 650.0).abs() < 1e-6);
        assert_eq!(curve.at(10), 0.0);
    }

    /// Host evidence (rate curves from two different hosts) joins with
    /// switch evidence (a detected event naming both flows).
    #[test]
    fn replay_event_merges_evidence_from_multiple_hosts() {
        let cfg = agent_config();
        let mut a0 = HostAgent::new(0, cfg.clone());
        let mut a1 = HostAgent::new(1, cfg.clone());
        for w in 10..30u64 {
            a0.observe(5, w << 13, 1000);
            a1.observe(6, w << 13, 3000);
        }
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(a0.finish());
        analyzer.add_reports(a1.finish());
        let event = DetectedEvent {
            switch: 20,
            vlan: 1,
            start_ns: 15 << 13,
            end_ns: 18 << 13,
            flows: BTreeSet::from([5u64, 6]),
            packets: 4,
        };
        let host_of = |f: u64| Some(if f == 5 { 0 } else { 1 });
        let (windows, curves) = analyzer.replay_event(&event, 0, 13, host_of);
        assert_eq!(curves.len(), 2);
        let c5 = curves.iter().find(|(f, _)| *f == 5).unwrap();
        let c6 = curves.iter().find(|(f, _)| *f == 6).unwrap();
        assert!(c5.1.iter().all(|&v| (v - 1000.0).abs() < 1e-6));
        assert!(c6.1.iter().all(|&v| (v - 3000.0).abs() < 1e-6));
        assert_eq!(windows.first().copied(), Some(15));
        // A flow whose measuring host is unknown is skipped, not fabricated.
        let (_, partial) = analyzer.replay_event(&event, 0, 13, |f| (f == 5).then_some(0));
        assert_eq!(partial.len(), 1);
    }

    /// Several mirrors inside one ground-truth episode count it as detected
    /// exactly once, with distinct flows (not packets) as the capture count.
    #[test]
    fn overlapping_mirrors_count_an_episode_once_with_distinct_flows() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        analyzer.add_mirrors(vec![
            mirror(20, 1, 4_500, 1),
            mirror(20, 1, 5_000, 1),
            mirror(20, 1, 5_500, 2),
        ]);
        let ep = QueueEpisode {
            switch: 20,
            port: 0,
            start_ns: 4_000,
            end_ns: 6_000,
            max_qlen: 90_000,
        };
        let stats = analyzer.match_episodes(&[ep], 0, u32::MAX, 0);
        assert_eq!(stats.episodes, 1);
        assert_eq!(stats.detected, 1);
        assert!((stats.mean_flows_captured - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_sketch_configs_are_quarantined_not_panicked() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        agent.observe(1, 0, 100);
        let reports = agent.finish();
        // An analyzer built with a different width must refuse the report —
        // but by quarantining it, not by tearing down the whole batch.
        let other = SketchConfig::builder()
            .rows(2)
            .width(64) // differs from the agent's 32
            .levels(4)
            .topk(64)
            .max_windows(4096)
            .heavy_rows(16)
            .build();
        let mut analyzer = Analyzer::new(other);
        let stats = analyzer.add_reports(reports);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.mismatched, 1);
        assert_eq!(analyzer.quarantined().len(), 1);
        assert!(
            analyzer.flow_curve(0, 1).is_none(),
            "nothing reconstructable"
        );
    }

    /// Satellite regression: one corrupt report must not poison the rest of
    /// its batch.
    #[test]
    fn one_corrupt_report_does_not_poison_a_batch() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        agent.observe(5, 10 << 13, 1000);
        let mut reports = agent.finish();
        // Inject a report from a foreign config into the same batch.
        let mut corrupt = reports[0].clone();
        corrupt.config_fingerprint ^= 0xDEAD_BEEF;
        corrupt.period += 1;
        reports.push(corrupt);

        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        let stats = analyzer.add_reports(reports);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.mismatched, 1);
        assert_eq!(analyzer.ingest_stats(), stats);
        // The healthy report still reconstructs.
        let curve = analyzer.flow_curve(0, 5).expect("good report survives");
        assert!((curve.at(10) - 1000.0).abs() < 1e-6);
    }

    /// Satellite regression: duplicated and reordered period reports must
    /// not double-count or mis-merge. The analyzer output over a shuffled,
    /// duplicated report vector must be bit-identical to the clean run.
    #[test]
    fn duplicated_and_shuffled_reports_do_not_double_count() {
        let mut cfg = agent_config();
        cfg.period_ns = 16 << 13; // 16 windows per upload period
        let mut agent = HostAgent::new(0, cfg.clone());
        for w in [2u64, 20, 37, 52, 70] {
            agent.observe(7, w << 13, 500 + w as u32);
        }
        let reports = agent.finish();
        assert!(reports.len() >= 4, "want several periods");

        let mut clean = Analyzer::new(cfg.sketch.clone());
        clean.add_reports(reports.clone());
        let want = clean.flow_curve(0, 7).expect("measured");
        let want_host = clean.host_rate_curve(0).expect("measured");

        // Reverse order + duplicate every report, split across two batches.
        let mut mangled: Vec<PeriodReport> = reports.iter().rev().cloned().collect();
        mangled.extend(reports.iter().cloned());
        let mut dirty = Analyzer::new(cfg.sketch.clone());
        let n = mangled.len() / 2;
        let tail = mangled.split_off(n);
        let s1 = dirty.add_reports(mangled);
        let s2 = dirty.add_reports(tail);
        assert_eq!(s1.accepted + s2.accepted, reports.len() as u64);
        assert_eq!(
            s1.duplicates + s2.duplicates,
            reports.len() as u64,
            "every redelivery must be dropped"
        );
        assert_eq!(dirty.flow_curve(0, 7).unwrap(), want);
        assert_eq!(dirty.host_rate_curve(0).unwrap(), want_host);
    }

    /// Satellite regression: a heavy epoch anchored before the light series
    /// start (its covering light period was lost in collection) must extend
    /// the curve instead of underflowing `w - start_window`.
    #[test]
    fn heavy_epoch_before_light_series_start_does_not_underflow() {
        let cfg = agent_config();
        let key = FlowKey::from_id(9);
        let fp = cfg.sketch.fingerprint();

        // Period 1 light evidence only (period 0's upload "was lost")…
        let mut light_bucket =
            wavesketch::WaveBucket::with_params(2, 8, 64, wavesketch::SelectorKind::Ideal);
        light_bucket.update(100, 640);
        let light_reports = light_bucket.drain();
        let row0_col = cfg.sketch.light_col(&key, 0) as u32;
        let row1_col = cfg.sketch.light_col(&key, 1) as u32;
        let light = PeriodReport {
            period: 1,
            host: 0,
            config_fingerprint: fp,
            report: wavesketch::SketchReport {
                heavy: vec![],
                light: vec![
                    (0, row0_col, light_reports.clone()),
                    (1, row1_col, light_reports),
                ],
            },
        };
        // …while a degenerate heavy record from the lost period anchors at
        // w0 = 50, before the light series start.
        let heavy = PeriodReport {
            period: 0,
            host: 0,
            config_fingerprint: fp,
            report: wavesketch::SketchReport {
                heavy: vec![(
                    key.pack().to_vec(),
                    vec![BucketReport {
                        w0: 50,
                        levels: 0,
                        padded_len: 0,
                        approx: vec![],
                        details: vec![],
                    }],
                )],
                light: vec![],
            },
        };

        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(vec![light, heavy]);
        let curve = analyzer.flow_curve(0, 9).expect("light evidence exists");
        assert!((curve.at(100) - 640.0).abs() < 1e-6);
        assert_eq!(curve.at(50), 0.0, "lost-period window reads as no data");
        // Coverage tells the caller period 0's report is absent.
        let annotated = analyzer.flow_curve_with_coverage(0, 9).unwrap();
        assert!(annotated.coverage.covers(0));
        assert!(annotated.coverage.covers(1));
    }

    /// Reference implementation of the pre-index query paths: linear rescans
    /// of every stored period, exactly as `flow_curve` worked before the
    /// ingest-time [`QueryIndex`]. The indexed paths must stay bit-identical
    /// to this under any ingest order.
    mod rescan_reference {
        use super::*;
        use crate::query_index::unpack_key;
        use wavesketch::BucketReport;

        pub fn flow_curve(a: &Analyzer, host: usize, flow_id: u64) -> Option<WindowSeries> {
            let reports = a.reports.get(&host)?;
            let key = FlowKey::from_id(flow_id);
            let packed = key.pack().to_vec();
            let mut heavy_reports: Vec<BucketReport> = Vec::new();
            for pr in reports.values() {
                for (k, brs) in &pr.report.heavy {
                    if *k == packed {
                        heavy_reports.extend(brs.iter().cloned());
                    }
                }
            }
            if !heavy_reports.is_empty() {
                let heavy = WindowSeries::from_reports(&heavy_reports);
                let light = light_with_subtraction(a, reports, &key, &packed);
                return match (light, heavy) {
                    (Some(mut l), Some(h)) => {
                        let starts: Vec<u64> = heavy_reports.iter().map(|r| r.w0).collect();
                        let light_at: Vec<f64> = starts.iter().map(|&w| l.at(w)).collect();
                        l.overlay(&h);
                        for (&w, &lv) in starts.iter().zip(&light_at) {
                            l.extend_to_cover(w);
                            let idx = (w - l.start_window) as usize;
                            l.values[idx] = l.values[idx].max(lv);
                        }
                        Some(l)
                    }
                    (l, h) => h.or(l),
                };
            }
            light_with_subtraction(a, reports, &key, &packed)
        }

        fn light_with_subtraction(
            a: &Analyzer,
            reports: &BTreeMap<u64, PeriodReport>,
            key: &FlowKey,
            packed: &[u8],
        ) -> Option<WindowSeries> {
            let cfg = &a.sketch_config;
            let mut best: Option<WindowSeries> = None;
            for row in 0..cfg.rows {
                let col = cfg.light_col(key, row) as u32;
                let mut bucket_reports: Vec<BucketReport> = Vec::new();
                let mut heavy_in_bucket: Vec<BucketReport> = Vec::new();
                for pr in reports.values() {
                    for (r, c, brs) in &pr.report.light {
                        if *r == row as u32 && *c == col {
                            bucket_reports.extend(brs.iter().cloned());
                        }
                    }
                    for (k, brs) in &pr.report.heavy {
                        if *k == packed {
                            continue;
                        }
                        let ocol = cfg.light_col(&unpack_key(k), row) as u32;
                        if ocol == col {
                            heavy_in_bucket.extend(brs.iter().cloned());
                        }
                    }
                }
                let Some(mut series) = WindowSeries::from_reports(&bucket_reports) else {
                    continue;
                };
                if let Some(hseries) = WindowSeries::from_reports(&heavy_in_bucket) {
                    series.subtract_clamped(&hseries);
                }
                let replace = match &best {
                    None => true,
                    Some(b) => series.total() < b.total(),
                };
                if replace {
                    best = Some(series);
                }
            }
            best
        }

        pub fn host_rate_curve(a: &Analyzer, host: usize) -> Option<WindowSeries> {
            let reports = a.reports.get(&host)?;
            let mut all: Vec<BucketReport> = Vec::new();
            for pr in reports.values() {
                for (row, _, brs) in &pr.report.light {
                    if *row == 0 {
                        all.extend(brs.iter().cloned());
                    }
                }
            }
            WindowSeries::from_reports(&all)
        }

        pub fn cluster_events(a: &Analyzer, gap_ns: u64) -> Vec<DetectedEvent> {
            let mut by_port: BTreeMap<(usize, u16), Vec<&MirroredPacket>> = BTreeMap::new();
            for m in &a.mirrors {
                by_port.entry((m.switch, m.vlan)).or_default().push(m);
            }
            let mut events = Vec::new();
            for ((switch, vlan), mut packets) in by_port {
                packets.sort_by_key(|m| m.ts_ns);
                let mut cur: Option<DetectedEvent> = None;
                for m in packets {
                    match cur.as_mut() {
                        Some(ev) if m.ts_ns.saturating_sub(ev.end_ns) <= gap_ns => {
                            ev.end_ns = m.ts_ns;
                            ev.flows.insert(m.flow);
                            ev.packets += 1;
                        }
                        _ => {
                            if let Some(done) = cur.take() {
                                events.push(done);
                            }
                            cur = Some(DetectedEvent {
                                switch,
                                vlan,
                                start_ns: m.ts_ns,
                                end_ns: m.ts_ns,
                                flows: BTreeSet::from([m.flow]),
                                packets: 1,
                            });
                        }
                    }
                }
                if let Some(done) = cur.take() {
                    events.push(done);
                }
            }
            events
        }
    }

    /// A deterministic multi-period, heavy-contested workload for the
    /// equivalence tests (xorshift, no rng crate needed in-tree here).
    fn contested_reports(hosts: usize, windows: u64) -> (HostAgentConfig, Vec<PeriodReport>) {
        let cfg = HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(3)
                .width(16)
                .levels(4)
                .topk(12)
                .max_windows(64)
                .heavy_rows(4)
                .build(),
            period_ns: 48 << 13,
            window_shift: 13,
        };
        let mut out = Vec::new();
        for host in 0..hosts {
            let mut agent = HostAgent::new(host, cfg.clone());
            let mut x = 0x9E37_79B9u64 ^ (host as u64) << 17;
            for w in 0..windows {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let n = x % 4;
                for p in 0..n {
                    let flow = if (x >> (8 + p)) & 3 != 0 {
                        (x >> 11) % 3
                    } else {
                        (x >> 11) % 24
                    };
                    agent.observe(flow, w << 13, 64 + ((x >> 20) % 4000) as u32);
                }
            }
            out.extend(agent.finish());
        }
        (cfg, out)
    }

    /// Tentpole equivalence: the indexed query engine is bit-identical to a
    /// linear rescan of the stores, including under out-of-order delivery,
    /// redelivered duplicates and interleaved ingest/query (the index must
    /// be coherent after every batch, not just at the end).
    #[test]
    fn indexed_queries_match_rescan_reference_under_hostile_ingest() {
        let (cfg, reports) = contested_reports(3, 150);
        assert!(
            reports.iter().any(|r| !r.report.heavy.is_empty()),
            "workload must contest the heavy part"
        );
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        let mut scratch = QueryScratch::new();
        // Deliver reversed, in two batches, then redeliver everything; query
        // and compare after every step.
        let reversed: Vec<PeriodReport> = reports.iter().rev().cloned().collect();
        let mid = reversed.len() / 2;
        let batches = [
            reversed[..mid].to_vec(),
            reversed[mid..].to_vec(),
            reports.clone(),
        ];
        for batch in batches {
            analyzer.add_reports(batch);
            for host in 0..3 {
                for flow in 0..24u64 {
                    let want = rescan_reference::flow_curve(&analyzer, host, flow);
                    let got = analyzer.flow_curve_with(host, flow, &mut scratch).cloned();
                    assert_eq!(got, want, "host {host} flow {flow}");
                }
                assert_eq!(
                    analyzer.host_rate_curve_with(host, &mut scratch).cloned(),
                    rescan_reference::host_rate_curve(&analyzer, host),
                    "host {host} rate"
                );
            }
        }
        assert_eq!(analyzer.ingest_stats().duplicates, reports.len() as u64);
    }

    /// Quarantined (config-mismatched) reports must leave the index — not
    /// just the store — untouched.
    #[test]
    fn quarantined_reports_do_not_enter_the_index() {
        let (cfg, reports) = contested_reports(1, 100);
        let mut clean = Analyzer::new(cfg.sketch.clone());
        clean.add_reports(reports.clone());

        let mut poisoned = Analyzer::new(cfg.sketch.clone());
        let mut mangled = reports.clone();
        for (i, r) in reports.iter().enumerate() {
            let mut bad = r.clone();
            bad.config_fingerprint ^= 0xBAD;
            bad.period += 1000 + i as u64; // would land in fresh periods
            mangled.push(bad);
        }
        let stats = poisoned.add_reports(mangled);
        assert_eq!(stats.mismatched, reports.len() as u64);
        for flow in 0..24u64 {
            assert_eq!(
                poisoned.flow_curve(0, flow),
                clean.flow_curve(0, flow),
                "flow {flow}"
            );
        }
        assert_eq!(poisoned.host_rate_curve(0), clean.host_rate_curve(0));
    }

    /// Satellite equivalence: the sorted per-port mirror index reproduces
    /// the rebuild-every-time clustering exactly, including with interleaved
    /// add/query sequences, shuffled timestamps and redelivered batches.
    #[test]
    fn mirror_index_matches_rebuild_reference_interleaved() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        let mut x = 0xDEAD_BEEFu64;
        for step in 0..6 {
            // A mixed, unsorted slab of mirrors over a few ports.
            let mut slab = Vec::new();
            for _ in 0..40 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                slab.push(mirror(
                    20 + (x % 2) as usize,
                    1 + (x >> 3) as u16 % 3,
                    (x >> 8) % 500_000,
                    (x >> 5) % 6,
                ));
            }
            if step % 2 == 0 {
                analyzer.add_mirrors(slab);
            } else {
                let batch = MirrorBatch {
                    switch: 20,
                    seq: step as u64,
                    packets: slab.clone(),
                };
                assert!(analyzer.add_mirror_batch(batch.clone()));
                assert!(!analyzer.add_mirror_batch(batch), "redelivery must drop");
            }
            // Query between every ingest step: the index must be coherent
            // mid-stream, not only after the last add.
            for gap in [1_000u64, 50_000, u64::MAX] {
                assert_eq!(
                    analyzer.cluster_events(gap),
                    rescan_reference::cluster_events(&analyzer, gap),
                    "step {step} gap {gap}"
                );
            }
        }
        // The derived views ride on the same index.
        let map = analyzer.congestion_map(10_000);
        let events = analyzer.cluster_events(10_000);
        let total_spans: usize = map.iter().map(|(_, spans)| spans.len()).sum();
        assert_eq!(total_spans, events.len());
        let cdf = analyzer.duration_cdf(10_000);
        assert_eq!(cdf.len(), events.len());
    }

    /// Satellite regression: the quarantine is a bounded ring that keeps the
    /// most recent [`QUARANTINE_CAP`] mismatched reports in arrival order —
    /// no `Vec::remove(0)` shifting, no unbounded growth.
    #[test]
    fn quarantine_is_a_bounded_ring_in_arrival_order() {
        let cfg = agent_config();
        let mut agent = HostAgent::new(0, cfg.clone());
        agent.observe(1, 0, 100);
        let template = agent.finish().remove(0);

        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        let n = QUARANTINE_CAP + 16;
        for i in 0..n {
            let mut bad = template.clone();
            bad.config_fingerprint ^= 0xBAD;
            bad.period = i as u64;
            analyzer.add_reports(vec![bad]);
        }
        assert_eq!(analyzer.quarantined().len(), QUARANTINE_CAP);
        let periods: Vec<u64> = analyzer.quarantined().iter().map(|r| r.period).collect();
        let want: Vec<u64> = ((n - QUARANTINE_CAP) as u64..n as u64).collect();
        assert_eq!(periods, want, "ring keeps the newest, oldest first");
        assert_eq!(analyzer.ingest_stats().mismatched, n as u64);
    }

    /// Satellite regression: mirror-batch dedup state is a per-switch
    /// watermark window, bounded no matter how many batches arrive, and
    /// redeliveries — including ancient ones below the watermark — drop.
    #[test]
    fn mirror_batch_dedup_is_bounded_with_a_watermark() {
        let cfg = agent_config();
        let mut analyzer = Analyzer::new(cfg.sketch);
        let n = (MIRROR_BATCH_HORIZON as u64) * 3;
        for seq in 0..n {
            let fresh = analyzer.add_mirror_batch(MirrorBatch {
                switch: 20,
                seq,
                packets: vec![mirror(20, 1, seq * 10, seq % 5)],
            });
            assert!(fresh, "first delivery of seq {seq} must be accepted");
        }
        // Redelivery inside the window and far below the watermark both drop.
        for seq in [n - 1, n - 7, 0, 1] {
            let fresh = analyzer.add_mirror_batch(MirrorBatch {
                switch: 20,
                seq,
                packets: vec![mirror(20, 1, 1, 1)],
            });
            assert!(!fresh, "redelivered seq {seq} must drop");
        }
        assert_eq!(analyzer.mirror_duplicates(), 4);
        assert_eq!(analyzer.mirrors().len(), n as usize);
        let seen = &analyzer.mirror_batches_seen[&20];
        assert!(seen.tail_len() <= MIRROR_BATCH_HORIZON);
    }

    /// A bounded policy keeps curves exactly equal to an unbounded reference
    /// fed only the periods the bounded analyzer retained, while compaction
    /// alone (no eviction) changes nothing at all.
    #[test]
    fn bounded_retention_tracks_the_resident_set_bit_identically() {
        let (cfg, reports) = contested_reports(2, 200);
        let mut unbounded = Analyzer::new(cfg.sketch.clone());
        unbounded.add_reports(reports.clone());

        // Compaction only: identical to unbounded everywhere.
        let mut compacting =
            Analyzer::with_retention(cfg.sketch.clone(), RetentionPolicy::bounded(2, u64::MAX));
        compacting.add_reports(reports.clone());
        assert!(compacting.retention_stats().compacted_periods > 0);
        assert_eq!(compacting.retention_stats().evicted_periods, 0);
        for host in 0..2 {
            for flow in 0..24u64 {
                assert_eq!(
                    compacting.flow_curve(host, flow),
                    unbounded.flow_curve(host, flow),
                    "host {host} flow {flow}"
                );
            }
            assert_eq!(
                compacting.host_rate_curve(host),
                unbounded.host_rate_curve(host)
            );
        }

        // Eviction: equals a reference fed exactly the survivors.
        let mut bounded =
            Analyzer::with_retention(cfg.sketch.clone(), RetentionPolicy::bounded(1, 3));
        bounded.add_reports(reports.clone());
        assert!(bounded.retention_stats().evicted_periods > 0);
        let survivors: Vec<PeriodReport> = reports
            .iter()
            .filter(|r| bounded.host_coverage(r.host).covers(r.period))
            .cloned()
            .collect();
        let mut reference = Analyzer::new(cfg.sketch.clone());
        reference.add_reports(survivors);
        for host in 0..2 {
            assert!(bounded.host_coverage(host).periods.len() <= 3);
            for flow in 0..24u64 {
                assert_eq!(
                    bounded.flow_curve(host, flow),
                    reference.flow_curve(host, flow),
                    "host {host} flow {flow}"
                );
            }
            assert_eq!(
                bounded.host_rate_curve(host),
                reference.host_rate_curve(host)
            );
        }
    }

    /// A report arriving below the eviction floor is dropped as stale (it is
    /// indistinguishable from a redelivery of an evicted period), while one
    /// landing between the floors is stored compacted on arrival.
    #[test]
    fn late_arrivals_land_in_the_tier_their_age_dictates() {
        let mut cfg = agent_config();
        cfg.period_ns = 16 << 13;
        let mut agent = HostAgent::new(0, cfg.clone());
        for w in 0..(16 * 12u64) {
            agent.observe(3, w << 13, 100);
        }
        let reports = agent.finish();
        assert!(reports.len() >= 12);

        let mut analyzer =
            Analyzer::with_retention(cfg.sketch.clone(), RetentionPolicy::bounded(2, 6));
        // Deliver only the newest report first: floors jump immediately.
        let newest = reports.last().unwrap().clone();
        analyzer.add_reports(vec![newest.clone()]);
        let newest_period = newest.period;

        // Below the eviction floor → stale-dropped, not stored.
        let stale = reports
            .iter()
            .find(|r| r.period + 6 <= newest_period)
            .unwrap()
            .clone();
        let s = analyzer.add_reports(vec![stale.clone()]);
        assert_eq!(s.accepted, 0);
        assert_eq!(s.duplicates, 1);
        assert_eq!(analyzer.retention_stats().stale_dropped, 1);
        assert!(!analyzer.host_coverage(0).covers(stale.period));

        // Between the floors → accepted straight into the compacted tier.
        let compactable = reports
            .iter()
            .find(|r| r.period + 6 > newest_period && r.period + 2 <= newest_period)
            .unwrap()
            .clone();
        let before_hot = analyzer.residency().hot_periods;
        let s = analyzer.add_reports(vec![compactable.clone()]);
        assert_eq!(s.accepted, 1);
        assert_eq!(analyzer.retention_stats().compacted_on_arrival, 1);
        assert!(analyzer.host_coverage(0).covers(compactable.period));
        assert_eq!(
            analyzer.residency().hot_periods,
            before_hot,
            "compacted-on-arrival must not be indexed"
        );
        // And it is queryable through the compacted fallback.
        assert!(analyzer.flow_curve(0, 3).is_some());
    }

    /// Restarting from the archive reconverges to the no-crash state.
    #[test]
    fn archive_recovery_reconverges_after_restart() {
        let (cfg, reports) = contested_reports(2, 150);
        let dir =
            std::env::temp_dir().join(format!("umon_analyzer_recovery_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = RetentionPolicy::bounded(2, 4);

        let half = reports.len() / 2;
        {
            let mut doomed =
                Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("open archive");
            doomed.add_reports(reports[..half].to_vec());
            // Crash: dropped without a shutdown path.
        }
        let mut revived =
            Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("reopen archive");
        let rec = revived.recover_from_archive().expect("scan archive");
        assert!(rec.recovered > 0);
        assert!(rec.damaged_tails.is_empty());
        revived.add_reports(reports[half..].to_vec());

        let mut steady = Analyzer::with_retention(cfg.sketch.clone(), policy);
        steady.add_reports(reports.clone());
        assert_eq!(revived.residency(), steady.residency());
        for host in 0..2 {
            assert_eq!(
                revived.host_coverage(host).periods,
                steady.host_coverage(host).periods
            );
            for flow in 0..24u64 {
                assert_eq!(
                    revived.flow_curve(host, flow),
                    steady.flow_curve(host, flow),
                    "host {host} flow {flow}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole: with an archive the eviction horizon stops being a data
    /// horizon. Every curve over evicted periods is read back from disk and
    /// is bit-identical to an analyzer that never evicted anything.
    #[test]
    fn evicted_periods_stay_queryable_bit_identical_to_unbounded() {
        let (cfg, reports) = contested_reports(2, 250);
        let dir = std::env::temp_dir().join(format!("umon_cold_query_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut unbounded = Analyzer::new(cfg.sketch.clone());
        unbounded.add_reports(reports.clone());

        let mut archived =
            Analyzer::with_archive(cfg.sketch.clone(), RetentionPolicy::bounded(1, 3), &dir)
                .expect("open archive");
        archived.add_reports(reports.clone());
        assert!(archived.retention_stats().evicted_periods > 0);

        for host in 0..2 {
            for flow in 0..24u64 {
                assert_eq!(
                    archived.flow_curve(host, flow),
                    unbounded.flow_curve(host, flow),
                    "host {host} flow {flow}"
                );
            }
            assert_eq!(
                archived.host_rate_curve(host),
                unbounded.host_rate_curve(host)
            );
            // Coverage: evicted periods are not resident but stay queryable.
            let cov = archived.host_coverage(host);
            assert!(!cov.archived.is_empty(), "host {host} has cold periods");
            for &p in &cov.archived {
                assert!(!cov.covers(p));
                assert!(cov.queryable(p));
            }
        }
        let s = archived.retention_stats();
        assert!(s.cold_misses > 0, "cold reads actually hit the disk");
        assert_eq!(s.cold_read_errors, 0);
        assert!(s.cold_bytes_read > 0);

        // A second sweep is served from the warm segment cache.
        for host in 0..2 {
            archived.host_rate_curve(host);
        }
        assert!(archived.retention_stats().cold_hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cache too small for even one record still answers correctly — it
    /// just pays a disk read per cold period, visibly, every time.
    #[test]
    fn one_byte_cold_cache_thrashes_but_stays_correct() {
        let (cfg, reports) = contested_reports(1, 250);
        let dir = std::env::temp_dir().join(format!("umon_cold_thrash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut unbounded = Analyzer::new(cfg.sketch.clone());
        unbounded.add_reports(reports.clone());
        let policy = RetentionPolicy::bounded(1, 2).with_cold_cache_bytes(1);
        let mut thrashing =
            Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("open archive");
        thrashing.add_reports(reports.clone());
        assert!(thrashing.retention_stats().evicted_periods > 0);

        for _ in 0..3 {
            for flow in 0..24u64 {
                assert_eq!(thrashing.flow_curve(0, flow), unbounded.flow_curve(0, flow));
            }
        }
        let s = thrashing.retention_stats();
        assert_eq!(s.cold_hits, 0, "nothing fits, nothing can hit");
        assert!(s.cold_misses > 0);
        assert_eq!(s.cold_read_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite 1: a report arriving below the eviction floor used to be
    /// dropped as stale even when it was the *first* delivery — losing data
    /// forever. With an archive, the cold index tells first deliveries
    /// (archived, queryable) from redeliveries (dropped).
    #[test]
    fn stale_first_delivery_is_archived_not_lost() {
        let mut cfg = agent_config();
        cfg.period_ns = 16 << 13;
        let dir = std::env::temp_dir().join(format!("umon_stale_arch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut agent = HostAgent::new(0, cfg.clone());
        for w in 0..(16 * 12u64) {
            agent.observe(3, w << 13, 100);
        }
        let reports = agent.finish();

        let policy = RetentionPolicy::bounded(2, 6);
        let mut analyzer =
            Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("open archive");
        // Newest first: the floors jump, everything older is now "stale".
        let newest = reports.last().unwrap().clone();
        analyzer.add_reports(vec![newest.clone()]);
        let stale = reports
            .iter()
            .find(|r| r.period + 6 <= newest.period)
            .unwrap()
            .clone();

        // First delivery below the floor: archived and accepted.
        let s = analyzer.add_reports(vec![stale.clone()]);
        assert_eq!(s.accepted, 1, "first delivery is not lost");
        assert_eq!(analyzer.retention_stats().stale_archived, 1);
        assert_eq!(analyzer.retention_stats().stale_dropped, 0);
        let cov = analyzer.host_coverage(0);
        assert!(!cov.covers(stale.period), "not resident");
        assert!(cov.queryable(stale.period), "but queryable from cold");
        let curve = analyzer.flow_curve(0, 3).expect("flow present");
        assert!(curve.at(stale.period * 16) > 0.0, "cold epoch contributes");

        // Redelivery of the same period: now it really is a duplicate.
        let s = analyzer.add_reports(vec![stale]);
        assert_eq!(s.accepted, 0);
        assert_eq!(s.duplicates, 1);
        assert_eq!(analyzer.retention_stats().stale_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recovery from a torn archive names the lost records, and
    /// `backfill_requests` asks exactly the affected hosts for exactly the
    /// missing span.
    #[test]
    fn torn_tail_is_reported_and_backfill_targets_it() {
        let (cfg, reports) = contested_reports(2, 250);
        let dir = std::env::temp_dir().join(format!("umon_torn_backfill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = RetentionPolicy::bounded(1, 3);
        {
            let mut doomed =
                Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("open archive");
            doomed.add_reports(reports.clone());
        }
        // Chop host 0's segment mid-record: the newest record is torn.
        let seg = dir.join("host_0.seg");
        let len = std::fs::metadata(&seg).expect("segment exists").len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment")
            .set_len(len - 5)
            .expect("truncate");

        let mut revived = Analyzer::with_archive(cfg.sketch.clone(), policy, &dir).expect("reopen");
        let rec = revived.recover_from_archive().expect("scan");
        assert_eq!(rec.damaged_tails, vec![0]);
        assert_eq!(rec.torn_tails.len(), 1);
        assert_eq!(rec.torn_tails[0].host, 0);
        assert_eq!(rec.torn_tails[0].lost_records, 1);
        assert_eq!(revived.retention_stats().torn_tail_records, 1);

        let asks = revived.backfill_requests(&rec);
        assert_eq!(asks.len(), 1, "only the torn host is asked");
        assert_eq!(asks[0].host, 0);
        // The ask starts after the newest period the analyzer still holds.
        let newest_held = revived
            .host_coverage(0)
            .periods
            .iter()
            .chain(revived.host_coverage(0).archived.iter())
            .copied()
            .max();
        assert_eq!(asks[0].after_period, newest_held);

        // Re-uploading the lost span through normal ingest heals the gap:
        // the analyzer reconverges to the never-crashed twin bit-identically.
        let after = asks[0].after_period;
        let missing: Vec<PeriodReport> = reports
            .iter()
            .filter(|r| r.host == 0 && after.is_none_or(|p| r.period > p))
            .cloned()
            .collect();
        assert!(!missing.is_empty(), "the tear lost something");
        revived.add_reports(missing);
        let mut unbounded = Analyzer::new(cfg.sketch.clone());
        unbounded.add_reports(reports.clone());
        for flow in 0..24u64 {
            assert_eq!(revived.flow_curve(0, flow), unbounded.flow_curve(0, flow));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The optional lossy floor trims detail coefficients from compacted
    /// resident copies (shrinking memory) while the archive keeps full
    /// fidelity — so cold reads of evicted periods stay exact.
    #[test]
    fn lossy_floor_trims_resident_but_cold_reads_stay_exact() {
        let (cfg, reports) = contested_reports(1, 250);
        let dir = std::env::temp_dir().join(format!("umon_lossy_floor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut unbounded = Analyzer::new(cfg.sketch.clone());
        unbounded.add_reports(reports.clone());

        let exact_policy = RetentionPolicy::bounded(1, 3);
        let lossy_policy = RetentionPolicy::bounded(1, 3).with_lossy_floor(1);
        let exact_dir = dir.join("exact");
        let lossy_dir = dir.join("lossy");
        let mut exact =
            Analyzer::with_archive(cfg.sketch.clone(), exact_policy, &exact_dir).expect("open");
        exact.add_reports(reports.clone());
        let mut lossy =
            Analyzer::with_archive(cfg.sketch.clone(), lossy_policy, &lossy_dir).expect("open");
        lossy.add_reports(reports.clone());

        let stats = lossy.retention_stats();
        assert!(stats.lossy_trimmed_details > 0, "the floor actually trims");
        assert!(
            lossy.residency().resident_report_bytes < exact.residency().resident_report_bytes,
            "trimming shrinks the resident footprint"
        );
        // Evicted periods are served from the (full-fidelity) archive, so
        // curves restricted to the cold span match the unbounded analyzer
        // exactly: totals over every cold period's windows are identical.
        let floor = lossy.host_coverage(0);
        assert!(!floor.archived.is_empty());
        let lossy_curve = lossy.flow_curve(0, 0).expect("flow present");
        let full_curve = unbounded.flow_curve(0, 0).expect("flow present");
        let windows_per_period = 48u64;
        for &p in &floor.archived {
            for w in p * windows_per_period..(p + 1) * windows_per_period {
                assert_eq!(lossy_curve.at(w), full_curve.at(w), "period {p} window {w}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coverage_distinguishes_no_traffic_from_no_data() {
        let mut cfg = agent_config();
        cfg.period_ns = 16 << 13;
        let mut agent = HostAgent::new(3, cfg.clone());
        agent.observe(1, 2 << 13, 100); // period 0
        agent.observe(1, 40 << 13, 100); // period 2 (period 1: no traffic)
        let mut reports = agent.finish();
        assert_eq!(reports.len(), 2);
        // Drop period 2's report: "no data" for it.
        let lost = reports.pop().unwrap();
        assert_eq!(lost.period, 2);

        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        analyzer.add_reports(reports);
        analyzer.set_known_lost(3, 1);
        let cov = analyzer.host_coverage(3);
        assert!(cov.covers(0));
        assert!(!cov.covers(2), "lost period must not read as covered");
        assert_eq!(cov.known_lost, 1);
        assert!(!cov.is_complete());
        analyzer.set_known_lost(3, 0);
        assert!(analyzer.host_coverage(3).is_complete());
    }
}
