//! Bounded sequence-number dedup windows.
//!
//! The collection plane deduplicates by sequence number in two places: the
//! [`crate::collector::Collector`] tracks per-host envelope sequences, and
//! the [`crate::analyzer::Analyzer`] tracks per-switch mirror batch ids.
//! Both originally kept a `BTreeSet<u64>` of *every id ever seen*, which
//! grows without bound on a long-running deployment. [`SeqWindow`] replaces
//! that with a contiguous-ack watermark plus a bounded out-of-order tail:
//! every id below the watermark is known-seen, and only ids at or above it
//! (the reorder tail) are stored explicitly.
//!
//! Within the reorder horizon the window is *exactly* equivalent to the
//! full set (proptested in `crates/umon/tests/collector_props.rs`). When the
//! tail would exceed the horizon — a sender that far ahead of its oldest
//! hole — the window force-advances past the lowest missing id and counts
//! it in [`SeqWindow::skipped`], trading exactness beyond the horizon for
//! bounded memory.

use std::collections::BTreeSet;

/// A bounded-memory "have I seen sequence number `s`?" set.
///
/// Invariants:
/// * every id `< floor` has been inserted (or force-skipped);
/// * `tail` holds only ids `>= floor`, and `tail.len() <= horizon`;
/// * `skipped` counts ids force-advanced past without being inserted.
#[derive(Debug, Clone)]
pub struct SeqWindow {
    /// All ids strictly below this watermark are seen-or-skipped.
    floor: u64,
    /// Out-of-order ids at or above `floor`.
    tail: BTreeSet<u64>,
    /// Maximum resident tail size before force-advancing.
    horizon: usize,
    /// Ids conceded as "seen" without an insert, to keep the tail bounded.
    skipped: u64,
}

impl SeqWindow {
    /// Creates an empty window that holds at most `horizon` out-of-order ids.
    ///
    /// `horizon` must be at least 1; it bounds resident memory at
    /// `O(horizon)` regardless of how many ids are inserted.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon >= 1, "SeqWindow horizon must be at least 1");
        Self {
            floor: 0,
            tail: BTreeSet::new(),
            horizon,
            skipped: 0,
        }
    }

    /// Inserts `seq`; returns `true` if it was new (not seen before).
    ///
    /// Duplicates below the watermark are reported as already-seen — that is
    /// the whole point of the window. An id that was force-skipped is also
    /// reported as already-seen (it was conceded, not observed; callers that
    /// care can compare [`Self::skipped`] before and after).
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.floor {
            return false;
        }
        if !self.tail.insert(seq) {
            return false;
        }
        // Drain the contiguous run at the watermark.
        while self.tail.remove(&self.floor) {
            self.floor += 1;
        }
        // Bound the reorder tail: concede the lowest holes until the span
        // from floor to the smallest resident id collapses.
        while self.tail.len() > self.horizon {
            let lowest = *self.tail.iter().next().expect("tail is non-empty");
            self.skipped += lowest - self.floor;
            self.floor = lowest;
            while self.tail.remove(&self.floor) {
                self.floor += 1;
            }
        }
        true
    }

    /// Whether `seq` is recorded as seen (including force-skipped ids).
    pub fn contains(&self, seq: u64) -> bool {
        seq < self.floor || self.tail.contains(&seq)
    }

    /// The contiguous-ack watermark: every id below it is seen-or-skipped.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Largest id ever inserted, or `None` if empty.
    pub fn max_seen(&self) -> Option<u64> {
        match self.tail.iter().next_back() {
            Some(&m) => Some(m),
            None => self.floor.checked_sub(1),
        }
    }

    /// Ids conceded without observation to keep the tail bounded. Zero as
    /// long as reordering stays within the horizon.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of ids resident in the out-of-order tail (`<= horizon`).
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Count of known holes: ids in `[floor, max_seen]` not yet inserted.
    pub fn hole_count(&self) -> u64 {
        match self.max_seen() {
            Some(max) if max >= self.floor => max - self.floor + 1 - self.tail.len() as u64,
            _ => 0,
        }
    }

    /// Visits every hole in `[floor, max_seen]` in ascending order.
    pub fn for_each_hole(&self, mut f: impl FnMut(u64)) {
        let Some(max) = self.max_seen() else { return };
        let mut next = self.floor;
        for &present in &self.tail {
            for hole in next..present {
                f(hole);
            }
            next = present + 1;
        }
        for hole in next..=max {
            f(hole);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_keeps_empty_tail() {
        let mut w = SeqWindow::new(4);
        for s in 0..1000 {
            assert!(w.insert(s));
            assert!(!w.insert(s), "duplicate {s} accepted");
        }
        assert_eq!(w.floor(), 1000);
        assert_eq!(w.tail_len(), 0);
        assert_eq!(w.skipped(), 0);
        assert_eq!(w.max_seen(), Some(999));
        assert_eq!(w.hole_count(), 0);
    }

    #[test]
    fn reorder_within_horizon_is_exact() {
        let mut w = SeqWindow::new(8);
        for s in [3u64, 0, 2, 5, 1, 4] {
            assert!(w.insert(s));
        }
        assert_eq!(w.floor(), 6);
        assert_eq!(w.skipped(), 0);
        assert!(w.contains(5));
        assert!(!w.contains(6));
    }

    #[test]
    fn holes_are_enumerated_in_order() {
        let mut w = SeqWindow::new(8);
        for s in [0u64, 1, 4, 7] {
            w.insert(s);
        }
        let mut holes = Vec::new();
        w.for_each_hole(|h| holes.push(h));
        assert_eq!(holes, vec![2, 3, 5, 6]);
        assert_eq!(w.hole_count(), 4);
    }

    #[test]
    fn overflow_force_advances_and_counts_skipped() {
        let mut w = SeqWindow::new(2);
        // 0 is a permanent hole; far-ahead ids overflow the 2-slot tail.
        assert!(w.insert(10));
        assert!(w.insert(20));
        assert!(w.insert(30));
        assert!(w.tail_len() <= 2, "tail {} exceeds horizon", w.tail_len());
        assert!(w.skipped() > 0);
        // Conceded ids read as seen from then on.
        assert!(w.contains(0));
        assert!(!w.insert(0));
    }

    #[test]
    fn memory_stays_bounded_under_hostile_stream() {
        let mut w = SeqWindow::new(16);
        let mut state = 0x1234_5678_u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            w.insert(state % 100_000);
            assert!(w.tail_len() <= 16);
        }
    }

    #[test]
    fn max_seen_tracks_either_side_of_the_watermark() {
        let mut w = SeqWindow::new(4);
        assert_eq!(w.max_seen(), None);
        w.insert(0);
        assert_eq!(w.max_seen(), Some(0));
        w.insert(3);
        assert_eq!(w.max_seen(), Some(3));
        w.insert(1);
        w.insert(2);
        assert_eq!(w.max_seen(), Some(3));
        assert_eq!(w.floor(), 4);
    }
}
