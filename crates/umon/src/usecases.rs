//! The §6.2 use-case analyses on microsecond-level rate curves:
//! underutilization gap detection (the "intermittent rate curve" diagnosis
//! of Figure 9a) and congestion-control convergence/fairness metrics.

/// A detected transmission gap in a rate curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapReport {
    /// First idle window (index into the curve).
    pub start: usize,
    /// Length of the gap in windows.
    pub windows: usize,
}

/// Finds idle gaps inside a flow's active span: maximal runs of at least
/// `min_windows` consecutive windows below `idle_threshold`, strictly
/// between the first and last active windows (leading/trailing idleness is
/// not a "gap" — the flow simply hadn't started / had finished).
///
/// Many gaps in a throughput-starved flow indicate the *host* cannot feed
/// the network (§6.2: "the under-throughput is caused by the host").
pub fn find_gaps(curve: &[f64], idle_threshold: f64, min_windows: usize) -> Vec<GapReport> {
    let first_active = curve.iter().position(|&v| v > idle_threshold);
    let last_active = curve.iter().rposition(|&v| v > idle_threshold);
    let (Some(first), Some(last)) = (first_active, last_active) else {
        return Vec::new();
    };
    let mut gaps = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &v) in curve.iter().enumerate().take(last + 1).skip(first) {
        if v <= idle_threshold {
            run_start.get_or_insert(i);
        } else if let Some(s) = run_start.take() {
            if i - s >= min_windows {
                gaps.push(GapReport {
                    start: s,
                    windows: i - s,
                });
            }
        }
    }
    gaps
}

/// Fraction of a flow's active span spent idle (sum of gap windows over the
/// active span length).
pub fn idle_fraction(curve: &[f64], idle_threshold: f64, min_windows: usize) -> f64 {
    let first = curve.iter().position(|&v| v > idle_threshold);
    let last = curve.iter().rposition(|&v| v > idle_threshold);
    let (Some(first), Some(last)) = (first, last) else {
        return 0.0;
    };
    let span = last - first + 1;
    let idle: usize = find_gaps(curve, idle_threshold, min_windows)
        .iter()
        .map(|g| g.windows)
        .sum();
    idle as f64 / span as f64
}

/// How a flow relates to a congestion event (§6.2 / B2: "distinguish the
/// root cause and the event's subsequent impact on victim flows").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRole {
    /// The flow ramped up into the event: little traffic before, high rate
    /// during — the burst that caused (or co-caused) the congestion.
    Contributor,
    /// The flow was established before the event and lost rate during it.
    Victim,
    /// Present but neither pattern is clear (e.g. steady throughout).
    Bystander,
}

/// Classifies one flow's role in an event from its rate curve.
///
/// `curve` spans the replay range; `pre` is the slice of window indices
/// before the event and `during` the indices inside it. A flow whose
/// during-rate is at least double its pre-rate is a [`EventRole::Contributor`];
/// one that loses at least a third of an established pre-rate is a
/// [`EventRole::Victim`].
pub fn classify_event_role(
    curve: &[f64],
    pre: std::ops::Range<usize>,
    during: std::ops::Range<usize>,
) -> EventRole {
    let mean = |r: std::ops::Range<usize>| -> f64 {
        let vals: Vec<f64> = curve.get(r.clone()).map(|s| s.to_vec()).unwrap_or_default();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let pre_rate = mean(pre);
    let during_rate = mean(during);
    if during_rate > 2.0 * pre_rate && during_rate > 0.0 {
        EventRole::Contributor
    } else if pre_rate > 0.0 && during_rate < (2.0 / 3.0) * pre_rate {
        EventRole::Victim
    } else {
        EventRole::Bystander
    }
}

/// Jain's fairness index over the per-flow average rates in a window range:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair; `1/n` = one flow hogs all.
pub fn fairness_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sq)
}

/// Convergence time: the first window index after `from` where the curve
/// stays within `band` (relative) of `target` for `hold` consecutive
/// windows. `None` if it never converges.
pub fn convergence_window(
    curve: &[f64],
    from: usize,
    target: f64,
    band: f64,
    hold: usize,
) -> Option<usize> {
    if target <= 0.0 {
        return None;
    }
    let within = |v: f64| (v - target).abs() / target <= band;
    let mut run = 0usize;
    for (i, &v) in curve.iter().enumerate().skip(from) {
        if within(v) {
            run += 1;
            if run >= hold {
                return Some(i + 1 - hold);
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_inside_active_span_are_found() {
        let curve = [0.0, 0.0, 5.0, 5.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0];
        let gaps = find_gaps(&curve, 0.5, 2);
        assert_eq!(
            gaps,
            vec![GapReport {
                start: 4,
                windows: 3
            }]
        );
    }

    #[test]
    fn leading_and_trailing_idleness_is_not_a_gap() {
        let curve = [0.0, 0.0, 5.0, 5.0, 0.0, 0.0];
        assert!(find_gaps(&curve, 0.5, 1).is_empty());
    }

    #[test]
    fn short_dips_below_min_windows_are_ignored() {
        let curve = [5.0, 0.0, 5.0];
        assert!(find_gaps(&curve, 0.5, 2).is_empty());
        assert_eq!(find_gaps(&curve, 0.5, 1).len(), 1);
    }

    #[test]
    fn all_idle_curve_has_no_gaps() {
        assert!(find_gaps(&[0.0; 8], 0.5, 1).is_empty());
    }

    #[test]
    fn idle_fraction_measures_gappiness() {
        // Active span 0..=9, gaps at 2-3 and 6-8 → 5/10 idle.
        let curve = [5.0, 5.0, 0.0, 0.0, 5.0, 5.0, 0.0, 0.0, 0.0, 5.0];
        assert!((idle_fraction(&curve, 0.5, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contributor_ramps_into_the_event() {
        // Quiet before, bursting during.
        let curve = [0.0, 0.0, 0.0, 90.0, 100.0, 95.0];
        assert_eq!(
            classify_event_role(&curve, 0..3, 3..6),
            EventRole::Contributor
        );
    }

    #[test]
    fn victim_loses_established_rate() {
        let curve = [80.0, 80.0, 80.0, 30.0, 25.0, 35.0];
        assert_eq!(classify_event_role(&curve, 0..3, 3..6), EventRole::Victim);
    }

    #[test]
    fn steady_flow_is_a_bystander() {
        let curve = [50.0, 52.0, 49.0, 51.0, 50.0, 50.0];
        assert_eq!(
            classify_event_role(&curve, 0..3, 3..6),
            EventRole::Bystander
        );
    }

    #[test]
    fn empty_ranges_are_bystanders() {
        let curve = [1.0, 2.0];
        assert_eq!(
            classify_event_role(&curve, 0..0, 0..0),
            EventRole::Bystander
        );
    }

    #[test]
    fn fairness_bounds() {
        assert!((fairness_index(&[10.0, 10.0, 10.0]) - 1.0).abs() < 1e-12);
        let skew = fairness_index(&[30.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fairness_index(&[]), 1.0);
        assert_eq!(fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn convergence_finds_the_settling_point() {
        // Oscillates, then settles at 50 from index 6.
        let curve = [100.0, 20.0, 80.0, 30.0, 70.0, 45.0, 50.0, 51.0, 49.0, 50.0];
        let w = convergence_window(&curve, 0, 50.0, 0.05, 3).unwrap();
        assert_eq!(w, 6);
    }

    #[test]
    fn convergence_none_when_never_settling() {
        let curve = [100.0, 0.0, 100.0, 0.0];
        assert!(convergence_window(&curve, 0, 50.0, 0.1, 2).is_none());
    }
}
