//! The report collection plane: how period reports actually travel from
//! host agents to the analyzer, and what happens when the network loses,
//! duplicates, reorders or corrupts them.
//!
//! The earlier pipeline hand-delivered `Vec<PeriodReport>` by function call,
//! which silently assumed a perfect network. This module makes the transport
//! explicit and hostile-by-default:
//!
//! * [`Envelope`] — a sequence-numbered, checksummed wrapper around one
//!   [`PeriodReport`], sealed by the sender so the collector can detect
//!   truncation and tampering without trusting the transport.
//! * [`Transport`] — the uplink abstraction: report envelopes flow up,
//!   per-sequence ACKs flow back down. [`PerfectTransport`] is the lossless
//!   reference; [`FaultyTransport`] injects seeded, per-host drop /
//!   duplicate / reorder / truncate faults and logs exactly what it did, so
//!   tests can assert collector counters against ground truth.
//! * [`HostUplink`] — the host-side send buffer: bounded retransmit queue,
//!   ACK-driven release, exponential backoff. Memory is capped by
//!   [`RetransmitPolicy::capacity`]; when the network outlives the buffer,
//!   the oldest unacknowledged report is evicted and counted, never silently
//!   wedged.
//! * [`Collector`] — the analyzer-side ingest: verifies envelope integrity,
//!   dedups by `(host, seq)`, detects sequence gaps, quarantines damage
//!   behind counters instead of panicking, and keeps the analyzer's
//!   [`known-lost`](crate::Analyzer::set_known_lost) coverage in sync.
//!
//! Degradation contract: whatever the transport does, the collector never
//! panics, never double-counts a report, and every accepted curve is built
//! only from intact reports — loss shows up as missing coverage, not as
//! corrupted data.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::analyzer::Analyzer;
use crate::host_agent::PeriodReport;
use crate::seqwin::SeqWindow;

/// A sequence-numbered, checksummed report in flight.
///
/// The sequence number is per-host and assigned by the sending
/// [`HostUplink`]; the checksum and declared epoch count are sealed over the
/// payload so the receiver can tell a truncated or bit-flipped report from
/// an intact one without any transport-level guarantees.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Envelope {
    /// Per-host upload sequence number (0, 1, 2, … in submit order).
    pub seq: u64,
    /// Epoch count of the payload at seal time.
    pub declared_epochs: usize,
    /// [`SketchReport::integrity`](wavesketch::SketchReport::integrity) of
    /// the payload at seal time.
    pub checksum: u64,
    /// `Some(n)`: this envelope is an end-of-stream sentinel declaring that
    /// the sender has assigned sequence numbers `0..n`. Without it a
    /// *trailing* drop is invisible — a gap only shows once something newer
    /// arrives — so the uplink sends one each tick and the collector folds
    /// the declaration into its gap detection. Sentinels carry an empty
    /// report, are never ACKed, and never reach the analyzer.
    pub fin: Option<u64>,
    /// The report being carried.
    pub report: PeriodReport,
}

impl Envelope {
    /// Seals `report` under sequence number `seq`.
    pub fn seal(seq: u64, report: PeriodReport) -> Self {
        Self {
            seq,
            declared_epochs: report.report.epoch_count(),
            checksum: report.report.integrity(),
            fin: None,
            report,
        }
    }

    /// An end-of-stream sentinel for `host`, declaring `submitted` assigned
    /// sequence numbers. Sealed over an empty payload so in-flight damage
    /// is still detectable (a damaged sentinel is dropped silently — the
    /// next tick sends a fresh one).
    pub fn fin(host: usize, submitted: u64) -> Self {
        let report = PeriodReport {
            period: 0,
            host,
            config_fingerprint: 0,
            report: wavesketch::SketchReport::default(),
        };
        let mut env = Self::seal(submitted, report);
        env.fin = Some(submitted);
        env
    }

    /// True if the payload still matches what the sender sealed.
    pub fn verify(&self) -> bool {
        self.report.report.epoch_count() == self.declared_epochs
            && self.report.report.integrity() == self.checksum
    }

    /// The reporting host (shorthand for `self.report.host`).
    pub fn host(&self) -> usize {
        self.report.host
    }
}

/// The collection-plane link: envelopes up, ACKs down.
///
/// `send`/`deliver` move report envelopes from hosts to the collector;
/// `ack`/`deliver_acks` move per-sequence acknowledgements back. A transport
/// may drop, duplicate, reorder or damage envelopes and may drop ACKs; it
/// must not fabricate envelopes it was never given.
pub trait Transport {
    /// Hands one envelope to the network.
    fn send(&mut self, env: Envelope);
    /// Takes every envelope the network chose to deliver since the last
    /// call (order is the network's choice).
    fn deliver(&mut self) -> Vec<Envelope>;
    /// Sends an ACK for `(host, seq)` back toward the host.
    fn ack(&mut self, host: usize, seq: u64);
    /// Takes the ACKs that reached `host` since the last call.
    fn deliver_acks(&mut self, host: usize) -> Vec<u64>;
}

/// The lossless reference transport: delivers everything, in order, exactly
/// once. The differential baseline every faulty run is compared against.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    queue: VecDeque<Envelope>,
    acks: HashMap<usize, Vec<u64>>,
}

impl PerfectTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for PerfectTransport {
    fn send(&mut self, env: Envelope) {
        self.queue.push_back(env);
    }

    fn deliver(&mut self) -> Vec<Envelope> {
        self.queue.drain(..).collect()
    }

    fn ack(&mut self, host: usize, seq: u64) {
        self.acks.entry(host).or_default().push(seq);
    }

    fn deliver_acks(&mut self, host: usize) -> Vec<u64> {
        self.acks.remove(&host).unwrap_or_default()
    }
}

/// Per-host fault rates for [`FaultyTransport`], each in `[0, 1]`.
///
/// The four envelope faults are mutually exclusive per send (one roll
/// decides), so `drop + duplicate + reorder + truncate` must not exceed 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability an envelope vanishes.
    pub drop: f64,
    /// Probability an envelope is delivered twice.
    pub duplicate: f64,
    /// Probability an envelope is held back and delivered after later sends.
    pub reorder: f64,
    /// Probability an envelope loses part of its payload in flight (the
    /// sealed checksum goes stale, so the collector can detect it).
    pub truncate: f64,
    /// Probability an ACK vanishes on the way back.
    pub ack_drop: f64,
}

impl FaultSpec {
    /// A spec that injects no faults at all.
    pub const NONE: FaultSpec = FaultSpec {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        truncate: 0.0,
        ack_drop: 0.0,
    };

    fn validate(&self) {
        let sum = self.drop + self.duplicate + self.reorder + self.truncate;
        assert!(
            (0.0..=1.0).contains(&sum) && (0.0..=1.0).contains(&self.ack_drop),
            "fault rates must be probabilities with envelope faults summing ≤ 1, got {self:?}"
        );
    }
}

/// What a [`FaultyTransport`] actually did to one host's envelopes — ground
/// truth for asserting collector counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Envelopes handed to `send`.
    pub sent: u64,
    /// Envelopes dropped.
    pub dropped: u64,
    /// Envelopes delivered twice.
    pub duplicated: u64,
    /// Envelopes held back for late delivery.
    pub reordered: u64,
    /// Envelopes damaged in flight.
    pub truncated: u64,
    /// ACKs dropped on the return path.
    pub acks_dropped: u64,
    /// The exact sequence numbers dropped (for gap-detection oracles).
    pub dropped_seqs: Vec<u64>,
}

/// SplitMix64 — a tiny, deterministic, dependency-free PRNG. Statistical
/// quality is far beyond what fault scheduling needs, and the whole plane
/// stays reproducible from one `u64` seed.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded fault-injecting transport. Same seed + same call sequence →
/// same faults, so every failure is replayable.
#[derive(Debug)]
pub struct FaultyTransport {
    rng: SplitMix64,
    default_spec: FaultSpec,
    specs: HashMap<usize, FaultSpec>,
    queue: VecDeque<Envelope>,
    /// Reordered envelopes, appended after the queue at the next deliver —
    /// everything sent meanwhile overtakes them.
    held: Vec<Envelope>,
    acks: HashMap<usize, Vec<u64>>,
    logs: HashMap<usize, FaultLog>,
}

impl FaultyTransport {
    /// Creates a transport that injects `default_spec` faults on every link.
    pub fn new(seed: u64, default_spec: FaultSpec) -> Self {
        default_spec.validate();
        Self {
            rng: SplitMix64(seed),
            default_spec,
            specs: HashMap::new(),
            queue: VecDeque::new(),
            held: Vec::new(),
            acks: HashMap::new(),
            logs: HashMap::new(),
        }
    }

    /// Overrides the fault rates for one host's link.
    pub fn set_faults(&mut self, host: usize, spec: FaultSpec) {
        spec.validate();
        self.specs.insert(host, spec);
    }

    /// What this transport did to `host`'s envelopes so far.
    pub fn log(&self, host: usize) -> FaultLog {
        self.logs.get(&host).cloned().unwrap_or_default()
    }

    fn spec_for(&self, host: usize) -> FaultSpec {
        self.specs.get(&host).copied().unwrap_or(self.default_spec)
    }

    /// Removes one trailing payload entry without re-sealing the envelope:
    /// the sealed checksum goes stale exactly as a truncated datagram's
    /// would.
    fn truncate_payload(env: &mut Envelope) {
        let report = &mut env.report.report;
        if let Some((_, _, brs)) = report.light.last_mut() {
            if brs.len() > 1 {
                brs.pop();
            } else {
                report.light.pop();
            }
        } else if let Some((_, brs)) = report.heavy.last_mut() {
            if brs.len() > 1 {
                brs.pop();
            } else {
                report.heavy.pop();
            }
        } else {
            // Nothing left to lose: damage the declared epoch count instead.
            env.declared_epochs += 1;
        }
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, mut env: Envelope) {
        let host = env.host();
        let spec = self.spec_for(host);
        // Fin sentinels ride the same faulty link (and consume a roll like
        // any datagram) but stay out of the fault log: the log is ground
        // truth for *report* envelopes, and the log-vs-collector counter
        // contracts compare it against report counters only.
        let is_fin = env.fin.is_some();
        let log = self.logs.entry(host).or_default();
        if !is_fin {
            log.sent += 1;
        }
        // One roll decides the envelope's fate; the fault classes are
        // mutually exclusive so log counters match collector counters
        // exactly.
        let r = self.rng.next_f64();
        if r < spec.drop {
            if !is_fin {
                log.dropped += 1;
                log.dropped_seqs.push(env.seq);
            }
        } else if r < spec.drop + spec.duplicate {
            if !is_fin {
                log.duplicated += 1;
            }
            self.queue.push_back(env.clone());
            self.queue.push_back(env);
        } else if r < spec.drop + spec.duplicate + spec.reorder {
            if !is_fin {
                log.reordered += 1;
            }
            self.held.push(env);
        } else if r < spec.drop + spec.duplicate + spec.reorder + spec.truncate {
            if !is_fin {
                log.truncated += 1;
            }
            Self::truncate_payload(&mut env);
            self.queue.push_back(env);
        } else {
            self.queue.push_back(env);
        }
    }

    fn deliver(&mut self) -> Vec<Envelope> {
        let mut out: Vec<Envelope> = self.queue.drain(..).collect();
        out.append(&mut self.held);
        out
    }

    fn ack(&mut self, host: usize, seq: u64) {
        let spec = self.spec_for(host);
        let r = self.rng.next_f64();
        if r < spec.ack_drop {
            self.logs.entry(host).or_default().acks_dropped += 1;
        } else {
            self.acks.entry(host).or_default().push(seq);
        }
    }

    fn deliver_acks(&mut self, host: usize) -> Vec<u64> {
        self.acks.remove(&host).unwrap_or_default()
    }
}

/// Host-side send policy: how much unacknowledged state to hold and how to
/// pace retransmissions.
#[derive(Debug, Clone, Copy)]
pub struct RetransmitPolicy {
    /// Maximum unacknowledged envelopes buffered; the oldest is evicted
    /// (and counted) beyond this. Bounds host memory under collector
    /// outages.
    pub capacity: usize,
    /// Ticks before the first retransmission; doubles per attempt.
    pub base_backoff: u64,
    /// Backoff stops doubling after this many attempts (caps the wait at
    /// `base_backoff << max_backoff_shift`).
    pub max_backoff_shift: u32,
    /// Reports kept (post-ACK) in the replay buffer for
    /// [`HostUplink::backfill`] re-uploads — the host-side bound on how far
    /// back an analyzer can ask for history after losing its archive tail.
    /// `0` disables replay.
    pub replay_capacity: usize,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        Self {
            capacity: 64,
            base_backoff: 1,
            max_backoff_shift: 6,
            replay_capacity: 64,
        }
    }
}

struct Pending {
    env: Envelope,
    attempts: u32,
    due: u64,
}

/// The host side of the collection plane: seals finished reports into
/// envelopes, sends them, and retransmits with exponential backoff until
/// ACKed — inside a hard memory bound.
pub struct HostUplink {
    /// The host this uplink sends for.
    pub host: usize,
    policy: RetransmitPolicy,
    next_seq: u64,
    pending: VecDeque<Pending>,
    /// Recently submitted reports, newest last, kept *past* their ACK so a
    /// restarted analyzer can ask for them again ([`Self::backfill`]).
    /// Bounded by `policy.replay_capacity`.
    replay: VecDeque<PeriodReport>,
    /// Reports evicted unacknowledged because the buffer was full.
    pub evicted: u64,
    /// Sends beyond each envelope's first (retransmissions).
    pub retransmissions: u64,
    /// Envelopes released by an ACK.
    pub acked: u64,
}

impl HostUplink {
    /// Creates an uplink for `host`.
    pub fn new(host: usize, policy: RetransmitPolicy) -> Self {
        assert!(policy.capacity > 0, "capacity must be positive");
        Self {
            host,
            policy,
            next_seq: 0,
            pending: VecDeque::new(),
            replay: VecDeque::new(),
            evicted: 0,
            retransmissions: 0,
            acked: 0,
        }
    }

    /// Seals one report under a fresh sequence number and queues it,
    /// evicting the oldest unacknowledged envelope when the buffer is full.
    fn enqueue(&mut self, r: PeriodReport) {
        let env = Envelope::seal(self.next_seq, r);
        self.next_seq += 1;
        if self.pending.len() == self.policy.capacity {
            self.pending.pop_front();
            self.evicted += 1;
        }
        self.pending.push_back(Pending {
            env,
            attempts: 0,
            due: 0,
        });
    }

    /// Seals `reports` (typically a
    /// [`poll_finished`](crate::HostAgent::poll_finished) batch) into
    /// sequence-numbered envelopes and queues them for sending. Evicts the
    /// oldest unacknowledged envelope when the buffer is full. A copy of
    /// each report also lands in the bounded replay buffer for backfill.
    pub fn submit(&mut self, reports: Vec<PeriodReport>) {
        for r in reports {
            debug_assert_eq!(r.host, self.host, "uplink sends for one host");
            if self.policy.replay_capacity > 0 {
                if self.replay.len() == self.policy.replay_capacity {
                    self.replay.pop_front();
                }
                self.replay.push_back(r.clone());
            }
            self.enqueue(r);
        }
    }

    /// Answers a [`BackfillRequest`]: re-submits every replay-buffered
    /// report with period strictly after `after_period` (`None` = all of
    /// them) under fresh sequence numbers. The re-uploads flow through the
    /// normal transport → collector path, where `(host, period)` dedup
    /// absorbs any the analyzer turns out to still have. Returns how many
    /// reports were queued.
    pub fn backfill(&mut self, after_period: Option<u64>) -> usize {
        let again: Vec<PeriodReport> = self
            .replay
            .iter()
            .filter(|r| after_period.is_none_or(|p| r.period > p))
            .cloned()
            .collect();
        let n = again.len();
        for r in again {
            self.enqueue(r);
        }
        n
    }

    /// One scheduler step at time `now` (any monotonic tick counter):
    /// releases ACKed envelopes, then (re)sends every pending envelope whose
    /// backoff has expired, then declares the assigned-sequence high-water
    /// mark with a fin sentinel so the collector can see trailing losses.
    pub fn tick(&mut self, now: u64, transport: &mut dyn Transport) {
        let acked: BTreeSet<u64> = transport.deliver_acks(self.host).into_iter().collect();
        if !acked.is_empty() {
            let before = self.pending.len();
            self.pending.retain(|p| !acked.contains(&p.env.seq));
            self.acked += (before - self.pending.len()) as u64;
        }
        for p in &mut self.pending {
            if p.due <= now {
                transport.send(p.env.clone());
                if p.attempts > 0 {
                    self.retransmissions += 1;
                }
                let shift = p.attempts.min(self.policy.max_backoff_shift);
                p.due = now + (self.policy.base_backoff << shift);
                p.attempts += 1;
            }
        }
        // Sent every tick rather than ACKed/retransmitted: losing one only
        // delays detection until the next tick's sentinel.
        if self.next_seq > 0 {
            transport.send(Envelope::fin(self.host, self.next_seq));
        }
    }

    /// Unacknowledged envelopes currently buffered (≤ policy capacity).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Next sequence number to be assigned (= total reports submitted).
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }
}

/// Collector-side ingestion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Intact, first-seen reports handed to the analyzer.
    pub accepted: u64,
    /// Redelivered sequence numbers dropped (still ACKed — dedup is the
    /// receiver's job precisely so the sender may retransmit freely).
    pub duplicates: u64,
    /// Envelopes failing integrity verification, quarantined and *not*
    /// ACKed so a retransmission can still recover the intact report.
    pub corrupt: u64,
    /// Intact envelopes whose report the analyzer quarantined for a config
    /// fingerprint mismatch (ACKed — retransmitting cannot fix a config
    /// mismatch).
    pub mismatched: u64,
}

/// A collector→host control message asking one host to re-upload recent
/// history the analyzer no longer has — produced by
/// [`Analyzer::backfill_requests`](crate::Analyzer::backfill_requests)
/// after a recovery that found a torn archive tail or known collection
/// losses, answered by [`HostUplink::backfill`]. Re-uploads travel the
/// normal collection path, so dedup and integrity checks apply unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackfillRequest {
    /// The host asked to re-upload.
    pub host: usize,
    /// Re-upload periods strictly after this one; `None` means everything
    /// the host's replay buffer still holds.
    pub after_period: Option<u64>,
}

/// The analyzer-side end of the collection plane.
///
/// Pumps a [`Transport`], verifies and dedups envelopes, feeds intact
/// first-seen reports to an [`Analyzer`], ACKs what should not be
/// retransmitted, and tracks per-host sequence gaps so curve coverage can
/// report known losses.
#[derive(Debug, Default)]
pub struct Collector {
    /// Per-host sequence bookkeeping, memory-bounded per host.
    hosts: HashMap<usize, HostSeqState>,
    stats: CollectorStats,
}

/// Out-of-order horizon for the per-host dedup window. An intact copy
/// arriving more than this many sequence numbers behind the newest heard
/// sequence may be conceded (treated as already-seen); the default
/// [`RetransmitPolicy`] caps a host at 64 outstanding envelopes, so 1024 is
/// far beyond any reordering the uplink can produce.
const SEEN_HORIZON: usize = 1024;

/// Bound on remembered damaged-only sequence numbers per host. Overflow
/// forgets the *oldest* damaged sequence: a late intact retransmission of it
/// is then accepted as new rather than replacing a tracked quarantine slot,
/// which is safe — the analyzer's own `(host, period)` dedup still holds.
const DAMAGED_CAP: usize = 1024;

/// One host's bounded dedup / gap-tracking state.
#[derive(Debug)]
struct HostSeqState {
    /// Sequence numbers whose intact report was accepted (or deduped):
    /// contiguous-ack watermark plus bounded reorder tail.
    seen: SeqWindow,
    /// Sequence numbers received only in damaged form so far. Cleared if an
    /// intact copy arrives; size-capped at [`DAMAGED_CAP`].
    damaged: BTreeSet<u64>,
    /// Highest assigned-sequence count declared by a fin sentinel: the host
    /// has sealed seqs `0..declared`, so any of those not heard are losses
    /// even with nothing newer on the wire.
    declared: u64,
}

impl Default for HostSeqState {
    fn default() -> Self {
        Self {
            seen: SeqWindow::new(SEEN_HORIZON),
            damaged: BTreeSet::new(),
            declared: 0,
        }
    }
}

impl HostSeqState {
    fn heard(&self) -> bool {
        self.seen.max_seen().is_some() || !self.damaged.is_empty() || self.declared > 0
    }

    /// Highest sequence heard in any form, or `None`.
    fn max_heard(&self) -> Option<u64> {
        self.seen
            .max_seen()
            .into_iter()
            .chain(self.damaged.iter().next_back().copied())
            .max()
    }
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the transport once: verify → dedup → ingest → ACK. Updates the
    /// analyzer's per-host known-loss counts afterward so coverage
    /// annotations stay current. Returns the counter deltas of this pump.
    pub fn pump(
        &mut self,
        transport: &mut dyn Transport,
        analyzer: &mut Analyzer,
    ) -> CollectorStats {
        let before = self.stats;
        for env in transport.deliver() {
            let host = env.host();
            let seq = env.seq;
            let state = self.hosts.entry(host).or_default();
            if let Some(declared) = env.fin {
                // End-of-stream declaration: fold the high-water mark into
                // gap tracking. No ACK, no counters — a damaged sentinel is
                // dropped silently (the next tick sends a fresh one).
                if env.verify() {
                    state.declared = state.declared.max(declared);
                }
                continue;
            }
            if state.seen.contains(seq) {
                // Already have this one intact (or conceded past the dedup
                // horizon); re-ACK in case the first ACK was lost.
                self.stats.duplicates += 1;
                transport.ack(host, seq);
                continue;
            }
            if !env.verify() {
                // Damaged in flight. No ACK: the sender's retransmission is
                // our only chance at the intact payload.
                self.stats.corrupt += 1;
                state.damaged.insert(seq);
                if state.damaged.len() > DAMAGED_CAP {
                    state.damaged.pop_first();
                }
                continue;
            }
            let ingest = analyzer.add_reports(vec![env.report]);
            if ingest.mismatched > 0 {
                self.stats.mismatched += 1;
            } else {
                // Accepted — or a (host, period) duplicate under a fresh
                // seq, which the analyzer already dropped; either way the
                // payload is safely delivered.
                self.stats.accepted += 1;
            }
            let state = self.hosts.entry(host).or_default();
            state.damaged.remove(&seq);
            state.seen.insert(seq);
            transport.ack(host, seq);
        }
        for host in self.hosts() {
            // Conceded (force-skipped) sequences were never received intact,
            // so they stay in the loss count even after leaving the window.
            let skipped = self.hosts.get(&host).map_or(0, |s| s.seen.skipped());
            let lost = self.missing_seqs(host).len() as u64 + skipped;
            analyzer.set_known_lost(host, lost);
        }
        CollectorStats {
            accepted: self.stats.accepted - before.accepted,
            duplicates: self.stats.duplicates - before.duplicates,
            corrupt: self.stats.corrupt - before.corrupt,
            mismatched: self.stats.mismatched - before.mismatched,
        }
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Every host this collector has heard from (even only in damaged form).
    pub fn hosts(&self) -> Vec<usize> {
        let mut hosts: Vec<usize> = self
            .hosts
            .iter()
            .filter(|(_, s)| s.heard())
            .map(|(&h, _)| h)
            .collect();
        hosts.sort_unstable();
        hosts
    }

    /// Sequence numbers below `host`'s highest heard sequence — or its
    /// fin-declared high-water mark, whichever is greater — that have not
    /// been received intact: the gaps. Includes damaged-only sequences
    /// (their data is still missing) and shrinks as retransmissions land.
    /// The fin extension is what makes *trailing* drops visible: a sequence
    /// with nothing heard after it is still a gap once the host declares it
    /// was assigned.
    ///
    /// Sequences conceded past the dedup horizon are no longer enumerated
    /// here (they have left the window), but they stay counted in the
    /// analyzer's known-loss totals via [`SeqWindow::skipped`].
    pub fn missing_seqs(&self, host: usize) -> Vec<u64> {
        let Some(state) = self.hosts.get(&host) else {
            return Vec::new();
        };
        // One past the highest sequence we must account for: everything
        // heard in any form, plus everything the host declared assigned.
        let end = state.max_heard().map_or(0, |m| m + 1).max(state.declared);
        if end == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Holes inside the seen window...
        state.seen.for_each_hole(|h| out.push(h));
        // ...plus everything between the window's top and the accountable
        // end (heard about or declared, never received intact).
        let from = match state.seen.max_seen() {
            Some(m) => m + 1,
            None => state.seen.floor(),
        };
        out.extend(from..end);
        out
    }

    /// Resident dedup/gap-tracking entries across all hosts — the quantity
    /// the retention soak asserts stays bounded.
    pub fn resident_seq_entries(&self) -> usize {
        self.hosts
            .values()
            .map(|s| s.seen.tail_len() + s.damaged.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_agent::{HostAgent, HostAgentConfig};
    use wavesketch::SketchConfig;

    fn agent_config() -> HostAgentConfig {
        HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 16 << 13, // 16 windows per period
            window_shift: 13,
        }
    }

    /// A few periods of two-flow traffic for `host`.
    fn make_reports(host: usize, cfg: &HostAgentConfig) -> Vec<PeriodReport> {
        let mut agent = HostAgent::new(host, cfg.clone());
        for w in [1u64, 5, 18, 22, 35, 40, 51, 66] {
            agent.observe(7, w << 13, 900);
            agent.observe(8, w << 13, 300);
        }
        agent.finish()
    }

    /// Runs submit → tick/pump rounds until the uplink drains or `rounds`
    /// expire.
    fn run_rounds(
        uplink: &mut HostUplink,
        transport: &mut dyn Transport,
        collector: &mut Collector,
        analyzer: &mut Analyzer,
        rounds: u64,
    ) {
        for now in 0..rounds {
            uplink.tick(now, transport);
            collector.pump(transport, analyzer);
            if uplink.in_flight() == 0 {
                break;
            }
        }
    }

    #[test]
    fn perfect_transport_delivers_everything_exactly_once() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;

        // Direct ingest is the reference.
        let mut direct = Analyzer::new(cfg.sketch.clone());
        direct.add_reports(reports.clone());
        let want = direct.flow_curve(0, 7).unwrap();

        let mut transport = PerfectTransport::new();
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            10,
        );

        assert_eq!(uplink.in_flight(), 0, "everything ACKed");
        assert_eq!(uplink.acked, n);
        assert_eq!(uplink.retransmissions, 0);
        let stats = collector.stats();
        assert_eq!(stats.accepted, n);
        assert_eq!(stats.duplicates + stats.corrupt + stats.mismatched, 0);
        assert!(collector.missing_seqs(0).is_empty());
        assert_eq!(analyzer.flow_curve(0, 7).unwrap(), want);
        assert!(analyzer.host_coverage(0).is_complete());
    }

    #[test]
    fn drops_are_recovered_by_retransmission() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;
        let mut direct = Analyzer::new(cfg.sketch.clone());
        direct.add_reports(reports.clone());
        let want = direct.flow_curve(0, 7).unwrap();

        let mut transport = FaultyTransport::new(
            42,
            FaultSpec {
                drop: 0.5,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            500,
        );

        assert_eq!(uplink.in_flight(), 0, "retransmit must eventually win");
        assert!(transport.log(0).dropped > 0, "seed 42 injects drops");
        assert!(uplink.retransmissions > 0);
        assert_eq!(collector.stats().accepted, n);
        assert!(collector.missing_seqs(0).is_empty(), "all gaps closed");
        assert_eq!(analyzer.flow_curve(0, 7).unwrap(), want);
        assert!(analyzer.host_coverage(0).is_complete());
    }

    #[test]
    fn duplicates_are_counted_and_ignored() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;
        let mut transport = FaultyTransport::new(
            7,
            FaultSpec {
                duplicate: 1.0,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            10,
        );

        let stats = collector.stats();
        assert_eq!(stats.accepted, n);
        assert_eq!(stats.duplicates, transport.log(0).duplicated);
        assert_eq!(analyzer.ingest_stats().accepted, n, "no double-count");
    }

    #[test]
    fn truncation_is_quarantined_then_recovered_intact() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;
        // Every first transmission is truncated; retransmissions are clean.
        let mut transport = FaultyTransport::new(
            3,
            FaultSpec {
                truncate: 1.0,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports.clone());
        uplink.tick(0, &mut transport);
        collector.pump(&mut transport, &mut analyzer);
        assert_eq!(collector.stats().corrupt, n, "all damaged, none accepted");
        assert_eq!(collector.stats().accepted, 0);
        assert_eq!(analyzer.ingest_stats().total(), 0, "no damage reaches it");
        assert_eq!(collector.missing_seqs(0).len(), n as usize);
        assert_eq!(uplink.in_flight(), n as usize, "no ACK for damage");

        transport.set_faults(0, FaultSpec::NONE);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            500,
        );
        assert_eq!(collector.stats().accepted, n);
        assert!(collector.missing_seqs(0).is_empty());
        let mut direct = Analyzer::new(cfg.sketch.clone());
        direct.add_reports(reports);
        assert_eq!(
            analyzer.flow_curve(0, 7).unwrap(),
            direct.flow_curve(0, 7).unwrap()
        );
    }

    #[test]
    fn gaps_match_the_fault_log_exactly_without_retransmit() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let mut transport = FaultyTransport::new(
            11,
            FaultSpec {
                drop: 0.4,
                ..FaultSpec::NONE
            },
        );
        // Bypass the uplink: one send per report, no retransmission.
        for (seq, r) in reports.into_iter().enumerate() {
            transport.send(Envelope::seal(seq as u64, r));
        }
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        collector.pump(&mut transport, &mut analyzer);

        let log = transport.log(0);
        assert!(log.dropped > 0 && log.dropped < log.sent, "seed 11 mixes");
        // Without a fin, a trailing drop is invisible: nothing after it
        // reveals the gap, so only drops below the delivered maximum show.
        let max_seen = (0..log.sent)
            .filter(|s| !log.dropped_seqs.contains(s))
            .max()
            .expect("some envelope survived");
        let below_max: Vec<u64> = log
            .dropped_seqs
            .iter()
            .copied()
            .filter(|&s| s < max_seen)
            .collect();
        assert_eq!(collector.missing_seqs(0), below_max);

        // The fin sentinel declares how many seqs were assigned; once it
        // lands, every dropped seq — trailing ones included — is a gap.
        let sent = transport.log(0).sent;
        let expect: Vec<u64> = transport.log(0).dropped_seqs.to_vec();
        loop {
            // The fin rides the same faulty link; resend until one survives.
            transport.send(Envelope::fin(0, sent));
            collector.pump(&mut transport, &mut analyzer);
            if collector.missing_seqs(0).len() >= expect.len() {
                break;
            }
        }
        assert_eq!(collector.missing_seqs(0), expect, "trailing drops visible");
        assert_eq!(
            analyzer.host_coverage(0).known_lost,
            expect.len() as u64,
            "coverage annotation mirrors the full gap count"
        );
        // The sentinel itself never shows up in collector report counters.
        assert_eq!(
            collector.stats().accepted + collector.stats().corrupt,
            log.sent - log.dropped
        );
    }

    #[test]
    fn reordered_envelopes_still_arrive_and_curves_match() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;
        let mut direct = Analyzer::new(cfg.sketch.clone());
        direct.add_reports(reports.clone());
        let want = direct.flow_curve(0, 7).unwrap();

        let mut transport = FaultyTransport::new(
            5,
            FaultSpec {
                reorder: 0.5,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            100,
        );

        assert!(transport.log(0).reordered > 0, "seed 5 reorders");
        // Reordered envelopes may race their own retransmission; the second
        // copy is deduped, and exactly n distinct reports get through.
        assert_eq!(collector.stats().accepted, n);
        assert_eq!(analyzer.flow_curve(0, 7).unwrap(), want);
    }

    #[test]
    fn uplink_memory_stays_bounded_and_evictions_are_counted() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len();
        assert!(n >= 4);
        let policy = RetransmitPolicy {
            capacity: 2,
            ..RetransmitPolicy::default()
        };
        let mut uplink = HostUplink::new(0, policy);
        uplink.submit(reports);
        assert_eq!(uplink.in_flight(), 2, "bounded by capacity");
        assert_eq!(uplink.evicted, n as u64 - 2);
        assert_eq!(uplink.submitted(), n as u64);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let one = vec![reports.into_iter().next().unwrap()];
        let policy = RetransmitPolicy {
            capacity: 4,
            base_backoff: 1,
            max_backoff_shift: 3,
            ..RetransmitPolicy::default()
        };
        // A transport that drops everything: the envelope is never ACKed.
        let mut transport = FaultyTransport::new(
            0,
            FaultSpec {
                drop: 1.0,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, policy);
        uplink.submit(one);
        let mut send_ticks = Vec::new();
        for now in 0..64u64 {
            let before = transport.log(0).sent;
            uplink.tick(now, &mut transport);
            if transport.log(0).sent > before {
                send_ticks.push(now);
            }
        }
        // due = 0, 1, 3, 7, 15, then +8 apiece once the shift caps.
        assert_eq!(&send_ticks[..5], &[0, 1, 3, 7, 15]);
        let tail: Vec<u64> = send_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            tail[4..].iter().all(|&d| d == 8),
            "capped backoff must be constant: {send_ticks:?}"
        );
    }

    #[test]
    fn ack_loss_causes_retransmission_but_no_double_count() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let n = reports.len() as u64;
        let mut transport = FaultyTransport::new(
            9,
            FaultSpec {
                ack_drop: 0.7,
                ..FaultSpec::NONE
            },
        );
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            500,
        );

        assert_eq!(uplink.in_flight(), 0);
        assert!(transport.log(0).acks_dropped > 0, "seed 9 drops ACKs");
        assert!(uplink.retransmissions > 0, "lost ACKs force resends");
        assert_eq!(collector.stats().accepted, n);
        assert_eq!(
            collector.stats().duplicates,
            uplink.retransmissions,
            "every redundant copy deduped, none double-counted"
        );
        assert_eq!(analyzer.ingest_stats().accepted, n);
    }

    #[test]
    fn mismatched_configs_are_acked_but_quarantined() {
        let cfg = agent_config();
        let mut reports = make_reports(0, &cfg);
        for r in &mut reports {
            r.config_fingerprint ^= 0x5555;
        }
        let n = reports.len() as u64;
        let mut transport = PerfectTransport::new();
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        run_rounds(
            &mut uplink,
            &mut transport,
            &mut collector,
            &mut analyzer,
            10,
        );

        assert_eq!(collector.stats().mismatched, n);
        assert_eq!(collector.stats().accepted, 0);
        assert_eq!(uplink.in_flight(), 0, "ACKed: resending cannot fix this");
        assert_eq!(analyzer.quarantined().len(), n as usize);
        assert!(analyzer.flow_curve(0, 7).is_none());
    }

    #[test]
    fn two_hosts_with_different_fault_links_stay_independent() {
        let cfg = agent_config();
        let r0 = make_reports(0, &cfg);
        let r1 = make_reports(1, &cfg);
        let n = r0.len() as u64;
        let mut transport = FaultyTransport::new(21, FaultSpec::NONE);
        transport.set_faults(
            1,
            FaultSpec {
                drop: 1.0,
                ..FaultSpec::NONE
            },
        );
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        for (seq, r) in r0.into_iter().enumerate() {
            transport.send(Envelope::seal(seq as u64, r));
        }
        for (seq, r) in r1.into_iter().enumerate() {
            transport.send(Envelope::seal(seq as u64, r));
        }
        collector.pump(&mut transport, &mut analyzer);
        assert_eq!(collector.stats().accepted, n);
        assert_eq!(transport.log(1).dropped, n);
        assert!(analyzer.flow_curve(0, 7).is_some());
        assert!(analyzer.flow_curve(1, 7).is_none(), "host 1's link is dead");
        assert_eq!(collector.hosts(), vec![0], "never heard from host 1");
    }

    #[test]
    fn envelope_verify_catches_tampering() {
        let cfg = agent_config();
        let reports = make_reports(0, &cfg);
        let env = Envelope::seal(0, reports[0].clone());
        assert!(env.verify());
        let mut bad = env.clone();
        FaultyTransport::truncate_payload(&mut bad);
        assert!(!bad.verify(), "truncation must break the seal");
    }
}
