//! The μEvent switch agent (§5): matches CE-marked packets with an ACL-style
//! rule, samples them on the low bits of their sequence number, and mirrors
//! the survivors to the analyzer with a per-port VLAN tag and a switch-local
//! timestamp.
//!
//! On a real commodity switch this is one ACL rule (match ECN == 0b11 and
//! `PSN & mask == 0`) bound to a remote-mirror action — the agent here
//! applies exactly that predicate to the simulator's mirror-candidate tap.

use umon_netsim::MirrorCandidate;

/// Which per-packet field the sampling predicate masks (§5 footnote: "a
/// more general method is to match timestamps, a random number, or checksum
/// that varies per packet" for traffic without sequence numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerField {
    /// The RoCEv2 PSN / TCP sequence number — uniform for in-order flows.
    #[default]
    SequenceNumber,
    /// The arrival timestamp's low bits — works for any protocol; slightly
    /// correlated with packet pacing.
    Timestamp,
    /// A checksum-like per-packet hash of (flow, psn) — protocol-agnostic
    /// and uncorrelated.
    Checksum,
}

/// Switch-agent configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchAgentConfig {
    /// Sampling shift `w`: a packet is mirrored iff the sampled field's
    /// lowest `w` bits are zero, i.e. with ratio `1/2^w` (Figure 8).
    /// 0 mirrors every CE packet.
    pub sampling_shift: u32,
    /// The field the sampler masks.
    pub field: SamplerField,
    /// Mirror only the first `truncate_bytes` of each packet (0 = whole
    /// packet). Real deployments often mirror headers only.
    pub truncate_bytes: u32,
    /// Overhead added per mirrored packet (encapsulation: VLAN tag +
    /// mirror header + timestamp), bytes.
    pub encap_bytes: u32,
}

impl Default for SwitchAgentConfig {
    fn default() -> Self {
        Self {
            sampling_shift: 6, // 1/64, the paper's headline setting
            field: SamplerField::SequenceNumber,
            truncate_bytes: 0,
            encap_bytes: 22,
        }
    }
}

impl SwitchAgentConfig {
    /// The sampling ratio `1/2^w` as a float.
    pub fn sampling_ratio(&self) -> f64 {
        1.0 / (1u64 << self.sampling_shift) as f64
    }
}

/// A packet the switch mirrored to the analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirroredPacket {
    /// Originating switch.
    pub switch: usize,
    /// VLAN tag identifying the egress port the event was observed on.
    pub vlan: u16,
    /// Switch-local timestamp, ns.
    pub ts_ns: u64,
    /// Flow id recovered from the mirrored headers.
    pub flow: u64,
    /// Sequence number of the mirrored packet.
    pub psn: u64,
    /// Bytes this mirror copy puts on the wire (after truncation + encap).
    pub wire_bytes: u32,
    /// Original packet size.
    pub orig_bytes: u32,
}

/// A sequence-numbered batch of mirrored packets shipped to the analyzer.
///
/// Mirrors travel the same lossy collection plane as host reports; the
/// per-switch sequence number lets the analyzer deduplicate redelivered
/// batches and detect lost ones (see `umon::collector`).
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorBatch {
    /// Originating switch.
    pub switch: usize,
    /// Per-switch monotonically increasing batch number.
    pub seq: u64,
    /// The mirrored packets.
    pub packets: Vec<MirroredPacket>,
}

/// The per-switch μEvent agent.
#[derive(Debug, Clone)]
pub struct SwitchAgent {
    /// The switch this agent is configured on.
    pub switch: usize,
    config: SwitchAgentConfig,
    mirrored: Vec<MirroredPacket>,
    next_batch_seq: u64,
    /// CE packets inspected (matched the ECN part of the rule).
    pub ce_seen: u64,
    /// CE packets passing the sampling predicate.
    pub ce_mirrored: u64,
}

impl SwitchAgent {
    /// Creates an agent for `switch`.
    pub fn new(switch: usize, config: SwitchAgentConfig) -> Self {
        Self {
            switch,
            config,
            mirrored: Vec::new(),
            next_batch_seq: 0,
            ce_seen: 0,
            ce_mirrored: 0,
        }
    }

    /// The ACL predicate: mask the configured field's low bits (Figure 8).
    #[inline]
    pub fn sample_hit(&self, c: &MirrorCandidate) -> bool {
        let mask = (1u64 << self.config.sampling_shift) - 1;
        let field = match self.config.field {
            SamplerField::SequenceNumber => c.psn,
            SamplerField::Timestamp => c.ts_ns >> 7, // ~128 ns resolution
            SamplerField::Checksum => {
                // A cheap per-packet "checksum": mixes flow and PSN so the
                // predicate is uniform even for protocols without sequence
                // numbers.
                let mut x = c.flow.0 ^ c.psn.rotate_left(17) ^ 0x9E37_79B9;
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
                x ^ (x >> 33)
            }
        };
        field & mask == 0
    }

    /// Offers one CE-marked packet observed at this switch's egress; mirrors
    /// it if the sampler hits.
    pub fn offer(&mut self, c: &MirrorCandidate) {
        debug_assert_eq!(c.switch, self.switch);
        self.ce_seen += 1;
        if !self.sample_hit(c) {
            return;
        }
        self.ce_mirrored += 1;
        let payload = if self.config.truncate_bytes == 0 {
            c.bytes
        } else {
            c.bytes.min(self.config.truncate_bytes)
        };
        self.mirrored.push(MirroredPacket {
            switch: self.switch,
            vlan: c.port as u16 + 1, // VLAN 0 is reserved
            ts_ns: c.ts_ns,
            flow: c.flow.0,
            psn: c.psn,
            wire_bytes: payload + self.config.encap_bytes,
            orig_bytes: c.bytes,
        });
    }

    /// Feeds every candidate belonging to this switch from a simulation tap.
    pub fn ingest(&mut self, candidates: &[MirrorCandidate]) {
        for c in candidates {
            if c.switch == self.switch {
                self.offer(c);
            }
        }
    }

    /// All mirrored packets so far.
    pub fn mirrored(&self) -> &[MirroredPacket] {
        &self.mirrored
    }

    /// Takes the mirrored packets, leaving the agent empty.
    pub fn drain(&mut self) -> Vec<MirroredPacket> {
        std::mem::take(&mut self.mirrored)
    }

    /// Takes the mirrored packets as a sequence-numbered batch for the
    /// collection plane. Even an empty batch consumes a sequence number, so
    /// the analyzer can tell "no events this period" from "batch lost".
    pub fn drain_batch(&mut self) -> MirrorBatch {
        let seq = self.next_batch_seq;
        self.next_batch_seq += 1;
        MirrorBatch {
            switch: self.switch,
            seq,
            packets: std::mem::take(&mut self.mirrored),
        }
    }

    /// Mirror bandwidth in bits per second over `span_ns` (Figure 15's
    /// per-switch cost).
    pub fn mirror_bandwidth_bps(&self, span_ns: u64) -> f64 {
        if span_ns == 0 {
            return 0.0;
        }
        let bits: u64 = self.mirrored.iter().map(|m| m.wire_bytes as u64 * 8).sum();
        bits as f64 / (span_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_netsim::FlowId;

    fn candidate(psn: u64, port: usize) -> MirrorCandidate {
        MirrorCandidate {
            switch: 20,
            port,
            ts_ns: psn * 100,
            flow: FlowId(7),
            psn,
            bytes: 1000,
        }
    }

    #[test]
    fn sampling_ratio_is_exactly_one_over_2w() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 3,
                ..Default::default()
            },
        );
        for psn in 0..800 {
            agent.offer(&candidate(psn, 0));
        }
        // PSNs 0..800 dense: exactly 100 have psn % 8 == 0.
        assert_eq!(agent.ce_mirrored, 100);
        assert_eq!(agent.ce_seen, 800);
    }

    #[test]
    fn shift_zero_mirrors_everything() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 0,
                ..Default::default()
            },
        );
        for psn in 0..10 {
            agent.offer(&candidate(psn, 0));
        }
        assert_eq!(agent.mirrored().len(), 10);
    }

    #[test]
    fn vlan_tags_distinguish_ports() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 0,
                ..Default::default()
            },
        );
        agent.offer(&candidate(0, 2));
        agent.offer(&candidate(8, 5));
        let m = agent.mirrored();
        assert_eq!(m[0].vlan, 3);
        assert_eq!(m[1].vlan, 6);
    }

    #[test]
    fn truncation_caps_mirror_bytes() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 0,
                truncate_bytes: 64,
                ..Default::default()
            },
        );
        agent.offer(&candidate(0, 0));
        assert_eq!(agent.mirrored()[0].wire_bytes, 64 + 22);
        assert_eq!(agent.mirrored()[0].orig_bytes, 1000);
    }

    #[test]
    fn bandwidth_scales_inversely_with_sampling() {
        let run = |shift: u32| -> f64 {
            let mut agent = SwitchAgent::new(
                20,
                SwitchAgentConfig {
                    sampling_shift: shift,
                    ..Default::default()
                },
            );
            for psn in 0..4096 {
                agent.offer(&candidate(psn, 0));
            }
            agent.mirror_bandwidth_bps(1_000_000)
        };
        let full = run(0);
        let sampled = run(6);
        assert!(
            (full / sampled - 64.0).abs() < 0.5,
            "ratio {}",
            full / sampled
        );
    }

    #[test]
    fn ingest_filters_by_switch() {
        let mut agent = SwitchAgent::new(20, SwitchAgentConfig::default());
        let mut other = candidate(0, 0);
        other.switch = 21;
        agent.ingest(&[candidate(0, 0), other]);
        assert_eq!(agent.ce_seen, 1);
    }

    #[test]
    fn all_sampler_fields_achieve_the_target_ratio() {
        // Dense PSN stream: every field variant must sample close to 1/2^w.
        for field in [
            SamplerField::SequenceNumber,
            SamplerField::Timestamp,
            SamplerField::Checksum,
        ] {
            let mut agent = SwitchAgent::new(
                20,
                SwitchAgentConfig {
                    sampling_shift: 4, // 1/16
                    field,
                    ..Default::default()
                },
            );
            for psn in 0..16_000u64 {
                // Irregular but dense timestamps.
                let mut c = candidate(psn, 0);
                c.ts_ns = psn * 137 + (psn % 7) * 31;
                agent.offer(&c);
            }
            let ratio = agent.ce_mirrored as f64 / agent.ce_seen as f64;
            assert!(
                (ratio - 1.0 / 16.0).abs() < 0.02,
                "{field:?}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn checksum_sampler_is_uniform_across_flows() {
        // Unlike PSN sampling, the checksum field must not systematically
        // favor flows whose PSNs start at 0 — sample many single-packet
        // flows and check the hit rate.
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 3, // 1/8
                field: SamplerField::Checksum,
                ..Default::default()
            },
        );
        for f in 0..8000u64 {
            let mut c = candidate(0, 0); // every flow's first packet: psn 0
            c.flow = umon_netsim::FlowId(f);
            agent.offer(&c);
        }
        let ratio = agent.ce_mirrored as f64 / agent.ce_seen as f64;
        assert!((ratio - 0.125).abs() < 0.02, "ratio {ratio}");
        // PSN sampling on the same stream would mirror 100% (all psn 0).
    }

    #[test]
    fn drain_batch_numbers_batches_including_empty_ones() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 0,
                ..Default::default()
            },
        );
        agent.offer(&candidate(0, 0));
        let b0 = agent.drain_batch();
        assert_eq!((b0.switch, b0.seq, b0.packets.len()), (20, 0, 1));
        let b1 = agent.drain_batch(); // nothing mirrored since
        assert_eq!((b1.seq, b1.packets.len()), (1, 0));
        agent.offer(&candidate(8, 0));
        assert_eq!(agent.drain_batch().seq, 2);
    }

    #[test]
    fn drain_empties_the_agent() {
        let mut agent = SwitchAgent::new(
            20,
            SwitchAgentConfig {
                sampling_shift: 0,
                ..Default::default()
            },
        );
        agent.offer(&candidate(0, 0));
        assert_eq!(agent.drain().len(), 1);
        assert!(agent.mirrored().is_empty());
    }
}
