//! The analyzer's ingest-time query index and reusable query scratch.
//!
//! Before this index existed, every `Analyzer::flow_curve` call linearly
//! rescanned every stored period's entire `light` and `heavy` lists once per
//! Count-Min row, and unpacked + rehashed every heavy key it passed. The
//! index moves all of that to ingest: [`QueryIndex::index_report`] runs once
//! per *accepted* report (after dedup and quarantine, so rejected reports
//! never pollute it) and records, per host,
//!
//! * `(row, col) → ordered light report refs` — the light buckets a query
//!   row reads,
//! * `packed heavy key → ordered heavy report refs` — the direct heavy-part
//!   hit, and
//! * `(row, col) → ordered heavy report refs` — the heavy flows whose light
//!   column collides with a bucket, i.e. exactly the subtraction set of the
//!   §4.2 full-version query,
//!
//! plus one config-wide `packed key → light columns per row` table so each
//! distinct heavy key is unpacked and hashed exactly once ever.
//!
//! Indexing alone only removes the scan; the remaining query time was
//! dominated by re-running the inverse wavelet transform on the same stored
//! epochs for every query. So ingest also reconstructs each accepted
//! report's epochs exactly once (through the index's own
//! [`ReconstructScratch`]) and caches the resulting window curves
//! ([`CachedEpoch`]); queries then reduce to accumulating cached `f64`
//! slices. The cached values are byte-for-byte what
//! `BucketReport::reconstruct_with` returns and are summed in the same
//! order, so curves stay bit-identical.
//!
//! A "ref" is `(period, position)` into the analyzer's period-keyed report
//! store, kept sorted by binary-search insertion — reports may arrive out of
//! order, but query-time iteration must walk periods ascending and, within a
//! period, entries in drain order, because that is the order the pre-index
//! code summed `f64` reconstructions in and float addition is
//! order-sensitive. Keeping the order identical keeps every curve
//! bit-identical (the golden query fixtures check this).

use crate::host_agent::PeriodReport;
use std::collections::HashMap;
use wavesketch::basic::WindowSeries;
use wavesketch::reconstruct::ReconstructScratch;
use wavesketch::{BucketReport, FlowKey, SketchConfig};

/// A reference to one entry of a stored period report: `(period, position)`
/// in either the period's `light` or `heavy` list (which one is fixed by the
/// index map the ref lives in).
pub(crate) type EntryRef = (u64, u32);

/// One stored epoch's reconstruction, cached at ingest: the epoch's opening
/// window and its `padded_len` clamped window values, bit-identical to what
/// `BucketReport::reconstruct_with` returns for the same report.
#[derive(Debug)]
pub(crate) struct CachedEpoch {
    pub(crate) w0: u64,
    pub(crate) curve: Box<[f64]>,
}

/// One period's cached reconstructions, positionally parallel to the stored
/// report's `light` and `heavy` lists (so an [`EntryRef`] addresses both the
/// report store and this cache). Heavy entries keep their packed key so the
/// subtraction path can skip the queried flow without touching the store.
#[derive(Debug, Default)]
pub(crate) struct CachedCurves {
    pub(crate) light: Vec<Vec<CachedEpoch>>,
    pub(crate) heavy: Vec<([u8; 13], Vec<CachedEpoch>)>,
}

/// Per-host query index; see the module docs.
#[derive(Debug, Default)]
pub(crate) struct HostIndex {
    /// `(row, col)` → refs into `report.light`, ordered.
    pub(crate) light: HashMap<(u32, u32), Vec<EntryRef>>,
    /// Packed heavy key → refs into `report.heavy`, ordered.
    pub(crate) heavy: HashMap<[u8; 13], Vec<EntryRef>>,
    /// `(row, col)` → refs into `report.heavy` for heavy keys whose light
    /// column at `row` is `col`, ordered. The subtraction set.
    pub(crate) heavy_by_col: HashMap<(u32, u32), Vec<EntryRef>>,
    /// Row-0 light refs (every packet lands in row 0 exactly once — the
    /// host-rate aggregation set), ordered.
    pub(crate) row0: Vec<EntryRef>,
    /// Period → that period's cached reconstructions.
    pub(crate) curves: HashMap<u64, CachedCurves>,
}

impl HostIndex {
    /// The cached light epochs behind one light ref.
    pub(crate) fn light_curves(&self, period: u64, i: u32) -> Option<&[CachedEpoch]> {
        self.curves
            .get(&period)
            .map(|c| c.light[i as usize].as_slice())
    }

    /// The packed key and cached epochs behind one heavy ref.
    pub(crate) fn heavy_entry(&self, period: u64, i: u32) -> Option<&([u8; 13], Vec<CachedEpoch>)> {
        self.curves.get(&period).map(|c| &c.heavy[i as usize])
    }
}

/// The analyzer-wide query index: one [`HostIndex`] per host plus the
/// config-global key-unpacking cache.
#[derive(Debug, Default)]
pub(crate) struct QueryIndex {
    hosts: HashMap<usize, HostIndex>,
    /// Packed heavy key → its light column per row. Columns depend only on
    /// the key and the sketch config, so the cache is shared across hosts
    /// and each key is unpacked + row-hashed exactly once at first sight.
    key_cols: HashMap<[u8; 13], Vec<u32>>,
    /// The ingest-time reconstruction scratch feeding the curve cache.
    recon: ReconstructScratch,
}

/// Inserts `entry` into an ordered ref list at its sorted position.
/// Duplicates cannot arise: the analyzer deduplicates `(host, period)`
/// before indexing, and one period contributes each position once.
fn insert_ordered(refs: &mut Vec<EntryRef>, entry: EntryRef) {
    let pos = refs.partition_point(|&e| e < entry);
    refs.insert(pos, entry);
}

impl QueryIndex {
    /// The index of `host`, if any report of that host was accepted.
    pub(crate) fn host(&self, host: usize) -> Option<&HostIndex> {
        self.hosts.get(&host)
    }

    /// The cached light columns of a packed heavy key.
    fn cols_of(&mut self, packed: [u8; 13], cfg: &SketchConfig) -> &[u32] {
        self.key_cols.entry(packed).or_insert_with(|| {
            let key = unpack_key(&packed);
            (0..cfg.rows)
                .map(|row| cfg.light_col(&key, row) as u32)
                .collect()
        })
    }

    /// Indexes one accepted report. Must be called exactly once per report
    /// that enters the store (and never for duplicates or quarantined
    /// reports), with the same `(host, period)` the store files it under.
    pub(crate) fn index_report(&mut self, host: usize, r: &PeriodReport, cfg: &SketchConfig) {
        let period = r.period;
        let mut cached = CachedCurves::default();
        for (i, (row, col, brs)) in r.report.light.iter().enumerate() {
            let entry = (period, i as u32);
            cached.light.push(cache_epochs(brs, &mut self.recon));
            let hidx = self.hosts.entry(host).or_default();
            insert_ordered(hidx.light.entry((*row, *col)).or_default(), entry);
            if *row == 0 {
                insert_ordered(&mut hidx.row0, entry);
            }
        }
        for (i, (k, brs)) in r.report.heavy.iter().enumerate() {
            let packed: [u8; 13] = k.as_slice().try_into().expect("packed keys are 13 bytes");
            let entry = (period, i as u32);
            cached
                .heavy
                .push((packed, cache_epochs(brs, &mut self.recon)));
            // Split borrows: resolve the key's columns first, then touch the
            // host maps.
            let cols: Vec<u32> = self.cols_of(packed, cfg).to_vec();
            let hidx = self.hosts.entry(host).or_default();
            insert_ordered(hidx.heavy.entry(packed).or_default(), entry);
            for (row, &col) in cols.iter().enumerate() {
                insert_ordered(
                    hidx.heavy_by_col.entry((row as u32, col)).or_default(),
                    entry,
                );
            }
        }
        // Filing the cache also marks the host as present even for a report
        // with no light and no heavy entries (matching the report store).
        self.hosts
            .entry(host)
            .or_default()
            .curves
            .insert(period, cached);
    }
}

/// Reconstructs every epoch of one stored bucket once, for the ingest-time
/// curve cache.
fn cache_epochs(brs: &[BucketReport], recon: &mut ReconstructScratch) -> Vec<CachedEpoch> {
    brs.iter()
        .map(|r| CachedEpoch {
            w0: r.w0,
            curve: r.reconstruct_with(recon).into(),
        })
        .collect()
}

/// Unpacks a 13-byte packed key back into a [`FlowKey`].
pub(crate) fn unpack_key(bytes: &[u8]) -> FlowKey {
    assert_eq!(bytes.len(), 13, "packed flow keys are 13 bytes");
    FlowKey {
        src_ip: [bytes[0], bytes[1], bytes[2], bytes[3]],
        dst_ip: [bytes[4], bytes[5], bytes[6], bytes[7]],
        src_port: u16::from_be_bytes([bytes[8], bytes[9]]),
        dst_port: u16::from_be_bytes([bytes[10], bytes[11]]),
        proto: bytes[12],
    }
}

/// Reusable buffers for the analyzer's query paths. Create one, keep it, and
/// pass it to `Analyzer::flow_curve_with` / `Analyzer::host_rate_curve_with`:
/// after one warm-up query per curve shape, subsequent queries perform zero
/// heap allocations (enforced by `tests/alloc_gate.rs`).
///
/// The returned `&WindowSeries` borrows the scratch and is valid until the
/// next query through it; clone it (or copy what you need) to keep a curve.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// The winning (min-total) light-part candidate; also the final curve
    /// when the heavy part overlays onto it.
    pub(crate) light_best: WindowSeries,
    /// The light-part candidate of the row currently being evaluated.
    pub(crate) light_cand: WindowSeries,
    /// Sum of colliding heavy flows to subtract from a light candidate.
    pub(crate) heavy_sub: WindowSeries,
    /// The flow's own concatenated heavy-part curve.
    pub(crate) heavy: WindowSeries,
    /// The host-rate aggregation buffer.
    pub(crate) rate: WindowSeries,
    /// Heavy epoch opening windows (`w0` per heavy report, in order).
    pub(crate) starts: Vec<u64>,
    /// The light estimate at each opening window, captured pre-overlay.
    pub(crate) light_at: Vec<f64>,
}

impl QueryScratch {
    /// A fresh scratch; buffers grow to the workload on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Streams the cached epoch curves behind `refs` into `out` in ref order:
/// pass 1 finds the union span, pass 2 resets `out` to it and accumulates
/// each epoch — the exact addition order (periods ascending, drain order
/// within a period) the pre-index `WindowSeries::from_reports` code used,
/// without materializing a report list or touching the wavelet kernel.
/// Returns `false` (series untouched semantics: `out` reset to empty) when
/// the refs resolve to no epochs, matching `from_reports(&[]) == None`.
///
/// `lookup` resolves one ref to its cached epochs and may return `None` to
/// skip a ref (the subtraction path skips the queried flow's own key).
pub(crate) fn series_from_refs<'r>(
    refs: &[EntryRef],
    lookup: impl Fn(u64, u32) -> Option<&'r [CachedEpoch]>,
    out: &mut WindowSeries,
) -> bool {
    let mut start = u64::MAX;
    let mut end = 0u64;
    let mut any = false;
    for &(period, i) in refs {
        if let Some(ces) = lookup(period, i) {
            for e in ces {
                any = true;
                start = start.min(e.w0);
                end = end.max(e.w0 + e.curve.len() as u64);
            }
        }
    }
    if !any {
        out.reset(0, 0);
        return false;
    }
    out.reset(start, (end - start) as usize);
    for &(period, i) in refs {
        if let Some(ces) = lookup(period, i) {
            for e in ces {
                out.accumulate_curve(e.w0, &e.curve);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_ordered_keeps_period_then_position_order() {
        let mut refs = Vec::new();
        for e in [(5u64, 0u32), (1, 1), (5, 2), (1, 0), (3, 0)] {
            insert_ordered(&mut refs, e);
        }
        assert_eq!(refs, vec![(1, 0), (1, 1), (3, 0), (5, 0), (5, 2)]);
    }

    #[test]
    fn unpack_key_inverts_pack() {
        let k = FlowKey::from_v4([1, 2, 3, 4], [9, 8, 7, 6], 0xABCD, 4791, 17);
        assert_eq!(unpack_key(&k.pack()), k);
    }
}
