//! The analyzer's ingest-time query index and reusable query scratch.
//!
//! Before this index existed, every `Analyzer::flow_curve` call linearly
//! rescanned every stored period's entire `light` and `heavy` lists once per
//! Count-Min row, and unpacked + rehashed every heavy key it passed. The
//! index moves all of that to ingest: [`QueryIndex::index_report`] runs once
//! per *accepted* report (after dedup and quarantine, so rejected reports
//! never pollute it) and records, per host,
//!
//! * `(row, col) → ordered light report refs` — the light buckets a query
//!   row reads,
//! * `packed heavy key → ordered heavy report refs` — the direct heavy-part
//!   hit, and
//! * `(row, col) → ordered heavy report refs` — the heavy flows whose light
//!   column collides with a bucket, i.e. exactly the subtraction set of the
//!   §4.2 full-version query,
//!
//! plus one config-wide `packed key → light columns per row` table so each
//! distinct heavy key is unpacked and hashed exactly once ever.
//!
//! Indexing alone only removes the scan; the remaining query time was
//! dominated by re-running the inverse wavelet transform on the same stored
//! epochs for every query. So ingest also reconstructs each accepted
//! report's epochs exactly once (through the index's own
//! [`ReconstructScratch`]) and caches the resulting window curves
//! ([`CachedEpoch`]); queries then reduce to accumulating cached `f64`
//! slices. The cached values are byte-for-byte what
//! `BucketReport::reconstruct_with` returns and are summed in the same
//! order, so curves stay bit-identical.
//!
//! A "ref" is `(period, position)` into the analyzer's period-keyed report
//! store, kept sorted by binary-search insertion — reports may arrive out of
//! order, but query-time iteration must walk periods ascending and, within a
//! period, entries in drain order, because that is the order the pre-index
//! code summed `f64` reconstructions in and float addition is
//! order-sensitive. Keeping the order identical keeps every curve
//! bit-identical (the golden query fixtures check this).

use crate::host_agent::PeriodReport;
use std::collections::HashMap;
use wavesketch::basic::WindowSeries;
use wavesketch::reconstruct::ReconstructScratch;
use wavesketch::{BucketReport, FlowKey, SketchConfig};

/// A reference to one entry of a stored period report: `(period, position)`
/// in either the period's `light` or `heavy` list (which one is fixed by the
/// index map the ref lives in).
pub(crate) type EntryRef = (u64, u32);

/// One stored epoch's reconstruction, cached at ingest: the epoch's opening
/// window and its `padded_len` clamped window values, bit-identical to what
/// `BucketReport::reconstruct_with` returns for the same report.
#[derive(Debug)]
pub(crate) struct CachedEpoch {
    pub(crate) w0: u64,
    pub(crate) curve: Box<[f64]>,
}

/// One period's cached reconstructions, positionally parallel to the stored
/// report's `light` and `heavy` lists (so an [`EntryRef`] addresses both the
/// report store and this cache). Heavy entries keep their packed key so the
/// subtraction path can skip the queried flow without touching the store.
#[derive(Debug, Default)]
pub(crate) struct CachedCurves {
    pub(crate) light: Vec<Vec<CachedEpoch>>,
    pub(crate) heavy: Vec<([u8; 13], Vec<CachedEpoch>)>,
}

/// Per-host query index; see the module docs.
#[derive(Debug, Default)]
pub(crate) struct HostIndex {
    /// `(row, col)` → refs into `report.light`, ordered.
    pub(crate) light: HashMap<(u32, u32), Vec<EntryRef>>,
    /// Packed heavy key → refs into `report.heavy`, ordered.
    pub(crate) heavy: HashMap<[u8; 13], Vec<EntryRef>>,
    /// `(row, col)` → refs into `report.heavy` for heavy keys whose light
    /// column at `row` is `col`, ordered. The subtraction set.
    pub(crate) heavy_by_col: HashMap<(u32, u32), Vec<EntryRef>>,
    /// Row-0 light refs (every packet lands in row 0 exactly once — the
    /// host-rate aggregation set), ordered.
    pub(crate) row0: Vec<EntryRef>,
    /// Period → that period's cached reconstructions.
    pub(crate) curves: HashMap<u64, CachedCurves>,
}

impl HostIndex {
    /// The cached light epochs behind one light ref.
    pub(crate) fn light_curves(&self, period: u64, i: u32) -> Option<&[CachedEpoch]> {
        self.curves
            .get(&period)
            .map(|c| c.light[i as usize].as_slice())
    }

    /// The packed key and cached epochs behind one heavy ref.
    pub(crate) fn heavy_entry(&self, period: u64, i: u32) -> Option<&([u8; 13], Vec<CachedEpoch>)> {
        self.curves.get(&period).map(|c| &c.heavy[i as usize])
    }
}

/// The analyzer-wide query index: one [`HostIndex`] per host plus the
/// config-global key-unpacking cache.
#[derive(Debug, Default)]
pub(crate) struct QueryIndex {
    hosts: HashMap<usize, HostIndex>,
    /// Packed heavy key → its light column per row. Columns depend only on
    /// the key and the sketch config, so the cache is shared across hosts
    /// and each key is unpacked + row-hashed exactly once at first sight.
    /// Bounded at [`KEY_COLS_CAP`]: it is a pure cache, so overflowing it
    /// (a very long run meeting ever-fresh flows) just clears and refills.
    key_cols: HashMap<[u8; 13], Vec<u32>>,
    /// The ingest-time reconstruction scratch feeding the curve cache.
    recon: ReconstructScratch,
    /// Bytes held by cached epoch curves across all hosts (the dominant
    /// index cost; maintained by [`Self::index_report`] and
    /// [`Self::deindex_period`]).
    cached_bytes: usize,
}

/// Cap on distinct heavy keys in the column-resolution cache (~4 MB at 3
/// rows). Without it the cache would be the analyzer's last unbounded map.
const KEY_COLS_CAP: usize = 1 << 17;

/// Bytes attributed to one cached epoch: its boxed curve plus the struct.
fn epoch_bytes(e: &CachedEpoch) -> usize {
    std::mem::size_of::<CachedEpoch>() + e.curve.len() * std::mem::size_of::<f64>()
}

/// Inserts `entry` into an ordered ref list at its sorted position.
/// Duplicates cannot arise: the analyzer deduplicates `(host, period)`
/// before indexing, and one period contributes each position once.
fn insert_ordered(refs: &mut Vec<EntryRef>, entry: EntryRef) {
    let pos = refs.partition_point(|&e| e < entry);
    refs.insert(pos, entry);
}

/// Removes every ref of `period` from an ordered ref list (they are
/// contiguous — the list is sorted by `(period, position)`).
fn remove_period(refs: &mut Vec<EntryRef>, period: u64) {
    let lo = refs.partition_point(|&(p, _)| p < period);
    let hi = refs.partition_point(|&(p, _)| p <= period);
    refs.drain(lo..hi);
}

impl QueryIndex {
    /// The index of `host`, if any report of that host was accepted.
    pub(crate) fn host(&self, host: usize) -> Option<&HostIndex> {
        self.hosts.get(&host)
    }

    /// The cached light columns of a packed heavy key.
    fn cols_of(&mut self, packed: [u8; 13], cfg: &SketchConfig) -> &[u32] {
        if self.key_cols.len() >= KEY_COLS_CAP && !self.key_cols.contains_key(&packed) {
            self.key_cols.clear();
        }
        self.key_cols.entry(packed).or_insert_with(|| {
            let key = unpack_key(&packed);
            (0..cfg.rows)
                .map(|row| cfg.light_col(&key, row) as u32)
                .collect()
        })
    }

    /// Marks `host` as present (empty index) — called for reports accepted
    /// straight into the compacted tier, so queries find the host even when
    /// none of its periods is indexed.
    pub(crate) fn ensure_host(&mut self, host: usize) {
        self.hosts.entry(host).or_default();
    }

    /// Bytes held by cached epoch curves across all hosts.
    pub(crate) fn cached_bytes(&self) -> usize {
        self.cached_bytes
    }

    /// The oldest `(period, host)` still carrying cached curves, if any —
    /// the next victim of a cached-bytes budget.
    pub(crate) fn oldest_indexed(&self) -> Option<(u64, usize)> {
        self.hosts
            .iter()
            .flat_map(|(&h, hidx)| hidx.curves.keys().map(move |&p| (p, h)))
            .min()
    }

    /// Indexed (hot) periods across all hosts.
    pub(crate) fn indexed_periods(&self) -> usize {
        self.hosts.values().map(|h| h.curves.len()).sum()
    }

    /// Removes one period of one host from the index entirely: every ref in
    /// every map and the period's cached curves. The stored report (still
    /// resident in the analyzer's compacted tier, or about to be evicted)
    /// tells us exactly which map entries to touch, so this is
    /// `O(period entries · log)` — no full-index sweep.
    pub(crate) fn deindex_period(
        &mut self,
        host: usize,
        r: &PeriodReport,
        cfg: &SketchConfig,
    ) -> bool {
        let period = r.period;
        let Some(hidx) = self.hosts.get_mut(&host) else {
            return false;
        };
        let Some(cached) = hidx.curves.remove(&period) else {
            return false;
        };
        let freed: usize = cached
            .light
            .iter()
            .flatten()
            .chain(cached.heavy.iter().flat_map(|(_, ces)| ces))
            .map(epoch_bytes)
            .sum();
        self.cached_bytes -= freed;
        for (row, col, _) in &r.report.light {
            if let Some(refs) = hidx.light.get_mut(&(*row, *col)) {
                remove_period(refs, period);
                if refs.is_empty() {
                    hidx.light.remove(&(*row, *col));
                }
            }
            if *row == 0 {
                remove_period(&mut hidx.row0, period);
            }
        }
        // Resolve heavy columns before mutating the host maps (split
        // borrows, same shape as `index_report`).
        let packed_cols: Vec<([u8; 13], Vec<u32>)> = r
            .report
            .heavy
            .iter()
            .map(|(k, _)| {
                let packed: [u8; 13] = k.as_slice().try_into().expect("packed keys are 13 bytes");
                (packed, self.cols_of(packed, cfg).to_vec())
            })
            .collect();
        let hidx = self.hosts.get_mut(&host).expect("host exists");
        for (packed, cols) in packed_cols {
            if let Some(refs) = hidx.heavy.get_mut(&packed) {
                remove_period(refs, period);
                if refs.is_empty() {
                    hidx.heavy.remove(&packed);
                }
            }
            for (row, col) in cols.into_iter().enumerate() {
                if let Some(refs) = hidx.heavy_by_col.get_mut(&(row as u32, col)) {
                    remove_period(refs, period);
                    if refs.is_empty() {
                        hidx.heavy_by_col.remove(&(row as u32, col));
                    }
                }
            }
        }
        true
    }

    /// Indexes one accepted report. Must be called exactly once per report
    /// that enters the store (and never for duplicates or quarantined
    /// reports), with the same `(host, period)` the store files it under.
    pub(crate) fn index_report(&mut self, host: usize, r: &PeriodReport, cfg: &SketchConfig) {
        let period = r.period;
        let mut cached = CachedCurves::default();
        for (i, (row, col, brs)) in r.report.light.iter().enumerate() {
            let entry = (period, i as u32);
            cached.light.push(cache_epochs(brs, &mut self.recon));
            let hidx = self.hosts.entry(host).or_default();
            insert_ordered(hidx.light.entry((*row, *col)).or_default(), entry);
            if *row == 0 {
                insert_ordered(&mut hidx.row0, entry);
            }
        }
        for (i, (k, brs)) in r.report.heavy.iter().enumerate() {
            let packed: [u8; 13] = k.as_slice().try_into().expect("packed keys are 13 bytes");
            let entry = (period, i as u32);
            cached
                .heavy
                .push((packed, cache_epochs(brs, &mut self.recon)));
            // Split borrows: resolve the key's columns first, then touch the
            // host maps.
            let cols: Vec<u32> = self.cols_of(packed, cfg).to_vec();
            let hidx = self.hosts.entry(host).or_default();
            insert_ordered(hidx.heavy.entry(packed).or_default(), entry);
            for (row, &col) in cols.iter().enumerate() {
                insert_ordered(
                    hidx.heavy_by_col.entry((row as u32, col)).or_default(),
                    entry,
                );
            }
        }
        self.cached_bytes += cached
            .light
            .iter()
            .flatten()
            .chain(cached.heavy.iter().flat_map(|(_, ces)| ces))
            .map(epoch_bytes)
            .sum::<usize>();
        // Filing the cache also marks the host as present even for a report
        // with no light and no heavy entries (matching the report store).
        self.hosts
            .entry(host)
            .or_default()
            .curves
            .insert(period, cached);
    }
}

/// Reconstructs every epoch of one stored bucket once, for the ingest-time
/// curve cache.
fn cache_epochs(brs: &[BucketReport], recon: &mut ReconstructScratch) -> Vec<CachedEpoch> {
    brs.iter()
        .map(|r| CachedEpoch {
            w0: r.w0,
            curve: r.reconstruct_with(recon).into(),
        })
        .collect()
}

/// Unpacks a 13-byte packed key back into a [`FlowKey`].
pub(crate) fn unpack_key(bytes: &[u8]) -> FlowKey {
    assert_eq!(bytes.len(), 13, "packed flow keys are 13 bytes");
    FlowKey {
        src_ip: [bytes[0], bytes[1], bytes[2], bytes[3]],
        dst_ip: [bytes[4], bytes[5], bytes[6], bytes[7]],
        src_port: u16::from_be_bytes([bytes[8], bytes[9]]),
        dst_port: u16::from_be_bytes([bytes[10], bytes[11]]),
        proto: bytes[12],
    }
}

/// Reusable buffers for the analyzer's query paths. Create one, keep it, and
/// pass it to `Analyzer::flow_curve_with` / `Analyzer::host_rate_curve_with`:
/// after one warm-up query per curve shape, subsequent queries perform zero
/// heap allocations (enforced by `tests/alloc_gate.rs`).
///
/// The returned `&WindowSeries` borrows the scratch and is valid until the
/// next query through it; clone it (or copy what you need) to keep a curve.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// The winning (min-total) light-part candidate; also the final curve
    /// when the heavy part overlays onto it.
    pub(crate) light_best: WindowSeries,
    /// The light-part candidate of the row currently being evaluated.
    pub(crate) light_cand: WindowSeries,
    /// Sum of colliding heavy flows to subtract from a light candidate.
    pub(crate) heavy_sub: WindowSeries,
    /// The flow's own concatenated heavy-part curve.
    pub(crate) heavy: WindowSeries,
    /// The host-rate aggregation buffer.
    pub(crate) rate: WindowSeries,
    /// Heavy epoch opening windows (`w0` per heavy report, in order).
    pub(crate) starts: Vec<u64>,
    /// The light estimate at each opening window, captured pre-overlay.
    pub(crate) light_at: Vec<f64>,
    /// Sparse-reconstruction scratch for epochs whose cached curve was
    /// compacted away; idle (and allocation-free) on the hot path.
    pub(crate) recon: ReconstructScratch,
    /// Cold-tier reports fetched for the current query (evicted periods
    /// read back from the archive), period-ascending. Filled once per query
    /// *before* the two-pass epoch walk so both passes see identical
    /// epochs; the `Rc`s keep the reports alive for the whole query even if
    /// the cold cache's byte budget evicts them mid-fetch.
    pub(crate) cold: Vec<std::rc::Rc<crate::host_agent::PeriodReport>>,
}

impl QueryScratch {
    /// A fresh scratch; buffers grow to the workload on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One epoch contribution to a series, from either storage tier: a cached
/// reconstruction (hot) or a raw wire report whose curve is reconstructed
/// sparsely on demand (compacted). `WindowSeries::accumulate_curve` and
/// `accumulate_report` are bit-identical for the same epoch, so a series
/// built from any mix of tiers equals the all-hot (and the pre-index
/// rescan) result exactly.
pub(crate) enum Epoch<'a> {
    /// A hot-tier epoch: accumulate its cached curve.
    Cached(&'a CachedEpoch),
    /// A compacted-tier epoch: reconstruct from the wire report.
    Raw(&'a BucketReport),
}

impl Epoch<'_> {
    fn span(&self) -> (u64, usize) {
        match self {
            Epoch::Cached(e) => (e.w0, e.curve.len()),
            Epoch::Raw(r) => (r.w0, r.padded_len),
        }
    }
}

/// Streams epochs into `out` in visit order: pass 1 finds the union span,
/// pass 2 resets `out` to it and accumulates each epoch — the exact
/// addition order (periods ascending, drain order within a period) the
/// pre-index `WindowSeries::from_reports` code used. Callers must visit
/// epochs in that order, compacted (older) periods before hot refs.
/// Returns `false` (with `out` reset to empty) when nothing is visited,
/// matching `from_reports(&[]) == None`; an epoch with an empty curve still
/// counts as visited (degenerate heavy records anchor coverage).
///
/// `for_each` is called twice and must yield the same epochs both times.
pub(crate) fn series_from_epochs(
    mut for_each: impl FnMut(&mut dyn FnMut(Epoch<'_>)),
    out: &mut WindowSeries,
    recon: &mut ReconstructScratch,
) -> bool {
    let mut start = u64::MAX;
    let mut end = 0u64;
    let mut any = false;
    for_each(&mut |e| {
        let (w0, len) = e.span();
        any = true;
        start = start.min(w0);
        end = end.max(w0 + len as u64);
    });
    if !any {
        out.reset(0, 0);
        return false;
    }
    out.reset(start, (end - start) as usize);
    for_each(&mut |e| match e {
        Epoch::Cached(c) => out.accumulate_curve(c.w0, &c.curve),
        Epoch::Raw(r) => out.accumulate_report(r, recon),
    });
    true
}

/// Visits the cached epochs behind `refs` in ref order — the hot-tier half
/// of a [`series_from_epochs`] visitation. `lookup` resolves one ref and
/// may return `None` to skip it (the subtraction path skips the queried
/// flow's own key).
pub(crate) fn visit_refs<'r>(
    refs: &[EntryRef],
    lookup: impl Fn(u64, u32) -> Option<&'r [CachedEpoch]>,
    f: &mut dyn FnMut(Epoch<'r>),
) {
    for &(period, i) in refs {
        if let Some(ces) = lookup(period, i) {
            for e in ces {
                f(Epoch::Cached(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_ordered_keeps_period_then_position_order() {
        let mut refs = Vec::new();
        for e in [(5u64, 0u32), (1, 1), (5, 2), (1, 0), (3, 0)] {
            insert_ordered(&mut refs, e);
        }
        assert_eq!(refs, vec![(1, 0), (1, 1), (3, 0), (5, 0), (5, 2)]);
    }

    #[test]
    fn unpack_key_inverts_pack() {
        let k = FlowKey::from_v4([1, 2, 3, 4], [9, 8, 7, 6], 0xABCD, 4791, 17);
        assert_eq!(unpack_key(&k.pack()), k);
    }
}
