//! The crash-safe on-disk period archive.
//!
//! Eviction without an archive is data loss; with one, it is tiering. The
//! analyzer appends every *accepted* report here at ingest time —
//! write-ahead, before the report becomes queryable — so whatever the
//! process does afterwards (evict, crash, restart), the accepted history is
//! on disk exactly once per `(host, period)`.
//!
//! Layout: one append-only segment file per host, `host_<id>.seg`, holding
//!
//! ```text
//! [8-byte magic "UMONSEG1"]
//! repeat: [payload_len: u32 LE] [fnv1a64(payload): u64 LE] [payload]
//! ```
//!
//! where each payload is the compact binary encoding of one
//! [`PeriodReport`]: period, host and config fingerprint as fixed LE u64s,
//! then the varint [`SketchReport`](wavesketch::SketchReport) codec from
//! `wavesketch::report`. The per-record checksum plays the same role as the
//! collection plane's [`Envelope`](crate::collector::Envelope) seal: a
//! record is either intact or detectably damaged, never silently wrong.
//!
//! Crash-recovery invariant: a crash mid-append can only damage the *tail*
//! of one segment. [`PeriodArchive::scan`] reads each segment until the
//! first truncated or checksum-failing record, keeps everything before it,
//! and reports the damaged tail; it never panics on arbitrary bytes.

use crate::host_agent::PeriodReport;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use wavesketch::SketchReport;

/// Leading magic of every segment file (8 bytes, versioned).
const MAGIC: &[u8; 8] = b"UMONSEG1";

/// Per-record payload cap: a corrupt length prefix must fail the scan, not
/// attempt a multi-gigabyte read.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// FNV-1a over a byte slice — the same family the collection plane uses for
/// envelope integrity.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one report into a record payload.
fn encode_payload(report: &PeriodReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + report.report.wire_bytes());
    out.extend_from_slice(&report.period.to_le_bytes());
    out.extend_from_slice(&(report.host as u64).to_le_bytes());
    out.extend_from_slice(&report.config_fingerprint.to_le_bytes());
    report.report.encode_into(&mut out);
    out
}

/// Decodes one record payload; `None` on truncation or trailing garbage.
fn decode_payload(payload: &[u8]) -> Option<PeriodReport> {
    if payload.len() < 24 {
        return None;
    }
    let period = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let host = usize::try_from(u64::from_le_bytes(payload[8..16].try_into().ok()?)).ok()?;
    let config_fingerprint = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let report = SketchReport::decode(&payload[24..])?;
    Some(PeriodReport {
        period,
        host,
        config_fingerprint,
        report,
    })
}

/// What a [`PeriodArchive::scan`] found on disk.
#[derive(Debug, Default)]
pub struct ArchiveScan {
    /// Every intact archived report, ordered `(host, period)` ascending.
    pub reports: Vec<PeriodReport>,
    /// Hosts whose segment ended in a damaged or truncated record (the
    /// intact prefix is still in `reports`).
    pub damaged_tails: Vec<usize>,
}

/// An open period archive rooted at one directory.
#[derive(Debug)]
pub struct PeriodArchive {
    dir: PathBuf,
    /// Open append handles, one per host heard.
    files: HashMap<usize, File>,
}

impl PeriodArchive {
    /// Opens (creating if needed) an archive directory for appending.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            files: HashMap::new(),
        })
    }

    /// The archive's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(dir: &Path, host: usize) -> PathBuf {
        dir.join(format!("host_{host}.seg"))
    }

    /// Appends one accepted report to its host's segment, creating the
    /// segment (with magic) on first use. The record is flushed to the OS
    /// before this returns, so a later process crash cannot lose it.
    pub fn append(&mut self, report: &PeriodReport) -> std::io::Result<()> {
        let host = report.host;
        if !self.files.contains_key(&host) {
            let path = Self::segment_path(&self.dir, host);
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if file.metadata()?.len() == 0 {
                file.write_all(MAGIC)?;
            }
            self.files.insert(host, file);
        }
        let file = self.files.get_mut(&host).expect("just inserted");
        let payload = encode_payload(report);
        // One buffered write per record keeps a crash from interleaving
        // half-records from different appends.
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        file.write_all(&record)?;
        file.flush()
    }

    /// Reads every segment under `dir`, keeping each segment's intact record
    /// prefix. Tolerates a damaged or truncated tail per segment (the
    /// expected shape after a crash mid-append) — and, conservatively, any
    /// other trailing garbage — without panicking.
    pub fn scan(dir: impl AsRef<Path>) -> std::io::Result<ArchiveScan> {
        let dir = dir.as_ref();
        let mut out = ArchiveScan::default();
        if !dir.exists() {
            return Ok(out);
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(host) = name
                .strip_prefix("host_")
                .and_then(|n| n.strip_suffix(".seg"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            if !Self::scan_segment(&bytes, &mut out.reports) {
                out.damaged_tails.push(host);
            }
        }
        out.reports.sort_by_key(|r| (r.host, r.period));
        out.damaged_tails.sort_unstable();
        Ok(out)
    }

    /// Appends one segment's intact records to `reports`; `false` if the
    /// segment ended in damage (bad magic, truncated record, checksum or
    /// decode failure).
    fn scan_segment(bytes: &[u8], reports: &mut Vec<PeriodReport>) -> bool {
        let Some(body) = bytes.strip_prefix(MAGIC.as_slice()) else {
            return false;
        };
        let mut pos = 0usize;
        while pos < body.len() {
            let Some(header) = body.get(pos..pos + 12) else {
                return false;
            };
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                return false;
            }
            let want = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            let Some(payload) = body.get(pos + 12..pos + 12 + len as usize) else {
                return false;
            };
            if fnv1a64(payload) != want {
                return false;
            }
            let Some(report) = decode_payload(payload) else {
                return false;
            };
            reports.push(report);
            pos += 12 + len as usize;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_agent::{HostAgent, HostAgentConfig};
    use wavesketch::SketchConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("umon_archive_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_reports(host: usize) -> Vec<PeriodReport> {
        let cfg = HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 16 << 13,
            window_shift: 13,
        };
        let mut agent = HostAgent::new(host, cfg);
        for w in [1u64, 5, 18, 22, 35, 40] {
            agent.observe(7, w << 13, 900);
        }
        agent.finish()
    }

    #[test]
    fn roundtrip_across_hosts() {
        let dir = tmp_dir("roundtrip");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let mut want = Vec::new();
        for host in [3usize, 0] {
            for r in sample_reports(host) {
                archive.append(&r).unwrap();
                want.push(r);
            }
        }
        drop(archive);
        want.sort_by_key(|r| (r.host, r.period));

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert!(scan.damaged_tails.is_empty());
        assert_eq!(scan.reports.len(), want.len());
        for (got, want) in scan.reports.iter().zip(&want) {
            assert_eq!(got.host, want.host);
            assert_eq!(got.period, want.period);
            assert_eq!(got.config_fingerprint, want.config_fingerprint);
            assert_eq!(got.report, want.report);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_the_intact_prefix() {
        let dir = tmp_dir("truncated");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        assert!(reports.len() >= 2);
        for r in &reports {
            archive.append(r).unwrap();
        }
        drop(archive);

        let path = dir.join("host_0.seg");
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record: the crash-mid-append shape.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![0]);
        assert_eq!(scan.reports.len(), reports.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_is_detected_and_quarantines_the_tail() {
        let dir = tmp_dir("bitflip");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        for r in &reports {
            archive.append(r).unwrap();
        }
        drop(archive);

        let path = dir.join("host_0.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // damage inside the last record's payload
        std::fs::write(&path, &bytes).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![0]);
        assert_eq!(scan.reports.len(), reports.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_appends_instead_of_clobbering() {
        let dir = tmp_dir("reopen");
        let reports = sample_reports(0);
        assert!(reports.len() >= 2);
        {
            let mut archive = PeriodArchive::open(&dir).unwrap();
            archive.append(&reports[0]).unwrap();
        }
        {
            let mut archive = PeriodArchive::open(&dir).unwrap();
            archive.append(&reports[1]).unwrap();
        }
        let scan = PeriodArchive::scan(&dir).unwrap();
        assert!(scan.damaged_tails.is_empty());
        assert_eq!(scan.reports.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scanning_a_missing_directory_is_empty_not_an_error() {
        let scan = PeriodArchive::scan(tmp_dir("never_created")).unwrap();
        assert!(scan.reports.is_empty());
        assert!(scan.damaged_tails.is_empty());
    }

    #[test]
    fn garbage_file_without_magic_is_a_damaged_tail() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("host_4.seg"), b"not a segment").unwrap();
        std::fs::write(dir.join("README"), b"ignored").unwrap();
        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![4]);
        assert!(scan.reports.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
