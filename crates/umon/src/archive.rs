//! The crash-safe on-disk period archive.
//!
//! Eviction without an archive is data loss; with one, it is tiering. The
//! analyzer appends every *accepted* report here at ingest time —
//! write-ahead, before the report becomes queryable — so whatever the
//! process does afterwards (evict, crash, restart), the accepted history is
//! on disk exactly once per `(host, period)`.
//!
//! Layout: one append-only segment file per host, `host_<id>.seg`, holding
//!
//! ```text
//! [8-byte magic "UMONSEG1"]
//! repeat: [payload_len: u32 LE] [fnv1a64(payload): u64 LE] [payload]
//! ```
//!
//! where each payload is the compact binary encoding of one
//! [`PeriodReport`]: period, host and config fingerprint as fixed LE u64s,
//! then the varint [`SketchReport`](wavesketch::SketchReport) codec from
//! `wavesketch::report`. The per-record checksum plays the same role as the
//! collection plane's [`Envelope`](crate::collector::Envelope) seal: a
//! record is either intact or detectably damaged, never silently wrong.
//!
//! Crash-recovery invariant: a crash mid-append can only damage the *tail*
//! of one segment. [`PeriodArchive::scan`] reads each segment until the
//! first truncated or checksum-failing record, keeps everything before it,
//! and reports the damaged tail as a [`TornTail`] (with a best-effort count
//! of the records lost); it never panics on arbitrary bytes. Recovery
//! truncates torn tails ([`PeriodArchive::truncate_damage`]) so subsequent
//! appends — including backfilled re-uploads of the lost records — land on
//! a clean segment instead of behind unreachable garbage.
//!
//! Since PR 8 the archive is also the analyzer's *cold tier*: [`append`]
//! returns the record's [`SegLoc`] and [`read_record_at`] reads one record
//! back by location, so evicted periods stay queryable from disk.
//!
//! [`append`]: PeriodArchive::append
//! [`read_record_at`]: PeriodArchive::read_record_at

use crate::host_agent::PeriodReport;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wavesketch::SketchReport;

/// Leading magic of every segment file (8 bytes, versioned).
const MAGIC: &[u8; 8] = b"UMONSEG1";

/// Per-record payload cap: a corrupt length prefix must fail the scan, not
/// attempt a multi-gigabyte read.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// FNV-1a over a byte slice — the same family the collection plane uses for
/// envelope integrity.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one report into a record payload.
fn encode_payload(report: &PeriodReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + report.report.wire_bytes());
    out.extend_from_slice(&report.period.to_le_bytes());
    out.extend_from_slice(&(report.host as u64).to_le_bytes());
    out.extend_from_slice(&report.config_fingerprint.to_le_bytes());
    report.report.encode_into(&mut out);
    out
}

/// Decodes one record payload; `None` on truncation or trailing garbage.
fn decode_payload(payload: &[u8]) -> Option<PeriodReport> {
    if payload.len() < 24 {
        return None;
    }
    let period = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let host = usize::try_from(u64::from_le_bytes(payload[8..16].try_into().ok()?)).ok()?;
    let config_fingerprint = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let report = SketchReport::decode(&payload[24..])?;
    Some(PeriodReport {
        period,
        host,
        config_fingerprint,
        report,
    })
}

/// The byte location of one record inside its host's segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegLoc {
    /// Byte offset of the record header (length prefix) from file start.
    pub offset: u64,
    /// Total record span in bytes: 12-byte header plus payload.
    pub len: u32,
}

/// One segment's damaged tail: what a crash (or bit rot) cost us, reported
/// so recovery can distinguish "clean shutdown" from "lost data, backfill
/// needed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// The host whose segment is damaged.
    pub host: usize,
    /// Best-effort count of records in the damaged region (record framing
    /// is walked by length prefix even where checksums fail; a trailing
    /// partial record counts as one).
    pub lost_records: u64,
    /// Bytes in the damaged region.
    pub lost_bytes: u64,
    /// File length of the intact prefix (including magic) — the truncation
    /// point that makes the segment clean again.
    pub intact_bytes: u64,
}

/// What a [`PeriodArchive::scan`] found on disk.
#[derive(Debug, Default)]
pub struct ArchiveScan {
    /// Every intact archived report, ordered `(host, period)` ascending.
    pub reports: Vec<PeriodReport>,
    /// Byte location of each record in its host segment, parallel to
    /// `reports`.
    pub locs: Vec<SegLoc>,
    /// Hosts whose segment ended in a damaged or truncated record (the
    /// intact prefix is still in `reports`).
    pub damaged_tails: Vec<usize>,
    /// Per-segment damage detail, parallel in host order to
    /// `damaged_tails`.
    pub torn_tails: Vec<TornTail>,
}

/// One host's open append handle plus its current file length (the offset
/// the next record will land at).
#[derive(Debug)]
struct Segment {
    file: File,
    len: u64,
}

/// An open period archive rooted at one directory.
#[derive(Debug)]
pub struct PeriodArchive {
    dir: PathBuf,
    /// Open append handles, one per host heard.
    files: HashMap<usize, Segment>,
}

impl PeriodArchive {
    /// Opens (creating if needed) an archive directory for appending.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            files: HashMap::new(),
        })
    }

    /// The archive's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(dir: &Path, host: usize) -> PathBuf {
        dir.join(format!("host_{host}.seg"))
    }

    /// Appends one accepted report to its host's segment, creating the
    /// segment (with magic) on first use. The record is flushed to the OS
    /// before this returns, so a later process crash cannot lose it.
    /// Returns the record's location for the cold-tier index.
    pub fn append(&mut self, report: &PeriodReport) -> std::io::Result<SegLoc> {
        let host = report.host;
        if !self.files.contains_key(&host) {
            let path = Self::segment_path(&self.dir, host);
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            let mut len = file.metadata()?.len();
            if len == 0 {
                file.write_all(MAGIC)?;
                len = MAGIC.len() as u64;
            }
            self.files.insert(host, Segment { file, len });
        }
        let seg = self.files.get_mut(&host).expect("just inserted");
        let payload = encode_payload(report);
        // One buffered write per record keeps a crash from interleaving
        // half-records from different appends.
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        seg.file.write_all(&record)?;
        seg.file.flush()?;
        let loc = SegLoc {
            offset: seg.len,
            len: record.len() as u32,
        };
        seg.len += record.len() as u64;
        Ok(loc)
    }

    /// Reads one record back by location from `dir` (no open archive
    /// needed — the cold read path runs behind `&Analyzer`). Returns
    /// `Ok(None)` if the record no longer verifies (truncated, checksum or
    /// decode failure) — possible only if the segment was damaged after the
    /// location was indexed.
    pub fn read_record_at(
        dir: impl AsRef<Path>,
        host: usize,
        loc: SegLoc,
    ) -> std::io::Result<Option<PeriodReport>> {
        let path = Self::segment_path(dir.as_ref(), host);
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut record = vec![0u8; loc.len as usize];
        if file.read_exact(&mut record).is_err() {
            return Ok(None);
        }
        if record.len() < 12 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(record[0..4].try_into().expect("4 bytes"));
        if len as usize != record.len() - 12 {
            return Ok(None);
        }
        let want = u64::from_le_bytes(record[4..12].try_into().expect("8 bytes"));
        let payload = &record[12..];
        if fnv1a64(payload) != want {
            return Ok(None);
        }
        Ok(decode_payload(payload))
    }

    /// Truncates every torn segment in `scan` back to its intact prefix, so
    /// later appends (and the backfilled re-uploads of the lost records)
    /// extend a clean segment instead of hiding behind unreachable bytes.
    pub fn truncate_damage(&mut self, scan: &ArchiveScan) -> std::io::Result<()> {
        for tail in &scan.torn_tails {
            // Drop any open handle first: its tracked length is stale.
            self.files.remove(&tail.host);
            let path = Self::segment_path(&self.dir, tail.host);
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(tail.intact_bytes)?;
        }
        Ok(())
    }

    /// Reads every segment under `dir`, keeping each segment's intact record
    /// prefix. Tolerates a damaged or truncated tail per segment (the
    /// expected shape after a crash mid-append) — and, conservatively, any
    /// other trailing garbage — without panicking.
    pub fn scan(dir: impl AsRef<Path>) -> std::io::Result<ArchiveScan> {
        let dir = dir.as_ref();
        let mut out = ArchiveScan::default();
        if !dir.exists() {
            return Ok(out);
        }
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(host) = name
                .strip_prefix("host_")
                .and_then(|n| n.strip_suffix(".seg"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            if let Some(tail) = Self::scan_segment(host, &bytes, &mut out.reports, &mut out.locs) {
                out.damaged_tails.push(host);
                out.torn_tails.push(tail);
            }
        }
        let locs = std::mem::take(&mut out.locs);
        let mut zipped: Vec<(PeriodReport, SegLoc)> = out.reports.drain(..).zip(locs).collect();
        zipped.sort_by_key(|(r, _)| (r.host, r.period));
        for (r, l) in zipped {
            out.reports.push(r);
            out.locs.push(l);
        }
        out.damaged_tails.sort_unstable();
        out.torn_tails.sort_unstable_by_key(|t| t.host);
        Ok(out)
    }

    /// Appends one segment's intact records (and their locations) to
    /// `reports`/`locs`; `Some(TornTail)` if the segment ended in damage
    /// (bad magic, truncated record, checksum or decode failure). The
    /// damaged region is walked by length prefix — record framing survives
    /// payload corruption — to count how many records it held.
    fn scan_segment(
        host: usize,
        bytes: &[u8],
        reports: &mut Vec<PeriodReport>,
        locs: &mut Vec<SegLoc>,
    ) -> Option<TornTail> {
        let Some(body) = bytes.strip_prefix(MAGIC.as_slice()) else {
            return Some(TornTail {
                host,
                lost_records: u64::from(!bytes.is_empty()),
                lost_bytes: bytes.len() as u64,
                intact_bytes: 0,
            });
        };
        let magic = MAGIC.len();
        let mut pos = 0usize;
        while pos < body.len() {
            let Some((len, want)) = Self::read_header(body, pos) else {
                break;
            };
            let Some(payload) = body.get(pos + 12..pos + 12 + len) else {
                break;
            };
            if fnv1a64(payload) != want {
                break;
            }
            let Some(report) = decode_payload(payload) else {
                break;
            };
            reports.push(report);
            locs.push(SegLoc {
                offset: (magic + pos) as u64,
                len: (12 + len) as u32,
            });
            pos += 12 + len;
        }
        if pos >= body.len() {
            return None;
        }
        // Damaged region: count records by walking length prefixes without
        // trusting checksums; a partial trailing record counts as one.
        let intact = pos;
        let mut lost = 0u64;
        while pos < body.len() {
            lost += 1;
            match Self::read_header(body, pos) {
                Some((len, _)) if pos + 12 + len <= body.len() => pos += 12 + len,
                _ => break,
            }
        }
        Some(TornTail {
            host,
            lost_records: lost,
            lost_bytes: (body.len() - intact) as u64,
            intact_bytes: (magic + intact) as u64,
        })
    }

    /// Reads the `[len][checksum]` record header at `pos`, rejecting
    /// truncated headers and implausible lengths.
    fn read_header(body: &[u8], pos: usize) -> Option<(usize, u64)> {
        let header = body.get(pos..pos + 12)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return None;
        }
        let want = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        Some((len as usize, want))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_agent::{HostAgent, HostAgentConfig};
    use wavesketch::SketchConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("umon_archive_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_reports(host: usize) -> Vec<PeriodReport> {
        let cfg = HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 16 << 13,
            window_shift: 13,
        };
        let mut agent = HostAgent::new(host, cfg);
        for w in [1u64, 5, 18, 22, 35, 40] {
            agent.observe(7, w << 13, 900);
        }
        agent.finish()
    }

    #[test]
    fn roundtrip_across_hosts() {
        let dir = tmp_dir("roundtrip");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let mut want = Vec::new();
        for host in [3usize, 0] {
            for r in sample_reports(host) {
                archive.append(&r).unwrap();
                want.push(r);
            }
        }
        drop(archive);
        want.sort_by_key(|r| (r.host, r.period));

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert!(scan.damaged_tails.is_empty());
        assert_eq!(scan.reports.len(), want.len());
        for (got, want) in scan.reports.iter().zip(&want) {
            assert_eq!(got.host, want.host);
            assert_eq!(got.period, want.period);
            assert_eq!(got.config_fingerprint, want.config_fingerprint);
            assert_eq!(got.report, want.report);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_the_intact_prefix() {
        let dir = tmp_dir("truncated");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        assert!(reports.len() >= 2);
        for r in &reports {
            archive.append(r).unwrap();
        }
        drop(archive);

        let path = dir.join("host_0.seg");
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record: the crash-mid-append shape.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![0]);
        assert_eq!(scan.reports.len(), reports.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_is_detected_and_quarantines_the_tail() {
        let dir = tmp_dir("bitflip");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        for r in &reports {
            archive.append(r).unwrap();
        }
        drop(archive);

        let path = dir.join("host_0.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // damage inside the last record's payload
        std::fs::write(&path, &bytes).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![0]);
        assert_eq!(scan.reports.len(), reports.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_appends_instead_of_clobbering() {
        let dir = tmp_dir("reopen");
        let reports = sample_reports(0);
        assert!(reports.len() >= 2);
        {
            let mut archive = PeriodArchive::open(&dir).unwrap();
            archive.append(&reports[0]).unwrap();
        }
        {
            let mut archive = PeriodArchive::open(&dir).unwrap();
            archive.append(&reports[1]).unwrap();
        }
        let scan = PeriodArchive::scan(&dir).unwrap();
        assert!(scan.damaged_tails.is_empty());
        assert_eq!(scan.reports.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scanning_a_missing_directory_is_empty_not_an_error() {
        let scan = PeriodArchive::scan(tmp_dir("never_created")).unwrap();
        assert!(scan.reports.is_empty());
        assert!(scan.damaged_tails.is_empty());
    }

    #[test]
    fn read_back_by_location_roundtrips() {
        let dir = tmp_dir("readback");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(2);
        let mut locs = Vec::new();
        for r in &reports {
            locs.push(archive.append(r).unwrap());
        }
        drop(archive);

        for (r, loc) in reports.iter().zip(&locs) {
            let got = PeriodArchive::read_record_at(&dir, 2, *loc)
                .unwrap()
                .expect("record verifies");
            assert_eq!(got.period, r.period);
            assert_eq!(got.report, r.report);
        }
        // The scan reports the same locations append returned.
        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.locs, locs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_counted_and_truncation_makes_the_segment_clean_again() {
        let dir = tmp_dir("torn_truncate");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        assert!(reports.len() >= 2);
        for r in &reports {
            archive.append(r).unwrap();
        }
        drop(archive);

        let path = dir.join("host_0.seg");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![0]);
        let tail = scan.torn_tails[0];
        assert_eq!(tail.lost_records, 1);
        assert!(tail.lost_bytes > 0);
        assert_eq!(scan.reports.len(), reports.len() - 1);

        // Truncate the damage; a re-appended record must be scannable
        // (not hidden behind unreachable garbage).
        let mut archive = PeriodArchive::open(&dir).unwrap();
        archive.truncate_damage(&scan).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            tail.intact_bytes,
            "segment truncated to its intact prefix"
        );
        archive.append(reports.last().unwrap()).unwrap();
        drop(archive);

        let rescan = PeriodArchive::scan(&dir).unwrap();
        assert!(rescan.damaged_tails.is_empty());
        assert_eq!(rescan.reports.len(), reports.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_damage_walk_counts_every_record_behind_the_tear() {
        let dir = tmp_dir("walk_count");
        let mut archive = PeriodArchive::open(&dir).unwrap();
        let reports = sample_reports(0);
        assert!(reports.len() >= 3);
        let mut locs = Vec::new();
        for r in &reports {
            locs.push(archive.append(r).unwrap());
        }
        drop(archive);

        // Flip a byte inside the SECOND record's payload: everything from
        // that record on is quarantined, but framing still counts them.
        let path = dir.join("host_0.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let hit = locs[1].offset as usize + 12 + 3;
        bytes[hit] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.reports.len(), 1);
        let tail = scan.torn_tails[0];
        assert_eq!(tail.lost_records, (reports.len() - 1) as u64);
        assert_eq!(tail.intact_bytes, locs[1].offset);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_without_magic_is_a_damaged_tail() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("host_4.seg"), b"not a segment").unwrap();
        std::fs::write(dir.join("README"), b"ignored").unwrap();
        let scan = PeriodArchive::scan(&dir).unwrap();
        assert_eq!(scan.damaged_tails, vec![4]);
        assert!(scan.reports.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
