//! The μFlow host agent: a full WaveSketch fed by the host's egress packet
//! stream, drained into an uploadable report every measurement period.

use umon_netsim::TxRecord;
use wavesketch::{FlowKey, FullWaveSketch, SketchConfig, SketchReport};

/// Host-agent configuration.
#[derive(Debug, Clone)]
pub struct HostAgentConfig {
    /// Sketch layout and wavelet parameters.
    pub sketch: SketchConfig,
    /// Measurement / reporting period in ns (paper: 20 ms).
    pub period_ns: u64,
    /// Window id = local timestamp >> this shift (13 → 8.192 μs windows).
    pub window_shift: u32,
}

impl Default for HostAgentConfig {
    fn default() -> Self {
        Self {
            sketch: SketchConfig::builder()
                .rows(3)
                .width(256)
                .levels(8)
                .topk(64)
                .max_windows(4096)
                .heavy_rows(256)
                .build(),
            period_ns: 20_000_000,
            window_shift: wavesketch::DEFAULT_WINDOW_SHIFT,
        }
    }
}

/// One uploaded report: the sketch contents of one measurement period.
/// Serializable so reports can be archived and replayed into an analyzer
/// offline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PeriodReport {
    /// Period index (`floor(local_ts / period_ns)`).
    pub period: u64,
    /// Reporting host.
    pub host: usize,
    /// Fingerprint of the sketch configuration that produced the report —
    /// the analyzer can only reconstruct reports matching its own config.
    pub config_fingerprint: u64,
    /// The drained sketch.
    pub report: SketchReport,
}

impl PeriodReport {
    /// Envelope metadata bytes each upload carries in addition to the sketch
    /// payload: period index (8) + host id (4) + config fingerprint (8) +
    /// the collector sequence number (8, see `umon::collector::Envelope`).
    pub const ENVELOPE_WIRE_BYTES: usize = 28;

    /// Upload size in bytes, envelope included. Earlier accounting forwarded
    /// to the payload alone and undercounted the bandwidth-vs-accuracy
    /// experiments by the per-period envelope overhead.
    pub fn wire_bytes(&self) -> usize {
        Self::ENVELOPE_WIRE_BYTES + self.report.wire_bytes()
    }
}

/// The per-host measurement agent.
///
/// ```
/// use umon::{HostAgent, HostAgentConfig};
///
/// let mut agent = HostAgent::new(0, HostAgentConfig::default());
/// // One packet of 1500 B at t = 1 ms for flow 7.
/// agent.observe(7, 1_000_000, 1500);
/// let reports = agent.finish();
/// assert_eq!(reports.len(), 1);
/// assert!(reports[0].wire_bytes() > 0);
/// ```
pub struct HostAgent {
    /// This host's node id.
    pub host: usize,
    config: HostAgentConfig,
    sketch: FullWaveSketch,
    current_period: Option<u64>,
    finished: Vec<PeriodReport>,
    /// Staging buffer for [`Self::ingest`]: records of the current period
    /// accumulate here and flush through the sketch's batch pipeline. Always
    /// empty between calls (drained at every period boundary and at the end
    /// of each ingest slice), so mixing `ingest` and `observe` stays sound.
    ingest_buf: Vec<(FlowKey, u64, i64)>,
    /// Total packets observed.
    pub packets: u64,
    /// Total bytes observed.
    pub bytes: u64,
}

impl HostAgent {
    /// Creates an agent for `host`.
    pub fn new(host: usize, config: HostAgentConfig) -> Self {
        let sketch = FullWaveSketch::new(config.sketch.clone());
        Self {
            host,
            config,
            sketch,
            current_period: None,
            finished: Vec::new(),
            ingest_buf: Vec::new(),
            packets: 0,
            bytes: 0,
        }
    }

    /// Observes one egress packet (already timestamped with the host's local
    /// clock). Records must arrive in non-decreasing timestamp order.
    pub fn observe(&mut self, flow_id: u64, local_ts_ns: u64, bytes: u32) {
        let period = local_ts_ns / self.config.period_ns;
        match self.current_period {
            None => self.current_period = Some(period),
            Some(cur) if period > cur => {
                self.flush_period(cur);
                self.current_period = Some(period);
            }
            _ => {}
        }
        let window = local_ts_ns >> self.config.window_shift;
        let key = FlowKey::from_id(flow_id);
        self.sketch.update(&key, window, bytes as i64);
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Feeds every record of this host from a simulation tap, batching
    /// consecutive same-period records through the sketch's SIMD batch
    /// pipeline ([`FullWaveSketch::update_batch`]). Bit-identical to calling
    /// [`Self::observe`] per record: the staging buffer flushes *before*
    /// every period drain and again at the end of the slice, so drains see
    /// exactly the records a scalar replay would have applied.
    pub fn ingest(&mut self, records: &[TxRecord]) {
        for r in records {
            if r.host != self.host {
                continue;
            }
            let period = r.ts_ns / self.config.period_ns;
            match self.current_period {
                None => self.current_period = Some(period),
                Some(cur) if period > cur => {
                    self.flush_ingest_buf();
                    self.flush_period(cur);
                    self.current_period = Some(period);
                }
                _ => {}
            }
            let window = r.ts_ns >> self.config.window_shift;
            self.ingest_buf
                .push((FlowKey::from_id(r.flow.0), window, r.bytes as i64));
            self.packets += 1;
            self.bytes += r.bytes as u64;
        }
        self.flush_ingest_buf();
    }

    fn flush_ingest_buf(&mut self) {
        if !self.ingest_buf.is_empty() {
            self.sketch.update_batch(&self.ingest_buf);
            self.ingest_buf.clear();
        }
    }

    fn flush_period(&mut self, period: u64) {
        let report = self.sketch.drain();
        if report.epoch_count() > 0 {
            self.finished.push(PeriodReport {
                period,
                host: self.host,
                config_fingerprint: self.config.sketch.fingerprint(),
                report,
            });
        }
    }

    /// Takes the reports of periods that have already closed, leaving the
    /// in-progress period counting. This is the incremental upload path: an
    /// uplink polls it after each batch of observations and ships whatever
    /// completed, instead of waiting for [`Self::finish`].
    pub fn poll_finished(&mut self) -> Vec<PeriodReport> {
        std::mem::take(&mut self.finished)
    }

    /// Flushes the in-progress period and returns all reports collected so
    /// far, leaving the agent empty.
    pub fn finish(mut self) -> Vec<PeriodReport> {
        if let Some(cur) = self.current_period.take() {
            self.flush_period(cur);
        }
        self.finished
    }

    /// Average upload bandwidth in bits per second given the observation
    /// span, for the §7.1 "~5 Mbps per host" accounting. Includes the
    /// still-open period's projected upload.
    pub fn report_bandwidth_bps(reports: &[PeriodReport], span_ns: u64) -> f64 {
        if span_ns == 0 {
            return 0.0;
        }
        let bits: usize = reports.iter().map(|r| r.wire_bytes() * 8).sum();
        bits as f64 / (span_ns as f64 / 1e9)
    }

    /// The sketch configuration (for analyzer-side reconstruction).
    pub fn config(&self) -> &HostAgentConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HostAgentConfig {
        HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(32)
                .levels(4)
                .topk(32)
                .max_windows(4096)
                .heavy_rows(16)
                .build(),
            period_ns: 1_000_000, // 1 ms periods for fast tests
            window_shift: 13,
        }
    }

    #[test]
    fn packets_accumulate_into_reports() {
        let mut agent = HostAgent::new(0, small_config());
        for i in 0..100u64 {
            agent.observe(1, i * 10_000, 1000);
        }
        let reports = agent.finish();
        assert_eq!(reports.len(), 1, "all packets in one period");
        assert!(reports[0].wire_bytes() > 0);
    }

    #[test]
    fn period_boundaries_split_reports() {
        let mut agent = HostAgent::new(0, small_config());
        agent.observe(1, 100, 1000); // period 0
        agent.observe(1, 1_500_000, 1000); // period 1
        agent.observe(1, 2_500_000, 1000); // period 2
        let reports = agent.finish();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].period, 0);
        assert_eq!(reports[2].period, 2);
    }

    #[test]
    fn ingest_filters_by_host() {
        use umon_netsim::FlowId;
        let mut agent = HostAgent::new(3, small_config());
        let records = vec![
            TxRecord {
                host: 3,
                flow: FlowId(1),
                ts_ns: 0,
                bytes: 500,
            },
            TxRecord {
                host: 4,
                flow: FlowId(2),
                ts_ns: 10,
                bytes: 500,
            },
            TxRecord {
                host: 3,
                flow: FlowId(1),
                ts_ns: 20,
                bytes: 500,
            },
        ];
        agent.ingest(&records);
        assert_eq!(agent.packets, 2);
        assert_eq!(agent.bytes, 1000);
    }

    #[test]
    fn bandwidth_accounting_follows_report_sizes() {
        let mut agent = HostAgent::new(0, small_config());
        for i in 0..1000u64 {
            agent.observe(i % 7, i * 1000, 1000);
        }
        let reports = agent.finish();
        let bits: usize = reports.iter().map(|r| r.wire_bytes() * 8).sum();
        let bps = HostAgent::report_bandwidth_bps(&reports, 1_000_000);
        assert!((bps - bits as f64 * 1000.0).abs() < 1.0);
    }

    #[test]
    fn empty_agent_produces_no_reports() {
        let agent = HostAgent::new(0, small_config());
        assert!(agent.finish().is_empty());
    }

    #[test]
    fn wire_bytes_include_the_envelope() {
        let mut agent = HostAgent::new(0, small_config());
        agent.observe(1, 100, 1000);
        let reports = agent.finish();
        assert_eq!(
            reports[0].wire_bytes(),
            PeriodReport::ENVELOPE_WIRE_BYTES + reports[0].report.wire_bytes()
        );
    }

    #[test]
    fn poll_finished_drains_closed_periods_only() {
        let mut agent = HostAgent::new(0, small_config());
        agent.observe(1, 100, 1000); // period 0
        agent.observe(1, 1_500_000, 1000); // period 1 (closes period 0)
        let closed = agent.poll_finished();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].period, 0);
        assert!(agent.poll_finished().is_empty(), "drained already");
        // The open period still flushes at finish.
        let rest = agent.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].period, 1);
    }

    #[test]
    fn period_reports_roundtrip_through_serde() {
        let mut agent = HostAgent::new(2, small_config());
        agent.observe(9, 12_345, 777);
        agent.observe(9, 50_000, 223);
        let reports = agent.finish();
        let json = serde_json::to_string(&reports).unwrap();
        let back: Vec<PeriodReport> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), reports.len());
        assert_eq!(back[0].host, 2);
        assert_eq!(back[0].config_fingerprint, reports[0].config_fingerprint);
        assert_eq!(back[0].wire_bytes(), reports[0].wire_bytes());
    }

    #[test]
    fn default_config_matches_paper_settings() {
        let c = HostAgentConfig::default();
        assert_eq!(c.period_ns, 20_000_000);
        assert_eq!(c.window_shift, 13);
        assert_eq!(c.sketch.rows, 3);
        assert_eq!(c.sketch.width, 256);
        assert_eq!(c.sketch.levels, 8);
    }
}
