//! Property-based tests for the collection plane (`umon::collector`):
//! dedup idempotence, gap-detection accuracy and bounded retransmit memory
//! under randomly drawn fault schedules.

use proptest::prelude::*;
use std::collections::BTreeSet;
use umon::{
    Analyzer, Collector, Envelope, FaultSpec, FaultyTransport, HostAgent, HostAgentConfig,
    HostUplink, PeriodReport, RetransmitPolicy, SeqWindow, Transport,
};
use wavesketch::SketchConfig;

fn agent_config() -> HostAgentConfig {
    HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(2)
            .width(32)
            .levels(4)
            .topk(64)
            .max_windows(4096)
            .heavy_rows(16)
            .build(),
        period_ns: 16 << 13, // 16 windows per upload period
        window_shift: 13,
    }
}

/// Builds one host's period reports from a drawn traffic sample.
fn make_reports(host: usize, traffic: &[(u64, u32)]) -> Vec<PeriodReport> {
    let cfg = agent_config();
    let mut agent = HostAgent::new(host, cfg);
    let mut sorted = traffic.to_vec();
    sorted.sort_unstable();
    for &(w, bytes) in &sorted {
        agent.observe(1 + w % 5, w << 13, bytes);
    }
    agent.finish()
}

/// Random traffic: windows spread over many periods, so several reports.
fn traffic() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..200, 64u32..1500), 8..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dedup idempotence: replaying every already-accepted envelope a second
    /// time changes nothing — same curves, zero newly accepted, every replay
    /// counted as a duplicate.
    #[test]
    fn redelivery_is_idempotent(traffic in traffic(), seed in 0u64..1_000_000) {
        let reports = make_reports(0, &traffic);
        if reports.is_empty() {
            return Ok(());
        }
        let cfg = agent_config();
        let n = reports.len() as u64;
        let envelopes: Vec<Envelope> = reports
            .iter()
            .cloned()
            .enumerate()
            .map(|(s, r)| Envelope::seal(s as u64, r))
            .collect();

        let mut transport = FaultyTransport::new(seed, FaultSpec::NONE);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        for env in &envelopes {
            transport.send(env.clone());
        }
        let first = collector.pump(&mut transport, &mut analyzer);
        prop_assert_eq!(first.accepted, n);
        let curve = analyzer.host_rate_curve(0);

        // Replay the whole set, twice.
        for _ in 0..2 {
            for env in &envelopes {
                transport.send(env.clone());
            }
        }
        let replay = collector.pump(&mut transport, &mut analyzer);
        prop_assert_eq!(replay.accepted, 0);
        prop_assert_eq!(replay.duplicates, 2 * n);
        prop_assert_eq!(analyzer.ingest_stats().accepted, n);
        prop_assert_eq!(&analyzer.host_rate_curve(0), &curve);
        prop_assert!(collector.missing_seqs(0).is_empty());
    }

    /// Zero-loss faults (duplication + reordering at any rate) leave the
    /// delivered report set — and so every reconstruction — identical to a
    /// lossless run, with no retransmission needed.
    #[test]
    fn lossless_faults_cannot_change_curves(
        traffic in traffic(),
        seed in 0u64..1_000_000,
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
    ) {
        let reports = make_reports(0, &traffic);
        if reports.is_empty() {
            return Ok(());
        }
        let cfg = agent_config();
        let n = reports.len() as u64;
        let mut reference = Analyzer::new(cfg.sketch.clone());
        reference.add_reports(reports.clone());

        let spec = FaultSpec { duplicate: dup, reorder, ..FaultSpec::NONE };
        let mut transport = FaultyTransport::new(seed, spec);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        for (s, r) in reports.into_iter().enumerate() {
            transport.send(Envelope::seal(s as u64, r));
        }
        // Two pumps: reordered envelopes surface on the first deliver, any
        // that were held surface by the second.
        collector.pump(&mut transport, &mut analyzer);
        collector.pump(&mut transport, &mut analyzer);

        prop_assert_eq!(collector.stats().accepted, n);
        prop_assert_eq!(collector.stats().duplicates, transport.log(0).duplicated);
        prop_assert!(collector.missing_seqs(0).is_empty());
        for flow in 1..6u64 {
            prop_assert_eq!(&analyzer.flow_curve(0, flow), &reference.flow_curve(0, flow));
        }
        prop_assert_eq!(&analyzer.host_rate_curve(0), &reference.host_rate_curve(0));
        prop_assert!(analyzer.host_coverage(0).is_complete());
    }

    /// Gap detection is exact: without retransmission, the collector's
    /// missing-sequence list is precisely the dropped sequence numbers below
    /// the highest delivered one (a trailing drop is unobservable).
    #[test]
    fn gap_detection_matches_the_fault_log(
        traffic in traffic(),
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.9,
    ) {
        let reports = make_reports(0, &traffic);
        if reports.is_empty() {
            return Ok(());
        }
        let cfg = agent_config();
        let spec = FaultSpec { drop, ..FaultSpec::NONE };
        let mut transport = FaultyTransport::new(seed, spec);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        for (s, r) in reports.into_iter().enumerate() {
            transport.send(Envelope::seal(s as u64, r));
        }
        collector.pump(&mut transport, &mut analyzer);

        let log = transport.log(0);
        let delivered_max = (0..log.sent).filter(|s| !log.dropped_seqs.contains(s)).max();
        let expect: Vec<u64> = match delivered_max {
            None => Vec::new(),
            Some(m) => log.dropped_seqs.iter().copied().filter(|&s| s < m).collect(),
        };
        prop_assert_eq!(collector.missing_seqs(0), expect.clone());
        prop_assert_eq!(collector.stats().accepted, log.sent - log.dropped);
        if delivered_max.is_some() {
            prop_assert_eq!(analyzer.host_coverage(0).known_lost, expect.len() as u64);
        }
    }

    /// Retransmit memory is hard-bounded: whatever the fault schedule, the
    /// uplink never buffers more than `capacity` envelopes, and every
    /// submitted report is accounted as acked, evicted or still in flight.
    #[test]
    fn retransmit_buffer_is_bounded(
        traffic in traffic(),
        seed in 0u64..1_000_000,
        capacity in 1usize..8,
        drop in 0.0f64..0.6,
        ack_drop in 0.0f64..0.6,
        rounds in 1u64..40,
    ) {
        let reports = make_reports(0, &traffic);
        if reports.is_empty() {
            return Ok(());
        }
        let n = reports.len() as u64;
        let cfg = agent_config();
        let spec = FaultSpec { drop, ack_drop, ..FaultSpec::NONE };
        let mut transport = FaultyTransport::new(seed, spec);
        let policy = RetransmitPolicy { capacity, ..RetransmitPolicy::default() };
        let mut uplink = HostUplink::new(0, policy);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());

        // Trickle reports in while the network misbehaves, checking the
        // memory bound after every step.
        let mut queue = reports;
        for now in 0..rounds {
            if !queue.is_empty() {
                let batch = vec![queue.remove(0)];
                uplink.submit(batch);
            }
            prop_assert!(uplink.in_flight() <= capacity);
            uplink.tick(now, &mut transport);
            prop_assert!(uplink.in_flight() <= capacity);
            collector.pump(&mut transport, &mut analyzer);
        }
        // Submit any remainder at once — eviction must absorb the burst.
        uplink.submit(queue);
        prop_assert!(uplink.in_flight() <= capacity);
        prop_assert_eq!(uplink.submitted(), n);
        prop_assert_eq!(
            uplink.acked + uplink.evicted + uplink.in_flight() as u64,
            n,
            "every report accounted for"
        );
    }

    /// Under any survivable fault mix, enough patience makes the analyzer
    /// state bit-identical to the lossless run: retransmission closes every
    /// gap and dedup absorbs every redundant copy.
    #[test]
    fn retransmission_eventually_recovers_everything(
        traffic in traffic(),
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.3,
        dup in 0.0f64..0.2,
        reorder in 0.0f64..0.2,
        truncate in 0.0f64..0.2,
        ack_drop in 0.0f64..0.3,
    ) {
        let reports = make_reports(0, &traffic);
        if reports.is_empty() {
            return Ok(());
        }
        let cfg = agent_config();
        let n = reports.len() as u64;
        let mut reference = Analyzer::new(cfg.sketch.clone());
        reference.add_reports(reports.clone());

        let spec = FaultSpec { drop, duplicate: dup, reorder, truncate, ack_drop };
        let mut transport = FaultyTransport::new(seed, spec);
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.sketch.clone());
        uplink.submit(reports);
        for now in 0..3000u64 {
            uplink.tick(now, &mut transport);
            collector.pump(&mut transport, &mut analyzer);
            if uplink.in_flight() == 0 && collector.stats().accepted == n {
                break;
            }
        }
        prop_assert_eq!(collector.stats().accepted, n);
        prop_assert!(collector.missing_seqs(0).is_empty());
        prop_assert_eq!(analyzer.ingest_stats().accepted, n);
        prop_assert_eq!(&analyzer.host_rate_curve(0), &reference.host_rate_curve(0));
        for flow in 1..6u64 {
            prop_assert_eq!(&analyzer.flow_curve(0, flow), &reference.flow_curve(0, flow));
        }
        prop_assert!(analyzer.host_coverage(0).is_complete());
    }

    /// The bounded dedup window is *exactly* the full-set dedup for any
    /// reorder (and any duplication) within the horizon: same accept/reject
    /// per insert, same membership, same hole enumeration — so the
    /// collector's gap accounting (`known_lost`) is unchanged by the
    /// watermark refactor.
    #[test]
    fn seq_window_matches_full_set_within_horizon(
        stream in proptest::collection::vec(0u64..64, 1..300),
    ) {
        // Every drawn id is < 64 and the horizon is 512, so no reorder in
        // this stream can force the window to concede anything.
        let mut window = SeqWindow::new(512);
        let mut full: BTreeSet<u64> = BTreeSet::new();
        for &s in &stream {
            prop_assert_eq!(window.insert(s), full.insert(s), "insert({}) diverged", s);
        }
        prop_assert_eq!(window.skipped(), 0);

        let max = *full.iter().next_back().unwrap();
        for s in 0..=max + 2 {
            prop_assert_eq!(window.contains(s), full.contains(&s), "contains({}) diverged", s);
        }

        // Hole enumeration (what `Collector::missing_seqs` is built from)
        // matches the full-set computation `(0..=max).filter(!seen)`.
        let mut holes = Vec::new();
        window.for_each_hole(|h| holes.push(h));
        let expect: Vec<u64> = (0..=max).filter(|s| !full.contains(s)).collect();
        prop_assert_eq!(holes, expect);
        prop_assert_eq!(window.hole_count(), (max + 1) - full.len() as u64);
        prop_assert_eq!(window.max_seen(), Some(max));
    }

    /// Beyond the horizon the window trades exactness for bounded memory,
    /// but its accounting stays conservation-exact: every id in the heard
    /// range is seen, a known hole, or counted as conceded.
    #[test]
    fn seq_window_conservation_under_hostile_reorder(
        stream in proptest::collection::vec(0u64..10_000, 1..400),
        horizon in 1usize..12,
    ) {
        let mut window = SeqWindow::new(horizon);
        let mut inserted: BTreeSet<u64> = BTreeSet::new();
        for &s in &stream {
            if window.insert(s) {
                inserted.insert(s);
            }
            prop_assert!(window.tail_len() <= horizon);
        }
        let max = window.max_seen().unwrap();
        // floor splits the range: below it everything is seen-or-conceded,
        // above it tail + holes partition [floor, max].
        let below = window.floor();
        let seen_below = inserted.iter().filter(|&&s| s < below).count() as u64;
        prop_assert_eq!(below, seen_below + window.skipped());
        prop_assert_eq!(
            max + 1 - below,
            window.tail_len() as u64 + window.hole_count()
        );
        // Accepted inserts are never forgotten.
        for &s in &inserted {
            prop_assert!(window.contains(s));
        }
    }
}
