//! Flow-list generation: Poisson arrivals scaled to a target load, on-off
//! background flows and incast bursts.

use crate::dist::{hadoop, websearch, FlowSizeDistribution};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umon_netsim::{CongestionControl, FlowId, FlowSpec};

/// Which of the paper's workload mixes to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// DCTCP WebSearch flow sizes.
    WebSearch,
    /// Facebook Hadoop flow sizes.
    Hadoop,
}

impl WorkloadKind {
    /// The flow-size distribution for this mix.
    pub fn distribution(&self) -> FlowSizeDistribution {
        match self {
            WorkloadKind::WebSearch => websearch(),
            WorkloadKind::Hadoop => hadoop(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::WebSearch => "WebSearch",
            WorkloadKind::Hadoop => "Facebook Hadoop",
        }
    }
}

/// Parameters for a simulated measurement period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Traffic mix.
    pub kind: WorkloadKind,
    /// Target average load on host access links, 0..1 (paper: 0.15/0.25/0.35).
    pub load: f64,
    /// Number of hosts traffic is spread over.
    pub num_hosts: usize,
    /// Access-link rate in Gbps (paper: 100).
    pub link_gbps: f64,
    /// Arrival-window length in ns (paper: 20 ms). Flows keep running after
    /// this point; only arrivals stop.
    pub duration_ns: u64,
    /// RNG seed.
    pub seed: u64,
    /// Congestion control for generated flows.
    pub cc: CongestionControl,
}

impl WorkloadParams {
    /// Paper-default parameters for `kind` at `load` on the k=4 fat-tree.
    pub fn paper(kind: WorkloadKind, load: f64, seed: u64) -> Self {
        Self {
            kind,
            load,
            num_hosts: 16,
            link_gbps: 100.0,
            duration_ns: 20_000_000,
            seed,
            cc: CongestionControl::Dcqcn,
        }
    }

    /// Cluster-scale parameters for a k-ary fat-tree (`k³/4` hosts): the
    /// parallel-simulator scaling benchmarks' workload. k=8 gives 128
    /// hosts, k=16 gives 1024 — tens of thousands of flows over the
    /// paper's 20 ms arrival window (override `duration_ns` to trade flow
    /// count for run time).
    pub fn cluster(kind: WorkloadKind, load: f64, k: usize, seed: u64) -> Self {
        assert!(
            k >= 4 && k.is_multiple_of(2),
            "fat-tree arity must be even and ≥ 4"
        );
        Self {
            kind,
            load,
            num_hosts: k * k * k / 4,
            link_gbps: 100.0,
            duration_ns: 20_000_000,
            seed,
            cc: CongestionControl::Dcqcn,
        }
    }

    /// Expected flow count: `load · hosts · rate · duration / mean_size`.
    pub fn expected_flows(&self) -> f64 {
        let bytes_per_ns = self.link_gbps / 8.0; // per host
        let total_bytes =
            self.load * self.num_hosts as f64 * bytes_per_ns * self.duration_ns as f64;
        total_bytes / self.kind.distribution().mean()
    }

    /// Generates the flow list: Poisson arrivals over `duration_ns`, sizes
    /// from the mix's distribution, uniformly random distinct (src, dst)
    /// host pairs. Deterministic in `seed`.
    pub fn generate(&self) -> Vec<FlowSpec> {
        assert!(self.num_hosts >= 2, "need at least two hosts");
        assert!(self.load > 0.0 && self.load < 1.0, "load must be in (0,1)");
        let dist = self.kind.distribution();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Poisson process: exponential inter-arrivals with rate λ flows/ns.
        let lambda = self.expected_flows() / self.duration_ns as f64;
        let mut flows = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Inverse-CDF exponential sample.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / lambda;
            if t >= self.duration_ns as f64 {
                break;
            }
            let src = rng.gen_range(0..self.num_hosts);
            let dst = loop {
                let d = rng.gen_range(0..self.num_hosts);
                if d != src {
                    break d;
                }
            };
            flows.push(FlowSpec {
                id: FlowId(flows.len() as u64),
                src,
                dst,
                size_bytes: dist.sample(&mut rng),
                start_ns: t as u64,
                cc: self.cc,
            });
        }
        flows
    }
}

/// An on-off background flow: bursts of `on_ns` at `rate_gbps` separated by
/// `off_ns` of silence, for `repeats` periods — the contention pattern the
/// paper's testbed experiments use (Figures 1, 9b, 13). Each burst is one
/// fixed-rate flow.
#[allow(clippy::too_many_arguments)] // each arg is one physical knob of the pattern
pub fn on_off_background(
    first_id: u64,
    src: usize,
    dst: usize,
    rate_gbps: f64,
    on_ns: u64,
    off_ns: u64,
    repeats: usize,
    start_ns: u64,
) -> Vec<FlowSpec> {
    let bytes_per_burst = (rate_gbps / 8.0 * on_ns as f64) as u64;
    (0..repeats)
        .map(|i| FlowSpec {
            id: FlowId(first_id + i as u64),
            src,
            dst,
            size_bytes: bytes_per_burst.max(1),
            start_ns: start_ns + i as u64 * (on_ns + off_ns),
            cc: CongestionControl::FixedRate(rate_gbps),
        })
        .collect()
}

/// An incast burst: `fan_in` senders each send `bytes` to `dst` starting at
/// `start_ns` plus a per-sender seeded jitter uniform in `[0, jitter_ns]`
/// (microsecond-scale synchronized arrival, the microburst trigger of §2.1).
///
/// `jitter_ns = 0` reproduces the historical perfectly-synchronized burst
/// bit-for-bit regardless of `seed`: every flow starts in the same
/// nanosecond.
#[allow(clippy::too_many_arguments)] // each arg is one physical knob of the pattern
pub fn incast_burst(
    first_id: u64,
    senders: &[usize],
    dst: usize,
    bytes: u64,
    start_ns: u64,
    jitter_ns: u64,
    seed: u64,
    cc: CongestionControl,
) -> Vec<FlowSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1CA5);
    senders
        .iter()
        .enumerate()
        .map(|(i, &src)| {
            let jitter = if jitter_ns == 0 {
                0
            } else {
                rng.gen_range(0..=jitter_ns)
            };
            FlowSpec {
                id: FlowId(first_id + i as u64),
                src,
                dst,
                size_bytes: bytes,
                start_ns: start_ns + jitter,
                cc,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 42);
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn flow_count_tracks_expectation() {
        let p = WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 1);
        let flows = p.generate();
        let expected = p.expected_flows();
        let got = flows.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn hadoop_has_many_more_flows_than_websearch_at_equal_load() {
        let h = WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 1).generate();
        let w = WorkloadParams::paper(WorkloadKind::WebSearch, 0.15, 1).generate();
        assert!(
            h.len() > 5 * w.len(),
            "hadoop {} vs websearch {}",
            h.len(),
            w.len()
        );
    }

    #[test]
    fn total_volume_matches_load() {
        let p = WorkloadParams::paper(WorkloadKind::WebSearch, 0.25, 3);
        let flows = p.generate();
        let total: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let expected = 0.25 * 16.0 * 100.0e9 / 8.0 * 0.020; // bytes
        let rel = (total as f64 - expected).abs() / expected;
        assert!(rel < 0.35, "total {total} vs expected {expected}");
    }

    #[test]
    fn arrivals_are_within_window_and_sorted() {
        let p = WorkloadParams::paper(WorkloadKind::Hadoop, 0.35, 5);
        let flows = p.generate();
        let mut last = 0;
        for f in &flows {
            assert!(f.start_ns < p.duration_ns);
            assert!(f.start_ns >= last);
            last = f.start_ns;
            assert_ne!(f.src, f.dst);
            assert!(f.src < 16 && f.dst < 16);
        }
    }

    #[test]
    fn higher_load_generates_more_flows() {
        let lo = WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 7).generate();
        let hi = WorkloadParams::paper(WorkloadKind::Hadoop, 0.35, 7).generate();
        assert!(hi.len() > lo.len());
    }

    #[test]
    fn cluster_params_scale_hosts_with_fat_tree_arity() {
        let k8 = WorkloadParams::cluster(WorkloadKind::Hadoop, 0.25, 8, 1);
        assert_eq!(k8.num_hosts, 128);
        let k16 = WorkloadParams::cluster(WorkloadKind::Hadoop, 0.25, 16, 1);
        assert_eq!(k16.num_hosts, 1024);
        // Tens of thousands of flows over the full paper window at k=8.
        assert!(k8.expected_flows() > 10_000.0, "{}", k8.expected_flows());
        // A shortened window still yields a dense, valid flow list.
        let flows = WorkloadParams {
            duration_ns: 500_000,
            ..k8
        }
        .generate();
        assert!(flows.len() > 300, "{} flows", flows.len());
        assert!(flows.iter().all(|f| f.src < 128 && f.dst < 128));
    }

    #[test]
    fn on_off_pattern_spacing() {
        let bursts = on_off_background(100, 0, 1, 40.0, 50_000, 50_000, 3, 1_000);
        assert_eq!(bursts.len(), 3);
        assert_eq!(bursts[0].start_ns, 1_000);
        assert_eq!(bursts[1].start_ns, 101_000);
        // 40 Gbps for 50 μs = 250 kB.
        assert_eq!(bursts[0].size_bytes, 250_000);
        assert!(matches!(bursts[0].cc, CongestionControl::FixedRate(r) if r == 40.0));
    }

    #[test]
    fn incast_targets_one_destination() {
        let flows = incast_burst(
            0,
            &[1, 2, 3],
            9,
            64_000,
            500,
            0,
            0,
            CongestionControl::Dcqcn,
        );
        assert_eq!(flows.len(), 3);
        assert!(flows.iter().all(|f| f.dst == 9 && f.start_ns == 500));
    }

    #[test]
    fn incast_jitter_zero_pins_the_old_synchronized_behavior() {
        // jitter = 0 must be bit-identical regardless of seed: every sender
        // fires in the same nanosecond (the historical behavior).
        let a = incast_burst(
            0,
            &[1, 2, 3, 4],
            9,
            64_000,
            500,
            0,
            7,
            CongestionControl::Dcqcn,
        );
        let b = incast_burst(
            0,
            &[1, 2, 3, 4],
            9,
            64_000,
            500,
            0,
            99,
            CongestionControl::Dcqcn,
        );
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.start_ns == 500));
    }

    #[test]
    fn incast_jitter_staggers_within_bound_and_is_seeded() {
        let jitter = 3_000u64;
        let a = incast_burst(
            0,
            &[0, 1, 2, 3, 5, 6, 7, 8],
            4,
            64_000,
            500,
            jitter,
            7,
            CongestionControl::Dcqcn,
        );
        // Deterministic in the seed...
        let b = incast_burst(
            0,
            &[0, 1, 2, 3, 5, 6, 7, 8],
            4,
            64_000,
            500,
            jitter,
            7,
            CongestionControl::Dcqcn,
        );
        assert_eq!(a, b);
        // ...different seeds stagger differently...
        let c = incast_burst(
            0,
            &[0, 1, 2, 3, 5, 6, 7, 8],
            4,
            64_000,
            500,
            jitter,
            8,
            CongestionControl::Dcqcn,
        );
        assert_ne!(a, c);
        // ...and every start lands inside [start, start + jitter].
        assert!(a.iter().all(|f| (500..=500 + jitter).contains(&f.start_ns)));
        // With 8 senders and 3 μs of jitter, at least two distinct starts.
        let distinct: std::collections::HashSet<u64> = a.iter().map(|f| f.start_ns).collect();
        assert!(distinct.len() > 1, "jitter must actually stagger");
    }
}
