//! Custom, operator-supplied workloads: a line-oriented flow-spec format so
//! the CLI (and tests) can replay externally defined traffic instead of the
//! built-in distributions.
//!
//! Format, one flow per line (`#` comments and blank lines allowed):
//!
//! ```text
//! # src dst size_bytes start_ns cc
//! 0 5 1000000 0 dcqcn
//! 1 5 200000 50000 dctcp
//! 2 6 500000 0 fixed:25
//! ```

use std::io::BufRead;
use umon_netsim::{CongestionControl, FlowId, FlowSpec};

/// A flow-spec parse failure, with the line it happened on.
#[derive(Debug, PartialEq)]
pub struct FlowSpecError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for FlowSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FlowSpecError {}

/// Parses a flow-spec document. Flow ids are assigned in file order.
pub fn parse_flow_specs<R: BufRead>(input: R) -> Result<Vec<FlowSpec>, FlowSpecError> {
    let mut flows = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| FlowSpecError {
            line: lineno,
            message,
        };
        let line = line.map_err(|e| err(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(err(format!(
                "expected 5 fields (src dst size start cc), got {}",
                fields.len()
            )));
        }
        let num = |s: &str, what: &str| -> Result<u64, FlowSpecError> {
            s.parse().map_err(|_| err(format!("bad {what}: {s:?}")))
        };
        let cc = match fields[4] {
            "dcqcn" => CongestionControl::Dcqcn,
            "dctcp" => CongestionControl::Dctcp,
            other => match other.strip_prefix("fixed:") {
                Some(rate) => {
                    let gbps: f64 = rate
                        .parse()
                        .map_err(|_| err(format!("bad fixed rate {rate:?}")))?;
                    if gbps <= 0.0 {
                        return Err(err(format!("fixed rate must be positive, got {gbps}")));
                    }
                    CongestionControl::FixedRate(gbps)
                }
                None => {
                    return Err(err(format!(
                        "unknown cc {other:?} (dcqcn, dctcp or fixed:<gbps>)"
                    )))
                }
            },
        };
        let src = num(fields[0], "src")? as usize;
        let dst = num(fields[1], "dst")? as usize;
        if src == dst {
            return Err(err(format!("src and dst are both {src}")));
        }
        flows.push(FlowSpec {
            id: FlowId(flows.len() as u64),
            src,
            dst,
            size_bytes: num(fields[2], "size")?,
            start_ns: num(fields[3], "start")?,
            cc,
        });
    }
    Ok(flows)
}

/// Serializes flows back into the spec format (inverse of
/// [`parse_flow_specs`], modulo comments).
pub fn write_flow_specs<W: std::io::Write>(out: &mut W, flows: &[FlowSpec]) -> std::io::Result<()> {
    writeln!(out, "# src dst size_bytes start_ns cc")?;
    for f in flows {
        let cc = match f.cc {
            CongestionControl::Dcqcn => "dcqcn".to_string(),
            CongestionControl::Dctcp => "dctcp".to_string(),
            CongestionControl::FixedRate(g) => format!("fixed:{g}"),
        };
        writeln!(
            out,
            "{} {} {} {} {}",
            f.src, f.dst, f.size_bytes, f.start_ns, cc
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_cc_kinds() {
        let doc =
            "# comment\n\n0 5 1000000 0 dcqcn\n1 5 200000 50000 dctcp\n2 6 500000 0 fixed:25\n";
        let flows = parse_flow_specs(doc.as_bytes()).unwrap();
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].cc, CongestionControl::Dcqcn);
        assert_eq!(flows[1].cc, CongestionControl::Dctcp);
        assert!(matches!(flows[2].cc, CongestionControl::FixedRate(r) if r == 25.0));
        assert_eq!(flows[2].id, FlowId(2));
        assert_eq!(flows[1].start_ns, 50_000);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let e = parse_flow_specs("0 5 100 0 dcqcn\n1 5 bogus 0 dcqcn\n".as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad size"));
        let e = parse_flow_specs("0 0 100 0 dcqcn\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("src and dst"));
        let e = parse_flow_specs("0 1 100 0 warp\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("unknown cc"));
        let e = parse_flow_specs("0 1 100 0 fixed:-3\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("positive"));
        let e = parse_flow_specs("0 1 100\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("5 fields"));
    }

    #[test]
    fn roundtrips_through_writer() {
        let doc = "0 5 1000000 0 dcqcn\n1 5 200000 50000 fixed:12.5\n";
        let flows = parse_flow_specs(doc.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_flow_specs(&mut buf, &flows).unwrap();
        let back = parse_flow_specs(&buf[..]).unwrap();
        assert_eq!(back, flows);
    }
}
