//! The counter-amplification analysis of §2.3 / Figure 3: how many more
//! per-flow counters a 10 μs measurement window needs compared to 10 ms.
//!
//! For a flow `f` active for `t_f` at granularity `δ`, the counter demand is
//! `n(f, δ) = ceil(t_f / δ)`; the workload total is `N(δ) = Σ_f n(f, δ)` and
//! Figure 3 plots the increase factor `N(10 μs) / N(10 ms)`.

/// Counter demand of one workload at one granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDemand {
    /// Window granularity in ns.
    pub granularity_ns: u64,
    /// Total counters `N(δ)` across all flows.
    pub counters: u64,
}

impl CounterDemand {
    /// Computes `N(δ)` from per-flow active durations (ns).
    pub fn compute(durations_ns: &[u64], granularity_ns: u64) -> Self {
        assert!(granularity_ns > 0);
        let counters = durations_ns
            .iter()
            .map(|&t| t.max(1).div_ceil(granularity_ns))
            .sum();
        Self {
            granularity_ns,
            counters,
        }
    }
}

/// The Figure 3 increase factor `N(fine) / N(coarse)` for a set of flow
/// durations (ns). Returns 0 for an empty workload.
pub fn counter_increase_factor(durations_ns: &[u64], fine_ns: u64, coarse_ns: u64) -> f64 {
    if durations_ns.is_empty() {
        return 0.0;
    }
    let fine = CounterDemand::compute(durations_ns, fine_ns);
    let coarse = CounterDemand::compute(durations_ns, coarse_ns);
    fine.counters as f64 / coarse.counters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_short_flow_amplifies_by_duration_over_fine_window() {
        // A 1 ms flow: 100 counters at 10 μs, 1 counter at 10 ms → 100x.
        let f = counter_increase_factor(&[1_000_000], 10_000, 10_000_000);
        assert_eq!(f, 100.0);
    }

    #[test]
    fn sub_window_flows_need_one_counter_at_both_granularities() {
        let f = counter_increase_factor(&[5_000], 10_000, 10_000_000);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn zero_duration_flows_count_as_one_window() {
        let d = CounterDemand::compute(&[0], 10_000);
        assert_eq!(d.counters, 1);
    }

    #[test]
    fn mix_of_long_and_short_flows() {
        // Long 10 ms flow: 1000 vs 1; 10 short flows: 1 vs 1 each.
        let mut durations = vec![10_000_000];
        durations.extend(std::iter::repeat_n(1_000, 10));
        let f = counter_increase_factor(&durations, 10_000, 10_000_000);
        // N(10us) = 1000 + 10 = 1010; N(10ms) = 1 + 10 = 11.
        assert!((f - 1010.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn longer_flows_amplify_more() {
        let short = counter_increase_factor(&[100_000; 10], 10_000, 10_000_000);
        let long = counter_increase_factor(&[5_000_000; 10], 10_000, 10_000_000);
        assert!(long > short);
    }

    #[test]
    fn empty_workload_is_zero() {
        assert_eq!(counter_increase_factor(&[], 10_000, 10_000_000), 0.0);
    }
}
