#![warn(missing_docs)]

//! # umon-workloads — data-center workload generation
//!
//! Seeded generators for the two traffic mixes the μMon evaluation uses
//! (§7 Workloads, Appendix D):
//!
//! * **DCTCP WebSearch** — large flows, heavy-tailed ([`websearch`]),
//! * **Facebook Hadoop** — many small flows ([`hadoop`]),
//!
//! with Poisson flow arrivals scaled to a target link load, plus the
//! testbed-style generators (on-off background flows, incast bursts) and the
//! workload statistics of Table 2 / Figure 16 and the counter-amplification
//! analysis of Figure 3.

mod amplification;
mod custom;
mod dist;
mod generate;
pub mod scenario;
mod stats;

pub use amplification::{counter_increase_factor, CounterDemand};
pub use custom::{parse_flow_specs, write_flow_specs, FlowSpecError};
pub use dist::{hadoop, websearch, FlowSizeDistribution};
pub use generate::{incast_burst, on_off_background, WorkloadKind, WorkloadParams};
pub use scenario::{
    allreduce, cluster_scenarios, failure_plan, incast_storm, scenario_matrix, AllreduceConfig,
    AllreducePattern, FailurePlanConfig, IncastStormConfig, Scenario,
};
pub use stats::{cdf_points, inter_arrival_cdf, WorkloadStats};
