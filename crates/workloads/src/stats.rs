//! Workload statistics — the numbers of Table 2 and Figure 16.

use umon_netsim::FlowSpec;

/// Summary statistics of a generated workload (Table 2 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of flows.
    pub flows: usize,
    /// Total application bytes.
    pub total_bytes: u64,
    /// Estimated packet count at the given MTU.
    pub packets: u64,
    /// Mean flow size in bytes.
    pub mean_flow_bytes: f64,
}

impl WorkloadStats {
    /// Computes statistics for `flows` at `mtu` bytes per packet.
    pub fn compute(flows: &[FlowSpec], mtu: u32) -> Self {
        let total_bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let packets: u64 = flows
            .iter()
            .map(|f| f.size_bytes.div_ceil(mtu as u64))
            .sum();
        Self {
            flows: flows.len(),
            total_bytes,
            packets,
            mean_flow_bytes: if flows.is_empty() {
                0.0
            } else {
                total_bytes as f64 / flows.len() as f64
            },
        }
    }
}

/// Empirical CDF points `(value, probability)` of a sample set, suitable for
/// plotting (Figure 16a on flow sizes, 16b on inter-arrival times).
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Flow inter-arrival times observed at each source host's access port
/// (Figure 16b is measured at a ToR port, which sees exactly the flows of
/// the host behind it in this topology), merged over all ports, in ns.
pub fn inter_arrival_cdf(flows: &[FlowSpec], num_hosts: usize) -> Vec<(f64, f64)> {
    let mut per_host: Vec<Vec<u64>> = vec![Vec::new(); num_hosts];
    for f in flows {
        per_host[f.src].push(f.start_ns);
    }
    let mut gaps = Vec::new();
    for mut arrivals in per_host {
        arrivals.sort_unstable();
        for w in arrivals.windows(2) {
            gaps.push((w[1] - w[0]) as f64);
        }
    }
    cdf_points(&gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_netsim::{CongestionControl, FlowId};

    fn flow(id: u64, src: usize, size: u64, start: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src,
            dst: 15,
            size_bytes: size,
            start_ns: start,
            cc: CongestionControl::Dcqcn,
        }
    }

    #[test]
    fn stats_count_packets_with_ceiling_division() {
        let flows = vec![flow(0, 0, 2500, 0), flow(1, 1, 1000, 5)];
        let s = WorkloadStats::compute(&flows, 1000);
        assert_eq!(s.flows, 2);
        assert_eq!(s.total_bytes, 3500);
        assert_eq!(s.packets, 3 + 1);
        assert!((s.mean_flow_bytes - 1750.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pts = cdf_points(&[5.0, 1.0, 3.0, 3.0]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].0, 1.0);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn inter_arrival_groups_by_source_host() {
        // Host 0 sees arrivals at 0, 100, 300 → gaps 100, 200.
        // Host 1 sees a single arrival → no gaps.
        let flows = vec![
            flow(0, 0, 100, 0),
            flow(1, 0, 100, 100),
            flow(2, 1, 100, 50),
            flow(3, 0, 100, 300),
        ];
        let cdf = inter_arrival_cdf(&flows, 2);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].0, 100.0);
        assert_eq!(cdf[1].0, 200.0);
    }

    #[test]
    fn empty_inputs_give_empty_cdfs() {
        assert!(cdf_points(&[]).is_empty());
        assert!(inter_arrival_cdf(&[], 4).is_empty());
    }
}
