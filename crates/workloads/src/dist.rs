//! Flow-size distributions as piecewise-linear CDFs.
//!
//! The WebSearch and Hadoop breakpoints below follow the publicly used
//! approximations of the DCTCP web-search and Facebook Hadoop flow-size
//! distributions (heavy-tailed megabyte flows vs. a sea of sub-10 kB flows
//! with a thin large tail). Absolute fidelity to the original traces is not
//! required for the reproduction — what matters is the contrast the paper's
//! figures exercise: WebSearch has few, long flows; Hadoop has many, short
//! ones (Table 2, Figure 16a).

use rand::Rng;

/// A flow-size distribution given as CDF breakpoints `(bytes, probability)`.
/// Sampling inverts the CDF with linear interpolation between breakpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSizeDistribution {
    /// Human-readable name (used in reports and figures).
    pub name: &'static str,
    points: Vec<(f64, f64)>,
}

impl FlowSizeDistribution {
    /// Builds a distribution from CDF breakpoints.
    ///
    /// # Panics
    ///
    /// Panics unless the points are strictly increasing in both coordinates,
    /// start at probability 0 and end at probability 1.
    pub fn new(name: &'static str, points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two breakpoints");
        assert_eq!(points[0].1, 0.0, "CDF must start at 0");
        assert_eq!(points.last().unwrap().1, 1.0, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must strictly increase");
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
        Self { name, points }
    }

    /// Inverse-CDF sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        self.quantile(rng.gen_range(0.0..1.0))
    }

    /// The size at CDF value `p` (linear interpolation).
    pub fn quantile(&self, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if p <= p1 {
                if p1 == p0 {
                    return x1 as u64;
                }
                let frac = (p - p0) / (p1 - p0);
                return (x0 + frac * (x1 - x0)).round().max(1.0) as u64;
            }
        }
        self.points.last().unwrap().0 as u64
    }

    /// Mean flow size in bytes (piecewise-linear integral of the quantile).
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            mean += (p1 - p0) * (x0 + x1) / 2.0;
        }
        mean
    }

    /// The CDF breakpoints (for plotting Figure 16a).
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// The DCTCP WebSearch flow-size distribution: heavy-tailed, mean ≈ 1.6 MB.
pub fn websearch() -> FlowSizeDistribution {
    FlowSizeDistribution::new(
        "WebSearch",
        vec![
            (6_000.0, 0.0),
            (10_000.0, 0.15),
            (13_000.0, 0.2),
            (19_000.0, 0.3),
            (33_000.0, 0.4),
            (53_000.0, 0.53),
            (133_000.0, 0.6),
            (667_000.0, 0.7),
            (1_333_000.0, 0.8),
            (3_333_000.0, 0.9),
            (6_667_000.0, 0.97),
            (20_000_000.0, 1.0),
        ],
    )
}

/// The Facebook Hadoop flow-size distribution: dominated by small flows,
/// mean ≈ 122 kB because of the thin large tail.
pub fn hadoop() -> FlowSizeDistribution {
    FlowSizeDistribution::new(
        "Facebook Hadoop",
        vec![
            (100.0, 0.0),
            (180.0, 0.1),
            (250.0, 0.2),
            (560.0, 0.4),
            (900.0, 0.5),
            (1_100.0, 0.6),
            (1_870.0, 0.7),
            (3_160.0, 0.8),
            (10_000.0, 0.9),
            (40_000.0, 0.95),
            (400_000.0, 0.98),
            (3_800_000.0, 0.99),
            (10_000_000.0, 0.999),
            (30_000_000.0, 1.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantile_interpolates_between_breakpoints() {
        let d = FlowSizeDistribution::new("t", vec![(100.0, 0.0), (200.0, 1.0)]);
        assert_eq!(d.quantile(0.0), 100);
        assert_eq!(d.quantile(0.5), 150);
        assert_eq!(d.quantile(1.0), 200);
    }

    #[test]
    fn sample_mean_approaches_analytic_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for d in [websearch(), hadoop()] {
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
            let sample_mean = sum / n as f64;
            let analytic = d.mean();
            let rel = (sample_mean - analytic).abs() / analytic;
            assert!(
                rel < 0.05,
                "{}: sample {sample_mean} vs analytic {analytic}",
                d.name
            );
        }
    }

    #[test]
    fn websearch_flows_are_much_larger_than_hadoop() {
        // The contrast Table 2 relies on: at equal load WebSearch has ~30x
        // fewer flows, i.e. ~30x larger mean size.
        let ratio = websearch().mean() / hadoop().mean();
        assert!(ratio > 5.0, "ratio {ratio}");
    }

    #[test]
    fn hadoop_median_is_sub_kilobyte() {
        assert!(hadoop().quantile(0.5) <= 1000);
        assert!(websearch().quantile(0.5) > 10_000);
    }

    #[test]
    fn samples_stay_within_support() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let d = websearch();
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((6_000..=20_000_000).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "CDF must start at 0")]
    fn rejects_bad_cdf() {
        FlowSizeDistribution::new("bad", vec![(1.0, 0.5), (2.0, 1.0)]);
    }
}
