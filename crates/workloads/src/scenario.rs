//! Adversarial scenario layer: the workloads the paper is actually for.
//!
//! Poisson WebSearch/Hadoop traffic ([`crate::WorkloadParams`]) is the
//! friendly regime — every sketch looks fine on it. This module generates
//! the hostile patterns that separate the schemes:
//!
//! * **Incast storms** ([`incast_storm`]) — repeated N-to-1 synchronized
//!   bursts with configurable fan-in and per-sender stagger jitter, the
//!   microburst trigger of §2.1 at scale.
//! * **Allreduce rings/permutations** ([`allreduce`]) — ML-training
//!   collective phases: in every step each host sends exactly one chunk and
//!   receives exactly one chunk (a fixed-point-free rotation), so the whole
//!   fabric loads and unloads in lockstep.
//! * **Failure plans** ([`failure_plan`]) — seeded link-flap and
//!   PFC-pause-storm schedules over the fabric links, guaranteed
//!   non-overlapping per physical link so they compose with the simulator's
//!   boolean link state (see `umon_netsim::failure`).
//! * **The scenario matrix** ([`scenario_matrix`]) — the named catalog the
//!   bench frontier sweeps: each adversarial pattern × DCQCN × DCTCP, plus
//!   the failure-injection variants.
//!
//! Everything is deterministic in its seed: the same config reproduces the
//! same flow list and failure schedule bit-for-bit.

use crate::generate::incast_burst;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umon_netsim::{CongestionControl, FailureEvent, FailureSchedule, FlowId, FlowSpec, Topology};

/// Configuration for a repeated N-to-1 incast storm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncastStormConfig {
    /// Hosts available as senders/receivers (`0..num_hosts`).
    pub num_hosts: usize,
    /// Senders per burst (must be `< num_hosts`).
    pub fan_in: usize,
    /// Bytes each sender contributes per burst.
    pub bytes_per_sender: u64,
    /// Number of bursts.
    pub rounds: usize,
    /// Spacing between burst starts, ns.
    pub round_gap_ns: u64,
    /// Start of the first burst, ns.
    pub start_ns: u64,
    /// Per-sender stagger jitter within a burst, ns (0 = perfectly
    /// synchronized).
    pub jitter_ns: u64,
    /// RNG seed (victim choice, sender choice, stagger).
    pub seed: u64,
    /// Congestion control for every flow.
    pub cc: CongestionControl,
}

impl IncastStormConfig {
    /// A storm sized for the k=4 fat-tree (16 hosts): 8:1 bursts of 64 kB
    /// per sender every 400 μs with 2 μs stagger.
    pub fn paper(seed: u64, cc: CongestionControl) -> Self {
        Self {
            num_hosts: 16,
            fan_in: 8,
            bytes_per_sender: 64_000,
            rounds: 6,
            round_gap_ns: 400_000,
            start_ns: 200_000,
            jitter_ns: 2_000,
            seed,
            cc,
        }
    }

    /// Total application bytes the storm injects (the conservation
    /// invariant: `rounds × fan_in × bytes_per_sender`).
    pub fn total_bytes(&self) -> u64 {
        self.rounds as u64 * self.fan_in as u64 * self.bytes_per_sender
    }
}

/// Generates the storm: each round picks a seeded victim and `fan_in`
/// distinct seeded senders, then emits one jittered [`incast_burst`]. Flow
/// ids are dense from `first_id`.
pub fn incast_storm(first_id: u64, cfg: &IncastStormConfig) -> Vec<FlowSpec> {
    assert!(cfg.num_hosts >= 2, "need at least two hosts");
    assert!(
        cfg.fan_in >= 1 && cfg.fan_in < cfg.num_hosts,
        "fan_in must leave room for a victim"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5702);
    let mut flows = Vec::with_capacity(cfg.rounds * cfg.fan_in);
    for round in 0..cfg.rounds {
        let dst = rng.gen_range(0..cfg.num_hosts);
        let mut candidates: Vec<usize> = (0..cfg.num_hosts).filter(|&h| h != dst).collect();
        // Fisher–Yates (the vendored rand has no `shuffle`).
        for i in (1..candidates.len()).rev() {
            let j = rng.gen_range(0..=i);
            candidates.swap(i, j);
        }
        candidates.truncate(cfg.fan_in);
        let burst_seed = rng.next_u64();
        flows.extend(incast_burst(
            first_id + flows.len() as u64,
            &candidates,
            dst,
            cfg.bytes_per_sender,
            cfg.start_ns + round as u64 * cfg.round_gap_ns,
            cfg.jitter_ns,
            burst_seed,
            cfg.cc,
        ));
    }
    flows
}

/// Which collective communication pattern an [`allreduce`] run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreducePattern {
    /// Ring: in every step host `i` sends to `(i + 1) % n`.
    Ring,
    /// Seeded rotation: step `s` uses a seeded shift `r_s ∈ [1, n)`, so host
    /// `i` sends to `(i + r_s) % n` — still a fixed-point-free permutation
    /// every step, but the traffic matrix changes between steps.
    ShiftPermutation,
}

/// Configuration for an ML-training allreduce phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllreduceConfig {
    /// Participating hosts (`0..num_hosts`, n ≥ 2).
    pub num_hosts: usize,
    /// Bytes each host sends per step.
    pub chunk_bytes: u64,
    /// Collective steps (ring allreduce uses `2·(n−1)`).
    pub steps: usize,
    /// Spacing between step starts, ns.
    pub step_gap_ns: u64,
    /// Start of the first step, ns.
    pub start_ns: u64,
    /// Per-host start jitter within a step, ns.
    pub jitter_ns: u64,
    /// Communication pattern.
    pub pattern: AllreducePattern,
    /// RNG seed (permutation shifts, jitter).
    pub seed: u64,
    /// Congestion control for every flow.
    pub cc: CongestionControl,
}

impl AllreduceConfig {
    /// A phase sized for the k=4 fat-tree: 16 hosts × 8 steps of 128 kB
    /// chunks every 250 μs with 1 μs jitter, seeded shift permutations.
    pub fn paper(seed: u64, cc: CongestionControl) -> Self {
        Self {
            num_hosts: 16,
            chunk_bytes: 128_000,
            steps: 8,
            step_gap_ns: 250_000,
            start_ns: 100_000,
            jitter_ns: 1_000,
            pattern: AllreducePattern::ShiftPermutation,
            seed,
            cc,
        }
    }
}

/// Generates the collective: `steps × num_hosts` flows, dense ids from
/// `first_id` in `(step, host)` order. In every step each host sends exactly
/// one chunk and receives exactly one chunk.
pub fn allreduce(first_id: u64, cfg: &AllreduceConfig) -> Vec<FlowSpec> {
    assert!(cfg.num_hosts >= 2, "need at least two hosts");
    let n = cfg.num_hosts;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA11D);
    let mut flows = Vec::with_capacity(cfg.steps * n);
    for step in 0..cfg.steps {
        let shift = match cfg.pattern {
            AllreducePattern::Ring => 1,
            AllreducePattern::ShiftPermutation => rng.gen_range(1..n),
        };
        let step_start = cfg.start_ns + step as u64 * cfg.step_gap_ns;
        for host in 0..n {
            let jitter = if cfg.jitter_ns == 0 {
                0
            } else {
                rng.gen_range(0..=cfg.jitter_ns)
            };
            flows.push(FlowSpec {
                id: FlowId(first_id + flows.len() as u64),
                src: host,
                dst: (host + shift) % n,
                size_bytes: cfg.chunk_bytes,
                start_ns: step_start + jitter,
                cc: cfg.cc,
            });
        }
    }
    flows
}

/// Configuration for a seeded fabric failure plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePlanConfig {
    /// Link flaps to schedule.
    pub flaps: usize,
    /// Pause storms to schedule.
    pub storms: usize,
    /// Failures start no earlier than this, ns.
    pub start_ns: u64,
    /// Soft horizon: event *starts* are drawn before this, ns (an event may
    /// extend past it).
    pub horizon_ns: u64,
    /// Outage duration per flap, ns, inclusive range.
    pub flap_down_ns: (u64, u64),
    /// XOFF/XON cycles per storm, inclusive range.
    pub storm_cycles: (u32, u32),
    /// Paused duration per cycle, ns, inclusive range.
    pub storm_pause_ns: (u64, u64),
    /// Idle gap between cycles, ns, inclusive range.
    pub storm_gap_ns: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl FailurePlanConfig {
    /// A plan sized for a few-ms k=4 fat-tree run: 3 flaps of 100–400 μs
    /// and 2 storms of 4–8 cycles pausing 10–30 μs each.
    pub fn paper(seed: u64) -> Self {
        Self {
            flaps: 3,
            storms: 2,
            start_ns: 200_000,
            horizon_ns: 2_500_000,
            flap_down_ns: (100_000, 400_000),
            storm_cycles: (4, 8),
            storm_pause_ns: (10_000, 30_000),
            storm_gap_ns: (5_000, 15_000),
            seed,
        }
    }
}

/// Draws a seeded failure schedule over the fabric (switch↔switch) links of
/// `topo`. Host access links are never failed — cutting a host's only
/// uplink would strand its queue rather than stress the monitoring plane.
///
/// Non-overlap guarantee: events on the same physical link are placed
/// strictly after the previous event on that link ends, so the returned
/// schedule always passes `FailureSchedule::validate`.
pub fn failure_plan(topo: &Topology, cfg: &FailurePlanConfig) -> FailureSchedule {
    let mut fabric: Vec<(usize, usize)> = Vec::new();
    for link in &topo.links {
        if !topo.is_host(link.a.0) && !topo.is_host(link.b.0) {
            // Name each link by its canonical (smaller) endpoint.
            let (node, port) = link.a.min(link.b);
            fabric.push((node, port));
        }
    }
    assert!(
        !fabric.is_empty(),
        "topology has no switch-to-switch links to fail"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xFA11);
    // Per-link cursor: the earliest time the next event on it may start.
    let mut cursor: std::collections::BTreeMap<(usize, usize), u64> =
        std::collections::BTreeMap::new();
    let mut schedule = FailureSchedule::none();
    let horizon = cfg.horizon_ns.max(cfg.start_ns + 1);
    for i in 0..cfg.flaps + cfg.storms {
        let is_flap = i < cfg.flaps;
        let &(node, port) = &fabric[rng.gen_range(0..fabric.len())];
        let earliest = *cursor.get(&(node, port)).unwrap_or(&cfg.start_ns);
        let drawn = rng.gen_range(cfg.start_ns..horizon);
        let start = drawn.max(earliest);
        let end = if is_flap {
            let down = rng.gen_range(cfg.flap_down_ns.0..=cfg.flap_down_ns.1);
            schedule.events.push(FailureEvent::LinkFlap {
                node,
                port,
                down_ns: start,
                up_ns: start + down,
            });
            start + down
        } else {
            let cycles = rng.gen_range(cfg.storm_cycles.0..=cfg.storm_cycles.1);
            let pause_ns = rng.gen_range(cfg.storm_pause_ns.0..=cfg.storm_pause_ns.1);
            let gap_ns = rng.gen_range(cfg.storm_gap_ns.0..=cfg.storm_gap_ns.1);
            let ev = FailureEvent::PauseStorm {
                node,
                port,
                start_ns: start,
                cycles,
                pause_ns,
                gap_ns,
            };
            let (_, end) = ev.interval();
            schedule.events.push(ev);
            end
        };
        cursor.insert((node, port), end + 1);
    }
    debug_assert!(schedule.validate(topo).is_ok());
    schedule
}

/// One named adversarial scenario: a flow list plus the fabric conditions it
/// runs under.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (used in result filenames — lowercase, underscores).
    pub name: String,
    /// Fat-tree arity the scenario is sized for (`k³/4` hosts).
    pub topo_k: usize,
    /// The flows to simulate.
    pub flows: Vec<FlowSpec>,
    /// Injected fabric failures (often empty).
    pub failures: FailureSchedule,
    /// True if the scenario wants a lossless (PFC) fabric.
    pub needs_pfc: bool,
    /// Suggested simulation horizon, ns.
    pub end_ns: u64,
}

/// The scenario matrix for the k=4 fat-tree: each adversarial pattern under
/// DCQCN and DCTCP (the protocol sweep), plus the failure-injection
/// variants. `smoke` shrinks every knob for CI.
pub fn scenario_matrix(seed: u64, smoke: bool) -> Vec<Scenario> {
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let shrink_u = |full: usize, tiny: usize| if smoke { tiny } else { full };
    let mut out = Vec::new();

    for (cc, cc_name) in [
        (CongestionControl::Dcqcn, "dcqcn"),
        (CongestionControl::Dctcp, "dctcp"),
    ] {
        let mut storm = IncastStormConfig::paper(seed, cc);
        storm.rounds = shrink_u(storm.rounds, 2);
        if smoke {
            storm.bytes_per_sender = 16_000;
        }
        out.push(Scenario {
            name: format!("incast_{cc_name}"),
            topo_k: 4,
            flows: incast_storm(0, &storm),
            failures: FailureSchedule::none(),
            needs_pfc: false,
            end_ns: storm.start_ns + storm.rounds as u64 * storm.round_gap_ns + 1_000_000,
        });

        let mut ar = AllreduceConfig::paper(seed, cc);
        ar.steps = shrink_u(ar.steps, 2);
        if smoke {
            ar.chunk_bytes = 32_000;
        }
        out.push(Scenario {
            name: format!("allreduce_{cc_name}"),
            topo_k: 4,
            flows: allreduce(0, &ar),
            failures: FailureSchedule::none(),
            needs_pfc: false,
            end_ns: ar.start_ns + ar.steps as u64 * ar.step_gap_ns + 1_000_000,
        });
    }

    // Failure-injection variants (DCQCN carriers).
    let mut storm = IncastStormConfig::paper(seed, CongestionControl::Dcqcn);
    storm.rounds = shrink_u(storm.rounds, 2);
    if smoke {
        storm.bytes_per_sender = 16_000;
    }
    let mut plan = FailurePlanConfig::paper(seed);
    plan.storms += plan.flaps;
    plan.flaps = 0; // a pure pause-storm plan on a lossless fabric
    out.push(Scenario {
        name: "pfc_storm".to_string(),
        topo_k: 4,
        flows: incast_storm(0, &storm),
        failures: failure_plan(&topo, &plan),
        needs_pfc: true,
        end_ns: storm.start_ns + storm.rounds as u64 * storm.round_gap_ns + 1_500_000,
    });

    let mut ar = AllreduceConfig::paper(seed, CongestionControl::Dcqcn);
    ar.steps = shrink_u(ar.steps, 2);
    if smoke {
        ar.chunk_bytes = 32_000;
    }
    let mut plan = FailurePlanConfig::paper(seed.wrapping_add(1));
    plan.storms = 0; // a pure link-flap plan on a lossy fabric
    out.push(Scenario {
        name: "link_flap".to_string(),
        topo_k: 4,
        flows: allreduce(0, &ar),
        failures: failure_plan(&topo, &plan),
        needs_pfc: false,
        end_ns: ar.start_ns + ar.steps as u64 * ar.step_gap_ns + 1_500_000,
    });

    out
}

/// The cluster-scale extension of the matrix: k=8 and k=16 fat-trees under
/// Poisson Hadoop traffic plus a pod-crossing incast storm — the workloads
/// the parallel simulator's scaling benchmarks run (ROADMAP item 1 × item
/// 5). Kept separate from [`scenario_matrix`] so the frontier sweep's cost
/// stays bounded; the netsim scaling bench consumes these directly. `smoke`
/// shrinks the arrival window for CI.
pub fn cluster_scenarios(seed: u64, smoke: bool) -> Vec<Scenario> {
    let mut out = Vec::new();
    for k in [8usize, 16] {
        let num_hosts = k * k * k / 4;
        let params = crate::WorkloadParams {
            duration_ns: if smoke { 100_000 } else { 2_000_000 },
            ..crate::WorkloadParams::cluster(crate::WorkloadKind::Hadoop, 0.25, k, seed)
        };
        let mut flows = params.generate();
        // A synchronized cross-pod incast riding on the Poisson background:
        // pods' worth of senders into host 0 midway through the window.
        let fan_in = num_hosts / 8;
        // Distinct senders spread across pods, never the victim (7 is
        // coprime to both 127 and 1023, so the map below is injective).
        let senders: Vec<usize> = (1..=fan_in)
            .map(|i| 1 + (i * 7) % (num_hosts - 1))
            .collect();
        flows.extend(incast_burst(
            flows.len() as u64,
            &senders,
            0,
            32_000,
            params.duration_ns / 2,
            2_000,
            seed,
            CongestionControl::Dcqcn,
        ));
        out.push(Scenario {
            name: format!("cluster_k{k}_hadoop"),
            topo_k: k,
            flows,
            failures: FailureSchedule::none(),
            needs_pfc: false,
            end_ns: params.duration_ns + 1_000_000,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_scenarios_cover_k8_and_k16_with_valid_hosts() {
        let scenarios = cluster_scenarios(3, true);
        assert_eq!(scenarios.len(), 2);
        for (s, k) in scenarios.iter().zip([8usize, 16]) {
            assert_eq!(s.topo_k, k);
            let hosts = k * k * k / 4;
            assert!(!s.flows.is_empty(), "{}", s.name);
            assert!(
                s.flows
                    .iter()
                    .all(|f| f.src < hosts && f.dst < hosts && f.src != f.dst),
                "{}: hosts in range",
                s.name
            );
            // Flow ids must stay dense for the simulator's fast lookup.
            assert!(s
                .flows
                .iter()
                .enumerate()
                .all(|(i, f)| f.id == FlowId(i as u64)));
        }
        // Determinism.
        let again = cluster_scenarios(3, true);
        for (a, b) in scenarios.iter().zip(&again) {
            assert_eq!(a.flows, b.flows);
        }
    }

    #[test]
    fn incast_storm_conserves_total_bytes_and_is_deterministic() {
        let cfg = IncastStormConfig::paper(11, CongestionControl::Dcqcn);
        let a = incast_storm(0, &cfg);
        let b = incast_storm(0, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.rounds * cfg.fan_in);
        let total: u64 = a.iter().map(|f| f.size_bytes).sum();
        assert_eq!(total, cfg.total_bytes());
        // No sender targets itself, and every flow starts within its
        // round's jitter window.
        for (i, f) in a.iter().enumerate() {
            assert_ne!(f.src, f.dst);
            let round = (i / cfg.fan_in) as u64;
            let base = cfg.start_ns + round * cfg.round_gap_ns;
            assert!((base..=base + cfg.jitter_ns).contains(&f.start_ns));
        }
    }

    #[test]
    fn allreduce_each_step_is_a_permutation() {
        for pattern in [AllreducePattern::Ring, AllreducePattern::ShiftPermutation] {
            let cfg = AllreduceConfig {
                pattern,
                ..AllreduceConfig::paper(3, CongestionControl::Dctcp)
            };
            let flows = allreduce(0, &cfg);
            assert_eq!(flows.len(), cfg.steps * cfg.num_hosts);
            for step in 0..cfg.steps {
                let step_flows = &flows[step * cfg.num_hosts..(step + 1) * cfg.num_hosts];
                let senders: std::collections::BTreeSet<usize> =
                    step_flows.iter().map(|f| f.src).collect();
                let receivers: std::collections::BTreeSet<usize> =
                    step_flows.iter().map(|f| f.dst).collect();
                assert_eq!(senders.len(), cfg.num_hosts, "each host sends once");
                assert_eq!(receivers.len(), cfg.num_hosts, "each host receives once");
                assert!(step_flows.iter().all(|f| f.src != f.dst));
            }
        }
    }

    #[test]
    fn failure_plan_never_overlaps_on_a_link() {
        let topo = Topology::fat_tree(4, 100.0, 1000);
        for seed in 0..20 {
            let plan = failure_plan(&topo, &FailurePlanConfig::paper(seed));
            assert_eq!(plan.events.len(), 5);
            plan.validate(&topo).expect("generated plan must validate");
        }
    }

    #[test]
    fn scenario_matrix_is_deterministic_and_valid() {
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let a = scenario_matrix(7, false);
        let b = scenario_matrix(7, false);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 6, "4 protocol-sweep + 2 failure scenarios");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.flows, y.flows);
            assert_eq!(x.failures, y.failures);
        }
        for s in &a {
            assert!(!s.flows.is_empty(), "{}", s.name);
            s.failures.validate(&topo).expect("scenario failures valid");
        }
        // The failure variants actually inject something.
        assert!(a
            .iter()
            .any(|s| s.name == "pfc_storm" && !s.failures.is_empty()));
        assert!(a
            .iter()
            .any(|s| s.name == "link_flap" && !s.failures.is_empty()));
    }
}
