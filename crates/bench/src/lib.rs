//! # umon-bench — the experiment harness
//!
//! Shared plumbing for the per-figure/table binaries (see `src/bin/`): it
//! runs the paper's simulation workloads, builds ground-truth rate curves
//! from the simulator's egress tap, sweeps measurement schemes at equal
//! memory, and evaluates the Appendix-E accuracy metrics per flow.
//!
//! Every binary prints the same rows/series its figure or table reports and
//! emits a machine-readable JSON block consumed by EXPERIMENTS.md updates.

use std::collections::HashMap;
use umon_baselines::CurveSketch;
use umon_metrics::{all_metrics, MetricSummary, WorkloadAccuracy};
use umon_netsim::{FlowSpec, SimConfig, SimResult, Simulator, Topology, TxRecord};
use umon_workloads::{WorkloadKind, WorkloadParams};
use wavesketch::FlowKey;

/// The paper's window shift: 8.192 μs windows.
pub const WINDOW_SHIFT: u32 = 13;
/// The paper's measurement period: 20 ms.
pub const PERIOD_NS: u64 = 20_000_000;
/// Windows per 20 ms period at 8.192 μs.
pub const PERIOD_WINDOWS: usize = (PERIOD_NS >> WINDOW_SHIFT) as usize + 1;

/// Runs one paper workload (k=4 fat-tree, 100 Gbps, 1 μs hops) and returns
/// the flow list plus the simulation result.
pub fn run_paper_workload(kind: WorkloadKind, load: f64, seed: u64) -> (Vec<FlowSpec>, SimResult) {
    let params = WorkloadParams::paper(kind, load, seed);
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: PERIOD_NS + 5_000_000, // let in-flight traffic land
        seed,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows.clone(), config).run();
    (flows, result)
}

/// Ground-truth per-flow window series measured at the flow's source host:
/// `(host, flow) → bytes per absolute window`.
pub fn ground_truth(
    records: &[TxRecord],
    window_shift: u32,
) -> HashMap<(usize, u64), HashMap<u64, f64>> {
    let mut truth: HashMap<(usize, u64), HashMap<u64, f64>> = HashMap::new();
    for r in records {
        let w = r.ts_ns >> window_shift;
        *truth
            .entry((r.host, r.flow.0))
            .or_default()
            .entry(w)
            .or_insert(0.0) += r.bytes as f64;
    }
    truth
}

/// Dense truth curve over `[start, end)` from a sparse window map.
pub fn dense_curve(windows: &HashMap<u64, f64>, start: u64, end: u64) -> Vec<f64> {
    (start..end)
        .map(|w| windows.get(&w).copied().unwrap_or(0.0))
        .collect()
}

/// Feeds each host's egress records into its own instance of a scheme
/// (`make` is called once per host), queries every flow at its source host
/// and averages the four metrics over flows — one data point of
/// Figures 11/12.
///
/// Returns `(summary, per_flow)` where `per_flow` maps flow id to
/// `(flow_bytes, metrics)` for the flow-size breakdowns (Figures 17/18).
pub fn evaluate_scheme<F>(
    records: &[TxRecord],
    num_hosts: usize,
    mut make: F,
) -> (MetricSummary, Vec<(u64, f64, MetricSummary)>)
where
    F: FnMut() -> Box<dyn CurveSketch>,
{
    // Partition records per host (they are already time-ordered).
    let mut per_host: Vec<Vec<&TxRecord>> = vec![Vec::new(); num_hosts];
    for r in records {
        per_host[r.host].push(r);
    }
    let truth = ground_truth(records, WINDOW_SHIFT);
    let mut acc = WorkloadAccuracy::new();
    let mut per_flow = Vec::new();
    for (host, recs) in per_host.iter().enumerate() {
        if recs.is_empty() {
            continue;
        }
        let mut sketch = make();
        for r in recs {
            let w = r.ts_ns >> WINDOW_SHIFT;
            sketch.update(&FlowKey::from_id(r.flow.0), w, r.bytes as i64);
        }
        // Every flow sourced at this host.
        let flows: Vec<u64> = truth
            .keys()
            .filter(|(h, _)| *h == host)
            .map(|(_, f)| *f)
            .collect();
        for flow in flows {
            let tw = &truth[&(host, flow)];
            // Evaluate over the flow's active span padded by 8 windows on
            // each side: schemes that smear a burst beyond its true windows
            // must be charged for it (a 1-window flow would otherwise score
            // a trivially perfect cosine on a 1-sample vector).
            let pad = 8u64;
            let start = tw.keys().min().expect("non-empty").saturating_sub(pad);
            let end = *tw.keys().max().expect("non-empty") + 1 + pad;
            let t = dense_curve(tw, start, end);
            let est = match sketch.query(&FlowKey::from_id(flow)) {
                Some(series) => (start..end).map(|w| series.at(w)).collect::<Vec<f64>>(),
                None => vec![0.0; t.len()],
            };
            let m = all_metrics(&t, &est);
            let bytes: f64 = t.iter().sum();
            acc.add(m);
            per_flow.push((flow, bytes, m));
        }
    }
    (acc.mean(), per_flow)
}

/// Groups per-flow metrics by flow length (packets at 1000 B MTU) into
/// logarithmic buckets — the x-axis of Figures 17/18. Returns
/// `(bucket_upper_packets, mean metrics, flows_in_bucket)` rows.
pub fn by_flow_length(
    per_flow: &[(u64, f64, MetricSummary)],
    mtu: f64,
) -> Vec<(u64, MetricSummary, usize)> {
    let mut buckets: std::collections::BTreeMap<u64, WorkloadAccuracy> =
        std::collections::BTreeMap::new();
    for &(_, bytes, m) in per_flow {
        let packets = (bytes / mtu).ceil().max(1.0) as u64;
        // Log10 buckets: 10, 100, 1000, 10000, ...
        let bucket = 10u64.pow((packets as f64).log10().ceil().max(1.0) as u32);
        buckets.entry(bucket).or_default().add(m);
    }
    buckets
        .into_iter()
        .map(|(b, acc)| {
            let n = acc.flow_count();
            (b, acc.mean(), n)
        })
        .collect()
}

/// Pretty-prints a metric row.
pub fn fmt_metrics(m: &MetricSummary) -> String {
    format!(
        "euclidean={:>10.2}  are={:>7.4}  cosine={:>7.4}  energy={:>7.4}",
        m.euclidean, m.are, m.cosine, m.energy
    )
}

/// Writes a JSON results blob under `results/` so EXPERIMENTS.md can quote
/// it; also returns the serialized string.
pub fn save_results(name: &str, value: &serde_json::Value) -> String {
    let s = serde_json::to_string_pretty(value).expect("serializable");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.json")), &s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_baselines::budget::SweepLayout;
    use umon_netsim::FlowId;
    use wavesketch::SelectorKind;

    fn synth_records() -> Vec<TxRecord> {
        // Two hosts, three flows, deterministic pattern.
        let mut recs = Vec::new();
        for i in 0..200u64 {
            recs.push(TxRecord {
                host: 0,
                flow: FlowId(i % 2),
                ts_ns: i * 20_000,
                bytes: 1000,
            });
            recs.push(TxRecord {
                host: 1,
                flow: FlowId(2),
                ts_ns: i * 40_000,
                bytes: 500,
            });
        }
        recs.sort_by_key(|r| r.ts_ns);
        recs
    }

    #[test]
    fn ground_truth_buckets_by_window() {
        let recs = vec![
            TxRecord {
                host: 0,
                flow: FlowId(1),
                ts_ns: 0,
                bytes: 100,
            },
            TxRecord {
                host: 0,
                flow: FlowId(1),
                ts_ns: 100,
                bytes: 100,
            },
            TxRecord {
                host: 0,
                flow: FlowId(1),
                ts_ns: 8192,
                bytes: 100,
            },
        ];
        let t = ground_truth(&recs, 13);
        let w = &t[&(0, 1)];
        assert_eq!(w[&0], 200.0);
        assert_eq!(w[&1], 100.0);
    }

    #[test]
    fn evaluate_scheme_scores_wavesketch_nearly_perfect_with_big_memory() {
        let recs = synth_records();
        let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
        let (summary, per_flow) = evaluate_scheme(&recs, 2, || {
            Box::new(layout.wavesketch(8 << 20, SelectorKind::Ideal))
        });
        assert_eq!(per_flow.len(), 3);
        assert!(summary.are < 0.01, "ARE {} too high", summary.are);
        assert!(summary.cosine > 0.99);
    }

    #[test]
    fn evaluate_scheme_ranks_wavesketch_above_omniwindow_at_small_memory() {
        let recs = synth_records();
        let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
        let budget = 150 * 1024;
        let (ws, _) = evaluate_scheme(&recs, 2, || {
            Box::new(layout.wavesketch(budget, SelectorKind::Ideal))
        });
        let (ow, _) = evaluate_scheme(&recs, 2, || Box::new(layout.omniwindow(budget)));
        assert!(
            ws.cosine >= ow.cosine,
            "WaveSketch cosine {} must beat OmniWindow {}",
            ws.cosine,
            ow.cosine
        );
    }

    #[test]
    fn flow_length_buckets_are_logarithmic() {
        let m = MetricSummary {
            euclidean: 1.0,
            are: 0.1,
            cosine: 0.9,
            energy: 0.9,
        };
        let per_flow = vec![
            (0u64, 5_000.0, m),  // 5 packets → bucket 10
            (1, 50_000.0, m),    // 50 packets → bucket 100
            (2, 70_000.0, m),    // 70 packets → bucket 100
            (3, 5_000_000.0, m), // 5000 packets → bucket 10000
        ];
        let rows = by_flow_length(&per_flow, 1000.0);
        let buckets: Vec<u64> = rows.iter().map(|r| r.0).collect();
        assert_eq!(buckets, vec![10, 100, 10_000]);
        assert_eq!(rows[1].2, 2);
    }
}
pub mod accuracy;
pub mod frontier;
