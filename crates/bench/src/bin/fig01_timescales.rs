//! Figure 1: the same flow's rate curve at 10 μs vs 10 ms observation
//! granularity. A DCQCN flow contends with on-off background traffic on a
//! single bottleneck; the microsecond view shows peaks, troughs and
//! recoveries that the 10 ms average erases.

use umon_bench::save_results;
use umon_netsim::{CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology};
use umon_workloads::on_off_background;

fn main() {
    // Dumbbell: the observed flow (host 0 → 2) shares the bottleneck with
    // on-off bursts (host 1 → 3).
    let topo = Topology::dumbbell(2, 100.0, 1000);
    let mut flows = vec![FlowSpec {
        id: FlowId(0),
        src: 0,
        dst: 2,
        size_bytes: 30_000_000,
        start_ns: 0,
        cc: CongestionControl::Dcqcn,
    }];
    flows.extend(on_off_background(
        1, 1, 3, 90.0, 150_000, 250_000, 25, 100_000,
    ));
    let config = SimConfig {
        end_ns: 11_000_000,
        clock_error_ns: 0,
        seed: 1,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    // Rate of flow 0 at 10 μs granularity.
    let fine_ns = 10_000u64;
    let coarse_ns = 10_000_000u64;
    let horizon = 10_000_000u64;
    let mut fine = vec![0.0f64; (horizon / fine_ns) as usize];
    let mut coarse = vec![0.0f64; (horizon / coarse_ns) as usize];
    for r in &result.telemetry.tx_records {
        if r.flow != FlowId(0) || r.ts_ns >= horizon {
            continue;
        }
        fine[(r.ts_ns / fine_ns) as usize] += r.bytes as f64;
        coarse[(r.ts_ns / coarse_ns) as usize] += r.bytes as f64;
    }
    let to_gbps_fine = |b: f64| b * 8.0 / fine_ns as f64;
    let to_gbps_coarse = |b: f64| b * 8.0 / coarse_ns as f64;

    println!("\nFigure 1: flow rate at different timescales (Gbps)");
    println!(
        "10 ms window average: {:.2} Gbps",
        to_gbps_coarse(coarse[0])
    );
    let fine_gbps: Vec<f64> = fine.iter().map(|&b| to_gbps_fine(b)).collect();
    let max = fine_gbps.iter().cloned().fold(0.0, f64::max);
    let min_active = fine_gbps
        .iter()
        .cloned()
        .filter(|&v| v > 0.0)
        .fold(f64::INFINITY, f64::min);
    println!("10 us windows: max {max:.2} Gbps, min active {min_active:.2} Gbps");
    // Print a coarse ASCII sparkline of the first 1000 windows.
    println!("first 100 of 1000 windows (each char = 10 us, scale 0-9):");
    let line: String = fine_gbps
        .iter()
        .take(100)
        .map(|&v| {
            let level = ((v / 100.0) * 9.0).round().clamp(0.0, 9.0) as u32;
            char::from_digit(level, 10).unwrap()
        })
        .collect();
    println!("{line}");
    let oscillation = max - min_active;
    println!("microsecond-scale oscillation span: {oscillation:.2} Gbps");
    assert!(
        oscillation > to_gbps_coarse(coarse[0]) * 0.3,
        "the fine view must reveal swings the coarse view hides"
    );
    save_results(
        "fig01_timescales",
        &serde_json::json!({
            "avg_10ms_gbps": to_gbps_coarse(coarse[0]),
            "fine_10us_gbps": fine_gbps,
        }),
    );
}
