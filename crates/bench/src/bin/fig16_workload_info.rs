//! Figure 16: workload information — flow-size CDFs, port-level flow
//! inter-arrival CDFs, and the time-weighted queue-length distribution of
//! the simulated fabrics.

use umon_bench::{run_paper_workload, save_results};
use umon_workloads::{hadoop, inter_arrival_cdf, websearch, WorkloadKind, WorkloadParams};

fn main() {
    // (a) flow size CDFs (the distributions themselves).
    println!("\nFigure 16a: flow size CDF breakpoints");
    for d in [hadoop(), websearch()] {
        println!("  {} (mean {:.0} B):", d.name, d.mean());
        for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
            println!("    p{:<4} {:>12} B", (q * 100.0) as u32, d.quantile(q));
        }
    }

    // (b) inter-arrival CDFs at host access ports.
    println!("\nFigure 16b: flow inter-arrival time at a port (us)");
    let mut json_b = Vec::new();
    for (kind, load) in [
        (WorkloadKind::Hadoop, 0.15),
        (WorkloadKind::Hadoop, 0.35),
        (WorkloadKind::WebSearch, 0.15),
        (WorkloadKind::WebSearch, 0.35),
    ] {
        let flows = WorkloadParams::paper(kind, load, 16).generate();
        let cdf = inter_arrival_cdf(&flows, 16);
        let q = |p: f64| -> f64 {
            if cdf.is_empty() {
                return f64::NAN;
            }
            let idx = ((cdf.len() as f64 * p) as usize).min(cdf.len() - 1);
            cdf[idx].0 / 1000.0
        };
        println!(
            "  {} {:>3.0}%: p20 {:>8.1}  p50 {:>8.1}  p90 {:>8.1}",
            kind.name(),
            load * 100.0,
            q(0.2),
            q(0.5),
            q(0.9)
        );
        json_b.push(serde_json::json!({
            "workload": kind.name(), "load": load,
            "p20_us": q(0.2), "p50_us": q(0.5), "p90_us": q(0.9),
        }));
    }

    // (c) queue-length distribution from the simulations.
    println!("\nFigure 16c: queue length distribution (fraction of port-time)");
    let mut json_c = Vec::new();
    for (kind, load) in [
        (WorkloadKind::Hadoop, 0.15),
        (WorkloadKind::Hadoop, 0.35),
        (WorkloadKind::WebSearch, 0.15),
        (WorkloadKind::WebSearch, 0.35),
    ] {
        eprintln!("simulating {} {:.0}% ...", kind.name(), load * 100.0);
        let (_flows, result) = run_paper_workload(kind, load, 16);
        let dist = result.telemetry.queue_dist.expect("collected");
        let above_20k = dist.fraction_at_or_above(20 * 1024);
        let above_200k = dist.fraction_at_or_above(200 * 1024);
        println!(
            "  {} {:>3.0}%:  ≥KMin(20KiB) {:>8.5}   ≥KMax(200KiB) {:>8.5}",
            kind.name(),
            load * 100.0,
            above_20k,
            above_200k
        );
        json_c.push(serde_json::json!({
            "workload": kind.name(), "load": load,
            "frac_above_kmin": above_20k,
            "frac_above_kmax": above_200k,
        }));
    }
    save_results(
        "fig16_workload_info",
        &serde_json::json!({"inter_arrival": json_b, "queue": json_c}),
    );
}
