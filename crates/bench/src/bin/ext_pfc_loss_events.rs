//! Extension experiment: the two μEvent classes beyond microbursts that §5
//! names — PFC pause storms (lossless fabrics) and packet loss (lossy
//! fabrics with deflect-on-drop) — detected end-to-end from the new
//! telemetry taps.

use umon::{loss_events, pause_storms};
use umon_bench::save_results;
use umon_netsim::sim::PfcConfig;
use umon_netsim::{CongestionControl, SimConfig, Simulator, Topology};
use umon_workloads::incast_burst;

fn main() {
    // A harsh 8:1 incast with fixed-rate senders (no backoff) stresses the
    // receiver downlink.
    let mk_flows = || {
        incast_burst(
            0,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            0,
            1_000_000,
            500_000,
            0,
            0,
            CongestionControl::FixedRate(100.0),
        )
    };

    // Lossless fabric: PFC on, small buffers.
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        switch_buffer_bytes: 600 * 1024,
        pfc: Some(PfcConfig {
            xoff_bytes: 300 * 1024,
            xon_bytes: 200 * 1024,
        }),
        end_ns: 20_000_000,
        seed: 25,
        ..SimConfig::default()
    };
    let lossless = Simulator::new(topo, mk_flows(), config).run();
    let storms = pause_storms(&lossless.telemetry.pause_records, 100_000, 3);
    println!("\nLossless fabric (PFC XOFF 300 KiB / XON 200 KiB):");
    println!(
        "  drops: {}   pause transitions: {}   detected pause storms: {}",
        lossless.telemetry.drops,
        lossless.telemetry.pause_records.len(),
        storms.len()
    );
    for s in storms.iter().take(5) {
        println!(
            "  storm at node {} port {}: {} XOFFs over {:.1} us, paused {:.0}% of the time",
            s.node,
            s.port,
            s.xoffs,
            (s.end_ns - s.start_ns) as f64 / 1000.0,
            s.paused_fraction() * 100.0
        );
    }
    assert_eq!(lossless.telemetry.drops, 0, "PFC fabric must be lossless");
    assert!(!storms.is_empty(), "the incast must cause repeated pausing");

    // Lossy fabric: PFC off, deflect-on-drop on.
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        switch_buffer_bytes: 600 * 1024,
        deflect_on_drop: true,
        end_ns: 20_000_000,
        seed: 25,
        ..SimConfig::default()
    };
    let lossy = Simulator::new(topo, mk_flows(), config).run();
    let losses = loss_events(&lossy.telemetry.drop_records, 50_000);
    println!("\nLossy fabric (same buffers, deflect-on-drop):");
    println!(
        "  drops: {}   loss events: {}",
        lossy.telemetry.drops,
        losses.len()
    );
    for e in losses.iter().take(5) {
        println!(
            "  loss at switch {} port {}: {} packets / {} B, victims {:?}",
            e.switch, e.port, e.packets, e.bytes, e.victims
        );
    }
    assert!(
        lossy.telemetry.drops > 0,
        "without PFC this incast must drop"
    );
    assert!(!losses.is_empty());
    save_results(
        "ext_pfc_loss_events",
        &serde_json::json!({
            "lossless": serde_json::json!({
                "drops": lossless.telemetry.drops,
                "pause_transitions": lossless.telemetry.pause_records.len(),
                "storms": storms.len()
            }),
            "lossy": serde_json::json!({
                "drops": lossy.telemetry.drops, "loss_events": losses.len()
            }),
        }),
    );
}
