//! Extension experiment: scale check (§7.1 "if the topology scale does not
//! significantly affect a single host's traffic scale, this result applies
//! to larger-scale topologies"). Runs the same per-host load on k=4
//! (16 hosts) and k=8 (128 hosts) fat-trees and compares the per-host
//! WaveSketch report bandwidth.

use umon::{HostAgent, HostAgentConfig};
use umon_bench::save_results;
use umon_netsim::{SimConfig, Simulator, Topology};
use umon_workloads::{WorkloadKind, WorkloadParams};

fn per_host_mbps(k: usize, seed: u64) -> (usize, f64) {
    let topo = Topology::fat_tree(k, 100.0, 1000);
    let hosts = topo.num_hosts;
    let params = WorkloadParams {
        num_hosts: hosts,
        duration_ns: 10_000_000, // 10 ms keeps the k=8 run quick
        ..WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, seed)
    };
    let flows = params.generate();
    let config = SimConfig {
        end_ns: 14_000_000,
        seed,
        collect_queue_dist: false,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();
    // Partition records per host once, then account report bandwidth.
    let mut per_host: Vec<Vec<umon_netsim::TxRecord>> = vec![Vec::new(); hosts];
    for r in &result.telemetry.tx_records {
        per_host[r.host].push(*r);
    }
    let mut total_bps = 0.0;
    for (host, records) in per_host.into_iter().enumerate() {
        let mut agent = HostAgent::new(host, HostAgentConfig::default());
        for r in &records {
            agent.observe(r.flow.0, r.ts_ns, r.bytes);
        }
        total_bps += HostAgent::report_bandwidth_bps(&agent.finish(), 10_000_000);
    }
    (hosts, total_bps / hosts as f64 / 1e6)
}

fn main() {
    println!("\nScale check: per-host report bandwidth, same per-host load");
    let (h4, bw4) = per_host_mbps(4, 31);
    println!("  k=4 fat-tree ({h4:>3} hosts): {bw4:.2} Mbps per host");
    let (h8, bw8) = per_host_mbps(8, 31);
    println!("  k=8 fat-tree ({h8:>3} hosts): {bw8:.2} Mbps per host");
    let ratio = bw8 / bw4;
    println!("  ratio: {ratio:.2}x");
    assert!(
        (0.5..2.0).contains(&ratio),
        "per-host cost must be scale-invariant (ratio {ratio})"
    );
    println!("\n→ μFlow cost is a per-host property: an 8x larger fabric leaves");
    println!("  the per-host report bandwidth unchanged (§7.1's scaling claim).");
    save_results(
        "ext_scale_k8",
        &serde_json::json!({
            "k4_hosts": h4, "k4_mbps_per_host": bw4,
            "k8_hosts": h8, "k8_mbps_per_host": bw8,
        }),
    );
}
