//! Figure 3: the counter-amplification factor N(10 μs)/N(10 ms) a naive
//! window refinement would pay, per workload and link load, using flow
//! durations from the packet-level simulation.

use umon_bench::{run_paper_workload, save_results};
use umon_workloads::{counter_increase_factor, WorkloadKind};

fn main() {
    println!("\nFigure 3: counter increase factor N(10us)/N(10ms)");
    println!("{:<18} {:>6} {:>10}", "workload", "load", "factor");
    let mut rows = Vec::new();
    for kind in [WorkloadKind::WebSearch, WorkloadKind::Hadoop] {
        for load in [0.05, 0.15, 0.25, 0.35, 0.45] {
            let (_specs, result) = run_paper_workload(kind, load, 3);
            // Duration = first to last egress packet of the flow (active
            // time at the measurement point).
            let mut bounds: std::collections::HashMap<u64, (u64, u64)> =
                std::collections::HashMap::new();
            for r in &result.telemetry.tx_records {
                let e = bounds.entry(r.flow.0).or_insert((r.ts_ns, r.ts_ns));
                e.0 = e.0.min(r.ts_ns);
                e.1 = e.1.max(r.ts_ns);
            }
            let durations: Vec<u64> = bounds.values().map(|&(a, b)| b - a).collect();
            let factor = counter_increase_factor(&durations, 10_000, 10_000_000);
            println!(
                "{:<18} {:>5.0}% {:>10.1}",
                kind.name(),
                load * 100.0,
                factor
            );
            rows.push(serde_json::json!({
                "workload": kind.name(),
                "load": load,
                "factor": factor,
            }));
        }
    }
    save_results("fig03_amplification", &serde_json::json!(rows));
}
