//! §7.1 "Bandwidth usage": the per-host report upload bandwidth of the
//! WaveSketch host agent (~5 Mbps in the paper) against the cost of
//! per-packet head mirroring (the Valinor/Lumina-style comparison: 64 B on
//! the wire for every packet).

use umon::{HostAgent, HostAgentConfig};
use umon_bench::{run_paper_workload, save_results, PERIOD_NS};
use umon_workloads::WorkloadKind;

fn main() {
    let (_flows, result) = run_paper_workload(WorkloadKind::Hadoop, 0.15, 7);
    let span_ns = PERIOD_NS;

    let mut total_bps = 0.0;
    let mut max_bps = 0.0f64;
    let mut total_pkts = 0u64;
    for host in 0..16 {
        let mut agent = HostAgent::new(host, HostAgentConfig::default());
        agent.ingest(&result.telemetry.tx_records);
        total_pkts += agent.packets;
        let reports = agent.finish();
        let bps = HostAgent::report_bandwidth_bps(&reports, span_ns);
        total_bps += bps;
        max_bps = max_bps.max(bps);
    }
    let avg_mbps = total_bps / 16.0 / 1e6;

    // Per-packet head mirroring cost over the same traffic.
    let mirror_bits = total_pkts * 64 * 8;
    let mirror_avg_mbps = mirror_bits as f64 / (span_ns as f64 / 1e9) / 16.0 / 1e6;

    println!("\nHost-side measurement bandwidth (Hadoop 15%, 20 ms period):");
    println!(
        "  WaveSketch reports: avg {avg_mbps:.2} Mbps/host (max {:.2})",
        max_bps / 1e6
    );
    println!("  64 B/packet head mirroring: avg {mirror_avg_mbps:.2} Mbps/host");
    println!(
        "  WaveSketch uses {:.3}% of the mirroring bandwidth",
        100.0 * avg_mbps / mirror_avg_mbps
    );
    assert!(
        avg_mbps < mirror_avg_mbps / 10.0,
        "WaveSketch must be an order of magnitude cheaper than mirroring"
    );
    save_results(
        "bandwidth_host",
        &serde_json::json!({
            "wavesketch_avg_mbps": avg_mbps,
            "wavesketch_max_mbps": max_bps / 1e6,
            "mirroring_avg_mbps": mirror_avg_mbps,
        }),
    );
}
