//! Ablation: the wavelet depth `L` and coefficient budget `K` trade-off of
//! §4.2 — deeper decomposition shrinks the approximation array (better
//! compression, more computation/state per update); larger `K` keeps more
//! detail (better accuracy, bigger reports).

use umon_baselines::CurveSketch;
use umon_bench::{evaluate_scheme, fmt_metrics, run_paper_workload, save_results, PERIOD_WINDOWS};
use umon_workloads::WorkloadKind;
use wavesketch::{BasicWaveSketch, SelectorKind, SketchConfig};

fn build(levels: u32, k: usize) -> BasicWaveSketch {
    BasicWaveSketch::new(
        SketchConfig::builder()
            .rows(3)
            .width(256)
            .levels(levels)
            .topk(k)
            .max_windows(PERIOD_WINDOWS.next_power_of_two())
            .selector(SelectorKind::Ideal)
            .build(),
    )
}

fn main() {
    let (_flows, result) = run_paper_workload(WorkloadKind::WebSearch, 0.25, 21);
    let records = &result.telemetry.tx_records;
    let mut rows = Vec::new();

    println!("\nAblation: wavelet depth L (K = 64)");
    println!(
        "{:>3} {:>10} {:>12}  accuracy",
        "L", "memory KB", "report B/bkt"
    );
    for levels in [4u32, 6, 8, 10] {
        let proto = build(levels, 64);
        let mem_kb = proto.memory_bytes() / 1024;
        let report = proto.config().report_bytes_per_bucket();
        let (m, _) = evaluate_scheme(records, 16, || {
            Box::new(build(levels, 64)) as Box<dyn CurveSketch>
        });
        println!("{levels:>3} {mem_kb:>10} {report:>12}  {}", fmt_metrics(&m));
        rows.push(serde_json::json!({
            "levels": levels, "k": 64, "memory_kb": mem_kb,
            "report_bytes_per_bucket": report,
            "are": m.are, "cosine": m.cosine, "energy": m.energy,
            "euclidean": m.euclidean,
        }));
    }

    println!("\nAblation: coefficient budget K (L = 8)");
    println!(
        "{:>4} {:>10} {:>12}  accuracy",
        "K", "memory KB", "report B/bkt"
    );
    for k in [16usize, 32, 64, 128, 256] {
        let proto = build(8, k);
        let mem_kb = proto.memory_bytes() / 1024;
        let report = proto.config().report_bytes_per_bucket();
        let (m, _) = evaluate_scheme(records, 16, || {
            Box::new(build(8, k)) as Box<dyn CurveSketch>
        });
        println!("{k:>4} {mem_kb:>10} {report:>12}  {}", fmt_metrics(&m));
        rows.push(serde_json::json!({
            "levels": 8, "k": k, "memory_kb": mem_kb,
            "report_bytes_per_bucket": report,
            "are": m.are, "cosine": m.cosine, "energy": m.energy,
            "euclidean": m.euclidean,
        }));
    }
    save_results("ablation_wavelet_params", &serde_json::json!(rows));
}
