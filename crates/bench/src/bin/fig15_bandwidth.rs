//! Figure 15: maximum per-switch mirror bandwidth vs. sampling ratio for
//! the four workload/load combinations.

use umon::{SwitchAgent, SwitchAgentConfig};
use umon_bench::{run_paper_workload, save_results, PERIOD_NS};
use umon_workloads::WorkloadKind;

fn main() {
    let combos = [
        (WorkloadKind::Hadoop, 0.15),
        (WorkloadKind::Hadoop, 0.35),
        (WorkloadKind::WebSearch, 0.15),
        (WorkloadKind::WebSearch, 0.35),
    ];
    let shifts: Vec<u32> = (0..=7).collect(); // 1/1 .. 1/128
    println!("\nFigure 15: max mirror bandwidth per switch (Mbps)");
    print!("{:<26}", "workload");
    for &s in &shifts {
        print!("{:>9}", format!("1/{}", 1u64 << s));
    }
    println!();
    let mut all = Vec::new();
    for (kind, load) in combos {
        eprintln!("simulating {} {:.0}% ...", kind.name(), load * 100.0);
        let (_flows, result) = run_paper_workload(kind, load, 15);
        print!("{:<26}", format!("{} {:.0}%", kind.name(), load * 100.0));
        let mut series = Vec::new();
        for &shift in &shifts {
            let sw_cfg = SwitchAgentConfig {
                sampling_shift: shift,
                ..Default::default()
            };
            // Max over switches of the mirror bandwidth.
            let mut max_bps = 0.0f64;
            for switch in 16..36 {
                let mut agent = SwitchAgent::new(switch, sw_cfg);
                agent.ingest(&result.telemetry.mirror_candidates);
                max_bps = max_bps.max(agent.mirror_bandwidth_bps(PERIOD_NS));
            }
            print!("{:>9.1}", max_bps / 1e6);
            series.push(max_bps / 1e6);
        }
        println!();
        all.push(serde_json::json!({
            "workload": kind.name(),
            "load": load,
            "ratios": shifts.iter().map(|&s| 1u64 << s).collect::<Vec<u64>>(),
            "max_mbps": series,
        }));
    }
    save_results("fig15_bandwidth", &serde_json::json!(all));
}
