//! Figure 17: accuracy by flow length on the 25%-load WebSearch workload
//! (one fixed memory budget, flows grouped into log-scale length buckets).

use umon_bench::accuracy::{report_by_flow_size, sweep};
use umon_bench::{run_paper_workload, save_results};
use umon_workloads::WorkloadKind;

fn main() {
    let (_flows, result) = run_paper_workload(WorkloadKind::WebSearch, 0.25, 17);
    let budget_kb = 400;
    let points = sweep(&result.telemetry.tx_records, 16, &[budget_kb]);
    let json = report_by_flow_size(&points, budget_kb * 1024);
    save_results("fig17_flow_size_websearch", &json);
}
