//! Figure 13: single-flow reconstruction fidelity — WaveSketch (K=32) vs
//! OmniWindow-Avg at the same memory, on a testbed-style RDMA flow that
//! oscillates under on-off contention. WaveSketch keeps the peaks and sharp
//! drops; the sub-window average flattens them.

use umon_baselines::{CurveSketch, OmniWindowAvg};
use umon_bench::{save_results, WINDOW_SHIFT};
use umon_metrics::{all_metrics, counts_to_gbps};
use umon_netsim::{CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology};
use umon_workloads::on_off_background;
use wavesketch::{BasicWaveSketch, FlowKey, SketchConfig};

fn main() {
    // The Figure 1/13 contention scenario.
    let topo = Topology::dumbbell(2, 100.0, 1000);
    let mut flows = vec![FlowSpec {
        id: FlowId(0),
        src: 0,
        dst: 2,
        size_bytes: 25_000_000,
        start_ns: 0,
        cc: CongestionControl::Dcqcn,
    }];
    flows.extend(on_off_background(
        1, 1, 3, 90.0, 150_000, 200_000, 24, 100_000,
    ));
    let config = SimConfig {
        end_ns: 10_000_000,
        clock_error_ns: 0,
        seed: 13,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    // Ground truth windows of flow 0.
    let horizon_w = (10_000_000u64 >> WINDOW_SHIFT) as usize;
    let mut truth = vec![0.0f64; horizon_w];
    for r in &result.telemetry.tx_records {
        if r.flow == FlowId(0) {
            let w = (r.ts_ns >> WINDOW_SHIFT) as usize;
            if w < horizon_w {
                truth[w] += r.bytes as f64;
            }
        }
    }

    // WaveSketch with K=32 on a single-flow stream.
    let ws_config = SketchConfig::builder()
        .rows(1)
        .width(1)
        .levels(8)
        .topk(32)
        .max_windows(horizon_w.next_power_of_two())
        .build();
    let mut ws = BasicWaveSketch::new(ws_config.clone());
    // OmniWindow-Avg with the same per-bucket memory: the WaveSketch bucket
    // holds approx + K details; the equivalent counter budget in 4-byte
    // sub-windows.
    let bucket_bytes = ws_config.bucket_bytes();
    let m = (bucket_bytes / 4).max(1);
    let mut ow = OmniWindowAvg::new(1, 1, m.min(horizon_w), 0, horizon_w, 1);

    let key = FlowKey::from_id(0);
    for r in &result.telemetry.tx_records {
        if r.flow == FlowId(0) {
            let w = r.ts_ns >> WINDOW_SHIFT;
            ws.update(&key, w, r.bytes as i64);
            CurveSketch::update(&mut ow, &key, w, r.bytes as i64);
        }
    }
    let ws_curve: Vec<f64> = {
        let s = ws.query(&key).expect("flow recorded");
        (0..horizon_w as u64).map(|w| s.at(w)).collect()
    };
    let ow_curve: Vec<f64> = {
        let s = CurveSketch::query(&ow, &key).expect("flow recorded");
        (0..horizon_w as u64).map(|w| s.at(w)).collect()
    };

    let m_ws = all_metrics(&truth, &ws_curve);
    let m_ow = all_metrics(&truth, &ow_curve);
    println!(
        "\nFigure 13: single-flow reconstruction (same memory: {} B/bucket)",
        bucket_bytes
    );
    println!(
        "  WaveSketch (K=32):  cosine {:.4}  energy {:.4}  ARE {:.4}",
        m_ws.cosine, m_ws.energy, m_ws.are
    );
    println!(
        "  OmniWindow-Avg:     cosine {:.4}  energy {:.4}  ARE {:.4}",
        m_ow.cosine, m_ow.energy, m_ow.are
    );

    // Peak preservation: the paper's visual point — WaveSketch keeps the
    // sharp features OmniWindow flattens.
    let peak_truth = truth.iter().cloned().fold(0.0, f64::max);
    let peak_ws = ws_curve.iter().cloned().fold(0.0, f64::max);
    let peak_ow = ow_curve.iter().cloned().fold(0.0, f64::max);
    let gbps = |b: f64| counts_to_gbps(&[b], 1 << WINDOW_SHIFT)[0];
    println!(
        "  peak rate: truth {:.1} Gbps, WaveSketch {:.1} Gbps, OmniWindow {:.1} Gbps",
        gbps(peak_truth),
        gbps(peak_ws),
        gbps(peak_ow)
    );
    assert!(
        (peak_ws - peak_truth).abs() / peak_truth < (peak_ow - peak_truth).abs() / peak_truth,
        "WaveSketch must preserve the peak better than sub-window averaging"
    );
    save_results(
        "fig13_reconstruction",
        &serde_json::json!({
            "wavesketch": serde_json::json!({
                "cosine": m_ws.cosine, "energy": m_ws.energy, "are": m_ws.are,
                "peak_gbps": gbps(peak_ws)
            }),
            "omniwindow": serde_json::json!({
                "cosine": m_ow.cosine, "energy": m_ow.energy, "are": m_ow.are,
                "peak_gbps": gbps(peak_ow)
            }),
            "truth_peak_gbps": gbps(peak_truth),
        }),
    );
}
