//! Figure 9: flow behaviors only visible at microsecond granularity, as
//! measured through WaveSketch (not raw taps):
//!
//! * (a) an application-limited TCP flow whose rate curve is intermittent —
//!   gaps diagnose host-side starvation, and
//! * (b) an RDMA (DCQCN) flow reacting to an on-off competing flow —
//!   back-off on each burst, recovery in each silence.

use umon::usecases::find_gaps;
use umon::{Analyzer, HostAgent, HostAgentConfig};
use umon_bench::{save_results, WINDOW_SHIFT};
use umon_netsim::{CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology};
use umon_workloads::on_off_background;

/// Measures flow 0's curve of `result` through a host agent + analyzer.
fn measured_curve(records: &[umon_netsim::TxRecord], windows: u64) -> Vec<f64> {
    let cfg = HostAgentConfig::default();
    let mut agent = HostAgent::new(0, cfg.clone());
    agent.ingest(records);
    let mut analyzer = Analyzer::new(cfg.sketch.clone());
    analyzer.add_reports(agent.finish());
    let series = analyzer.flow_curve(0, 0).expect("flow 0 measured");
    (0..windows).map(|w| series.at(w)).collect()
}

fn main() {
    let window_ns = 1u64 << WINDOW_SHIFT;
    let to_gbps = |b: f64| b * 8.0 / window_ns as f64;

    // (a) Application-limited TCP flow: bursts of data separated by idle
    // periods (the application cannot feed the socket continuously).
    let topo = Topology::dumbbell(1, 100.0, 1000);
    // Model application-limited transmission as on-off fixed-rate bursts of
    // the *same* flow id: 40 Gbps for 200 μs, idle 300 μs, 8 times.
    let bursts = on_off_background(0, 0, 1, 40.0, 200_000, 300_000, 8, 0);
    let flows: Vec<FlowSpec> = bursts
        .into_iter()
        .map(|mut f| {
            f.id = FlowId(0);
            f
        })
        .collect();
    let config = SimConfig {
        end_ns: 6_000_000,
        clock_error_ns: 0,
        seed: 9,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config.clone()).run();
    let horizon_w = 5_000_000 >> WINDOW_SHIFT;
    let tcp_curve = measured_curve(&result.telemetry.tx_records, horizon_w);
    let gaps = find_gaps(&tcp_curve, 1.0, 4);
    println!("\nFigure 9a: application-limited TCP flow (measured via WaveSketch)");
    println!(
        "  {} gaps of ≥4 windows inside the active span → host-side starvation",
        gaps.len()
    );
    assert!(gaps.len() >= 4, "the intermittent pattern must be visible");

    // (b) RDMA flow vs on-off competing flow on a shared bottleneck.
    let topo = Topology::dumbbell(2, 100.0, 1000);
    let mut flows = vec![FlowSpec {
        id: FlowId(0),
        src: 0,
        dst: 2,
        size_bytes: 25_000_000,
        start_ns: 0,
        cc: CongestionControl::Dcqcn,
    }];
    flows.extend(on_off_background(
        1, 1, 3, 90.0, 200_000, 300_000, 8, 200_000,
    ));
    let result = Simulator::new(topo, flows, config).run();
    let rdma_curve = measured_curve(&result.telemetry.tx_records, horizon_w);
    let rdma_gbps: Vec<f64> = rdma_curve.iter().map(|&b| to_gbps(b)).collect();
    let max = rdma_gbps.iter().cloned().fold(0.0, f64::max);
    // Rate during bursts (windows inside on-periods) vs during silences.
    let on_rate = avg(&rdma_gbps, |w| in_burst(w, window_ns));
    let off_rate = avg(&rdma_gbps, |w| !in_burst(w, window_ns));
    println!("\nFigure 9b: RDMA flow under on-off disturbance");
    println!("  peak {max:.1} Gbps, mean during bursts {on_rate:.1} Gbps, between bursts {off_rate:.1} Gbps");
    assert!(
        off_rate > on_rate,
        "the flow must recover between bursts ({off_rate:.1} vs {on_rate:.1})"
    );
    save_results(
        "fig09_flow_behaviors",
        &serde_json::json!({
            "tcp_gaps": gaps.len(),
            "tcp_curve_gbps": tcp_curve.iter().map(|&b| to_gbps(b)).collect::<Vec<f64>>(),
            "rdma_curve_gbps": rdma_gbps,
            "rdma_on_rate_gbps": on_rate,
            "rdma_off_rate_gbps": off_rate,
        }),
    );
}

/// True if window `w` lies in an on-period of the 200 μs / 300 μs pattern
/// starting at 200 μs.
fn in_burst(w: usize, window_ns: u64) -> bool {
    let t = w as u64 * window_ns;
    if t < 200_000 {
        return false;
    }
    ((t - 200_000) % 500_000) < 200_000
}

fn avg(values: &[f64], pred: impl Fn(usize) -> bool) -> f64 {
    let picked: Vec<f64> = values
        .iter()
        .enumerate()
        .filter(|&(w, &v)| pred(w) && v >= 0.0)
        .map(|(_, &v)| v)
        .collect();
    if picked.is_empty() {
        0.0
    } else {
        picked.iter().sum::<f64>() / picked.len() as f64
    }
}
