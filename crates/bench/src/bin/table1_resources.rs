//! Table 1: PISA pipeline resource usage of a full-version WaveSketch with
//! a heavy part (h=256, L=8, K=64) and a light part (w=256, L=8, K=64, D=1),
//! from the analytical resource model (the Tofino2-compiler substitute
//! documented in DESIGN.md).

use umon_bench::save_results;
use wavesketch::{PipelineBudget, ResourceUsage, SketchConfig};

fn main() {
    let config = SketchConfig::builder()
        .rows(1) // D = 1 light row, as in Table 1
        .width(256)
        .levels(8)
        .topk(64)
        .max_windows(4096)
        .heavy_rows(256)
        .build();
    let usage = ResourceUsage::model(&config);
    let budget = PipelineBudget::default();

    println!("\nTable 1: resource usage of a full-version WaveSketch");
    println!("(heavy h=256, L=8, K=64; light w=256, L=8, K=64, D=1)\n");
    println!("{:<24} {:>8} {:>10}", "Resource", "Usage", "Percentage");
    let mut rows = Vec::new();
    for (name, used, pct) in usage.percentages(&budget) {
        println!("{:<24} {:>8} {:>9.2}%", name, used, pct);
        rows.push(serde_json::json!({
            "resource": name,
            "usage": used,
            "percentage": pct,
        }));
    }
    assert!(usage.fits(&budget), "must fit a Tofino2-class pipeline");
    println!("\nfits the pipeline budget: yes");

    println!("\nFigure 7 stage plan (per light row; heavy part co-resident):");
    println!("{:>6} {:<44} {:>6}", "stage", "operation", "SALUs");
    for (stage, op, salus) in ResourceUsage::stage_plan(&config) {
        println!("{stage:>6} {op:<44} {salus:>6}");
    }
    save_results("table1_resources", &serde_json::json!(rows));
}
