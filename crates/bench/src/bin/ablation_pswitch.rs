//! Extension experiment (§5 discussion): commodity-switch μEvent capture
//! (ACL match on CE + PSN sampling + packet mirroring) vs a
//! programmable-switch design (direct queue observation, in-dataplane flow
//! dedup, batch reporting). Compares recall, flow coverage and report
//! bandwidth on the same workload.

use umon::{
    Analyzer, HostAgentConfig, PSwitchAgent, PSwitchConfig, SwitchAgent, SwitchAgentConfig,
};
use umon_bench::{save_results, PERIOD_NS};
use umon_netsim::{SimConfig, Simulator, Topology};
use umon_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    // Re-run the workload with the burst tap enabled (threshold = KMin).
    let params = WorkloadParams::paper(WorkloadKind::Hadoop, 0.35, 24);
    let flows = params.generate();
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: PERIOD_NS + 5_000_000,
        seed: 24,
        burst_capture_threshold: Some(20 * 1024),
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();
    let episodes = &result.telemetry.episodes;
    let heavy: Vec<_> = episodes
        .iter()
        .filter(|e| e.max_qlen >= 200 * 1024)
        .collect();
    println!(
        "\nworkload: Hadoop 35% — {} episodes ({} above KMax)",
        episodes.len(),
        heavy.len()
    );

    // Commodity path: ACL mirror at 1/64.
    let mut analyzer = Analyzer::new(HostAgentConfig::default().sketch);
    let mut mirror_bytes = 0u64;
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, SwitchAgentConfig::default());
        agent.ingest(&result.telemetry.mirror_candidates);
        mirror_bytes += agent
            .mirrored()
            .iter()
            .map(|m| m.wire_bytes as u64)
            .sum::<u64>();
        analyzer.add_mirrors(agent.drain());
    }
    let acl = analyzer.match_episodes(episodes, 200 * 1024, u32::MAX, 10_000);

    // Programmable path: direct queue watch, dedup, batch report.
    let ps_cfg = PSwitchConfig::default();
    let mut ps_events = Vec::new();
    for switch in 16..36 {
        let mut agent = PSwitchAgent::new(switch, ps_cfg);
        agent.ingest(&result.telemetry.burst_records);
        ps_events.extend(agent.finish());
    }
    let ps_bytes = PSwitchAgent::report_bytes(&ps_cfg, &ps_events);
    // Recall of heavy episodes: an episode is detected if a captured event
    // on the same (switch, port) overlaps it.
    let mut detected = 0usize;
    let mut flows_sum = 0usize;
    for ep in &heavy {
        let hit = ps_events.iter().find(|e| {
            e.switch == ep.switch
                && e.port == ep.port
                && e.start_ns <= ep.end_ns + 10_000
                && ep.start_ns <= e.end_ns + 10_000
        });
        if let Some(e) = hit {
            detected += 1;
            flows_sum += e.flows.len();
        }
    }
    let ps_recall = if heavy.is_empty() {
        1.0
    } else {
        detected as f64 / heavy.len() as f64
    };
    let ps_flows = if detected == 0 {
        0.0
    } else {
        flows_sum as f64 / detected as f64
    };

    let span_s = PERIOD_NS as f64 / 1e9;
    println!(
        "\n{:<28} {:>10} {:>12} {:>14}",
        "capture design", "recall", "flows/event", "report bw"
    );
    println!(
        "{:<28} {:>10.3} {:>12.1} {:>11.1} Mbps",
        "commodity ACL mirror 1/64",
        acl.recall(),
        acl.mean_flows_captured,
        mirror_bytes as f64 * 8.0 / span_s / 1e6
    );
    println!(
        "{:<28} {:>10.3} {:>12.1} {:>11.1} Mbps",
        "programmable queue watch",
        ps_recall,
        ps_flows,
        ps_bytes as f64 * 8.0 / span_s / 1e6
    );
    println!("\n→ direct queue observation sees every heavy episode and every");
    println!("  involved flow while batch reporting cuts the bandwidth — the");
    println!("  paper's argument for adopting ConQuest-style designs when");
    println!("  programmable switches are available (§5).");
    assert!(ps_recall >= acl.recall() - 1e-9);
    save_results(
        "ablation_pswitch",
        &serde_json::json!({
            "acl": serde_json::json!({
                "recall": acl.recall(), "flows_per_event": acl.mean_flows_captured,
                "bandwidth_mbps": mirror_bytes as f64 * 8.0 / span_s / 1e6
            }),
            "pswitch": serde_json::json!({
                "recall": ps_recall, "flows_per_event": ps_flows,
                "bandwidth_mbps": ps_bytes as f64 * 8.0 / span_s / 1e6
            }),
        }),
    );
}
