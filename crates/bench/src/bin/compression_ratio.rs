//! §4.2 compression-ratio analysis: the `(n/2^L + α·K)/n` model and the
//! measured wire size of real bucket epochs at the paper's example
//! parameters (L=8, K=32, n=2000, α=1.5 → ratio ≈ 0.028).

use umon_bench::save_results;
use wavesketch::select::IdealTopK;
use wavesketch::streaming::StreamingTransform;
use wavesketch::BucketReport;

fn main() {
    println!("\n§4.2 compression ratio: model vs measured");
    println!(
        "{:>6} {:>4} {:>6} {:>10} {:>10}",
        "n", "L", "K", "model", "measured"
    );
    let mut rows = Vec::new();
    for (n, l, k) in [
        (2000usize, 8u32, 32usize),
        (2000, 8, 64),
        (500, 8, 32),
        (10_000, 8, 32),
        (2000, 6, 32),
    ] {
        let alpha = 1.5;
        let cap = n.next_power_of_two();
        let model = (cap as f64 / (1u64 << l) as f64 + alpha * k as f64) / n as f64;
        // Measure on a bursty synthetic series.
        let mut t = StreamingTransform::new(l, cap, IdealTopK::new(k));
        for i in 0..n as u32 {
            let base = ((i as i64 * 2654435761) % 997).abs();
            let burst = if i % 97 == 0 { 50_000 } else { 0 };
            t.push(i, base + burst);
        }
        let report = BucketReport::from_coeffs(0, t.finish());
        let measured = report.wire_bytes() as f64 / (4.0 * n as f64);
        println!("{n:>6} {l:>4} {k:>6} {model:>10.4} {measured:>10.4}");
        rows.push(serde_json::json!({
            "n": n, "L": l, "K": k, "model": model, "measured": measured,
        }));
        assert!(
            (measured - model).abs() / model < 0.5,
            "measured ratio must track the model"
        );
    }
    println!("\npaper example (n=2000, L=8, K=32): expected ≈ 0.028");
    save_results("compression_ratio", &serde_json::json!(rows));
}
