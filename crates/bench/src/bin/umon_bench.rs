//! The repo's reproducible perf gate: fixed-seed core-update and netsim
//! workloads, emitting `BENCH_core.json` / `BENCH_netsim.json` at the repo
//! root and checking fresh runs against those committed baselines.
//!
//! Modes:
//!
//! * `--record [--as-baseline NAME]` — run the full workloads and update the
//!   BENCH files. Without `--as-baseline`, the measurement lands in the
//!   `current` section (and the speedup vs. `baseline` is recomputed); with
//!   it, the measurement is stored under the named section (`baseline` /
//!   `baseline_lto`) instead, which is how the pre-refactor numbers were
//!   pinned before the hot paths changed.
//! * `--smoke` — run shortened workloads, verify every committed metric
//!   exists and is finite, and print a one-line delta per file. The
//!   regression check is *soft*: a slowdown prints a warning but only
//!   missing or non-finite metrics fail the gate (CI machines are shared;
//!   wall-clock noise must not turn the gate red).
//!
//! All workloads are seeded and deterministic; wall time is the only
//! nondeterministic output. Each measurement is the minimum over `REPS`
//! repetitions, which is the standard way to strip scheduler noise from a
//! throughput figure.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;
use umon::switch_agent::MirroredPacket;
use umon::{Analyzer, HostAgent, HostAgentConfig, QueryScratch, RetentionPolicy};
use umon_bench::frontier;
use umon_netsim::{
    run_parallel, CongestionControl, FlowId, FlowSpec, SchedulerKind, SimConfig, Simulator,
    Topology,
};
use umon_workloads::{WorkloadKind, WorkloadParams};
use wavesketch::{BasicWaveSketch, FlowKey, FullWaveSketch, SketchConfig};

const CORE_UPDATES_FULL_RUN: u64 = 4_000_000;
const CORE_UPDATES_SMOKE: u64 = 400_000;
const CORE_FLOWS: u64 = 512;
const CORE_SEED: u64 = 0xBE9C;
/// Wide-sketch batch point: a deployment-scale config (see `wide_config`)
/// with enough distinct flows that the touched buckets span the whole
/// arena instead of staying cache-resident.
const WIDE_WIDTH: usize = 16_384;
const WIDE_HEAVY_ROWS: usize = 4_096;
const WIDE_FLOWS: u64 = 100_000;
const NETSIM_SEED: u64 = 1;
const REPS: usize = 5;
/// Scaling-surface knobs: arrival window + simulated horizon per fat-tree
/// arity, sized so a point stays in seconds even at k=16 (1024 hosts), and
/// fewer reps than [`REPS`] because each rep is long enough to be stable.
const SCALING_REPS: usize = 3;
const SCALING_K4_DURATION_NS: u64 = 2_000_000;
const SCALING_K4_END_NS: u64 = 3_000_000;
const SCALING_K8_DURATION_NS: u64 = 1_000_000;
const SCALING_K8_END_NS: u64 = 2_000_000;
const SCALING_K16_DURATION_NS: u64 = 250_000;
const SCALING_K16_END_NS: u64 = 1_000_000;

const ANALYZER_SEED: u64 = 0xA11A;
const ANALYZER_HOSTS: usize = 8;
const ANALYZER_FLOWS: u64 = 64;
const ANALYZER_WINDOWS: u64 = 4096;
const ANALYZER_WINDOWS_PER_PERIOD: u64 = 256;
const ANALYZER_MIRRORS: usize = 20_000;
const ANALYZER_SWEEPS_FULL_RUN: usize = 20;
const ANALYZER_SWEEPS_SMOKE: usize = 3;

#[derive(Debug, Serialize, Deserialize, Clone)]
struct CoreMeasure {
    ns_per_update_full: f64,
    ns_per_update_basic: f64,
    updates_per_sec_full: f64,
    peak_rss_kb: u64,
    notes: String,
}

/// One batch-size point of the batch-ingest sweep.
#[derive(Debug, Serialize, Deserialize, Clone)]
struct BatchSweepPoint {
    batch_size: u64,
    ns_per_update: f64,
    updates_per_sec: f64,
    speedup_vs_scalar: f64,
}

/// The batch-ingest section of `BENCH_core.json`: the same full-sketch
/// workload fed through `update_batch` in fixed-size bursts, compared
/// against the scalar `ns_per_update_full` measured *in the same run* (so
/// the ratio is machine- and build-honest).
#[derive(Debug, Serialize, Deserialize, Clone)]
struct BatchBench {
    kernel: String,
    scalar_ns_per_update: f64,
    sweep: Vec<BatchSweepPoint>,
    best_ns_per_update: f64,
    best_speedup_vs_scalar: f64,
    /// The same sweep on a deployment-scale sketch (`wide_config`), where
    /// the bucket arrays exceed cache and header loads dominate the scalar
    /// path — the regime batch ingest exists for. Scalar is re-measured
    /// fresh on this config in the same run.
    wide: Option<BatchWideBench>,
    notes: String,
}

/// Batch-vs-scalar on the wide (cache-busting) configuration.
#[derive(Debug, Serialize, Deserialize, Clone)]
struct BatchWideBench {
    width: u64,
    heavy_rows: u64,
    flows: u64,
    scalar_ns_per_update: f64,
    sweep: Vec<BatchSweepPoint>,
    best_ns_per_update: f64,
    best_speedup_vs_scalar: f64,
}

#[derive(Debug, Serialize, Deserialize, Default)]
struct CoreBench {
    schema: u32,
    updates: u64,
    flows: u64,
    seed: u64,
    baseline: Option<CoreMeasure>,
    baseline_lto: Option<CoreMeasure>,
    current: Option<CoreMeasure>,
    batch: Option<BatchBench>,
    speedup_vs_baseline: Option<f64>,
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct NetsimMeasure {
    wall_ns: u64,
    events: u64,
    events_per_sec: f64,
    peak_rss_kb: u64,
    notes: String,
}

/// One point of the parallel-scaling surface: a Hadoop-mix cluster workload
/// on a `k`-ary fat-tree run through `run_parallel` with `partitions`
/// threads. `peak_rss_kb` is per-point (the watermark is reset before each
/// measurement, see [`reset_peak_rss`]) and `speedup_vs_single_thread`
/// compares against the `partitions == 1` point of the same `k` in the same
/// run.
#[derive(Debug, Serialize, Deserialize, Clone)]
struct NetsimScalingPoint {
    k: u64,
    flows: u64,
    partitions: u64,
    wall_ns: u64,
    events: u64,
    events_per_sec: f64,
    peak_rss_kb: u64,
    speedup_vs_single_thread: f64,
}

/// The `scaling` section of `BENCH_netsim.json`: the k=4 single-thread
/// reference point measured in the same run (so cross-k comparisons are
/// machine-honest), then the (k, partitions) surface.
#[derive(Debug, Serialize, Deserialize, Clone)]
struct NetsimScaling {
    baseline_k4_single_thread: NetsimScalingPoint,
    points: Vec<NetsimScalingPoint>,
    notes: String,
}

#[derive(Debug, Serialize, Deserialize, Default)]
struct NetsimBench {
    schema: u32,
    workload: String,
    seed: u64,
    baseline: Option<NetsimMeasure>,
    current: Option<NetsimMeasure>,
    current_heap: Option<NetsimMeasure>,
    scaling: Option<NetsimScaling>,
    speedup_vs_baseline: Option<f64>,
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct AnalyzerMeasure {
    queries_per_sec: f64,
    us_per_query: f64,
    queries_per_sweep: u64,
    peak_rss_kb: u64,
    notes: String,
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct RetentionMeasure {
    hot_queries_per_sec: f64,
    compacted_queries_per_sec: f64,
    compacted_slowdown: f64,
    bytes_per_retained_period: f64,
    resident_periods: u64,
    notes: String,
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct ColdMeasure {
    hot_queries_per_sec: f64,
    compacted_queries_per_sec: f64,
    cold_queries_per_sec: f64,
    cold_slowdown: f64,
    segment_cache_hit_rate: f64,
    cold_bytes_read: u64,
    archived_periods: u64,
    notes: String,
}

#[derive(Debug, Serialize, Deserialize, Default)]
struct AnalyzerBench {
    schema: u32,
    workload: String,
    seed: u64,
    baseline: Option<AnalyzerMeasure>,
    current: Option<AnalyzerMeasure>,
    retention: Option<RetentionMeasure>,
    cold: Option<ColdMeasure>,
    speedup_vs_baseline: Option<f64>,
}

/// The machine-and-build context every recorded measurement depends on:
/// runtime-detected SIMD features, compile-time `target_feature` flags (i.e.
/// the effective `target-cpu` configuration) and the batch kernel the run
/// selected. Recorded into the `notes` of every BENCH file so a number can
/// be traced to the hardware and codegen that produced it.
fn cpu_notes() -> String {
    let mut runtime: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, detected) in [
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512dq", std::arch::is_x86_feature_detected!("avx512dq")),
            ("avx512bw", std::arch::is_x86_feature_detected!("avx512bw")),
            ("avx512vl", std::arch::is_x86_feature_detected!("avx512vl")),
        ] {
            if detected {
                runtime.push(name);
            }
        }
    }
    let compiled: Vec<&str> = vec![
        #[cfg(target_feature = "sse4.2")]
        "sse4.2",
        #[cfg(target_feature = "avx2")]
        "avx2",
        #[cfg(target_feature = "avx512f")]
        "avx512f",
        #[cfg(target_feature = "avx512dq")]
        "avx512dq",
    ];
    format!(
        "cpu: arch={} runtime[{}] target-cpu-features[{}] batch_kernel={}",
        std::env::consts::ARCH,
        runtime.join(","),
        if compiled.is_empty() {
            "baseline".to_string()
        } else {
            compiled.join(",")
        },
        wavesketch::active_kernel().name()
    )
}

/// Resets the kernel's peak-RSS watermark (`VmHWM`) down to the *current*
/// RSS by writing `5` to `/proc/self/clear_refs`. The watermark is
/// process-wide, so without this every netsim figure inherits whatever the
/// core and analyzer benches allocated earlier in the same invocation — the
/// 128.6 → 198.4 MB "regression" a past BENCH_netsim.json showed was
/// exactly that pollution (core's wide-sketch sweep ran first), not a
/// simulator change. Best-effort: kernels without `clear_refs` support
/// leave the watermark unchanged.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size of this process, from `/proc/self/status` (kB).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Fixed-seed sketch workload: `n` updates over `flows` flows with a slowly
/// advancing window, bounded below `max_windows` so the measurement stays in
/// the steady state (no epoch rollovers — those are per-epoch, not per
/// packet). Mirrors `benches/wavesketch_update.rs`.
fn core_stream(n: u64, flows: u64, seed: u64) -> Vec<(FlowKey, u64, i64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut window = 0u64;
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.2) {
                window = (window + 1).min(4000);
            }
            (
                FlowKey::from_id(rng.gen_range(0..flows)),
                window,
                rng.gen_range(64..1500i64),
            )
        })
        .collect()
}

fn core_config() -> SketchConfig {
    SketchConfig::builder().build() // paper defaults: 3×256, L=8, K=64, 4096 windows
}

/// A deployment-scale sketch whose header/approx arrays (tens of MB) blow
/// past L2, so every scalar fold eats the random-access header-load latency
/// the batch pipeline exists to hide. Paper defaults otherwise.
fn wide_config() -> SketchConfig {
    SketchConfig::builder()
        .width(WIDE_WIDTH)
        .heavy_rows(WIDE_HEAVY_ROWS)
        .build()
}

/// Minimum-of-`REPS` wall time for `f`, freshly constructing state each rep.
fn time_min<F: FnMut() -> u64>(f: F) -> (u64, u64) {
    time_min_of(REPS, f)
}

/// Minimum-of-`reps` wall time for `f`; the scaling surface uses fewer reps
/// than [`REPS`] because each point is seconds, not milliseconds.
fn time_min_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (u64, u64) {
    let mut best = u64::MAX;
    let mut checksum = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best, checksum)
}

fn bench_core(updates: u64) -> CoreMeasure {
    let stream = core_stream(updates, CORE_FLOWS, CORE_SEED);

    let (full_ns, full_sum) = time_min(|| {
        let mut sketch = FullWaveSketch::new(core_config());
        for (flow, window, value) in &stream {
            sketch.update(flow, *window, *value);
        }
        sketch.heavy_flows().len() as u64
    });
    let (basic_ns, basic_sum) = time_min(|| {
        let mut sketch = BasicWaveSketch::new(core_config());
        for (flow, window, value) in &stream {
            sketch.update(flow, *window, *value);
        }
        sketch.active_buckets() as u64
    });
    assert!(full_sum > 0 && basic_sum > 0, "workload touched nothing");

    let n = stream.len() as f64;
    CoreMeasure {
        ns_per_update_full: full_ns as f64 / n,
        ns_per_update_basic: basic_ns as f64 / n,
        updates_per_sec_full: n / (full_ns as f64 / 1e9),
        peak_rss_kb: peak_rss_kb(),
        notes: String::new(),
    }
}

/// The batch-ingest sweep: the scalar workload's records fed through
/// `FullWaveSketch::update_batch` in bursts of 8 / 32 / 256 records, each
/// point min-of-`REPS` on a fresh sketch. `scalar_ns` must come from the
/// same run's [`bench_core`] so the speedup compares like with like.
fn bench_batch(updates: u64, scalar_ns: f64) -> BatchBench {
    let stream = core_stream(updates, CORE_FLOWS, CORE_SEED);
    let sweep = batch_sweep(&stream, core_config, scalar_ns);
    let best = best_point(&sweep);
    BatchBench {
        kernel: wavesketch::active_kernel().name().to_string(),
        scalar_ns_per_update: scalar_ns,
        sweep,
        best_ns_per_update: best.ns_per_update,
        best_speedup_vs_scalar: best.speedup_vs_scalar,
        wide: None,
        notes: cpu_notes(),
    }
}

/// Runs the 8/32/256 burst sweep of `update_batch` over `stream` on fresh
/// sketches built by `config`, each point min-of-`REPS`.
fn batch_sweep(
    stream: &[(FlowKey, u64, i64)],
    config: fn() -> SketchConfig,
    scalar_ns: f64,
) -> Vec<BatchSweepPoint> {
    let n = stream.len() as f64;
    let mut sweep = Vec::new();
    for &batch_size in &[8usize, 32, 256] {
        let (ns, sum) = time_min(|| {
            let mut sketch = FullWaveSketch::new(config());
            for burst in stream.chunks(batch_size) {
                sketch.update_batch(burst);
            }
            sketch.heavy_flows().len() as u64
        });
        assert!(sum > 0, "batch workload touched nothing");
        let ns_per_update = ns as f64 / n;
        sweep.push(BatchSweepPoint {
            batch_size: batch_size as u64,
            ns_per_update,
            updates_per_sec: n / (ns as f64 / 1e9),
            speedup_vs_scalar: scalar_ns / ns_per_update,
        });
    }
    sweep
}

fn best_point(sweep: &[BatchSweepPoint]) -> BatchSweepPoint {
    sweep
        .iter()
        .cloned()
        .min_by(|a, b| a.ns_per_update.total_cmp(&b.ns_per_update))
        .expect("non-empty sweep")
}

/// The wide-config batch point: scalar re-measured fresh on the same config
/// and stream, then the burst sweep — so the speedup isolates exactly what
/// batching buys once the arena stops fitting in cache.
fn bench_batch_wide(updates: u64) -> BatchWideBench {
    let stream = core_stream(updates, WIDE_FLOWS, CORE_SEED);
    let (scalar_total_ns, scalar_sum) = time_min(|| {
        let mut sketch = FullWaveSketch::new(wide_config());
        for (flow, window, value) in &stream {
            sketch.update(flow, *window, *value);
        }
        sketch.heavy_flows().len() as u64
    });
    assert!(scalar_sum > 0, "wide scalar workload touched nothing");
    let scalar_ns = scalar_total_ns as f64 / stream.len() as f64;
    let sweep = batch_sweep(&stream, wide_config, scalar_ns);
    let best = best_point(&sweep);
    BatchWideBench {
        width: WIDE_WIDTH as u64,
        heavy_rows: WIDE_HEAVY_ROWS as u64,
        flows: WIDE_FLOWS,
        scalar_ns_per_update: scalar_ns,
        sweep,
        best_ns_per_update: best.ns_per_update,
        best_speedup_vs_scalar: best.speedup_vs_scalar,
    }
}

/// Heavy fan-in on a fat-tree k=4: 1024 flows starting 1 µs apart, every
/// host both sending and receiving. Keeps the event queue deep (thousands
/// of in-flight events) the way the paper's incast scenarios do, which is
/// the regime an event scheduler must handle well.
fn netsim_flows(n: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: (i % 8) as usize,
            dst: ((i + 8) % 16) as usize,
            size_bytes: 50_000 + (i % 64) * 1000,
            start_ns: i * 1_000,
            cc: CongestionControl::Dcqcn,
        })
        .collect()
}

fn netsim_config(end_ns: u64) -> SimConfig {
    SimConfig {
        end_ns,
        clock_error_ns: 0,
        seed: NETSIM_SEED,
        ..SimConfig::default()
    }
}

fn bench_netsim(end_ns: u64, use_heap: bool) -> NetsimMeasure {
    reset_peak_rss();
    let mut events = 0u64;
    let (wall_ns, _) = time_min(|| {
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let mut config = netsim_config(end_ns);
        config.scheduler = if use_heap {
            SchedulerKind::Heap
        } else {
            SchedulerKind::Calendar
        };
        let result = Simulator::new(topo, netsim_flows(1024), config).run();
        events = result.events_processed;
        result.events_processed
    });
    NetsimMeasure {
        wall_ns,
        events,
        events_per_sec: events as f64 / (wall_ns as f64 / 1e9),
        peak_rss_kb: peak_rss_kb(),
        notes: String::new(),
    }
}

/// Scaling-surface workload: Hadoop mix at 0.25 load on the k-ary fat-tree,
/// with the arrival window shortened from the paper's 20 ms so each
/// (k, partitions) point finishes in seconds. Deterministic in
/// [`NETSIM_SEED`].
fn scaling_flows(k: usize, duration_ns: u64) -> Vec<FlowSpec> {
    let mut params = WorkloadParams::cluster(WorkloadKind::Hadoop, 0.25, k, NETSIM_SEED);
    params.duration_ns = duration_ns;
    params.generate()
}

/// Measures one point of the scaling surface: min-of-[`SCALING_REPS`] wall
/// time for `run_parallel` on the k-ary fat-tree cluster workload. The RSS
/// watermark is reset first so `peak_rss_kb` is this point's own footprint.
fn bench_scaling_point(
    k: usize,
    partitions: usize,
    duration_ns: u64,
    end_ns: u64,
) -> NetsimScalingPoint {
    reset_peak_rss();
    let flows = scaling_flows(k, duration_ns);
    let num_flows = flows.len() as u64;
    let mut events = 0u64;
    let (wall_ns, _) = time_min_of(SCALING_REPS, || {
        let topo = Topology::fat_tree(k, 100.0, 1000);
        let result = run_parallel(topo, flows.clone(), netsim_config(end_ns), partitions)
            .expect("standard fat-trees have non-zero cut latency");
        events = result.events_processed;
        events
    });
    NetsimScalingPoint {
        k: k as u64,
        flows: num_flows,
        partitions: partitions as u64,
        wall_ns,
        events,
        events_per_sec: events as f64 / (wall_ns as f64 / 1e9),
        peak_rss_kb: peak_rss_kb(),
        speedup_vs_single_thread: 1.0, // filled in against the P=1 point
    }
}

/// The parallel-scaling surface: k=4 single-thread reference, then k=8 and
/// k=16 at 1/2/4 partitions. Every number comes from the same process and
/// machine, so the ratios are honest; the notes record how many hardware
/// threads the host actually had, because conservative-window parallelism
/// can only buy wall-clock on a multi-core host.
fn bench_scaling() -> NetsimScaling {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline = bench_scaling_point(4, 1, SCALING_K4_DURATION_NS, SCALING_K4_END_NS);
    println!(
        "  scaling k=4  p=1: {:>10.0} events/sec ({} events, {} flows, {:.1} MB)",
        baseline.events_per_sec,
        baseline.events,
        baseline.flows,
        baseline.peak_rss_kb as f64 / 1024.0
    );
    let mut points = Vec::new();
    for &(k, duration_ns, end_ns) in &[
        (8usize, SCALING_K8_DURATION_NS, SCALING_K8_END_NS),
        (16, SCALING_K16_DURATION_NS, SCALING_K16_END_NS),
    ] {
        let mut single_thread_ev = f64::NAN;
        for &partitions in &[1usize, 2, 4] {
            let mut point = bench_scaling_point(k, partitions, duration_ns, end_ns);
            if partitions == 1 {
                single_thread_ev = point.events_per_sec;
            }
            point.speedup_vs_single_thread = point.events_per_sec / single_thread_ev;
            println!(
                "  scaling k={k:<2} p={partitions}: {:>10.0} events/sec ({} events, {} flows, \
                 {:.1} MB, {:.2}x vs p=1)",
                point.events_per_sec,
                point.events,
                point.flows,
                point.peak_rss_kb as f64 / 1024.0,
                point.speedup_vs_single_thread
            );
            points.push(point);
        }
    }
    NetsimScaling {
        baseline_k4_single_thread: baseline,
        points,
        notes: format!(
            "hadoop mix at 0.25 load, arrival windows {}/{}/{} us for k=4/8/16, \
             min of {SCALING_REPS} reps; host has {cores} hardware thread(s) — \
             conservative-window parallelism needs >= partitions cores for \
             wall-clock speedup, so on a 1-core host multi-partition points \
             measure synchronization overhead, not speedup; {}",
            SCALING_K4_DURATION_NS / 1000,
            SCALING_K8_DURATION_NS / 1000,
            SCALING_K16_DURATION_NS / 1000,
            cpu_notes()
        ),
    }
}

/// Analyzer host-agent configuration for the query workload: paper-shaped
/// rows/levels over a narrower array so collisions (and the subtraction
/// path) stay live, with a contested heavy part.
fn analyzer_config() -> HostAgentConfig {
    HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(3)
            .width(64)
            .levels(6)
            .topk(32)
            .max_windows(512)
            .heavy_rows(32)
            .build(),
        period_ns: ANALYZER_WINDOWS_PER_PERIOD << 13,
        window_shift: 13,
    }
}

/// Builds the seeded analyzer the query sweep runs against: 8 hosts × 16
/// upload periods of a skewed flow mix (heavy elections + light-only tails),
/// reports delivered in reverse period order to exercise the out-of-order
/// ingest path, plus a seeded mirror stream for the event-clustering
/// queries.
fn build_analyzer() -> Analyzer {
    build_analyzer_with(RetentionPolicy::UNBOUNDED)
}

fn build_analyzer_with(policy: RetentionPolicy) -> Analyzer {
    build_analyzer_inner(Analyzer::with_retention(
        analyzer_config().sketch.clone(),
        policy,
    ))
}

/// Same seeded workload, but archive-backed so evicted periods land in the
/// cold tier instead of being forgotten. Used by the `cold` bench section.
fn build_analyzer_archived(policy: RetentionPolicy, dir: &Path) -> Analyzer {
    let analyzer = Analyzer::with_archive(analyzer_config().sketch.clone(), policy, dir)
        .expect("open bench archive dir");
    build_analyzer_inner(analyzer)
}

fn build_analyzer_inner(mut analyzer: Analyzer) -> Analyzer {
    let cfg = analyzer_config();
    for host in 0..ANALYZER_HOSTS {
        let mut rng = ChaCha8Rng::seed_from_u64(
            ANALYZER_SEED ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut agent = HostAgent::new(host, cfg.clone());
        for w in 0..ANALYZER_WINDOWS {
            let n = rng.gen_range(0..=4u32);
            for _ in 0..n {
                let flow = if rng.gen_bool(0.5) {
                    rng.gen_range(0..ANALYZER_FLOWS / 8)
                } else {
                    rng.gen_range(0..ANALYZER_FLOWS)
                };
                agent.observe(flow, w << 13, rng.gen_range(64..9000u32));
            }
        }
        let mut reports = agent.finish();
        reports.reverse();
        analyzer.add_reports(reports);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(ANALYZER_SEED ^ 0x3141);
    let mirrors: Vec<MirroredPacket> = (0..ANALYZER_MIRRORS)
        .map(|_| MirroredPacket {
            switch: rng.gen_range(16..32usize),
            vlan: rng.gen_range(1..9u16),
            ts_ns: rng.gen_range(0..ANALYZER_WINDOWS << 13),
            flow: rng.gen_range(0..ANALYZER_FLOWS),
            psn: 0,
            wire_bytes: 1064,
            orig_bytes: 1000,
        })
        .collect();
    analyzer.add_mirrors(mirrors);
    analyzer
}

/// One query sweep: every (host, flow) rate curve, every host's aggregate
/// curve, and the congestion map. Returns (queries issued, checksum).
///
/// Runs through the scratch query API (`flow_curve_with`), as a query-heavy
/// analyzer deployment would; the pre-index baseline in BENCH_analyzer.json
/// ran the same sweep through the then-current allocating `flow_curve`.
fn query_sweep(analyzer: &Analyzer, scratch: &mut QueryScratch) -> (u64, u64) {
    let mut queries = 0u64;
    let mut checksum = 0u64;
    for host in 0..ANALYZER_HOSTS {
        for flow in 0..ANALYZER_FLOWS {
            if let Some(series) = analyzer.flow_curve_with(host, flow, scratch) {
                checksum = checksum.wrapping_add(series.values.len() as u64);
            }
            queries += 1;
        }
        if let Some(series) = analyzer.host_rate_curve_with(host, scratch) {
            checksum = checksum.wrapping_add(series.values.len() as u64);
        }
        queries += 1;
    }
    checksum = checksum.wrapping_add(analyzer.congestion_map(50_000).len() as u64);
    queries += 1;
    (queries, checksum)
}

fn bench_analyzer(sweeps: usize) -> AnalyzerMeasure {
    let analyzer = build_analyzer();
    let mut scratch = QueryScratch::new();
    let mut queries = 0u64;
    let (wall_ns, checksum) = time_min(|| {
        queries = 0;
        let mut checksum = 0u64;
        for _ in 0..sweeps {
            let (q, c) = query_sweep(&analyzer, &mut scratch);
            queries += q;
            checksum = checksum.wrapping_add(c);
        }
        checksum
    });
    assert!(checksum > 0, "query sweep reconstructed nothing");
    AnalyzerMeasure {
        queries_per_sec: queries as f64 / (wall_ns as f64 / 1e9),
        us_per_query: wall_ns as f64 / 1e3 / queries as f64,
        queries_per_sweep: queries / sweeps as u64,
        peak_rss_kb: peak_rss_kb(),
        notes: "ingest-time index + reconstruction cache + QueryScratch".into(),
    }
}

/// The retention tiers' perf envelope: the same query sweep against a
/// fully-hot analyzer vs one whose periods are all compacted but the newest
/// (`hot_periods = 1`), plus the per-period resident footprint of the
/// compacted tier. The compacted sweep pays sparse inverse-Haar
/// reconstruction per query — the explicit memory-for-throughput trade of
/// DESIGN.md §12 — so it runs fewer sweeps.
fn bench_retention(sweeps: usize, hot_queries_per_sec: f64) -> RetentionMeasure {
    let analyzer = build_analyzer_with(RetentionPolicy::bounded(1, u64::MAX));
    let mut scratch = QueryScratch::new();
    let mut queries = 0u64;
    let (wall_ns, checksum) = time_min(|| {
        queries = 0;
        let mut checksum = 0u64;
        for _ in 0..sweeps {
            let (q, c) = query_sweep(&analyzer, &mut scratch);
            queries += q;
            checksum = checksum.wrapping_add(c);
        }
        checksum
    });
    assert!(checksum > 0, "compacted query sweep reconstructed nothing");
    let res = analyzer.residency();
    assert!(
        res.hot_periods <= ANALYZER_HOSTS,
        "hot tier exceeds hot_periods=1 per host"
    );
    let compacted_queries_per_sec = queries as f64 / (wall_ns as f64 / 1e9);
    RetentionMeasure {
        hot_queries_per_sec,
        compacted_queries_per_sec,
        compacted_slowdown: hot_queries_per_sec / compacted_queries_per_sec,
        bytes_per_retained_period: res.resident_report_bytes as f64 / res.resident_periods as f64,
        resident_periods: res.resident_periods as u64,
        notes: "hot = unbounded sweep; compacted = hot_periods=1 sparse inverse-Haar fallback"
            .into(),
    }
}

/// The cold tier's perf envelope, the bottom rung of the hot → compacted →
/// archived ladder (DESIGN.md §14): the same query sweep against an
/// archive-backed analyzer whose policy evicts all but the two newest
/// periods per host, so most of the sweep answers from the segment cache or
/// from disk. The cache is sized to hold the archived working set, so the
/// first sweep pays the disk reads and later sweeps measure cached cold
/// reads — the steady state of a query-heavy deployment.
fn bench_cold(
    sweeps: usize,
    hot_queries_per_sec: f64,
    compacted_queries_per_sec: f64,
) -> ColdMeasure {
    let dir = std::env::temp_dir().join(format!("umon_bench_cold_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = RetentionPolicy::bounded(1, 2).with_cold_cache_bytes(64 << 20);
    let analyzer = build_analyzer_archived(policy, &dir);
    let mut scratch = QueryScratch::new();
    let mut queries = 0u64;
    let (wall_ns, checksum) = time_min(|| {
        queries = 0;
        let mut checksum = 0u64;
        for _ in 0..sweeps {
            let (q, c) = query_sweep(&analyzer, &mut scratch);
            queries += q;
            checksum = checksum.wrapping_add(c);
        }
        checksum
    });
    assert!(checksum > 0, "cold query sweep reconstructed nothing");
    let stats = analyzer.retention_stats();
    assert_eq!(
        stats.cold_read_errors, 0,
        "cold tier read errors during bench"
    );
    assert!(
        stats.cold_misses > 0,
        "cold bench never touched the archive"
    );
    let archived_periods: u64 = (0..ANALYZER_HOSTS)
        .map(|h| analyzer.host_coverage(h).archived.len() as u64)
        .sum();
    assert!(archived_periods > 0, "cold bench policy evicted nothing");
    let _ = std::fs::remove_dir_all(&dir);
    let lookups = stats.cold_hits + stats.cold_misses;
    let cold_queries_per_sec = queries as f64 / (wall_ns as f64 / 1e9);
    ColdMeasure {
        hot_queries_per_sec,
        compacted_queries_per_sec,
        cold_queries_per_sec,
        cold_slowdown: hot_queries_per_sec / cold_queries_per_sec,
        segment_cache_hit_rate: stats.cold_hits as f64 / lookups as f64,
        cold_bytes_read: stats.cold_bytes_read,
        archived_periods,
        notes: "resident=2 periods/host; archived rest answered via ColdStore segment cache".into(),
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load<T: Deserialize + Default>(path: &Path) -> T {
    match std::fs::read_to_string(path) {
        Ok(raw) => serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("unparseable {}: {e}", path.display())),
        Err(_) => T::default(),
    }
}

fn store<T: Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialize bench file");
    std::fs::write(path, json + "\n").expect("write bench file");
}

/// Fails the gate if a required metric is missing or non-finite.
fn require_finite(file: &str, section: &str, name: &str, value: Option<f64>) -> f64 {
    match value {
        Some(v) if v.is_finite() && v > 0.0 => v,
        Some(v) => {
            eprintln!("FAIL {file}: {section}.{name} is not a positive finite number ({v})");
            std::process::exit(1);
        }
        None => {
            eprintln!("FAIL {file}: missing section {section} (metric {name})");
            std::process::exit(1);
        }
    }
}

/// True if `only` selects `section` (no `--only` flag selects everything).
fn selected(only: Option<&str>, section: &str) -> bool {
    match only {
        None => true,
        Some(o) => o == section,
    }
}

fn record_core(root: &Path, as_baseline: Option<&str>) {
    let core_path = root.join("BENCH_core.json");
    println!(
        "core: {} updates x {} reps ...",
        CORE_UPDATES_FULL_RUN, REPS
    );
    let mut core = bench_core(CORE_UPDATES_FULL_RUN);
    core.notes = cpu_notes();
    println!(
        "  full {:.1} ns/update, basic {:.1} ns/update",
        core.ns_per_update_full, core.ns_per_update_basic
    );
    let batch = if as_baseline.is_none() {
        let mut b = bench_batch(CORE_UPDATES_FULL_RUN, core.ns_per_update_full);
        for p in &b.sweep {
            println!(
                "  batch[{:>3}] {:.1} ns/update ({:.2}x vs scalar)",
                p.batch_size, p.ns_per_update, p.speedup_vs_scalar
            );
        }
        println!(
            "  batch best {:.1} ns/update, {:.2}x vs scalar, kernel {}",
            b.best_ns_per_update, b.best_speedup_vs_scalar, b.kernel
        );
        let wide = bench_batch_wide(CORE_UPDATES_FULL_RUN);
        println!(
            "  wide ({}x{} light, {} heavy, {} flows): scalar {:.1} ns/update",
            3, wide.width, wide.heavy_rows, wide.flows, wide.scalar_ns_per_update
        );
        for p in &wide.sweep {
            println!(
                "  wide batch[{:>3}] {:.1} ns/update ({:.2}x vs scalar)",
                p.batch_size, p.ns_per_update, p.speedup_vs_scalar
            );
        }
        b.wide = Some(wide);
        Some(b)
    } else {
        None
    };
    let mut core_file: CoreBench = load(&core_path);
    core_file.schema = 1;
    core_file.updates = CORE_UPDATES_FULL_RUN;
    core_file.flows = CORE_FLOWS;
    core_file.seed = CORE_SEED;
    match as_baseline {
        Some("baseline") => core_file.baseline = Some(core),
        Some("baseline_lto") => core_file.baseline_lto = Some(core),
        Some(_) => unreachable!("validated in record()"),
        None => core_file.current = Some(core),
    }
    if let Some(b) = batch {
        core_file.batch = Some(b);
    }
    if let (Some(b), Some(c)) = (&core_file.baseline, &core_file.current) {
        core_file.speedup_vs_baseline = Some(b.ns_per_update_full / c.ns_per_update_full);
    }
    store(&core_path, &core_file);
    println!("wrote {}", core_path.display());
}

fn record_netsim(root: &Path, as_baseline: Option<&str>) {
    let netsim_path = root.join("BENCH_netsim.json");
    println!(
        "netsim: fat-tree k=4, 1024 DCQCN flows, 10 ms x {} reps ...",
        REPS
    );
    let mut netsim_file: NetsimBench = load(&netsim_path);
    netsim_file.schema = 1;
    netsim_file.workload = "fat_tree_k4_1024flows_dcqcn_10ms".to_string();
    netsim_file.seed = NETSIM_SEED;
    match as_baseline {
        // The pre-refactor scheduler was the binary heap; baselines pin it.
        Some("baseline") => {
            let mut heap = bench_netsim(10_000_000, true);
            heap.notes = cpu_notes();
            println!(
                "  heap     {:.0} events/sec ({} events)",
                heap.events_per_sec, heap.events
            );
            netsim_file.baseline = Some(heap);
        }
        Some("baseline_lto") => {} // profile effect on netsim is captured by current_heap
        Some(_) => unreachable!("validated in record()"),
        None => {
            let mut calendar = bench_netsim(10_000_000, false);
            let mut heap = bench_netsim(10_000_000, true);
            calendar.notes = cpu_notes();
            heap.notes = cpu_notes();
            println!(
                "  calendar {:.0} events/sec ({} events)",
                calendar.events_per_sec, calendar.events
            );
            println!(
                "  heap     {:.0} events/sec ({} events)",
                heap.events_per_sec, heap.events
            );
            netsim_file.current = Some(calendar);
            netsim_file.current_heap = Some(heap);
            println!(
                "netsim scaling: hadoop cluster workloads, k=4/8/16 x 1/2/4 partitions \
                 x {SCALING_REPS} reps ..."
            );
            netsim_file.scaling = Some(bench_scaling());
        }
    }
    if let (Some(b), Some(c)) = (&netsim_file.baseline, &netsim_file.current) {
        netsim_file.speedup_vs_baseline = Some(c.events_per_sec / b.events_per_sec);
    }
    store(&netsim_path, &netsim_file);
    println!("wrote {}", netsim_path.display());
}

fn record_analyzer(root: &Path, as_baseline: Option<&str>) {
    let analyzer_path = root.join("BENCH_analyzer.json");
    println!(
        "analyzer: {} hosts x {} flows, {} sweeps x {} reps ...",
        ANALYZER_HOSTS, ANALYZER_FLOWS, ANALYZER_SWEEPS_FULL_RUN, REPS
    );
    let mut analyzer = bench_analyzer(ANALYZER_SWEEPS_FULL_RUN);
    analyzer.notes = format!("{}; {}", analyzer.notes, cpu_notes());
    println!(
        "  {:.0} queries/sec ({:.1} us/query)",
        analyzer.queries_per_sec, analyzer.us_per_query
    );
    let (retention, cold) = if as_baseline.is_none() {
        println!(
            "analyzer retention: compacted sweep ({} sweeps x {} reps) ...",
            ANALYZER_SWEEPS_SMOKE, REPS
        );
        let r = bench_retention(ANALYZER_SWEEPS_SMOKE, analyzer.queries_per_sec);
        println!(
            "  hot {:.0} q/s, compacted {:.0} q/s ({:.1}x slower), {:.0} bytes/retained period over {} periods",
            r.hot_queries_per_sec,
            r.compacted_queries_per_sec,
            r.compacted_slowdown,
            r.bytes_per_retained_period,
            r.resident_periods
        );
        println!(
            "analyzer cold: archived sweep ({} sweeps x {} reps) ...",
            ANALYZER_SWEEPS_SMOKE, REPS
        );
        let c = bench_cold(
            ANALYZER_SWEEPS_SMOKE,
            analyzer.queries_per_sec,
            r.compacted_queries_per_sec,
        );
        println!(
            "  cold {:.0} q/s ({:.1}x below hot), cache hit rate {:.3}, {} archived periods, {} bytes read",
            c.cold_queries_per_sec,
            c.cold_slowdown,
            c.segment_cache_hit_rate,
            c.archived_periods,
            c.cold_bytes_read
        );
        (Some(r), Some(c))
    } else {
        (None, None)
    };
    let mut analyzer_file: AnalyzerBench = load(&analyzer_path);
    analyzer_file.schema = 1;
    analyzer_file.workload = format!(
        "{}hosts_{}flows_{}periods_query_sweep",
        ANALYZER_HOSTS,
        ANALYZER_FLOWS,
        ANALYZER_WINDOWS / ANALYZER_WINDOWS_PER_PERIOD
    );
    analyzer_file.seed = ANALYZER_SEED;
    match as_baseline {
        Some("baseline") => analyzer_file.baseline = Some(analyzer),
        Some("baseline_lto") => {}
        Some(_) => unreachable!("validated in record()"),
        None => analyzer_file.current = Some(analyzer),
    }
    if let Some(r) = retention {
        analyzer_file.retention = Some(r);
    }
    if let Some(c) = cold {
        analyzer_file.cold = Some(c);
    }
    if let (Some(b), Some(c)) = (&analyzer_file.baseline, &analyzer_file.current) {
        analyzer_file.speedup_vs_baseline = Some(c.queries_per_sec / b.queries_per_sec);
    }
    store(&analyzer_path, &analyzer_file);
    println!("wrote {}", analyzer_path.display());
}

/// Records the memory–accuracy frontier: one `results/frontier_*.json` per
/// matrix scenario. Deterministic end to end (seeded scenarios, seeded sim,
/// no wall clock), so reruns are byte-identical. Only runs under
/// `--only frontier` — the accuracy sweep is a different gate from the
/// wall-clock BENCH files and must not piggyback on a plain `--record`.
fn record_frontier(root: &Path) {
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir).expect("create results dir");
    println!(
        "frontier: scenario matrix x {} budgets x {} schemes ...",
        frontier::budgets(false).len(),
        frontier::SCHEMES.len()
    );
    for f in frontier::sweep(false) {
        frontier::validate_frontier(&f).unwrap_or_else(|e| {
            eprintln!("FAIL frontier sweep produced an invalid point: {e}");
            std::process::exit(1);
        });
        let path = results_dir.join(format!("frontier_{}.json", f.scenario));
        store(&path, &f);
        let last = f.budgets.last().expect("validated non-empty");
        let ws = last
            .schemes
            .iter()
            .find(|p| p.scheme == "wavesketch")
            .expect("validated scheme set");
        println!(
            "  {:<16} {} flows, {} records: wavesketch@{}k nmse={:.4} recall={:.3} f1={:.3}",
            f.scenario,
            f.injected_flows,
            f.tx_records,
            last.budget_bytes / 1024,
            ws.nmse,
            ws.burst_recall,
            ws.heavy_hitter_f1
        );
        println!("wrote {}", path.display());
    }
}

/// The frontier CI gate: committed `results/frontier_*.json` files must
/// exist for every matrix scenario with finite in-range metrics, and a
/// fresh shrunken sweep (2 scenarios x 2 tiny budgets) must also produce
/// finite in-range metrics. No wall-clock thresholds — accuracy metrics
/// are deterministic, so any drift is a real change, but the gate only
/// *fails* on missing or invalid numbers.
fn smoke_frontier() {
    let root = repo_root();
    for scenario in [
        "incast_dcqcn",
        "incast_dctcp",
        "allreduce_dcqcn",
        "allreduce_dctcp",
        "pfc_storm",
        "link_flap",
    ] {
        let path = root
            .join("results")
            .join(format!("frontier_{scenario}.json"));
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!(
                "FAIL missing committed frontier file {}: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        let f: frontier::ScenarioFrontier = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("unparseable {}: {e}", path.display()));
        if let Err(e) = frontier::validate_frontier(&f) {
            eprintln!("FAIL {}: {e}", path.display());
            std::process::exit(1);
        }
        if f.scenario != scenario {
            eprintln!("FAIL {}: names scenario {}", path.display(), f.scenario);
            std::process::exit(1);
        }
        println!(
            "frontier_{scenario}.json: {} budgets x {} schemes OK",
            f.budgets.len(),
            frontier::SCHEMES.len()
        );
    }
    println!(
        "frontier fresh smoke: {:?} x {:?} bytes ...",
        frontier::SMOKE_SCENARIOS,
        frontier::budgets(true)
    );
    for f in frontier::sweep(true) {
        if let Err(e) = frontier::validate_frontier(&f) {
            eprintln!("FAIL fresh frontier sweep: {e}");
            std::process::exit(1);
        }
        println!(
            "  {} fresh: {} flows scored, all metrics finite",
            f.scenario, f.budgets[0].schemes[0].flows
        );
    }
    println!("frontier gate OK");
}

fn record(as_baseline: Option<&str>, only: Option<&str>) {
    if let Some(name) = as_baseline {
        assert!(
            matches!(name, "baseline" | "baseline_lto"),
            "unknown baseline section {name}"
        );
    }
    if let Some(section) = only {
        assert!(
            matches!(section, "core" | "netsim" | "analyzer" | "frontier"),
            "unknown --only section {section} (want core|netsim|analyzer|frontier)"
        );
    }
    let root = repo_root();
    // The frontier only runs when explicitly selected; see record_frontier.
    if only == Some("frontier") {
        record_frontier(&root);
        return;
    }
    if selected(only, "core") {
        record_core(&root, as_baseline);
    }
    if selected(only, "netsim") {
        record_netsim(&root, as_baseline);
    }
    if selected(only, "analyzer") {
        record_analyzer(&root, as_baseline);
    }
}

fn smoke() {
    let root = repo_root();
    let core_file: CoreBench = load(&root.join("BENCH_core.json"));
    let netsim_file: NetsimBench = load(&root.join("BENCH_netsim.json"));
    let analyzer_file: AnalyzerBench = load(&root.join("BENCH_analyzer.json"));

    // Committed metrics must exist and be finite.
    let committed_core = require_finite(
        "BENCH_core.json",
        "current",
        "ns_per_update_full",
        core_file.current.as_ref().map(|c| c.ns_per_update_full),
    );
    require_finite(
        "BENCH_core.json",
        "baseline",
        "ns_per_update_full",
        core_file.baseline.as_ref().map(|c| c.ns_per_update_full),
    );
    require_finite(
        "BENCH_core.json",
        "speedup",
        "speedup_vs_baseline",
        core_file.speedup_vs_baseline,
    );
    let committed_batch = require_finite(
        "BENCH_core.json",
        "batch",
        "best_ns_per_update",
        core_file.batch.as_ref().map(|b| b.best_ns_per_update),
    );
    let committed_batch_speedup = require_finite(
        "BENCH_core.json",
        "batch",
        "best_speedup_vs_scalar",
        core_file.batch.as_ref().map(|b| b.best_speedup_vs_scalar),
    );
    let batch_section = core_file.batch.as_ref().expect("checked above");
    if batch_section.sweep.is_empty() {
        eprintln!("FAIL BENCH_core.json: batch.sweep is empty");
        std::process::exit(1);
    }
    for p in &batch_section.sweep {
        require_finite(
            "BENCH_core.json",
            "batch.sweep",
            &format!("ns_per_update[batch_size={}]", p.batch_size),
            Some(p.ns_per_update),
        );
        require_finite(
            "BENCH_core.json",
            "batch.sweep",
            &format!("speedup_vs_scalar[batch_size={}]", p.batch_size),
            Some(p.speedup_vs_scalar),
        );
    }
    println!(
        "BENCH_core:   committed batch {committed_batch:.1} ns/update \
         ({committed_batch_speedup:.2}x vs scalar, kernel {})",
        batch_section.kernel
    );
    let committed_wide = require_finite(
        "BENCH_core.json",
        "batch.wide",
        "best_ns_per_update",
        batch_section.wide.as_ref().map(|w| w.best_ns_per_update),
    );
    let committed_wide_speedup = require_finite(
        "BENCH_core.json",
        "batch.wide",
        "best_speedup_vs_scalar",
        batch_section
            .wide
            .as_ref()
            .map(|w| w.best_speedup_vs_scalar),
    );
    for p in &batch_section.wide.as_ref().expect("checked above").sweep {
        require_finite(
            "BENCH_core.json",
            "batch.wide.sweep",
            &format!("ns_per_update[batch_size={}]", p.batch_size),
            Some(p.ns_per_update),
        );
    }
    println!(
        "BENCH_core:   committed wide batch {committed_wide:.1} ns/update \
         ({committed_wide_speedup:.2}x vs scalar)"
    );
    let committed_ev = require_finite(
        "BENCH_netsim.json",
        "current",
        "events_per_sec",
        netsim_file.current.as_ref().map(|c| c.events_per_sec),
    );
    require_finite(
        "BENCH_netsim.json",
        "baseline",
        "events_per_sec",
        netsim_file.baseline.as_ref().map(|c| c.events_per_sec),
    );
    require_finite(
        "BENCH_netsim.json",
        "speedup",
        "speedup_vs_baseline",
        netsim_file.speedup_vs_baseline,
    );
    require_finite(
        "BENCH_netsim.json",
        "scaling.baseline_k4_single_thread",
        "events_per_sec",
        netsim_file
            .scaling
            .as_ref()
            .map(|s| s.baseline_k4_single_thread.events_per_sec),
    );
    let scaling = netsim_file.scaling.as_ref().expect("checked above");
    if scaling.points.is_empty() {
        eprintln!("FAIL BENCH_netsim.json: scaling.points is empty");
        std::process::exit(1);
    }
    for p in &scaling.points {
        let label = format!("k={} partitions={}", p.k, p.partitions);
        require_finite(
            "BENCH_netsim.json",
            "scaling.points",
            &format!("events_per_sec[{label}]"),
            Some(p.events_per_sec),
        );
        require_finite(
            "BENCH_netsim.json",
            "scaling.points",
            &format!("speedup_vs_single_thread[{label}]"),
            Some(p.speedup_vs_single_thread),
        );
        if p.partitions == 0 || p.events == 0 || p.peak_rss_kb == 0 {
            eprintln!("FAIL BENCH_netsim.json: scaling point {label} has a zero field");
            std::process::exit(1);
        }
    }
    println!(
        "BENCH_netsim: committed scaling surface has {} points over k={{{}}}",
        scaling.points.len(),
        {
            let mut ks: Vec<u64> = scaling.points.iter().map(|p| p.k).collect();
            ks.dedup();
            ks.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        }
    );
    let committed_queries = require_finite(
        "BENCH_analyzer.json",
        "current",
        "queries_per_sec",
        analyzer_file.current.as_ref().map(|c| c.queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "baseline",
        "queries_per_sec",
        analyzer_file.baseline.as_ref().map(|c| c.queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "speedup",
        "speedup_vs_baseline",
        analyzer_file.speedup_vs_baseline,
    );
    let committed_compacted = require_finite(
        "BENCH_analyzer.json",
        "retention",
        "compacted_queries_per_sec",
        analyzer_file
            .retention
            .as_ref()
            .map(|r| r.compacted_queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "retention",
        "hot_queries_per_sec",
        analyzer_file
            .retention
            .as_ref()
            .map(|r| r.hot_queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "retention",
        "bytes_per_retained_period",
        analyzer_file
            .retention
            .as_ref()
            .map(|r| r.bytes_per_retained_period),
    );
    println!(
        "BENCH_analyzer: committed compacted tier {committed_compacted:.0} queries/sec \
         ({:.1}x below hot)",
        analyzer_file
            .retention
            .as_ref()
            .map(|r| r.compacted_slowdown)
            .unwrap_or(f64::NAN)
    );
    let committed_cold = require_finite(
        "BENCH_analyzer.json",
        "cold",
        "cold_queries_per_sec",
        analyzer_file.cold.as_ref().map(|c| c.cold_queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "cold",
        "hot_queries_per_sec",
        analyzer_file.cold.as_ref().map(|c| c.hot_queries_per_sec),
    );
    require_finite(
        "BENCH_analyzer.json",
        "cold",
        "cold_bytes_read",
        analyzer_file
            .cold
            .as_ref()
            .map(|c| c.cold_bytes_read as f64),
    );
    let hit_rate = require_finite(
        "BENCH_analyzer.json",
        "cold",
        "segment_cache_hit_rate",
        analyzer_file
            .cold
            .as_ref()
            .map(|c| c.segment_cache_hit_rate),
    );
    if hit_rate > 1.0 {
        eprintln!("FAIL BENCH_analyzer.json: cold.segment_cache_hit_rate {hit_rate} exceeds 1.0");
        std::process::exit(1);
    }
    println!(
        "BENCH_analyzer: committed cold tier {committed_cold:.0} queries/sec \
         ({:.1}x below hot, segment cache hit rate {hit_rate:.3})",
        analyzer_file
            .cold
            .as_ref()
            .map(|c| c.cold_slowdown)
            .unwrap_or(f64::NAN)
    );

    let core = bench_core(CORE_UPDATES_SMOKE);
    let fresh_core = require_finite(
        "BENCH_core.json",
        "fresh",
        "ns_per_update_full",
        Some(core.ns_per_update_full),
    );
    let fresh_batch = bench_batch(CORE_UPDATES_SMOKE, core.ns_per_update_full);
    require_finite(
        "BENCH_core.json",
        "fresh batch",
        "best_ns_per_update",
        Some(fresh_batch.best_ns_per_update),
    );
    println!(
        "BENCH_core:   fresh batch {:.1} ns/update ({:.2}x vs fresh scalar, kernel {})",
        fresh_batch.best_ns_per_update, fresh_batch.best_speedup_vs_scalar, fresh_batch.kernel
    );
    if fresh_batch.best_speedup_vs_scalar < 1.0 {
        eprintln!(
            "WARN: batch ingest slower than scalar this run ({:.2}x)",
            fresh_batch.best_speedup_vs_scalar
        );
    }
    let netsim = bench_netsim(2_000_000, false);
    let fresh_ev = require_finite(
        "BENCH_netsim.json",
        "fresh",
        "events_per_sec",
        Some(netsim.events_per_sec),
    );
    // Parallel gate: the sharded simulator must dispatch exactly the events
    // the sequential run does (cheap proxy for the bit-identical contract;
    // the full trace diff lives in the sim_equivalence suite).
    let mut par_config = netsim_config(2_000_000);
    par_config.scheduler = SchedulerKind::Calendar;
    let par = run_parallel(
        Topology::fat_tree(4, 100.0, 1000),
        netsim_flows(1024),
        par_config,
        2,
    )
    .expect("k=4 fat-tree partitions cleanly");
    if par.events_processed != netsim.events {
        eprintln!(
            "FAIL netsim: 2-partition run dispatched {} events, sequential dispatched {}",
            par.events_processed, netsim.events
        );
        std::process::exit(1);
    }
    let analyzer = bench_analyzer(ANALYZER_SWEEPS_SMOKE);
    let fresh_queries = require_finite(
        "BENCH_analyzer.json",
        "fresh",
        "queries_per_sec",
        Some(analyzer.queries_per_sec),
    );

    let core_ratio = fresh_core / committed_core;
    let ev_ratio = committed_ev / fresh_ev;
    let query_ratio = committed_queries / fresh_queries;
    println!(
        "BENCH_core:   fresh {fresh_core:.1} ns/update vs committed {committed_core:.1} ({:+.1}%)",
        (core_ratio - 1.0) * 100.0
    );
    println!(
        "BENCH_netsim: fresh {fresh_ev:.0} events/sec vs committed {committed_ev:.0} ({:+.1}%)",
        (1.0 / ev_ratio - 1.0) * 100.0
    );
    println!(
        "BENCH_analyzer: fresh {fresh_queries:.0} queries/sec vs committed {committed_queries:.0} ({:+.1}%)",
        (1.0 / query_ratio - 1.0) * 100.0
    );
    // Soft regression check: warn loudly, never fail on wall-clock noise.
    if core_ratio > 1.5 {
        eprintln!("WARN: core update path {core_ratio:.2}x slower than the committed baseline");
    }
    if ev_ratio > 1.5 {
        eprintln!("WARN: netsim event rate {ev_ratio:.2}x below the committed baseline");
    }
    if query_ratio > 1.5 {
        eprintln!("WARN: analyzer query rate {query_ratio:.2}x below the committed baseline");
    }
    println!("perf gate OK");
}

/// Stage-by-stage breakdown of the core update path on the recorded
/// workload: placement/hashing alone, a single bucket's transform push path,
/// and the basic/full sketches under both selectors. A diagnostic aid for
/// perf work, not part of the gate.
fn profile() {
    use wavesketch::{SelectorKind, WaveBucket};

    let stream = core_stream(CORE_UPDATES_FULL_RUN, CORE_FLOWS, CORE_SEED);
    let n = stream.len() as f64;
    let config = core_config();

    // Checksums are folded into the output below: a discarded closure result
    // lets thin-LTO dead-code-eliminate a pure loop (the placement benchmark
    // once printed 0.0 ns/update exactly this way).
    let (place_ns, place_sum) = time_min(|| {
        let mut acc = 0u64;
        for (flow, _, _) in &stream {
            let p = config.place(flow);
            acc = acc.wrapping_add(config.heavy_slot_placed(&p) as u64);
            for row in 0..config.rows {
                acc = acc.wrapping_add(config.light_col_placed(&p, row) as u64);
            }
        }
        acc.max(1)
    });
    println!(
        "place+derive   {:6.1} ns/update   [checksum {place_sum:x}]",
        place_ns as f64 / n
    );

    let (bucket_ns, bucket_sum) = time_min(|| {
        let mut b = WaveBucket::new(&config);
        for (_, window, value) in &stream {
            b.update(*window, *value);
        }
        b.current_epoch_total().unsigned_abs().max(1)
    });
    println!(
        "1-bucket push  {:6.1} ns/update   [checksum {bucket_sum:x}]",
        bucket_ns as f64 / n
    );

    for &bs in &[8usize, 32, 256] {
        let (batch_ns, batch_sum) = time_min(|| {
            let mut sketch = FullWaveSketch::new(config.clone());
            for burst in stream.chunks(bs) {
                sketch.update_batch(burst);
            }
            sketch.heavy_flows().len() as u64
        });
        println!(
            "batch[{bs:>3}]     {:6.1} ns/update   [kernel {}, checksum {batch_sum:x}]",
            batch_ns as f64 / n,
            wavesketch::active_kernel().name()
        );
    }

    for (label, selector) in [
        ("ideal", SelectorKind::Ideal),
        ("hw-thr", SelectorKind::HwThreshold { even: 0, odd: 0 }),
    ] {
        let cfg = SketchConfig::builder().selector(selector).build();
        let (basic_ns, _) = time_min(|| {
            let mut sketch = BasicWaveSketch::new(cfg.clone());
            for (flow, window, value) in &stream {
                sketch.update(flow, *window, *value);
            }
            sketch.active_buckets() as u64
        });
        let (full_ns, _) = time_min(|| {
            let mut sketch = FullWaveSketch::new(cfg.clone());
            for (flow, window, value) in &stream {
                sketch.update(flow, *window, *value);
            }
            sketch.heavy_flows().len() as u64
        });
        println!(
            "basic ({label})  {:6.1} ns/update   full ({label})  {:6.1} ns/update",
            basic_ns as f64 / n,
            full_ns as f64 / n
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut as_baseline: Option<String> = None;
    let mut only: Option<String> = None;
    let mut mode: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => mode = Some("smoke"),
            "--record" => mode = Some("record"),
            "--profile" => mode = Some("profile"),
            "--as-baseline" => {
                as_baseline = Some(it.next().expect("--as-baseline needs a name").clone());
            }
            "--only" => {
                only = Some(it.next().expect("--only needs a section").clone());
            }
            other => panic!("unknown argument {other}"),
        }
    }
    match mode {
        Some("smoke") if only.as_deref() == Some("frontier") => smoke_frontier(),
        Some("smoke") => smoke(),
        Some("record") => record(as_baseline.as_deref(), only.as_deref()),
        Some("profile") => profile(),
        _ => {
            eprintln!(
                "usage: umon-bench --smoke [--only frontier] | --record [--as-baseline baseline|baseline_lto] [--only core|netsim|analyzer|frontier] | --profile"
            );
            std::process::exit(2);
        }
    }
}
