//! Ablation: the full WaveSketch's heavy part (§4.2) — majority-vote-elected
//! heavy flows get private, collision-free buckets. We compare the basic
//! and full versions at the same total memory on heavy-flow accuracy under
//! a deliberately collision-prone layout (narrow light part).

use umon_bench::{run_paper_workload, save_results, PERIOD_WINDOWS, WINDOW_SHIFT};
use umon_metrics::{all_metrics, WorkloadAccuracy};
use umon_workloads::WorkloadKind;
use wavesketch::{BasicWaveSketch, FlowKey, FullWaveSketch, SketchConfig};

fn main() {
    let (_flows, result) = run_paper_workload(WorkloadKind::WebSearch, 0.25, 26);
    let records = &result.telemetry.tx_records;

    // A narrow layout that forces collisions: w=32 light buckets per row.
    let max_windows = PERIOD_WINDOWS.next_power_of_two();
    let full_cfg = SketchConfig::builder()
        .rows(2)
        .width(32)
        .levels(8)
        .topk(64)
        .max_windows(max_windows)
        .heavy_rows(64)
        .build();
    // Basic version gets the heavy part's memory back as extra width so the
    // comparison is equal-memory.
    let extra = full_cfg.heavy_rows * (full_cfg.bucket_bytes() + 17) / 2 / full_cfg.bucket_bytes();
    let basic_cfg = SketchConfig::builder()
        .rows(2)
        .width(32 + extra)
        .levels(8)
        .topk(64)
        .max_windows(max_windows)
        .build();
    println!(
        "\nAblation: heavy part (full {} KB vs basic {} KB)",
        full_cfg.full_bytes() / 1024,
        basic_cfg.basic_bytes() / 1024
    );

    // Ground truth + per-host sketches.
    let mut truth: std::collections::HashMap<(usize, u64), std::collections::HashMap<u64, f64>> =
        Default::default();
    for r in records {
        *truth
            .entry((r.host, r.flow.0))
            .or_default()
            .entry(r.ts_ns >> WINDOW_SHIFT)
            .or_insert(0.0) += r.bytes as f64;
    }
    let mut acc_full = WorkloadAccuracy::new();
    let mut acc_basic = WorkloadAccuracy::new();
    for host in 0..16usize {
        let mut full = FullWaveSketch::new(full_cfg.clone());
        let mut basic = BasicWaveSketch::new(basic_cfg.clone());
        for r in records.iter().filter(|r| r.host == host) {
            let key = FlowKey::from_id(r.flow.0);
            let w = r.ts_ns >> WINDOW_SHIFT;
            full.update(&key, w, r.bytes as i64);
            basic.update(&key, w, r.bytes as i64);
        }
        // Evaluate the host's heavy flows (top 10% by bytes).
        let mut host_flows: Vec<(u64, f64)> = truth
            .iter()
            .filter(|((h, _), _)| *h == host)
            .map(|((_, f), w)| (*f, w.values().sum::<f64>()))
            .collect();
        host_flows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN totals"));
        let top = (host_flows.len() / 10).max(1).min(host_flows.len());
        for &(f, _) in &host_flows[..top] {
            let tw = &truth[&(host, f)];
            let start = tw.keys().min().expect("non-empty") - 4;
            let end = tw.keys().max().expect("non-empty") + 5;
            let t: Vec<f64> = (start..end)
                .map(|w| tw.get(&w).copied().unwrap_or(0.0))
                .collect();
            let key = FlowKey::from_id(f);
            let eval = |curve: Option<wavesketch::basic::WindowSeries>| -> Vec<f64> {
                match curve {
                    Some(c) => (start..end).map(|w| c.at(w)).collect(),
                    None => vec![0.0; t.len()],
                }
            };
            acc_full.add(all_metrics(&t, &eval(full.query(&key))));
            acc_basic.add(all_metrics(&t, &eval(basic.query(&key))));
        }
    }
    let mf = acc_full.mean();
    let mb = acc_basic.mean();
    println!("heavy-flow accuracy over {} flows:", acc_full.flow_count());
    println!(
        "  full  (heavy+light): are={:.4} cosine={:.4} energy={:.4} euclid={:.1}",
        mf.are, mf.cosine, mf.energy, mf.euclidean
    );
    println!(
        "  basic (light only):  are={:.4} cosine={:.4} energy={:.4} euclid={:.1}",
        mb.are, mb.cosine, mb.energy, mb.euclidean
    );
    assert!(
        mf.euclidean <= mb.euclidean,
        "the heavy part must help heavy flows under collisions"
    );
    println!("\n→ collision-free heavy buckets beat extra light width for the");
    println!("  flows application analysis actually needs (§4.2's rationale).");
    save_results(
        "ablation_heavy_part",
        &serde_json::json!({
            "full": serde_json::json!({
                "are": mf.are, "cosine": mf.cosine, "energy": mf.energy, "euclidean": mf.euclidean
            }),
            "basic": serde_json::json!({
                "are": mb.are, "cosine": mb.cosine, "energy": mb.energy, "euclidean": mb.euclidean
            }),
            "flows": acc_full.flow_count(),
        }),
    );
}
