//! Ablation: time-synchronization sensitivity (§6.1) — μMon requires
//! nanosecond-level PTP-class sync; NTP's millisecond errors break the
//! event/rate alignment. We sweep the per-node clock-error bound and
//! measure event recall at a fixed ±2-window matching tolerance.

use umon::{Analyzer, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_bench::{save_results, PERIOD_NS};
use umon_netsim::{SimConfig, Simulator, Topology};
use umon_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    println!("\nAblation: clock error vs event-match recall (tolerance = 2 windows)");
    println!("{:>14} {:>10} {:>8}", "clock error", "episodes", "recall");
    let tolerance = 2 * 8192; // two microsecond-level windows (§6.1)
    let mut rows = Vec::new();
    for error_ns in [0i64, 100, 1_000, 8_192, 100_000, 1_000_000] {
        let params = WorkloadParams::paper(WorkloadKind::Hadoop, 0.35, 23);
        let flows = params.generate();
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let config = SimConfig {
            end_ns: PERIOD_NS + 5_000_000,
            seed: 23,
            clock_error_ns: error_ns,
            ..SimConfig::default()
        };
        let result = Simulator::new(topo, flows, config).run();
        let mut analyzer = Analyzer::new(HostAgentConfig::default().sketch);
        for switch in 16..36 {
            let mut agent = SwitchAgent::new(
                switch,
                SwitchAgentConfig {
                    sampling_shift: 4,
                    ..Default::default()
                },
            );
            agent.ingest(&result.telemetry.mirror_candidates);
            analyzer.add_mirrors(agent.drain());
        }
        // Heavy episodes only (≥ KMax): detectable by construction, so any
        // recall loss comes from timestamp misalignment.
        let stats =
            analyzer.match_episodes(&result.telemetry.episodes, 200 * 1024, u32::MAX, tolerance);
        let label = if error_ns < 1000 {
            format!("±{error_ns} ns")
        } else if error_ns < 1_000_000 {
            format!("±{} us", error_ns / 1000)
        } else {
            format!("±{} ms", error_ns / 1_000_000)
        };
        println!("{label:>14} {:>10} {:>8.3}", stats.episodes, stats.recall());
        rows.push(serde_json::json!({
            "clock_error_ns": error_ns,
            "episodes": stats.episodes,
            "recall": stats.recall(),
        }));
    }
    println!("\n→ PTP-class errors (≤ 1 us) keep recall intact; NTP-class errors");
    println!("  (≥ 100 us - ms) misalign mirrors and episodes (§6.1's argument).");
    save_results("ablation_clock_sync", &serde_json::json!(rows));
}
