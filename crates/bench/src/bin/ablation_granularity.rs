//! Ablation: window granularity (§8 "Limitations on flow rate compression")
//! — wavelet compression pays off between ~1 and ~100 μs. Too coarse and
//! there is no sequence to compress; too fine and the curve degenerates to
//! isolated points with no waveform for the transform to exploit.
//!
//! We measure, per granularity, the compression ratio (report bytes vs raw
//! per-window counters) and the reconstruction cosine similarity at a fixed
//! K, on the same traffic.

use std::collections::HashMap;
use umon_bench::{run_paper_workload, save_results};
use umon_metrics::cosine_similarity;
use umon_workloads::WorkloadKind;
use wavesketch::reconstruct::reconstruct_non_negative;
use wavesketch::select::IdealTopK;
use wavesketch::streaming::StreamingTransform;
use wavesketch::BucketReport;

fn main() {
    let (_flows, result) = run_paper_workload(WorkloadKind::WebSearch, 0.25, 22);
    // Take the 20 largest flows' packet streams.
    let mut per_flow: HashMap<u64, Vec<(u64, i64)>> = HashMap::new();
    for r in &result.telemetry.tx_records {
        per_flow
            .entry(r.flow.0)
            .or_default()
            .push((r.ts_ns, r.bytes as i64));
    }
    let mut flows: Vec<(u64, i64)> = per_flow
        .iter()
        .map(|(&f, pkts)| (f, pkts.iter().map(|&(_, b)| b).sum::<i64>()))
        .collect();
    flows.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
    let sample: Vec<u64> = flows.iter().take(20).map(|&(f, _)| f).collect();

    println!("\nAblation: window granularity vs compression effectiveness (K = 32, L = 8)");
    println!(
        "{:>12} {:>10} {:>12} {:>10}",
        "window", "avg n", "compression", "cosine"
    );
    let mut rows = Vec::new();
    for shift in [10u32, 13, 16, 20, 23] {
        // 2^10 ns ≈ 1 μs … 2^23 ns ≈ 8.4 ms.
        let window_ns = 1u64 << shift;
        let mut ratios = Vec::new();
        let mut cosines = Vec::new();
        let mut lens = Vec::new();
        for &f in &sample {
            // Dense truth at this granularity.
            let mut windows: HashMap<u64, i64> = HashMap::new();
            for &(ts, b) in &per_flow[&f] {
                *windows.entry(ts >> shift).or_default() += b;
            }
            let w0 = *windows.keys().min().expect("non-empty");
            let n = (*windows.keys().max().expect("non-empty") - w0 + 1) as usize;
            lens.push(n as f64);
            let cap = n.next_power_of_two().max(256);
            let mut t = StreamingTransform::new(8, cap, IdealTopK::new(32));
            let mut offsets: Vec<(u64, i64)> = windows.iter().map(|(&w, &v)| (w - w0, v)).collect();
            offsets.sort_unstable();
            for (off, v) in offsets {
                t.push(off as u32, v);
            }
            let report = BucketReport::from_coeffs(w0, t.finish());
            ratios.push(report.wire_bytes() as f64 / (4.0 * n as f64));
            let rec = reconstruct_non_negative(&report.coeffs());
            let truth: Vec<f64> = (0..rec.len())
                .map(|i| windows.get(&(w0 + i as u64)).copied().unwrap_or(0) as f64)
                .collect();
            cosines.push(cosine_similarity(&truth, &rec));
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let label = if window_ns < 1_000_000 {
            format!("{:.1} us", window_ns as f64 / 1000.0)
        } else {
            format!("{:.1} ms", window_ns as f64 / 1e6)
        };
        println!(
            "{:>12} {:>10.0} {:>12.4} {:>10.4}",
            label,
            avg(&lens),
            avg(&ratios),
            avg(&cosines)
        );
        rows.push(serde_json::json!({
            "window_ns": window_ns,
            "avg_sequence_len": avg(&lens),
            "compression_ratio": avg(&ratios),
            "cosine": avg(&cosines),
        }));
    }
    println!("\n→ compression is effective in the 1-100 us band; at ms windows the");
    println!("  sequence is too short for the report overhead to amortize (§8).");
    save_results("ablation_granularity", &serde_json::json!(rows));
}
