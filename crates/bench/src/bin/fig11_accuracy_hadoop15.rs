//! Figure 11: accuracy vs. memory on the 15%-load Facebook Hadoop workload,
//! 8.192 μs windows, all schemes at equal memory.

use umon_bench::accuracy::{report, sweep};
use umon_bench::{run_paper_workload, save_results};
use umon_workloads::WorkloadKind;

fn main() {
    let kind = WorkloadKind::Hadoop;
    let load = 0.15;
    eprintln!(
        "simulating {} at {:.0}% load ...",
        kind.name(),
        load * 100.0
    );
    let (_flows, result) = run_paper_workload(kind, load, 11);
    eprintln!(
        "  {} egress packets, {} flows",
        result.telemetry.tx_records.len(),
        result.flows.len()
    );
    let budgets_kb = [200, 400, 800, 1600];
    let points = sweep(&result.telemetry.tx_records, 16, &budgets_kb);
    let json = report(kind, load, &points);
    save_results("fig11_accuracy_hadoop15", &json);
}
