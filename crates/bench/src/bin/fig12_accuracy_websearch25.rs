//! Figure 12: accuracy vs. memory on the 25%-load WebSearch workload,
//! 8.192 μs windows, all schemes at equal memory.

use umon_bench::accuracy::{report, sweep};
use umon_bench::{run_paper_workload, save_results};
use umon_workloads::WorkloadKind;

fn main() {
    let kind = WorkloadKind::WebSearch;
    let load = 0.25;
    eprintln!(
        "simulating {} at {:.0}% load ...",
        kind.name(),
        load * 100.0
    );
    let (_flows, result) = run_paper_workload(kind, load, 12);
    eprintln!(
        "  {} egress packets, {} flows",
        result.telemetry.tx_records.len(),
        result.flows.len()
    );
    let budgets_kb = [200, 400, 800, 1600];
    let points = sweep(&result.telemetry.tx_records, 16, &budgets_kb);
    let json = report(kind, load, &points);
    save_results("fig12_accuracy_websearch25", &json);
}
