//! Figure 14: congestion-event recall and captured-flow coverage vs. the
//! episode's maximum queue length, for sampling ratios 1/1 … 1/256, on
//! three workload/load combinations.

use umon::{Analyzer, SwitchAgent, SwitchAgentConfig};
use umon_bench::{run_paper_workload, save_results};
use umon_workloads::WorkloadKind;
use wavesketch::SketchConfig;

const QLEN_BINS_KB: [(u32, u32); 6] = [
    (0, 50),
    (50, 100),
    (100, 150),
    (150, 200),
    (200, 250),
    (250, u32::MAX / 1024),
];

fn main() {
    let combos = [
        (WorkloadKind::WebSearch, 0.35),
        (WorkloadKind::Hadoop, 0.15),
        (WorkloadKind::Hadoop, 0.35),
    ];
    let shifts = [0u32, 2, 4, 6, 7, 8]; // 1/1, 1/4, 1/16, 1/64, 1/128, 1/256
    let mut all = Vec::new();
    for (kind, load) in combos {
        eprintln!("simulating {} {:.0}% ...", kind.name(), load * 100.0);
        let (_flows, result) = run_paper_workload(kind, load, 14);
        let episodes = &result.telemetry.episodes;
        println!(
            "\nFigure 14 — {} at {:.0}% load: {} ground-truth episodes, {} CE packets",
            kind.name(),
            load * 100.0,
            episodes.len(),
            result.telemetry.mirror_candidates.len()
        );
        println!(
            "{:>10} | {}",
            "sampling",
            QLEN_BINS_KB
                .iter()
                .map(|&(lo, hi)| if hi > 1000 {
                    format!("{:>5}+ KB", lo)
                } else {
                    format!("{:>3}-{:<3}KB", lo, hi)
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        for &shift in &shifts {
            // Mirror with this sampling ratio on every switch.
            let cfg = SketchConfig::builder().build();
            let mut analyzer = Analyzer::new(cfg);
            let sw_cfg = SwitchAgentConfig {
                sampling_shift: shift,
                ..Default::default()
            };
            for switch in 16..36 {
                let mut agent = SwitchAgent::new(switch, sw_cfg);
                agent.ingest(&result.telemetry.mirror_candidates);
                analyzer.add_mirrors(agent.drain());
            }
            let mut recalls = Vec::new();
            let mut flow_counts = Vec::new();
            for &(lo_kb, hi_kb) in &QLEN_BINS_KB {
                let stats = analyzer.match_episodes(
                    episodes,
                    lo_kb * 1024,
                    hi_kb.saturating_mul(1024),
                    10_000,
                );
                recalls.push((stats.episodes, stats.recall()));
                flow_counts.push(stats.mean_flows_captured);
            }
            println!(
                "{:>10} | {}   flows: {}",
                format!("1/{}", 1u64 << shift),
                recalls
                    .iter()
                    .map(|&(n, r)| if n == 0 {
                        "    -    ".to_string()
                    } else {
                        format!("{:>8.2} ", r)
                    })
                    .collect::<String>(),
                flow_counts
                    .iter()
                    .map(|f| format!("{f:>5.1}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            all.push(serde_json::json!({
                "workload": kind.name(),
                "load": load,
                "sampling": format!("1/{}", 1u64 << shift),
                "bins_kb": QLEN_BINS_KB.iter().map(|&(lo, _)| lo).collect::<Vec<u32>>(),
                "episodes": recalls.iter().map(|&(n, _)| n).collect::<Vec<usize>>(),
                "recall": recalls.iter().map(|&(_, r)| r).collect::<Vec<f64>>(),
                "mean_flows": flow_counts,
            }));
        }
    }
    save_results("fig14_event_recall", &serde_json::json!(all));
}
