//! Figure 10: congestion event detection and replay — the full μMon
//! pipeline on one fat-tree workload:
//!
//! * (a) a time × link map of detected congestion events,
//! * (b) the CDF of event durations, and
//! * (c) a replay of the longest event: the rate curves of the involved
//!   flows around the event, reconstructed from WaveSketch reports.

use std::collections::HashMap;
use umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_bench::{run_paper_workload, save_results, WINDOW_SHIFT};
use umon_workloads::WorkloadKind;

fn main() {
    let (flows, result) = run_paper_workload(WorkloadKind::Hadoop, 0.15, 10);
    let host_of_flow: HashMap<u64, usize> = flows.iter().map(|f| (f.id.0, f.src)).collect();

    // Host agents feed the analyzer with WaveSketch reports.
    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        analyzer.add_reports(agent.finish());
    }
    // Switch agents mirror CE packets at 1/8 sampling.
    let sw_cfg = SwitchAgentConfig {
        sampling_shift: 3,
        ..Default::default()
    };
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, sw_cfg);
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }

    // (a) event map.
    let events = analyzer.cluster_events(50_000);
    println!("\nFigure 10a: congestion event map (switch-port = link id)");
    println!(
        "{:>8} {:>6} {:>12} {:>10}",
        "link", "flows", "start (us)", "dur (us)"
    );
    for e in events.iter().take(20) {
        println!(
            "{:>5}/{:<2} {:>6} {:>12.1} {:>10.1}",
            e.switch,
            e.vlan,
            e.flows.len(),
            e.start_ns as f64 / 1000.0,
            e.duration_ns() as f64 / 1000.0
        );
    }
    println!("({} events total)", events.len());
    assert!(!events.is_empty(), "the workload must congest some links");

    // (b) duration CDF.
    let mut durations: Vec<f64> = events
        .iter()
        .map(|e| e.duration_ns() as f64 / 1000.0)
        .collect();
    durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("\nFigure 10b: congestion duration CDF (us)");
    for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
        let idx = ((durations.len() as f64 * q) as usize).min(durations.len() - 1);
        println!("  p{:<4} {:>8.1} us", (q * 100.0) as u32, durations[idx]);
    }

    // (c) replay the longest event with cause/victim classification (B2).
    let longest = events
        .iter()
        .max_by_key(|e| e.duration_ns())
        .expect("events exist");
    let margin_windows = 20u64;
    let (windows, curves) =
        analyzer.replay_event(longest, margin_windows * 8192, WINDOW_SHIFT, |f| {
            host_of_flow.get(&f).copied()
        });
    println!(
        "\nFigure 10c: replay of the longest event (link {}/{}, {:.1} us, {} flows)",
        longest.switch,
        longest.vlan,
        longest.duration_ns() as f64 / 1000.0,
        longest.flows.len()
    );
    let window_ns = 1u64 << WINDOW_SHIFT;
    // Pre-event and during-event ranges within the replay window.
    let pre = 0..margin_windows as usize;
    let during_end = windows.len().saturating_sub(margin_windows as usize);
    let during = margin_windows as usize..during_end.max(margin_windows as usize + 1);
    for (flow, values) in curves.iter().take(8) {
        let peak = values.iter().cloned().fold(0.0, f64::max) * 8.0 / window_ns as f64;
        let role = umon::classify_event_role(values, pre.clone(), during.clone());
        println!("  flow {flow:>6}: peak {:>6.1} Gbps, role {:?}", peak, role);
    }
    let roles: Vec<umon::EventRole> = curves
        .iter()
        .map(|(_, v)| umon::classify_event_role(v, pre.clone(), during.clone()))
        .collect();
    let contributors = roles
        .iter()
        .filter(|r| **r == umon::EventRole::Contributor)
        .count();
    println!(
        "  → {} contributor(s) ramped into the event; {} victim(s)/bystander(s)",
        contributors,
        roles.len() - contributors
    );
    assert!(
        !curves.is_empty(),
        "replay must recover at least one flow curve"
    );
    assert!(
        contributors >= 1,
        "a congestion event must have at least one bursting contributor"
    );
    save_results(
        "fig10_event_replay",
        &serde_json::json!({
            "events": events.len(),
            "duration_us_p50": durations[durations.len() / 2],
            "replay_flows": curves.len(),
            "replay_windows": windows.len(),
        }),
    );
}
