//! Table 2: packet and flow counts of the six simulation workloads
//! (WebSearch and Facebook Hadoop at 15/25/35% load, 20 ms periods).

use umon_bench::save_results;
use umon_workloads::{WorkloadKind, WorkloadParams, WorkloadStats};

fn main() {
    println!("\nTable 2: simulation workloads (20 ms arrival window, 16 hosts, 100 Gbps)");
    println!(
        "{:<18} {:>6} {:>10} {:>8} {:>14}",
        "workload", "load", "packets", "flows", "mean flow (B)"
    );
    let mut rows = Vec::new();
    for kind in [WorkloadKind::WebSearch, WorkloadKind::Hadoop] {
        for load in [0.15, 0.25, 0.35] {
            let params = WorkloadParams::paper(kind, load, 2024);
            let flows = params.generate();
            let stats = WorkloadStats::compute(&flows, 1000);
            println!(
                "{:<18} {:>5.0}% {:>10} {:>8} {:>14.0}",
                kind.name(),
                load * 100.0,
                stats.packets,
                stats.flows,
                stats.mean_flow_bytes
            );
            rows.push(serde_json::json!({
                "workload": kind.name(),
                "load": load,
                "packets": stats.packets,
                "flows": stats.flows,
                "mean_flow_bytes": stats.mean_flow_bytes,
            }));
        }
    }
    save_results("table2_workloads", &serde_json::json!(rows));
}
