//! The accuracy-sweep engine behind Figures 11, 12, 17 and 18: all schemes
//! at equal memory over one simulated workload.

use crate::{by_flow_length, evaluate_scheme, fmt_metrics, PERIOD_WINDOWS, WINDOW_SHIFT};
use std::collections::HashMap;
use umon_baselines::budget::SweepLayout;
use umon_baselines::CurveSketch;
use umon_metrics::MetricSummary;
use umon_netsim::TxRecord;
use umon_workloads::WorkloadKind;
use wavesketch::hw::calibrate_thresholds;
use wavesketch::{FlowKey, SelectorKind};

/// The five schemes of the accuracy figures.
pub const SCHEMES: [&str; 5] = [
    "WaveSketch-Ideal",
    "WaveSketch-HW",
    "OmniWindow-Avg",
    "Fourier",
    "Persist-CMS",
];

/// One accuracy data point: scheme × memory budget.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Scheme name.
    pub scheme: &'static str,
    /// Memory budget in bytes.
    pub memory_bytes: usize,
    /// Workload-average metrics.
    pub summary: MetricSummary,
    /// Per-flow `(flow, bytes, metrics)` rows for flow-size breakdowns.
    pub per_flow: Vec<(u64, f64, MetricSummary)>,
}

/// Calibrates WaveSketch-HW thresholds from sampled *bucket-level* traces
/// (§4.3: sample traces from the actual scenario, measure them with an
/// ideal WaveSketch, take the median of the heap minima). Bucket streams —
/// not individual flows — are what the selectors actually see, including
/// the aggregation of mice flows into elongated background streams.
pub fn calibrate_hw(records: &[TxRecord], k: usize) -> SelectorKind {
    let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
    // Assign every record of host 0's traffic to its row-0 bucket under the
    // sweep layout's hash, building per-bucket window series.
    let sample_host = records.first().map(|r| r.host).unwrap_or(0);
    let mut buckets: HashMap<u64, Vec<(u32, i64)>> = HashMap::new();
    for r in records {
        if r.host != sample_host {
            continue;
        }
        let col = FlowKey::from_id(r.flow.0).hash(0, layout.seed) % layout.width as u64;
        let w = (r.ts_ns >> WINDOW_SHIFT) as u32;
        let e = buckets.entry(col).or_default();
        match e.last_mut() {
            Some(last) if last.0 == w => last.1 += r.bytes as i64,
            _ => e.push((w, r.bytes as i64)),
        }
    }
    let cap = PERIOD_WINDOWS.next_power_of_two() as u32;
    let traces: Vec<Vec<(u32, i64)>> = buckets
        .into_values()
        .map(|mut t| {
            let base = t.first().map(|&(w, _)| w).unwrap_or(0);
            for p in &mut t {
                p.0 -= base;
            }
            t.retain(|&(w, _)| w < cap);
            t
        })
        .collect();
    let cfg = calibrate_thresholds(&traces, 8, cap as usize, k.max(2));
    cfg.kind()
}

/// Runs the full sweep: every scheme at every memory budget.
pub fn sweep(records: &[TxRecord], num_hosts: usize, budgets_kb: &[usize]) -> Vec<AccuracyPoint> {
    let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
    let mut out = Vec::new();
    for &kb in budgets_kb {
        let budget = kb * 1024;
        // K for this budget (reused by HW calibration).
        let k = layout.wavesketch(budget, SelectorKind::Ideal).config().topk;
        let hw_kind = calibrate_hw(records, k);
        type SketchFactory = Box<dyn Fn() -> Box<dyn CurveSketch>>;
        let makes: Vec<(&'static str, SketchFactory)> = vec![
            (
                SCHEMES[0],
                Box::new(move || {
                    Box::new(
                        SweepLayout::paper(0, PERIOD_WINDOWS)
                            .wavesketch(budget, SelectorKind::Ideal),
                    )
                }),
            ),
            (
                SCHEMES[1],
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, PERIOD_WINDOWS).wavesketch(budget, hw_kind))
                }),
            ),
            (
                SCHEMES[2],
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, PERIOD_WINDOWS).omniwindow(budget))
                }),
            ),
            (
                SCHEMES[3],
                Box::new(move || Box::new(SweepLayout::paper(0, PERIOD_WINDOWS).fourier(budget))),
            ),
            (
                SCHEMES[4],
                Box::new(move || {
                    Box::new(SweepLayout::paper(0, PERIOD_WINDOWS).persist_cms(budget))
                }),
            ),
        ];
        for (name, make) in makes {
            let (summary, per_flow) = evaluate_scheme(records, num_hosts, || make());
            out.push(AccuracyPoint {
                scheme: name,
                memory_bytes: budget,
                summary,
                per_flow,
            });
        }
    }
    out
}

/// Prints a figure-11-style table and returns the JSON value.
pub fn report(kind: WorkloadKind, load: f64, points: &[AccuracyPoint]) -> serde_json::Value {
    println!(
        "\nAccuracy on the {:.0}%-load {} workload (window = 8.192 us)",
        load * 100.0,
        kind.name()
    );
    println!(
        "{:<18} {:>9}  metrics (workload average over flows)",
        "scheme", "memory"
    );
    let mut rows = Vec::new();
    for p in points {
        println!(
            "{:<18} {:>6} KB  {}",
            p.scheme,
            p.memory_bytes / 1024,
            fmt_metrics(&p.summary)
        );
        rows.push(serde_json::json!({
            "scheme": p.scheme,
            "memory_kb": p.memory_bytes / 1024,
            "euclidean": p.summary.euclidean,
            "are": p.summary.are,
            "cosine": p.summary.cosine,
            "energy": p.summary.energy,
        }));
    }
    serde_json::json!({
        "workload": kind.name(),
        "load": load,
        "points": rows,
    })
}

/// Prints the flow-size breakdown (Figures 17/18) for one memory budget.
pub fn report_by_flow_size(points: &[AccuracyPoint], memory_bytes: usize) -> serde_json::Value {
    let mut rows = Vec::new();
    println!(
        "\nAccuracy by flow length (memory = {} KB)",
        memory_bytes / 1024
    );
    for p in points.iter().filter(|p| p.memory_bytes == memory_bytes) {
        println!("  {}", p.scheme);
        for (bucket, m, n) in by_flow_length(&p.per_flow, 1000.0) {
            println!(
                "    flows ≤ {:>6} pkts ({:>5} flows): {}",
                bucket,
                n,
                fmt_metrics(&m)
            );
            rows.push(serde_json::json!({
                "scheme": p.scheme,
                "flow_length_bucket": bucket,
                "flows": n,
                "euclidean": m.euclidean,
                "are": m.are,
                "cosine": m.cosine,
                "energy": m.energy,
            }));
        }
    }
    serde_json::json!(rows)
}
