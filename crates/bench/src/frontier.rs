//! The memory–accuracy frontier: WaveSketch vs. the baselines on the
//! adversarial scenario matrix.
//!
//! For every scenario in [`umon_workloads::scenario_matrix`] this module
//! runs the netsim once (failure schedule and all), rebuilds the exact
//! per-flow ground truth through the testkit [`Oracle`], then sweeps a
//! ladder of equal-memory budgets across WaveSketch, Fourier, OmniWindow
//! and Persist-CMS and scores each point with the three frontier metrics:
//!
//! * **NMSE** — per-flow curve error normalized by the flow's true energy,
//! * **burst recall** — fraction of true above-threshold windows the
//!   reconstruction also flags (threshold: half the flow's true peak),
//! * **heavy-hitter F1** — top-k flow-set agreement per source host.
//!
//! Everything is seeded and wall-clock free, so two `--record --only
//! frontier` runs produce byte-identical `results/frontier_*.json` files.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use umon_baselines::budget::SweepLayout;
use umon_baselines::CurveSketch;
use umon_metrics::{burst_recall, heavy_hitter_f1, nmse};
use umon_netsim::{PfcConfig, SimConfig, Simulator, Topology, TxRecord};
use umon_testkit::Oracle;
use umon_workloads::{scenario_matrix, Scenario};
use wavesketch::{FlowKey, SelectorKind, SketchConfig};

use crate::{PERIOD_WINDOWS, WINDOW_SHIFT};

/// Seed for the whole frontier (scenario generation and the simulator).
pub const FRONTIER_SEED: u64 = 0xF407;

/// Schemes swept at every budget, in output order.
pub const SCHEMES: [&str; 4] = ["wavesketch", "fourier", "omniwindow", "persist_cms"];

/// Scenarios the CI smoke sweep runs (one clean, one failure-injected).
pub const SMOKE_SCENARIOS: [&str; 2] = ["incast_dcqcn", "pfc_storm"];

/// The budget ladder, bytes of total sketch memory.
pub fn budgets(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![64 * 1024, 256 * 1024]
    } else {
        vec![64 * 1024, 150 * 1024, 300 * 1024, 600 * 1024, 1200 * 1024]
    }
}

/// One (scheme, budget) point on the frontier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemePoint {
    /// Scheme name (one of [`SCHEMES`]).
    pub scheme: String,
    /// Bytes the built sketch actually occupies at this budget.
    pub memory_bytes: usize,
    /// Mean per-flow normalized mean squared error (lower is better).
    pub nmse: f64,
    /// Mean per-flow burst recall at half the true peak (higher is better).
    pub burst_recall: f64,
    /// Mean per-host top-k heavy-hitter F1 (higher is better).
    pub heavy_hitter_f1: f64,
    /// Flows scored.
    pub flows: usize,
}

/// All schemes at one memory budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetRow {
    /// Total sketch memory budget, bytes.
    pub budget_bytes: usize,
    /// One point per scheme, in [`SCHEMES`] order.
    pub schemes: Vec<SchemePoint>,
}

/// The frontier of one scenario — the content of `results/frontier_<name>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioFrontier {
    /// Result-file schema version.
    pub schema: u32,
    /// Scenario name from the matrix.
    pub scenario: String,
    /// Seed the scenario and simulator ran with.
    pub seed: u64,
    /// Window shift (8.192 μs windows).
    pub window_shift: u32,
    /// Flows the scenario injected.
    pub injected_flows: usize,
    /// Failure events the scenario scheduled.
    pub failure_events: usize,
    /// Egress records the simulation produced.
    pub tx_records: usize,
    /// True time of the last simulator event, ns.
    pub sim_end_ns: u64,
    /// Budget ladder, ascending.
    pub budgets: Vec<BudgetRow>,
}

/// Runs one scenario through the simulator (PFC fabric and failure schedule
/// as the scenario demands) and returns the host egress tap.
pub fn run_scenario(scenario: &Scenario) -> (Vec<TxRecord>, u64) {
    let topo = Topology::fat_tree(scenario.topo_k, 100.0, 1000);
    let config = SimConfig {
        end_ns: scenario.end_ns,
        seed: FRONTIER_SEED,
        clock_error_ns: 0,
        pfc: if scenario.needs_pfc {
            Some(PfcConfig {
                xoff_bytes: 300 * 1024,
                xon_bytes: 200 * 1024,
            })
        } else {
            None
        },
        failures: scenario.failures.clone(),
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, scenario.flows.clone(), config).run();
    (result.telemetry.tx_records, result.end_ns)
}

/// The oracle's epoch layout: paper defaults cover 4096 windows ≈ 33.5 ms,
/// comfortably past every scenario horizon, so no epoch ever rolls over and
/// `flow_epochs` is the exact dense truth.
fn oracle_config() -> SketchConfig {
    SketchConfig::builder().build()
}

fn make_scheme(layout: &SweepLayout, name: &str, budget: usize) -> Box<dyn CurveSketch> {
    match name {
        "wavesketch" => Box::new(layout.wavesketch(budget, SelectorKind::Ideal)),
        "fourier" => Box::new(layout.fourier(budget)),
        "omniwindow" => Box::new(layout.omniwindow(budget)),
        "persist_cms" => Box::new(layout.persist_cms(budget)),
        other => panic!("unknown frontier scheme {other}"),
    }
}

/// Dense truth curve of one flow from its oracle epochs:
/// `window → bytes`, plus the padded evaluation span.
fn truth_curve(oracle: &Oracle, flow: u64) -> Option<(BTreeMap<u64, f64>, u64, u64)> {
    let epochs = oracle.flow_epochs(&FlowKey::from_id(flow));
    let mut windows: BTreeMap<u64, f64> = BTreeMap::new();
    for e in &epochs {
        for (o, &v) in e.counts.iter().enumerate() {
            if v != 0 {
                *windows.entry(e.w0 + o as u64).or_insert(0.0) += v as f64;
            }
        }
    }
    let (&first, _) = windows.iter().next()?;
    let (&last, _) = windows.iter().next_back()?;
    // Pad by 8 windows on each side so smeared energy is charged (the same
    // rule as `evaluate_scheme`).
    let pad = 8u64;
    Some((windows, first.saturating_sub(pad), last + 1 + pad))
}

/// Scores every scheme at every budget on one simulated record stream.
pub fn evaluate_scenario(scenario: &Scenario, smoke: bool) -> ScenarioFrontier {
    let (records, sim_end_ns) = run_scenario(scenario);
    let num_hosts = scenario.topo_k.pow(3) / 4;

    // Partition per source host; records arrive time-ordered.
    let mut per_host: Vec<Vec<&TxRecord>> = vec![Vec::new(); num_hosts];
    for r in &records {
        per_host[r.host].push(r);
    }

    // Exact ground truth: one oracle per host, fed the same update stream
    // every sketch sees.
    let mut oracles: Vec<Oracle> = (0..num_hosts)
        .map(|_| Oracle::new(oracle_config()))
        .collect();
    let mut host_flows: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); num_hosts];
    for (host, recs) in per_host.iter().enumerate() {
        for r in recs {
            let w = r.ts_ns >> WINDOW_SHIFT;
            oracles[host].record(&FlowKey::from_id(r.flow.0), w, r.bytes as i64);
            host_flows[host].insert(r.flow.0);
        }
    }

    let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
    let mut rows = Vec::new();
    for budget in budgets(smoke) {
        let mut points = Vec::new();
        for scheme_name in SCHEMES {
            let mut memory_bytes = 0;
            let mut nmse_sum = 0.0;
            let mut recall_sum = 0.0;
            let mut flows_scored = 0usize;
            let mut f1_sum = 0.0;
            let mut hosts_scored = 0usize;
            for (host, recs) in per_host.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                let mut sketch = make_scheme(&layout, scheme_name, budget);
                for r in recs {
                    let w = r.ts_ns >> WINDOW_SHIFT;
                    sketch.update(&FlowKey::from_id(r.flow.0), w, r.bytes as i64);
                }
                memory_bytes = sketch.memory_bytes();
                let mut truth_totals: Vec<(u64, f64)> = Vec::new();
                let mut est_totals: Vec<(u64, f64)> = Vec::new();
                for &flow in &host_flows[host] {
                    let Some((windows, start, end)) = truth_curve(&oracles[host], flow) else {
                        continue;
                    };
                    let t: Vec<f64> = (start..end)
                        .map(|w| windows.get(&w).copied().unwrap_or(0.0))
                        .collect();
                    let g: Vec<f64> = match sketch.query(&FlowKey::from_id(flow)) {
                        Some(series) => (start..end).map(|w| series.at(w)).collect(),
                        None => vec![0.0; t.len()],
                    };
                    nmse_sum += nmse(&t, &g);
                    let peak = t.iter().cloned().fold(0.0f64, f64::max);
                    recall_sum += burst_recall(&t, &g, peak / 2.0);
                    flows_scored += 1;
                    truth_totals.push((flow, t.iter().sum()));
                    est_totals.push((flow, g.iter().sum()));
                }
                if !truth_totals.is_empty() {
                    let k = (truth_totals.len() / 4).clamp(1, 8);
                    f1_sum += heavy_hitter_f1(&truth_totals, &est_totals, k);
                    hosts_scored += 1;
                }
            }
            let n = flows_scored.max(1) as f64;
            points.push(SchemePoint {
                scheme: scheme_name.to_string(),
                memory_bytes,
                nmse: nmse_sum / n,
                burst_recall: recall_sum / n,
                heavy_hitter_f1: f1_sum / hosts_scored.max(1) as f64,
                flows: flows_scored,
            });
        }
        rows.push(BudgetRow {
            budget_bytes: budget,
            schemes: points,
        });
    }

    ScenarioFrontier {
        schema: 1,
        scenario: scenario.name.clone(),
        seed: FRONTIER_SEED,
        window_shift: WINDOW_SHIFT,
        injected_flows: scenario.flows.len(),
        failure_events: scenario.failures.events.len(),
        tx_records: records.len(),
        sim_end_ns,
        budgets: rows,
    }
}

/// The full sweep: every matrix scenario (or the two [`SMOKE_SCENARIOS`]
/// under shrunken knobs when `smoke`), in matrix order.
pub fn sweep(smoke: bool) -> Vec<ScenarioFrontier> {
    scenario_matrix(FRONTIER_SEED, smoke)
        .iter()
        .filter(|s| !smoke || SMOKE_SCENARIOS.contains(&s.name.as_str()))
        .map(|s| evaluate_scenario(s, smoke))
        .collect()
}

/// Checks one frontier metric is finite and inside `[lo, hi]`; returns an
/// error string for the gate to report.
pub fn check_metric(ctx: &str, name: &str, v: f64, lo: f64, hi: f64) -> Result<(), String> {
    if v.is_finite() && (lo..=hi).contains(&v) {
        Ok(())
    } else {
        Err(format!("{ctx}: {name} = {v} outside [{lo}, {hi}]"))
    }
}

/// Validates every point of a frontier file: three finite in-range metrics
/// per scheme, every scheme present at every budget, flows actually scored.
pub fn validate_frontier(f: &ScenarioFrontier) -> Result<(), String> {
    if f.budgets.is_empty() {
        return Err(format!("{}: no budgets", f.scenario));
    }
    for row in &f.budgets {
        let names: Vec<&str> = row.schemes.iter().map(|p| p.scheme.as_str()).collect();
        if names != SCHEMES {
            return Err(format!(
                "{}@{}: schemes {names:?} != {SCHEMES:?}",
                f.scenario, row.budget_bytes
            ));
        }
        for p in &row.schemes {
            let ctx = format!("{}@{}:{}", f.scenario, row.budget_bytes, p.scheme);
            check_metric(&ctx, "nmse", p.nmse, 0.0, f64::MAX)?;
            check_metric(&ctx, "burst_recall", p.burst_recall, 0.0, 1.0)?;
            check_metric(&ctx, "heavy_hitter_f1", p.heavy_hitter_f1, 0.0, 1.0)?;
            if p.flows == 0 {
                return Err(format!("{ctx}: scored zero flows"));
            }
            if p.memory_bytes == 0 {
                return Err(format!("{ctx}: zero sketch memory"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_scenario(name: &str) -> Scenario {
        scenario_matrix(FRONTIER_SEED, true)
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario in matrix")
    }

    #[test]
    fn frontier_point_is_deterministic() {
        let s = smoke_scenario("incast_dcqcn");
        let a = evaluate_scenario(&s, true);
        let b = evaluate_scenario(&s, true);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        validate_frontier(&a).expect("smoke frontier validates");
    }

    #[test]
    fn failure_scenario_produces_finite_metrics() {
        let s = smoke_scenario("pfc_storm");
        assert!(!s.failures.is_empty(), "pfc_storm must inject failures");
        let f = evaluate_scenario(&s, true);
        validate_frontier(&f).expect("failure-injected frontier validates");
        assert!(f.tx_records > 0);
    }

    #[test]
    fn bigger_budget_never_hurts_wavesketch_much() {
        // Sanity: the frontier must actually slope — WaveSketch at the top
        // budget should be at least as accurate as at the bottom one.
        let s = smoke_scenario("incast_dcqcn");
        let f = evaluate_scenario(&s, true);
        let ws = |row: &BudgetRow| {
            row.schemes
                .iter()
                .find(|p| p.scheme == "wavesketch")
                .unwrap()
                .nmse
        };
        let small = ws(&f.budgets[0]);
        let big = ws(f.budgets.last().unwrap());
        assert!(
            big <= small * 1.5 + 1e-9,
            "wavesketch nmse rose from {small} to {big} with more memory"
        );
    }

    #[test]
    fn validate_frontier_rejects_broken_points() {
        let s = smoke_scenario("incast_dcqcn");
        let mut f = evaluate_scenario(&s, true);
        f.budgets[0].schemes[0].nmse = f64::NAN;
        assert!(validate_frontier(&f).is_err());
    }
}
