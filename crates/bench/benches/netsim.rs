//! Criterion benchmarks for the simulator substrate: packet-event
//! throughput on the dumbbell and fat-tree topologies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use umon_netsim::{CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology};

fn quick_config() -> SimConfig {
    SimConfig {
        end_ns: 3_000_000,
        clock_error_ns: 0,
        collect_queue_dist: false,
        ..SimConfig::default()
    }
}

fn bench_dumbbell(c: &mut Criterion) {
    let flows: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: (i % 4) as usize,
            dst: 4 + (i % 4) as usize,
            size_bytes: 1_000_000,
            start_ns: i * 10_000,
            cc: CongestionControl::Dcqcn,
        })
        .collect();
    // 4 MB = 4000 packets, ~4 hops each ≈ 32k packet events.
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(4_000));
    group.bench_function("dumbbell_4x1MB_dcqcn", |b| {
        b.iter(|| {
            let topo = Topology::dumbbell(4, 100.0, 1000);
            let r = Simulator::new(topo, flows.clone(), quick_config()).run();
            r.telemetry.tx_records.len()
        })
    });
    group.finish();
}

fn bench_fat_tree(c: &mut Criterion) {
    let flows: Vec<FlowSpec> = (0..64)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: (i % 16) as usize,
            dst: ((i + 5) % 16) as usize,
            size_bytes: 100_000,
            start_ns: i * 5_000,
            cc: CongestionControl::Dcqcn,
        })
        .collect();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(6_400));
    group.bench_function("fat_tree_64x100KB_dcqcn", |b| {
        b.iter(|| {
            let topo = Topology::fat_tree(4, 100.0, 1000);
            let r = Simulator::new(topo, flows.clone(), quick_config()).run();
            r.telemetry.tx_records.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dumbbell, bench_fat_tree
}
criterion_main!(benches);
