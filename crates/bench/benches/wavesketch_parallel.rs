//! Criterion benchmark for sharded parallel host ingest: sequential
//! `FullWaveSketch` updates vs 1/2/4/8 lane-partitioned shards applied on
//! worker threads (and, for reference, the single-threaded
//! `ShardedWaveSketch` wrapper, which pays routing but not parallelism).
//!
//! The threaded variants pre-route the stream into per-shard batches outside
//! the timed region: routing is one hash per packet and in the real host
//! agent it runs on the ingest thread, overlapped with the workers applying
//! previous batches. What is timed is the sketch update work itself — the
//! quantity that must scale with shard count.
//!
//! Two scaling measures are reported per shard count: `threads/N` (real
//! scoped threads; wall-clock, capped by the machine's core count) and
//! `critical_path/N` (the busiest shard timed alone with the full stream in
//! the throughput denominator — the N-core ingest rate, meaningful even on
//! a single-core machine).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wavesketch::sharded::ShardedWaveSketch;
use wavesketch::{FlowKey, FullWaveSketch, SketchConfig};

fn config() -> SketchConfig {
    SketchConfig::builder()
        .rows(3)
        .width(256)
        .levels(8)
        .topk(64)
        .max_windows(4096)
        .heavy_rows(256)
        .build()
}

/// A packet stream: (flow, window, bytes), windows non-decreasing and
/// bounded to one measurement period (no epoch rollovers).
fn stream(packets: usize, flows: u64, seed: u64) -> Vec<(FlowKey, u64, i64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut window = 0u64;
    (0..packets)
        .map(|_| {
            if rng.gen_bool(0.2) {
                window = (window + rng.gen_range(1..4)).min(4000);
            }
            (
                FlowKey::from_id(rng.gen_range(0..flows)),
                window,
                rng.gen_range(64..1500),
            )
        })
        .collect()
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let packets = stream(200_000, 2000, 7);
    let cfg = config();
    let mut group = c.benchmark_group("sharded_ingest");
    group.throughput(Throughput::Elements(packets.len() as u64));

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut s = FullWaveSketch::new(cfg.clone());
            for (f, w, v) in &packets {
                s.update(black_box(f), *w, *v);
            }
            s.evictions()
        })
    });

    // Routing cost on the ingest thread, no parallelism: the overhead floor
    // of the sharded layout itself.
    group.bench_function("sharded_1thread_4", |b| {
        b.iter(|| {
            let mut s = ShardedWaveSketch::new(cfg.clone(), 4);
            s.update_batch(black_box(&packets));
            s.evictions()
        })
    });

    for shards in [1usize, 2, 4, 8] {
        let mut split: Vec<Vec<(FlowKey, u64, i64)>> = vec![Vec::new(); shards];
        for &(f, w, v) in &packets {
            split[cfg.shard_of(&f, shards)].push((f, w, v));
        }
        // Real scoped threads: wall-clock scaling, bounded by the machine's
        // core count (flat on a single-core box).
        group.bench_with_input(BenchmarkId::new("threads", shards), &split, |b, split| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let workers: Vec<_> = split
                        .iter()
                        .enumerate()
                        .map(|(s, batch)| {
                            let shard_cfg = cfg.shard_slice(s, shards);
                            scope.spawn(move || {
                                let mut sk = FullWaveSketch::new(shard_cfg);
                                for (f, w, v) in batch {
                                    sk.update(black_box(f), *w, *v);
                                }
                                sk.evictions()
                            })
                        })
                        .collect();
                    workers.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
                })
            })
        });
        // Critical path: time only the busiest shard while accounting the
        // whole stream in the throughput. This is the ingest rate the shard
        // layout sustains with one core per shard — shards share no state,
        // so the slowest shard *is* the parallel wall-clock — and it is the
        // right scaling measure on machines with fewer cores than shards.
        let busiest = split
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.len())
            .map(|(s, _)| s)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("critical_path", shards),
            &split[busiest],
            |b, batch| {
                b.iter(|| {
                    let mut sk = FullWaveSketch::new(cfg.shard_slice(busiest, shards));
                    for (f, w, v) in batch {
                        sk.update(black_box(f), *w, *v);
                    }
                    sk.evictions()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sharded_ingest
}
criterion_main!(benches);
