//! Criterion benchmarks comparing update and query costs across all
//! curve-measurement schemes at equal memory (400 KB).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use umon_baselines::budget::SweepLayout;
use umon_baselines::CurveSketch;
use wavesketch::{FlowKey, SelectorKind};

const BUDGET: usize = 400 * 1024;
const PERIOD_WINDOWS: usize = 2442;

fn stream(packets: usize, flows: u64) -> Vec<(FlowKey, u64, i64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut window = 0u64;
    (0..packets)
        .map(|_| {
            if rng.gen_bool(0.1) {
                window = (window + rng.gen_range(1..3)).min(PERIOD_WINDOWS as u64 - 1);
            }
            (
                FlowKey::from_id(rng.gen_range(0..flows)),
                window,
                rng.gen_range(64..1500),
            )
        })
        .collect()
}

fn schemes(layout: &SweepLayout) -> Vec<Box<dyn CurveSketch>> {
    vec![
        Box::new(layout.wavesketch(BUDGET, SelectorKind::Ideal)),
        Box::new(layout.omniwindow(BUDGET)),
        Box::new(layout.fourier(BUDGET)),
        Box::new(layout.persist_cms(BUDGET)),
    ]
}

fn bench_scheme_updates(c: &mut Criterion) {
    let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
    let packets = stream(100_000, 300);
    let mut group = c.benchmark_group("scheme_update_100k");
    group.throughput(Throughput::Elements(packets.len() as u64));
    for proto in schemes(&layout) {
        let name = proto.name();
        drop(proto);
        group.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    schemes(&layout)
                        .into_iter()
                        .find(|s| s.name() == name)
                        .expect("scheme exists")
                },
                |mut s| {
                    for (f, w, v) in &packets {
                        s.update(black_box(f), *w, *v);
                    }
                    s.memory_bytes()
                },
            )
        });
    }
    group.finish();
}

fn bench_scheme_queries(c: &mut Criterion) {
    let layout = SweepLayout::paper(0, PERIOD_WINDOWS);
    let packets = stream(100_000, 300);
    let mut group = c.benchmark_group("scheme_query");
    for mut s in schemes(&layout) {
        for (f, w, v) in &packets {
            s.update(f, *w, *v);
        }
        let name = s.name();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0.0;
                for id in 0..50u64 {
                    if let Some(curve) = s.query(black_box(&FlowKey::from_id(id))) {
                        total += curve.total();
                    }
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheme_updates, bench_scheme_queries
}
criterion_main!(benches);
