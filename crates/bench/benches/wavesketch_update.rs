//! Criterion micro-benchmarks for the WaveSketch core: the O(1) amortized
//! update claim (Appendix B), transform/reconstruct costs, and ideal vs
//! hardware selection.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wavesketch::select::{CoeffSelector, IdealTopK};
use wavesketch::streaming::StreamingTransform;
use wavesketch::{BasicWaveSketch, FlowKey, FullWaveSketch, Selector, SelectorKind, SketchConfig};

fn config(selector: SelectorKind) -> SketchConfig {
    SketchConfig::builder()
        .rows(3)
        .width(256)
        .levels(8)
        .topk(64)
        .max_windows(4096)
        .heavy_rows(256)
        .selector(selector)
        .build()
}

/// A packet stream: (flow, window, bytes), windows non-decreasing and
/// bounded to one measurement period (no epoch rollovers).
fn stream(packets: usize, flows: u64, seed: u64) -> Vec<(FlowKey, u64, i64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut window = 0u64;
    (0..packets)
        .map(|_| {
            if rng.gen_bool(0.2) {
                window = (window + rng.gen_range(1..4)).min(4000);
            }
            (
                FlowKey::from_id(rng.gen_range(0..flows)),
                window,
                rng.gen_range(64..1500),
            )
        })
        .collect()
}

fn bench_update(c: &mut Criterion) {
    let packets = stream(100_000, 500, 1);
    let mut group = c.benchmark_group("update");
    group.throughput(Throughput::Elements(packets.len() as u64));

    group.bench_function("basic_ideal", |b| {
        b.iter(|| {
            let mut s = BasicWaveSketch::new(config(SelectorKind::Ideal));
            for (f, w, v) in &packets {
                s.update(black_box(f), *w, *v);
            }
            s.active_buckets()
        })
    });
    group.bench_function("basic_hw", |b| {
        b.iter(|| {
            let mut s = BasicWaveSketch::new(config(SelectorKind::HwThreshold {
                even: 100,
                odd: 100,
            }));
            for (f, w, v) in &packets {
                s.update(black_box(f), *w, *v);
            }
            s.active_buckets()
        })
    });
    group.bench_function("full_ideal", |b| {
        b.iter(|| {
            let mut s = FullWaveSketch::new(config(SelectorKind::Ideal));
            for (f, w, v) in &packets {
                s.update(black_box(f), *w, *v);
            }
            s.heavy_flows().len()
        })
    });
    group.finish();
}

/// Appendix B: amortized update cost must be flat in the stream density
/// (packets per window). Criterion surfaces the per-element cost directly.
fn bench_amortized_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_per_density");
    for pkts_per_window in [1usize, 8, 64] {
        let n_windows = 2048usize;
        let packets: Vec<(u64, i64)> = (0..n_windows)
            .flat_map(|w| (0..pkts_per_window).map(move |_| (w as u64, 1000i64)))
            .collect();
        group.throughput(Throughput::Elements(packets.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(pkts_per_window),
            &packets,
            |b, packets| {
                b.iter(|| {
                    let mut t =
                        StreamingTransform::new(8, 4096, Selector::new(SelectorKind::Ideal, 64));
                    let mut cur = (0u64, 0i64);
                    for &(w, v) in packets {
                        if w == cur.0 {
                            cur.1 += v;
                        } else {
                            t.push(cur.0 as u32, cur.1);
                            cur = (w, v);
                        }
                    }
                    t.approx_total()
                })
            },
        );
    }
    group.finish();
}

fn bench_transform_reconstruct(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let series: Vec<(u32, i64)> = (0..4096u32)
        .map(|w| (w, rng.gen_range(0..100_000)))
        .collect();
    c.bench_function("streaming_transform_4096", |b| {
        b.iter(|| {
            let mut t = StreamingTransform::new(8, 4096, IdealTopK::new(64));
            for &(w, v) in &series {
                t.push(w, v);
            }
            t.finish()
        })
    });
    let coeffs = {
        let mut t = StreamingTransform::new(8, 4096, IdealTopK::new(64));
        for &(w, v) in &series {
            t.push(w, v);
        }
        t.finish()
    };
    c.bench_function("reconstruct_4096", |b| {
        b.iter(|| wavesketch::reconstruct::reconstruct(black_box(&coeffs)))
    });
}

fn bench_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let candidates: Vec<wavesketch::select::Candidate> = (0..10_000)
        .map(|i| wavesketch::select::Candidate {
            level: i % 8,
            idx: i,
            val: rng.gen_range(-100_000i64..100_000),
        })
        .collect();
    let mut group = c.benchmark_group("selection_10k_candidates");
    group.bench_function("ideal_topk_64", |b| {
        b.iter(|| {
            let mut s = IdealTopK::new(64);
            for &cand in &candidates {
                s.offer(cand);
            }
            s.len()
        })
    });
    group.bench_function("hw_threshold_64", |b| {
        b.iter(|| {
            let mut s = wavesketch::select::HwThresholdSelector::new(64, 20_000, 20_000);
            for &cand in &candidates {
                s.offer(cand);
            }
            s.len()
        })
    });
    group.finish();
}

/// §8 future work: Agg-Evict pre-aggregation in front of the sketch. On a
/// dense stream most packets merge in the buffer and never touch the
/// sketch's hash rows.
fn bench_aggevict(c: &mut Criterion) {
    // A dense stream: few flows, many packets per window.
    let packets = stream(100_000, 16, 5);
    let mut group = c.benchmark_group("aggevict");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("direct", |b| {
        b.iter(|| {
            let mut s = BasicWaveSketch::new(config(SelectorKind::Ideal));
            for (f, w, v) in &packets {
                s.update(black_box(f), *w, *v);
            }
            s.active_buckets()
        })
    });
    group.bench_function("buffered_256_slots", |b| {
        b.iter(|| {
            let mut s = BasicWaveSketch::new(config(SelectorKind::Ideal));
            let mut buf = wavesketch::AggEvictBuffer::new(256);
            {
                let mut sink = |k: &FlowKey, w: u64, v: i64| s.update(k, w, v);
                for (f, w, v) in &packets {
                    buf.offer(black_box(f), *w, *v, &mut sink);
                }
                buf.flush(&mut sink);
            }
            s.active_buckets()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_update, bench_amortized_density, bench_transform_reconstruct, bench_selection,
              bench_aggevict
}
criterion_main!(benches);
