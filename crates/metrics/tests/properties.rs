//! Property-based tests for the Appendix-E metric invariants.

use proptest::prelude::*;
use umon_metrics::{
    align_curves, all_metrics, average_relative_error, cosine_similarity, counts_to_gbps,
    energy_similarity, euclidean_distance, RateCurve,
};

fn curve() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..64)
}

proptest! {
    // These metrics are cheap to evaluate; run well above the default 64
    // cases (~10ms for the whole file even at this count).
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Identity: every metric scores a curve perfectly against itself.
    #[test]
    fn metrics_are_perfect_on_identical_curves(f in curve()) {
        let m = all_metrics(&f, &f);
        prop_assert_eq!(m.euclidean, 0.0);
        prop_assert_eq!(m.are, 0.0);
        prop_assert!((m.cosine - 1.0).abs() < 1e-9);
        prop_assert!((m.energy - 1.0).abs() < 1e-9);
    }

    /// Bounds: cosine and energy similarity live in [0, 1] for non-negative
    /// curves; Euclidean and ARE are non-negative.
    #[test]
    fn metric_bounds(f in curve(), g in curve()) {
        let n = f.len().min(g.len());
        let (f, g) = (&f[..n], &g[..n]);
        prop_assert!(euclidean_distance(f, g) >= 0.0);
        prop_assert!(average_relative_error(f, g) >= 0.0);
        let c = cosine_similarity(f, g);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c), "cosine {c}");
        let e = energy_similarity(f, g);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&e), "energy {e}");
    }

    /// Symmetry: Euclidean, cosine and energy are symmetric in their
    /// arguments (ARE deliberately is not — it normalizes by the truth).
    #[test]
    fn symmetric_metrics(f in curve(), g in curve()) {
        let n = f.len().min(g.len());
        let (f, g) = (&f[..n], &g[..n]);
        prop_assert!((euclidean_distance(f, g) - euclidean_distance(g, f)).abs() < 1e-9);
        prop_assert!((cosine_similarity(f, g) - cosine_similarity(g, f)).abs() < 1e-12);
        prop_assert!((energy_similarity(f, g) - energy_similarity(g, f)).abs() < 1e-12);
    }

    /// Scale behavior: scaling both curves by the same factor preserves
    /// cosine, energy and ARE, and scales Euclidean linearly.
    #[test]
    fn common_scaling(f in curve(), g in curve(), k in 0.1f64..100.0) {
        let n = f.len().min(g.len());
        let (f, g) = (&f[..n], &g[..n]);
        let fk: Vec<f64> = f.iter().map(|x| x * k).collect();
        let gk: Vec<f64> = g.iter().map(|x| x * k).collect();
        prop_assert!((cosine_similarity(f, g) - cosine_similarity(&fk, &gk)).abs() < 1e-9);
        prop_assert!((energy_similarity(f, g) - energy_similarity(&fk, &gk)).abs() < 1e-9);
        prop_assert!((average_relative_error(f, g) - average_relative_error(&fk, &gk)).abs() < 1e-9);
        let e1 = euclidean_distance(f, g) * k;
        let e2 = euclidean_distance(&fk, &gk);
        prop_assert!((e1 - e2).abs() <= 1e-9 * e1.max(1.0));
    }

    /// Triangle inequality for the Euclidean distance.
    #[test]
    fn euclidean_triangle(f in curve(), g in curve(), h in curve()) {
        let n = f.len().min(g.len()).min(h.len());
        let (f, g, h) = (&f[..n], &g[..n], &h[..n]);
        prop_assert!(
            euclidean_distance(f, h)
                <= euclidean_distance(f, g) + euclidean_distance(g, h) + 1e-9
        );
    }

    /// align_curves produces equal-length vectors that preserve each
    /// curve's values at its own windows.
    #[test]
    fn alignment_preserves_values(
        s1 in 0u64..50, v1 in curve(),
        s2 in 0u64..50, v2 in curve(),
    ) {
        let a = RateCurve::new(s1, v1.clone());
        let b = RateCurve::new(s2, v2.clone());
        let (av, bv) = align_curves(&a, &b);
        prop_assert_eq!(av.len(), bv.len());
        let from = s1.min(s2);
        for (i, &x) in v1.iter().enumerate() {
            prop_assert_eq!(av[(s1 - from) as usize + i], x);
        }
        for (i, &x) in v2.iter().enumerate() {
            prop_assert_eq!(bv[(s2 - from) as usize + i], x);
        }
    }

    /// Gbps conversion is linear in the byte counts.
    #[test]
    fn gbps_linear(f in curve(), shift in 10u32..20) {
        let window_ns = 1u64 << shift;
        let out = counts_to_gbps(&f, window_ns);
        for (i, &b) in f.iter().enumerate() {
            prop_assert!((out[i] - b * 8.0 / window_ns as f64).abs() < 1e-9);
        }
    }
}
