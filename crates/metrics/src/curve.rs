//! Rate-curve helpers: converting per-window byte counts into rates and
//! aligning curves that start at different absolute windows.

/// A flow-rate curve: per-window sample values anchored at an absolute
/// window id. Window ids are the global microsecond-level window indices used
/// throughout μMon (nanosecond timestamp right-shifted by `log2(window_ns)`).
#[derive(Debug, Clone, PartialEq)]
pub struct RateCurve {
    /// Absolute window id of `samples[0]`.
    pub start_window: u64,
    /// One sample per window (bytes, packets, or Gbps — caller's choice).
    pub samples: Vec<f64>,
}

impl RateCurve {
    /// Creates a curve anchored at `start_window`.
    pub fn new(start_window: u64, samples: Vec<f64>) -> Self {
        Self {
            start_window,
            samples,
        }
    }

    /// The absolute window id one past the last sample.
    pub fn end_window(&self) -> u64 {
        self.start_window + self.samples.len() as u64
    }

    /// Value at absolute window `w`, or 0 outside the curve's span.
    pub fn at(&self, w: u64) -> f64 {
        if w < self.start_window {
            return 0.0;
        }
        let idx = (w - self.start_window) as usize;
        self.samples.get(idx).copied().unwrap_or(0.0)
    }

    /// Sum of all samples (total bytes if the samples are per-window bytes).
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Slice of the curve covering `[from, to)` absolute windows, zero-padded
    /// where the curve has no data.
    pub fn window_range(&self, from: u64, to: u64) -> Vec<f64> {
        assert!(from <= to, "window_range requires from <= to");
        (from..to).map(|w| self.at(w)).collect()
    }
}

/// Aligns two curves onto the union of their spans, zero-padding both, and
/// returns `(truth, estimate)` sample vectors of equal length. Metrics are
/// then directly applicable. Returns empty vectors if both curves are empty.
pub fn align_curves(truth: &RateCurve, estimate: &RateCurve) -> (Vec<f64>, Vec<f64>) {
    if truth.samples.is_empty() && estimate.samples.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let from = match (truth.samples.is_empty(), estimate.samples.is_empty()) {
        (false, false) => truth.start_window.min(estimate.start_window),
        (false, true) => truth.start_window,
        (true, false) => estimate.start_window,
        (true, true) => unreachable!(),
    };
    let to = truth.end_window().max(estimate.end_window());
    (
        truth.window_range(from, to),
        estimate.window_range(from, to),
    )
}

/// Converts per-window byte counts to Gbps given the window length in
/// nanoseconds: `bytes * 8 / window_ns` gives bits per nanosecond == Gbps.
pub fn counts_to_gbps(byte_counts: &[f64], window_ns: u64) -> Vec<f64> {
    let w = window_ns as f64;
    byte_counts.iter().map(|b| b * 8.0 / w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_returns_zero_outside_span() {
        let c = RateCurve::new(10, vec![1.0, 2.0]);
        assert_eq!(c.at(9), 0.0);
        assert_eq!(c.at(10), 1.0);
        assert_eq!(c.at(11), 2.0);
        assert_eq!(c.at(12), 0.0);
    }

    #[test]
    fn align_pads_disjoint_curves() {
        let t = RateCurve::new(0, vec![1.0, 1.0]);
        let e = RateCurve::new(3, vec![2.0]);
        let (tv, ev) = align_curves(&t, &e);
        assert_eq!(tv, vec![1.0, 1.0, 0.0, 0.0]);
        assert_eq!(ev, vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn align_handles_one_empty_curve() {
        let t = RateCurve::new(5, vec![3.0]);
        let e = RateCurve::new(0, vec![]);
        let (tv, ev) = align_curves(&t, &e);
        assert_eq!(tv, vec![3.0]);
        assert_eq!(ev, vec![0.0]);
    }

    #[test]
    fn align_both_empty_is_empty() {
        let t = RateCurve::new(0, vec![]);
        let (tv, ev) = align_curves(&t, &t.clone());
        assert!(tv.is_empty() && ev.is_empty());
    }

    #[test]
    fn gbps_conversion_for_8192ns_window() {
        // 10 KB in an 8.192 us window = 10240*8 bits / 8192 ns = 10 Gbps.
        let out = counts_to_gbps(&[10240.0], 8192);
        assert!((out[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn window_range_subsets_and_pads() {
        let c = RateCurve::new(2, vec![5.0, 6.0, 7.0]);
        assert_eq!(c.window_range(0, 6), vec![0.0, 0.0, 5.0, 6.0, 7.0, 0.0]);
        assert_eq!(c.window_range(3, 4), vec![6.0]);
        assert!(c.window_range(4, 4).is_empty());
    }

    #[test]
    fn total_sums_samples() {
        assert_eq!(RateCurve::new(0, vec![1.0, 2.5]).total(), 3.5);
    }
}
