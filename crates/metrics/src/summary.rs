//! Aggregation of per-flow metrics into workload-level averages, the way the
//! paper reports them ("we use the above metrics for each flow and calculate
//! the average value as the metric of the workload", §7.1).

/// The four Appendix-E metrics for a single truth/estimate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Euclidean (L2) distance — lower is better.
    pub euclidean: f64,
    /// Average relative error — lower is better.
    pub are: f64,
    /// Cosine similarity — closer to 1 is better.
    pub cosine: f64,
    /// Energy similarity — closer to 1 is better.
    pub energy: f64,
}

/// Running average of [`MetricSummary`] values over the flows of a workload.
#[derive(Debug, Clone, Default)]
pub struct WorkloadAccuracy {
    sum_euclidean: f64,
    sum_are: f64,
    sum_cosine: f64,
    sum_energy: f64,
    flows: usize,
}

impl WorkloadAccuracy {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one flow's metrics.
    pub fn add(&mut self, m: MetricSummary) {
        self.sum_euclidean += m.euclidean;
        self.sum_are += m.are;
        self.sum_cosine += m.cosine;
        self.sum_energy += m.energy;
        self.flows += 1;
    }

    /// Number of flows accumulated so far.
    pub fn flow_count(&self) -> usize {
        self.flows
    }

    /// The per-flow average of each metric.
    ///
    /// # Panics
    ///
    /// Panics if no flows were added.
    pub fn mean(&self) -> MetricSummary {
        assert!(self.flows > 0, "no flows accumulated");
        let n = self.flows as f64;
        MetricSummary {
            euclidean: self.sum_euclidean / n,
            are: self.sum_are / n,
            cosine: self.sum_cosine / n,
            energy: self.sum_energy / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_averages_each_metric_independently() {
        let mut acc = WorkloadAccuracy::new();
        acc.add(MetricSummary {
            euclidean: 2.0,
            are: 0.2,
            cosine: 0.8,
            energy: 0.6,
        });
        acc.add(MetricSummary {
            euclidean: 4.0,
            are: 0.4,
            cosine: 1.0,
            energy: 1.0,
        });
        let m = acc.mean();
        assert_eq!(acc.flow_count(), 2);
        assert!((m.euclidean - 3.0).abs() < 1e-12);
        assert!((m.are - 0.3).abs() < 1e-12);
        assert!((m.cosine - 0.9).abs() < 1e-12);
        assert!((m.energy - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no flows")]
    fn mean_of_empty_accumulator_panics() {
        WorkloadAccuracy::new().mean();
    }
}
