#![warn(missing_docs)]

//! Accuracy metrics for comparing a true flow-rate curve against an estimate.
//!
//! These are the four metrics of μMon's Appendix E: Euclidean distance,
//! average relative error (ARE), cosine similarity and energy similarity.
//! Each operates on a pair of equal-length sample series — in μMon these are
//! per-window byte (or packet) counts, which are proportional to rates, so the
//! metrics are identical whether applied to counts or to Gbps values scaled by
//! a common factor (except Euclidean distance, which scales linearly).

mod curve;
mod summary;

pub use curve::{align_curves, counts_to_gbps, RateCurve};
pub use summary::{MetricSummary, WorkloadAccuracy};

/// Euclidean (L2) distance between the true curve `f` and the estimate `g`.
///
/// Lower is better; 0 means the estimate is exact.
///
/// # Panics
///
/// Panics if the two series have different lengths.
pub fn euclidean_distance(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    f.iter()
        .zip(g)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Average relative error: `mean(|f(t) - g(t)| / f(t))`.
///
/// Windows where the true value is zero are skipped, mirroring the common
/// sketching-literature convention (a relative error against a zero ground
/// truth is undefined); if every true sample is zero the ARE is defined as the
/// mean absolute estimate (so an all-zero estimate of an all-zero truth is 0).
///
/// Lower is better; 0 means the estimate is exact on every non-zero window.
pub fn average_relative_error(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, b) in f.iter().zip(g) {
        if *a != 0.0 {
            sum += (a - b).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        return g.iter().map(|b| b.abs()).sum::<f64>() / g.len().max(1) as f64;
    }
    sum / n as f64
}

/// Cosine similarity between the two curves viewed as vectors.
///
/// In `[0, 1]` for non-negative curves (1 is best). If exactly one curve is
/// all-zero the similarity is 0; if both are all-zero it is 1 (they agree).
pub fn cosine_similarity(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let dot: f64 = f.iter().zip(g).map(|(a, b)| a * b).sum();
    let nf: f64 = f.iter().map(|a| a * a).sum::<f64>().sqrt();
    let ng: f64 = g.iter().map(|b| b * b).sum::<f64>().sqrt();
    if nf == 0.0 && ng == 0.0 {
        return 1.0;
    }
    if nf == 0.0 || ng == 0.0 {
        return 0.0;
    }
    dot / (nf * ng)
}

/// Energy similarity: the ratio of the smaller to the larger signal energy
/// (square-root form, per Appendix E).
///
/// In `[0, 1]`; 1 means the curves carry identical energy. Both-zero curves
/// score 1, exactly one zero curve scores 0.
pub fn energy_similarity(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let ef: f64 = f.iter().map(|a| a * a).sum();
    let eg: f64 = g.iter().map(|b| b * b).sum();
    if ef == 0.0 && eg == 0.0 {
        return 1.0;
    }
    if ef == 0.0 || eg == 0.0 {
        return 0.0;
    }
    if ef <= eg {
        (ef / eg).sqrt()
    } else {
        (eg / ef).sqrt()
    }
}

/// All four Appendix-E metrics computed for one truth/estimate pair.
pub fn all_metrics(truth: &[f64], estimate: &[f64]) -> MetricSummary {
    MetricSummary {
        euclidean: euclidean_distance(truth, estimate),
        are: average_relative_error(truth, estimate),
        cosine: cosine_similarity(truth, estimate),
        energy: energy_similarity(truth, estimate),
    }
}

fn assert_eq_len(f: &[f64], g: &[f64]) {
    assert_eq!(
        f.len(),
        g.len(),
        "metric inputs must have equal length ({} vs {})",
        f.len(),
        g.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_of_identical_curves_is_zero() {
        let f = [1.0, 2.0, 3.0, 0.0];
        assert_eq!(euclidean_distance(&f, &f), 0.0);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let f = [3.0, 0.0];
        let g = [0.0, 4.0];
        assert!((euclidean_distance(&f, &g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn are_skips_zero_truth_windows() {
        let f = [0.0, 10.0];
        let g = [5.0, 5.0];
        // Only the second window counts: |10-5|/10 = 0.5.
        assert!((average_relative_error(&f, &g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn are_of_all_zero_truth_is_mean_abs_estimate() {
        let f = [0.0, 0.0];
        assert!((average_relative_error(&f, &[2.0, 4.0]) - 3.0).abs() < 1e-12);
        assert_eq!(average_relative_error(&f, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_bounds_and_perfect_score() {
        let f = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&f, &f) - 1.0).abs() < 1e-12);
        // A scaled copy still has cosine 1 (angle is what matters).
        let g = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&f, &g) - 1.0).abs() < 1e-12);
        // Orthogonal vectors score 0.
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_zero_vector_conventions() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn energy_similarity_is_symmetric_ratio() {
        let f = [2.0, 0.0];
        let g = [4.0, 0.0];
        // Energies 4 and 16, sqrt(4/16) = 0.5, either argument order.
        assert!((energy_similarity(&f, &g) - 0.5).abs() < 1e-12);
        assert!((energy_similarity(&g, &f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_zero_vector_conventions() {
        assert_eq!(energy_similarity(&[0.0], &[0.0]), 1.0);
        assert_eq!(energy_similarity(&[0.0], &[3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        euclidean_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn all_metrics_agree_with_individual_calls() {
        let f = [1.0, 5.0, 2.0, 0.0];
        let g = [1.5, 4.0, 2.0, 1.0];
        let m = all_metrics(&f, &g);
        assert_eq!(m.euclidean, euclidean_distance(&f, &g));
        assert_eq!(m.are, average_relative_error(&f, &g));
        assert_eq!(m.cosine, cosine_similarity(&f, &g));
        assert_eq!(m.energy, energy_similarity(&f, &g));
    }
}
